"""Extra experiments: copy-on-switch, preemption latency, energy."""

from conftest import run_once

from repro.experiments import extra_copyswitch, extra_energy, \
    extra_latency


def test_copyswitch(benchmark):
    result = run_once(benchmark, extra_copyswitch.run)
    print()
    print(result.render())
    # Section I: swap-based switching is catastrophically slower...
    assert result.copyswitch_switch_cycles > \
        30 * result.sensmart_switch_cycles
    # ...and wears the flash out within the hour at modest rates.
    assert result.lifetime_hours_at_100hz < 1.0
    # End-to-end the same workload takes several times longer.
    assert result.copyswitch_total_cycles > \
        2 * result.sensmart_total_cycles


def test_latency(benchmark):
    result = run_once(benchmark, extra_latency.run)
    print()
    print(result.render())
    for row in result.rows_data:
        # Latency stays within the inter-trap bound.
        assert row.max_us <= row.bound_us * 1.2
        # And well under a time slice (10 ms): preemption is effective.
        assert row.max_us < 1_000


def test_energy(benchmark):
    result = run_once(
        benchmark,
        lambda: extra_energy.run(sizes=[10_000, 60_000, 120_000],
                                 activations=8))
    print()
    print(result.render())
    low, knee, high = result.points
    # The translation tax shows up in CPU energy at every size...
    for point in result.points:
        assert point.sensmart_mj > 1.5 * point.native_mj
    # ...but average draw only approaches the active figure when the
    # node saturates.
    assert low.sensmart_ma < 2.0
    assert high.sensmart_ma > 6.0
