"""Figure 5: execution time of the kernel benchmarks across systems."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5(benchmark):
    result = run_once(benchmark, fig5.run)
    print()
    print(result.render())
    assert len(result.measurements) == 7
    tk_faster_count = 0
    for row in result.measurements:
        # Everything costs at least native.
        assert row.sensmart_full_cycles >= row.native_cycles
        assert row.tkernel_cycles >= row.native_cycles
        # SenSmart's slowdown stays moderate (paper: "a reasonable
        # execution speed ... moderate slowdown").
        assert row.sensmart_full_cycles < 8 * row.native_cycles, row.name
        if row.tkernel_cycles < row.sensmart_full_cycles:
            tk_faster_count += 1
    # Paper: "t-kernel has better performance in most of the seven
    # programs" (its protection is lighter).
    assert tk_faster_count >= 4
