"""Ablation: trampoline merging (Section IV-A).

"Since many trampolines are similar, they can be merged to save space
(even if they belong to different application programs)."
"""

from conftest import run_once

from repro.toolchain import link_image
from repro.workloads.kernelbench import KERNEL_BENCHMARKS


def _pool_bytes(merge: bool) -> int:
    sources = [(name, generator())
               for name, generator in sorted(KERNEL_BENCHMARKS.items())]
    image = link_image(sources, merge_trampolines=merge)
    return image.pool.size_bytes


def test_merge_ablation(benchmark):
    merged = run_once(benchmark, lambda: _pool_bytes(True))
    unmerged = _pool_bytes(False)
    saving = 1 - merged / unmerged
    print(f"\nmerged pool: {merged} B, unmerged: {unmerged} B, "
          f"saving {saving:.1%}")
    assert merged < unmerged
    # Across seven programs the shared memory/stack patterns overlap;
    # branch/call trampolines stay site-specific, capping the saving.
    assert saving > 0.12
