"""Network co-simulation: event-driven scheduler vs quantum lockstep.

The scenario is the paper's bread-and-butter deployment shape: leaf
motes that sleep through long virtual-timer periods and wake briefly to
transmit, feeding a hub that sleeps between polls.  Simulated time is
almost entirely idle, which is exactly where fixed-quantum lockstep
wastes wall-clock — every node is visited every quantum whether or not
it has anything to do, while the event-driven scheduler strides from
wake to wake.

Asserts the two schedulers produce identical observable results (same
payloads, same delivery counts, same cycle-exact arrivals) and that the
event-driven run is at least 2x faster; records both times in
``BENCH_network.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from repro.avr import ioports
from repro.avr.devices.radio import RXC
from repro.kernel import SensorNode
from repro.net import Network

RESULTS_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_network.json"

MAX_CYCLES = 100_000_000
SENDS_PER_LEAF = 40
LEAVES = {  # name -> (first payload byte, virtual-timer ticks)
    "leaf0": (0x30, 50_000),
    "leaf1": (0x40, 55_000),
    "leaf2": (0x50, 60_000),
}
HUB_EXPECTED = SENDS_PER_LEAF * len(LEAVES)


def _sleepy_sender(start: int, ticks: int) -> str:
    """Sleep a full timer period, wake, transmit one byte; repeat."""
    return f"""
main:
    ldi r16, hi8({ticks})
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8({ticks})
    sts {ioports.OCR3AL}, r16
    ldi r20, {SENDS_PER_LEAF}
    ldi r16, {start}
send:
    sleep
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    inc r16
    dec r20
    brne send
    break
"""


HUB = f"""
; sleep between polls; drain whatever arrived each wake-up
.bss received, {HUB_EXPECTED}
main:
    ldi r16, hi8(16384)
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8(16384)
    sts {ioports.OCR3AL}, r16
    ldi r20, {HUB_EXPECTED}
    ldi r26, lo8(received)
    ldi r27, hi8(received)
round:
    sleep
drain:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp round
    lds r16, {ioports.UDR0}
    st X+, r16
    dec r20
    brne drain
    break
"""


def _build() -> Network:
    net = Network()  # default quantum parameterizes the lockstep baseline
    for name, (start, ticks) in LEAVES.items():
        net.add_node(name, SensorNode.from_sources(
            [("sender", _sleepy_sender(start, ticks))]))
    net.add_node("hub", SensorNode.from_sources([("receiver", HUB)]))
    for index, name in enumerate(LEAVES):
        net.connect(name, "hub", latency_cycles=2_000 + 500 * index)
    return net


def _observe(net: Network):
    """Observable outcome shared by both schedulers.

    Deliberately excludes the hub's final cycle count: lockstep ferries
    only between quantum passes, so a byte can reach the hub's RX queue
    up to a quantum late and cost it one extra sleep period — exactly
    the coarseness the event-driven scheduler removes.  Payloads,
    per-link counts, TX cycles, and arrival cycles must all agree.
    """
    hub = net.nodes["hub"]
    ram_start = hub.kernel.config.ram_start
    return (
        bytes(hub.cpu.mem.data[ram_start:ram_start + HUB_EXPECTED]),
        net.stats(),
        [list(link.arrival_cycles) for link in net.links],
        {name: list(net.nodes[name].radio.tx_cycles) for name in LEAVES},
    )


def _run_event(net: Network) -> Network:
    net.run(max_cycles=MAX_CYCLES)
    assert all(node.finished for node in net.nodes.values())
    return net


def _run_lockstep(net: Network) -> Network:
    net.run_lockstep(max_cycles=MAX_CYCLES)
    assert all(node.finished for node in net.nodes.values())
    return net


def _best_ms(run, repeats: int = 5) -> float:
    """Best-of-N wall-clock for the run itself (build excluded)."""
    best = float("inf")
    for _ in range(repeats):
        net = _build()
        started = time.perf_counter()
        run(net)
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


_TIMES = {}


def test_modes_deliver_identical_results():
    assert _observe(_run_event(_build())) == \
        _observe(_run_lockstep(_build()))


def _bench(benchmark, run) -> float:
    def setup():
        return (_build(),), {}
    benchmark.pedantic(run, setup=setup, rounds=3)
    # min, not mean: rounds share the process, and a GC pause or cold
    # cache in one round should not distort the scheduler comparison.
    return benchmark.stats["min"] * 1000.0


def test_event_driven(benchmark):
    _TIMES["event_ms"] = _bench(benchmark, _run_event)


def test_lockstep_baseline(benchmark):
    _TIMES["lockstep_ms"] = _bench(benchmark, _run_lockstep)


def test_speedup_at_least_2x():
    event_ms = _TIMES.get("event_ms") or _best_ms(_run_event)
    lockstep_ms = _TIMES.get("lockstep_ms") or _best_ms(_run_lockstep)
    speedup = lockstep_ms / event_ms
    print(f"\nidle-heavy 4-node: event-driven {event_ms:.2f} ms, "
          f"lockstep {lockstep_ms:.2f} ms, speedup {speedup:.1f}x")
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data.update({
        "scenario": "idle-heavy 3 leaves + hub, "
                    f"{HUB_EXPECTED} bytes end to end",
        "event_driven_ms": round(event_ms, 2),
        "lockstep_ms": round(lockstep_ms, 2),
        "speedup": round(speedup, 2),
    })
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert speedup >= 2.0
