"""Figure 8: SenSmart vs LiteOS under an equal stack budget."""

from conftest import run_once

from repro.experiments import fig8

TREE_SIZES = [10, 20, 40, 60]


def test_fig8(benchmark):
    result = run_once(
        benchmark, lambda: fig8.run(tree_sizes=TREE_SIZES))
    print()
    print(result.render())
    points = result.points
    for point in points:
        # Versatile stacks never schedule fewer tasks than fixed ones.
        assert point.sensmart_tasks >= point.liteos_tasks
    # And strictly more somewhere in the sweep — the paper's headline.
    assert any(p.sensmart_tasks > p.liteos_tasks for p in points)
    # Both decline as trees grow.
    sensmart = [p.sensmart_tasks for p in points]
    liteos = [p.liteos_tasks for p in points]
    assert sensmart == sorted(sensmart, reverse=True)
    assert liteos == sorted(liteos, reverse=True)
