"""Superblock ablation: fused vs per-instruction dispatch rates.

Runs the SPIN workload natively and under the kernel in both execution
modes, asserts the two modes retire identical instruction counts, and
records the measured rates in ``BENCH_interpreter.json`` at the repo
root so successive runs leave a machine-readable trace of the win.
"""

import json
from pathlib import Path

from repro.avr import AvrCpu, Flash, assemble
from repro.kernel import SensorNode

RESULTS_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_interpreter.json"

SPIN = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 8
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def _record(key: str, rate: float) -> None:
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = round(rate)
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def _native(fuse: bool):
    program = assemble(SPIN)

    def run():
        flash = Flash()
        flash.load(0, program.words)
        cpu = AvrCpu(flash, fuse=fuse)
        cpu.run()
        return cpu.instret

    return run


def _kernelized(fuse: bool):
    def run():
        node = SensorNode.from_sources([("spin", SPIN)], fuse=fuse)
        node.run(max_instructions=10_000_000)
        assert node.finished
        return node.cpu.instret

    return run


def _rate(benchmark, run, rounds: int = 3) -> float:
    instructions = benchmark.pedantic(run, rounds=rounds, iterations=1)
    return instructions / benchmark.stats["mean"]


def test_native_fused(benchmark):
    rate = _rate(benchmark, _native(fuse=True))
    print(f"\nnative, fused: {rate / 1e6:.2f} M instr/s")
    _record("native_fused", rate)


def test_native_stepwise(benchmark):
    rate = _rate(benchmark, _native(fuse=False))
    print(f"\nnative, per-instruction: {rate / 1e6:.2f} M instr/s")
    _record("native_stepwise", rate)
    # Both modes retire the same instruction stream.
    assert _native(fuse=True)() == _native(fuse=False)()


def test_kernelized_fused(benchmark):
    rate = _rate(benchmark, _kernelized(fuse=True))
    print(f"\nkernelized, fused: {rate / 1e6:.2f} M instr/s")
    _record("kernelized_fused", rate)


def test_kernelized_stepwise(benchmark):
    rate = _rate(benchmark, _kernelized(fuse=False))
    print(f"\nkernelized, per-instruction: {rate / 1e6:.2f} M instr/s")
    _record("kernelized_stepwise", rate)
    assert _kernelized(fuse=True)() == _kernelized(fuse=False)()


def _quick() -> None:
    """CI smoke: one timed pass per configuration, no pytest plugin,
    no BENCH_interpreter.json update — just prove both modes run and
    retire identical instruction counts."""
    import time
    for label, factory in (("native", _native), ("kernelized", _kernelized)):
        counts = {}
        for fuse in (True, False):
            run = factory(fuse)
            started = time.perf_counter()
            counts[fuse] = run()
            elapsed = time.perf_counter() - started
            mode = "fused" if fuse else "stepwise"
            print(f"{label}, {mode}: "
                  f"{counts[fuse] / elapsed / 1e6:.2f} M instr/s")
        assert counts[True] == counts[False], \
            f"{label}: modes retired different instruction counts"
    print("quick smoke OK")


if __name__ == "__main__":
    import sys
    if "--quick" in sys.argv:
        _quick()
    else:
        raise SystemExit(
            "run under pytest, or pass --quick for the CI smoke")
