"""Load generator for ``sensmart serve``.

Spins an in-process server (background thread, temp on-disk artifact
store), then drives it the way a base station fleet would: a few
distinct workload bundles, each submitted many times.  The first
submission of a bundle is **cold** — it pays the full assemble →
rewrite → lint → link → simulate pipeline; every repeat is **warm** and
must be answered from the artifact store.

Measured into ``BENCH_serve.json``:

* ``cold_latency_ms`` / ``warm_latency_ms`` — mean per-request wall
  time in each phase, and the resulting speedup.
* ``requests_per_sec`` — warm-phase throughput over one connection.
* ``warm_hit_rate`` — store hits / lookups *during the warm phase
  only* (the cold phase's misses are the point, not noise).  The serve
  contract requires ≥ 0.99: a warm submission performs exactly one
  lookup (the verdict key) and it must hit.

``--quick`` runs a CI-sized version with the same assertions: warm hit
rate, verdict schema, zero build work on the warm path, and
bit-identical trace digests between cold and warm verdicts.
"""

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from bench_trapspec import TRAP_LOOP, TRAP_MIX

RESULTS_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_serve.json"

SPIN = """
start:
    ldi r24, 200
outer:
    ldi r25, 50
inner:
    dec r25
    brne inner
    dec r24
    brne outer
    break
"""

BLINK = """
start:
    ldi r24, 8
again:
    ldi r26, 0x01
    out 0x18, r26
    ldi r26, 0x00
    out 0x18, r26
    dec r24
    brne again
    break
"""

#: Distinct submission bundles — single-task, trap-heavy, multitask.
WORKLOADS = {
    "spin": [("spin", SPIN)],
    "trap_loop": [("trap_loop", TRAP_LOOP)],
    "multitask": [("trap_mix", TRAP_MIX), ("blink", BLINK)],
}

MAX_INSTRUCTIONS = 2_000_000


def _programs(sources):
    return [{"name": name, "source": source}
            for name, source in sources]


def run_bench(repeats: int = 25) -> dict:
    from repro.pipeline.report import VERDICT_SCHEMA
    from repro.pipeline.stages import COUNTERS
    from repro.serve import ServeClient, serve_in_thread

    options = {"max_instructions": MAX_INSTRUCTIONS}
    cold_times = []
    warm_times = []
    cold_digests = {}

    with tempfile.TemporaryDirectory() as store_dir:
        with serve_in_thread(store_path=store_dir) as server:
            with ServeClient(port=server.port) as client:
                # -- cold phase: one build per distinct bundle
                for name, sources in WORKLOADS.items():
                    started = time.perf_counter()
                    response = client.submit(_programs(sources),
                                             options=options)
                    cold_times.append(time.perf_counter() - started)
                    assert response["ok"], response
                    verdict = response["verdict"]
                    assert verdict["schema"] == VERDICT_SCHEMA
                    assert verdict["cached"] is False
                    assert verdict["simulation"]["finished"], name
                    cold_digests[name] = \
                        verdict["simulation"]["trace_digest"]

                # -- warm phase: every submission is a repeat
                store = server.pipeline.store.stats
                hits0, misses0 = store.hits, store.misses
                counters0 = COUNTERS.snapshot()
                warm_started = time.perf_counter()
                for _round in range(repeats):
                    for name, sources in WORKLOADS.items():
                        started = time.perf_counter()
                        response = client.submit(_programs(sources),
                                                 options=options)
                        warm_times.append(
                            time.perf_counter() - started)
                        verdict = response["verdict"]
                        assert verdict["cached"] is True, name
                        assert verdict["simulation"]["trace_digest"] \
                            == cold_digests[name], name
                warm_elapsed = time.perf_counter() - warm_started

                work = COUNTERS.delta(counters0)
                assert not work, \
                    f"warm phase did build work: {work}"
                hits = store.hits - hits0
                misses = store.misses - misses0
                hit_rate = hits / (hits + misses) \
                    if hits + misses else 0.0
                assert hit_rate >= 0.99, \
                    f"warm hit rate {hit_rate:.4f} < 0.99"
                client.shutdown()

    cold_ms = statistics.mean(cold_times) * 1e3
    warm_ms = statistics.mean(warm_times) * 1e3
    return {
        "workloads": len(WORKLOADS),
        "repeats": repeats,
        "cold_latency_ms": round(cold_ms, 3),
        "warm_latency_ms": round(warm_ms, 3),
        "cold_over_warm": round(cold_ms / warm_ms, 1),
        "requests_per_sec": round(len(warm_times) / warm_elapsed),
        "warm_hit_rate": round(hit_rate, 4),
    }


def test_serve_bench_quick():
    """Pytest entry: CI-sized load with all contract assertions."""
    results = run_bench(repeats=3)
    assert results["warm_hit_rate"] >= 0.99


def main(argv) -> int:
    quick = "--quick" in argv
    results = run_bench(repeats=3 if quick else 25)
    print(json.dumps(results, indent=2, sort_keys=True))
    if not quick:
        data = {}
        if RESULTS_PATH.exists():
            data = json.loads(RESULTS_PATH.read_text())
        data.update(results)
        RESULTS_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {RESULTS_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
