"""Fleet sharding scaling curves: nodes/sec vs shard count.

Runs the flood workload over growing grids at 1/2/4/8 shards and
writes BENCH_fleet.json with a nodes/sec curve per fleet size plus a
digest-invariance check (every shard count of a scenario must produce
the same fleet digest).

Metric: ``critical_path_s`` = coordinator CPU + priming CPU + the
slowest shard's CPU seconds.  Per-process CPU time is used instead of
wall-clock so the curve measures the parallel decomposition itself —
what wall-clock would be on a host with >= shards idle cores — and is
stable on throttled single-core CI runners where wall-clock of
concurrent workers is meaningless.  Wall-clock is reported alongside,
unjudged.

``--quick`` runs only the 128-node scenario at 1 and 4 shards and
asserts >= 1.5x nodes/sec plus digest equality (CI smoke); the full
run asserts >= 2x at 4 shards on the 128-node scenario.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import FleetSim, build_spec, grid  # noqa: E402

MAX_CYCLES = 3_000_000
COUNT = 6
SHARD_COUNTS = (1, 2, 4, 8)
#: (label, rows, cols) — 16..512 nodes.
SCENARIOS = (
    ("grid-4x4", 4, 4),
    ("grid-8x8", 8, 8),
    ("grid-8x16", 8, 16),
    ("grid-16x32", 16, 32),
)
QUICK_SCENARIO = "grid-8x16"  # 128 nodes


def run_point(rows: int, cols: int, shards: int) -> dict:
    spec = build_spec(grid(rows, cols, latency_cycles=2_000), "flood",
                      count=COUNT, max_cycles=MAX_CYCLES)
    result = FleetSim(spec, shards=shards).run()
    return {
        "shards": result.shards,
        "rounds": result.rounds,
        "finished": result.finished_nodes,
        "digest": result.digest,
        "critical_path_s": round(result.critical_path_s, 4),
        "wall_s": round(result.wall_s, 4),
        "shard_cpu_s": [round(b, 4) for b in result.busy_s],
        "nodes_per_sec": round(result.nodes_per_sec, 2),
        "compiled_per_shard": result.compiled_per_shard,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="128-node scenario only, shards 1 and 4, "
                             "assert >= 1.5x and digest equality")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: "
                             "BENCH_fleet.json at the repo root; "
                             "--quick skips writing unless given)")
    args = parser.parse_args()

    scenarios = [s for s in SCENARIOS
                 if not args.quick or s[0] == QUICK_SCENARIO]
    shard_counts = (1, 4) if args.quick else SHARD_COUNTS
    floor = 1.5 if args.quick else 2.0

    curves = []
    speedup_128 = None
    for label, rows, cols in scenarios:
        nodes = rows * cols
        points = []
        for shards in shard_counts:
            point = run_point(rows, cols, shards)
            points.append(point)
            print(f"{label:<12} nodes={nodes:<4} shards={shards:<2} "
                  f"critical={point['critical_path_s']:.3f}s "
                  f"wall={point['wall_s']:.3f}s "
                  f"{point['nodes_per_sec']:9.1f} nodes/s "
                  f"rounds={point['rounds']}")
        digests = {p["digest"] for p in points}
        assert len(digests) == 1, \
            f"{label}: digest varies with shard count: {digests}"
        print(f"{label:<12} digest invariant across shards "
              f"{list(shard_counts)}: {points[0]['digest']}")
        by_shards = {p["shards"]: p for p in points}
        speedup4 = None
        if 1 in by_shards and 4 in by_shards:
            speedup4 = round(by_shards[4]["nodes_per_sec"]
                             / by_shards[1]["nodes_per_sec"], 2)
        if label == QUICK_SCENARIO:
            speedup_128 = speedup4
        curves.append({
            "topology": label, "nodes": nodes,
            "points": points,
            "speedup_4_vs_1": speedup4,
        })

    assert speedup_128 is not None and speedup_128 >= floor, \
        (f"4-shard nodes/sec speedup on the 128-node scenario is "
         f"{speedup_128}, need >= {floor}")
    print(f"\n128-node 4-shard speedup {speedup_128}x "
          f"(floor {floor}x) -- OK")

    report = {
        "benchmark": "fleet",
        "workload": f"flood k={COUNT}, latency 2000, "
                    f"max_cycles {MAX_CYCLES}",
        "metric": "nodes/sec over critical-path CPU seconds "
                  "(coordinator + priming + slowest shard; the "
                  "wall-clock a host with >= shards idle cores would "
                  "see -- CPU time, so it is meaningful on 1-core "
                  "runners where concurrent-worker wall-clock is not)",
        "digest_invariant": True,
        "speedup_4_shards_128_nodes": speedup_128,
        "curves": curves,
    }
    out = args.out
    if out is None and not args.quick:
        out = str(Path(__file__).resolve().parent.parent
                  / "BENCH_fleet.json")
    if out:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
