"""Certificate-driven guard elision: elide on vs off, full JIT tiers.

Two trap-heavy workloads run kernelized + fused + specialized + traced
with ``KernelConfig.elide`` on and off:

* ``TRAP_MIX`` — the same all-PatchKind loop ``BENCH_trapspec.json``
  measures: heap stores/loads through X, displacement stores through
  Y, pushes/pops and a call/return pair per iteration.  The dataflow
  engine certifies every memory access (X and Y are provably
  heap-resident constants) and both pops (depth provably >= 1), so
  the traced loop body runs with no bound guards at all.
* ``HEAP_STREAM`` — a denser variant that is almost nothing but
  certified heap traffic, measuring elision when guards are a smaller
  share of each trap's total cost.

Elision is a pure execution-speed knob: both modes must retire
bit-identical architectural state (registers aside, the differential
digest covers memory, SP, counters, trap tallies and kernel
accounting).  Every elided site carries an ElisionCertificate that
the independent lint checker re-proves at link time — the bench
asserts the elisions actually engaged.  Measured rates land in
``BENCH_dataflow.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.kernel import SensorNode

RESULTS_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_dataflow.json"

# Same source as benchmarks/bench_trapspec.py TRAP_MIX, so the
# guarded baseline here is directly comparable to the specialized
# rate recorded in BENCH_trapspec.json.
TRAP_MIX = """
    .bss buf, 96

main:
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ldi r28, lo8(buf)
    ldi r29, hi8(buf)
    ldi r20, 0x11
    ldi r21, 0x22
    ldi r25, 250
outer:
    ldi r22, 250
inner:
    st X, r20
    ld r23, X
    push r20
    push r21
    std Y+2, r23
    ldd r23, Y+2
    pop r21
    pop r20
    rcall helper
    dec r22
    brne inner
    dec r25
    brne outer
    break

helper:
    ret
"""

HEAP_STREAM = """
    .bss buf, 64

main:
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ldi r28, lo8(buf)
    ldi r29, hi8(buf)
    ldi r20, 0x5a
    ldi r25, 200
outer:
    ldi r22, 200
inner:
    st X, r20
    ld r23, X
    std Y+1, r23
    ldd r24, Y+1
    std Y+3, r24
    ldd r23, Y+3
    st X, r23
    ld r20, X
    dec r22
    brne inner
    dec r25
    brne outer
    break
"""

WORKLOADS = {"trap_mix": TRAP_MIX, "heap_stream": HEAP_STREAM}


def _record(key: str, rate: float) -> None:
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = round(rate)
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def _run(workload: str, elide: bool):
    def run():
        node = SensorNode.from_sources(
            [(workload, WORKLOADS[workload])], elide=elide,
            block_cache=False)
        node.run(max_instructions=10_000_000)
        assert node.finished
        if elide:
            assert node.kernel.elisions, \
                "no validated elision certificates engaged"
        return node

    return run


def _digest(node):
    kernel = node.kernel
    return (node.cpu.instret, node.cpu.cycles, node.cpu.sp,
            bytes(node.cpu.mem.data),
            dict(kernel.stats.trap_counts),
            kernel.stats.kernel_cycles,
            kernel.stats.scheduler_checks)


def _identical(workload: str) -> None:
    assert _digest(_run(workload, True)()) == \
        _digest(_run(workload, False)())


def _rate(benchmark, run, rounds: int = 3) -> float:
    # One warmup round absorbs the one-time costs that are not what
    # this bench measures: linking (image cache), the dataflow
    # fixpoint + certificate verification (memoized on the image),
    # and trace compilation of the hot loop.
    node = benchmark.pedantic(run, rounds=rounds, iterations=1,
                              warmup_rounds=1)
    return node.cpu.instret / benchmark.stats["mean"]


def test_trap_mix_guarded(benchmark):
    rate = _rate(benchmark, _run("trap_mix", elide=False))
    print(f"\ntrap_mix, guarded: {rate / 1e6:.2f} M instr/s")
    _record("trap_mix_guarded", rate)


def test_trap_mix_elided(benchmark):
    rate = _rate(benchmark, _run("trap_mix", elide=True))
    print(f"\ntrap_mix, elided: {rate / 1e6:.2f} M instr/s")
    _record("trap_mix_elided", rate)
    _identical("trap_mix")


def test_heap_stream_guarded(benchmark):
    rate = _rate(benchmark, _run("heap_stream", elide=False))
    print(f"\nheap_stream, guarded: {rate / 1e6:.2f} M instr/s")
    _record("heap_stream_guarded", rate)


def test_heap_stream_elided(benchmark):
    rate = _rate(benchmark, _run("heap_stream", elide=True))
    print(f"\nheap_stream, elided: {rate / 1e6:.2f} M instr/s")
    _record("heap_stream_elided", rate)
    _identical("heap_stream")


def _quick() -> None:
    """CI smoke: one timed pass per configuration, no pytest plugin,
    no BENCH_dataflow.json update — prove both modes run, retire
    identical state, and the validated elisions actually engage."""
    import time
    for workload in WORKLOADS:
        rates = {}
        for elide in (True, False):
            run = _run(workload, elide)
            run()  # warm: link, dataflow fixpoint, cert verification
            started = time.perf_counter()
            node = run()
            elapsed = time.perf_counter() - started
            rates[elide] = node.cpu.instret / elapsed
            mode = "elided" if elide else "guarded"
            print(f"{workload}, {mode}: "
                  f"{rates[elide] / 1e6:.2f} M instr/s")
        _identical(workload)
    print("quick smoke OK")


if __name__ == "__main__":
    import sys
    if "--quick" in sys.argv:
        _quick()
    else:
        raise SystemExit(
            "run under pytest, or pass --quick for the CI smoke")
