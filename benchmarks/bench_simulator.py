"""Simulator throughput: the substrate must sustain laptop-scale sweeps."""

from repro.avr import AvrCpu, Flash, assemble
from repro.kernel import SensorNode

SPIN = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 8
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def test_native_interpreter_speed(benchmark):
    program = assemble(SPIN)

    def run():
        flash = Flash()
        flash.load(0, program.words)
        cpu = AvrCpu(flash)
        cpu.run()
        return cpu.instret

    instructions = benchmark(run)
    rate = instructions / benchmark.stats["mean"]
    print(f"\nnative interpreter: {rate / 1e6:.2f} M simulated instr/s")
    # Floor sits above what per-instruction dispatch can reach (~1.5M
    # instr/s), so a superblock-fusion regression fails loudly.
    assert rate > 2_000_000


def test_kernelized_interpreter_speed(benchmark):
    def run():
        node = SensorNode.from_sources([("spin", SPIN)])
        node.run(max_instructions=10_000_000)
        assert node.finished
        return node.cpu.instret

    instructions = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = instructions / benchmark.stats["mean"]
    print(f"\nunder SenSmart: {rate / 1e6:.2f} M simulated instr/s")
    # Floor sits above what generic trap dispatch can reach (~0.9M
    # instr/s here), so a trap-specialization regression fails loudly;
    # the specialized self-looping branch traps measure ~3M.
    assert rate > 1_500_000  # was 400k pre-specialization, 50k pre-fusion
