"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation of a design choice DESIGN.md calls out).  The regenerated rows
are printed so ``pytest benchmarks/ --benchmark-only`` leaves a full
record, and shape assertions keep the reproduction honest.
"""

from __future__ import annotations


def run_once(benchmark, function):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
