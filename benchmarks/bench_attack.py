"""Adversarial campaign throughput: trials/second per execution tier.

The injection campaign is the repo's most network- and fault-heavy
workload: each trial boots two nodes, delivers a malicious frame, and
classifies the containment outcome.  This bench measures how fast the
quick campaign (13 anchor trials) runs under the stepwise interpreter
and the full JIT stack, and how much the hot-patch session costs
end-to-end.

Correctness rides along: every timed campaign must reproduce the same
campaign digest (tier invariance is the tentpole property — one seed,
one survivability table, any tier), and the patch session must land
the patched worker bit-identical to a cold boot.  Measured rates go to
``BENCH_attack.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.adversary import run_inject, run_patch

RESULTS_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_attack.json"

TIERS = {
    "stepwise": dict(fuse=False),
    "fused": dict(fuse=True),
    "traced": dict(trace=True),
}


def _record(key: str, value: float) -> None:
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = round(value, 3)
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def _campaign(tier):
    def run():
        return run_inject(quick=True, **TIERS[tier])
    return run


def test_inject_stepwise(benchmark):
    result = benchmark.pedantic(_campaign("stepwise"), rounds=3,
                                iterations=1, warmup_rounds=1)
    rate = len(result.trials) / benchmark.stats["mean"]
    print(f"\ninject, stepwise: {rate:.2f} trials/s")
    _record("inject_stepwise_trials_per_s", rate)


def test_inject_fused(benchmark):
    result = benchmark.pedantic(_campaign("fused"), rounds=3,
                                iterations=1, warmup_rounds=1)
    rate = len(result.trials) / benchmark.stats["mean"]
    print(f"\ninject, fused: {rate:.2f} trials/s")
    _record("inject_fused_trials_per_s", rate)


def test_inject_traced(benchmark):
    result = benchmark.pedantic(_campaign("traced"), rounds=3,
                                iterations=1, warmup_rounds=1)
    rate = len(result.trials) / benchmark.stats["mean"]
    print(f"\ninject, traced: {rate:.2f} trials/s")
    _record("inject_traced_trials_per_s", rate)
    digests = {tier: _campaign(tier)().digest for tier in TIERS}
    assert len(set(digests.values())) == 1, digests


def test_patch_session(benchmark):
    report = benchmark.pedantic(lambda: run_patch(quick=True),
                                rounds=3, iterations=1,
                                warmup_rounds=1)
    assert report.ok, report.failure
    assert report.worker_digest == report.cold_digest
    _record("patch_quick_s", benchmark.stats["mean"])
    print(f"\npatch session: {benchmark.stats['mean']:.2f} s")


def _quick() -> None:
    """CI smoke: one timed pass per tier, no pytest plugin, no
    BENCH_attack.json update — prove the campaign digest is tier
    invariant and the patch session lands identical to a cold boot."""
    import time
    digests = set()
    for tier, overrides in TIERS.items():
        started = time.perf_counter()
        result = run_inject(quick=True, **overrides)
        elapsed = time.perf_counter() - started
        digests.add(result.digest)
        print(f"inject, {tier}: "
              f"{len(result.trials) / elapsed:.2f} trials/s")
    assert len(digests) == 1, digests
    started = time.perf_counter()
    report = run_patch(quick=True)
    assert report.ok, report.failure
    assert report.worker_digest == report.cold_digest
    print(f"patch session: {time.perf_counter() - started:.2f} s")
    print("quick smoke OK")


if __name__ == "__main__":
    import sys
    if "--quick" in sys.argv:
        _quick()
    else:
        raise SystemExit(
            "run under pytest, or pass --quick for the CI smoke")
