"""Ablation: the 1-in-256 backward-branch trap period (Section IV-B).

A shorter period tightens preemption latency but spends more cycles in
the kernel; 256 balances the two (the value both SenSmart and the
t-kernel use).
"""

from conftest import run_once

from repro.kernel import KernelConfig, SensorNode

SPINNER = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 4
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def _measure(period: int):
    config = KernelConfig(branch_trap_period=period,
                          time_slice_cycles=20_000)
    node = SensorNode.from_sources(
        [("s1", SPINNER), ("s2", SPINNER)], config=config)
    node.run(max_instructions=30_000_000)
    assert node.finished
    kernel = node.kernel
    return {
        "period": period,
        "cycles": node.cpu.cycles,
        "checks": kernel.stats.scheduler_checks,
        "switches": kernel.stats.context_switches,
    }


def test_trap_period_ablation(benchmark):
    baseline = run_once(benchmark, lambda: _measure(256))
    results = [_measure(16), _measure(64), baseline, _measure(1024)]
    print()
    for r in results:
        print(f"  period {r['period']:5d}: {r['cycles']:9d} cycles, "
              f"{r['checks']:6d} kernel checks, "
              f"{r['switches']} switches")
    # More frequent traps -> more kernel entries -> more total cycles.
    assert results[0]["checks"] > results[2]["checks"]
    assert results[0]["cycles"] > results[2]["cycles"]
    # Longer periods save little beyond 256 (diminishing returns).
    saving_vs_1024 = (results[2]["cycles"] - results[3]["cycles"]) \
        / results[2]["cycles"]
    assert saving_vs_1024 < 0.05
    # Preemption still works at every period.
    assert all(r["switches"] >= 2 for r in results)
