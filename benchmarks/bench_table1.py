"""Table I: feature matrix, with the SenSmart column live-verified."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark):
    result = run_once(benchmark, table1.run)
    print()
    print(result.render())
    assert result.verified
    # Every paper row is present.
    assert len(result.rows) == 8
