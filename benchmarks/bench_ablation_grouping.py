"""Ablation: grouped memory-access translation (Section IV-C2).

"This optimization effectively improves the performance" — measured by
running a pointer-walk-heavy program with the optimization on and off.
"""

from conftest import run_once

from repro.kernel import SensorNode
from repro.rewriter import Rewriter

# Word-structured heap processing: LDD-pairs through Z, the exact
# pattern the optimization targets.
WORKLOAD = """
.bss records, 64
main:
    ; initialize 16 records of 4 bytes
    ldi r26, lo8(records)
    ldi r27, hi8(records)
    ldi r16, 64
    ldi r17, 0x11
init:
    st X+, r17
    dec r16
    brne init
    ; fold all records, field-wise, 24 passes
    ldi r20, 24
pass_loop:
    ldi r30, lo8(records)
    ldi r31, hi8(records)
    ldi r18, 16
rec_loop:
    ldd r22, Z+0
    ldd r23, Z+1
    ldd r24, Z+2
    ldd r25, Z+3
    add r22, r24
    adc r23, r25
    std Z+0, r22
    std Z+1, r23
    adiw r30, 4
    dec r18
    brne rec_loop
    dec r20
    brne pass_loop
    break
"""


def _cycles(enable_grouping: bool) -> int:
    node = SensorNode.from_sources(
        [("walk", WORKLOAD)],
        rewriter=Rewriter(enable_grouping=enable_grouping))
    node.run(max_instructions=50_000_000)
    assert node.finished
    return node.cpu.cycles


def test_grouping_ablation(benchmark):
    grouped = run_once(benchmark, lambda: _cycles(True))
    ungrouped = _cycles(False)
    saving = 1 - grouped / ungrouped
    print(f"\ngrouped: {grouped} cycles, ungrouped: {ungrouped} cycles, "
          f"saving {saving:.1%}")
    assert grouped < ungrouped
    assert saving > 0.15  # the optimization must be material
