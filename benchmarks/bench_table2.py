"""Table II: per-operation overheads measured in cycles."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark):
    result = run_once(benchmark, lambda: table2.run(reps=16))
    print()
    print(result.render())
    # Measured values must match the paper where Table II is legible.
    for operation, paper in [
        ("Mem direct, I/O area", 2),
        ("Mem direct, others", 28),
        ("Mem indirect, I/O area", 54),
        ("Program memory (indirect branch)", 376),
        ("Get stack pointer", 45),
        ("Set stack pointer", 94),
        ("Context saving", 932),
        ("Context restoring", 976),
        ("Full switching", 2298),
    ]:
        measured = result.measured(operation)
        assert abs(measured - paper) <= max(2, 0.05 * paper), operation
    # Relocation lands inside the paper's 300-1000 us statement.
    relocation = result.measured("Stack relocation")
    assert 2_000 <= relocation <= 8_000
    # The grouped-access optimization is visibly cheaper.
    assert result.measured("Mem indirect, grouped follower") < \
        result.measured("Mem indirect, stack frame")
