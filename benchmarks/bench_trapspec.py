"""Trap-specialization ablation: specialized vs generic trap dispatch.

Two trap-heavy workloads run kernelized+fused with the specializing
trap compiler on and off:

* ``TRAP_LOOP`` — the SPIN workload ``BENCH_interpreter.json``'s
  kernelized baseline was recorded on.  Every second retired
  instruction is a rewritten backward branch, so the run is one long
  stream of BRANCH_BACKWARD traps; the specializer compiles the loop
  into a single self-iterating closure.
* ``TRAP_MIX`` — a loop whose body is almost entirely rewritten memory
  accesses: heap stores/loads through X, displacement stores through Y,
  pushes/pops and a call/return pair, closed by a backward branch.
  Exercises every specialized PatchKind per iteration.

Both modes must retire identical instruction counts and trap tallies —
specialization is a pure execution-speed knob.  Measured rates land in
``BENCH_trapspec.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.kernel import SensorNode

RESULTS_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_trapspec.json"

# Same source as benchmarks/bench_superblock.py SPIN: the recorded
# kernelized_fused baseline (1,361,466 instr/s at the time this bench
# was added) measures exactly this program with specialization off.
TRAP_LOOP = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 8
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""

TRAP_MIX = """
    .bss buf, 96

main:
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ldi r28, lo8(buf)
    ldi r29, hi8(buf)
    ldi r20, 0x11
    ldi r21, 0x22
    ldi r25, 250
outer:
    ldi r22, 250
inner:
    st X, r20
    ld r23, X
    push r20
    push r21
    std Y+2, r23
    ldd r23, Y+2
    pop r21
    pop r20
    rcall helper
    dec r22
    brne inner
    dec r25
    brne outer
    break

helper:
    ret
"""

WORKLOADS = {"trap_loop": TRAP_LOOP, "trap_mix": TRAP_MIX}


def _record(key: str, rate: float) -> None:
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = round(rate)
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def _run(workload: str, specialize: bool):
    def run():
        node = SensorNode.from_sources(
            [(workload, WORKLOADS[workload])], fuse=True,
            specialize=specialize, block_cache=False)
        node.run(max_instructions=10_000_000)
        assert node.finished
        if specialize:
            assert node.kernel.specializer.stats.compiled > 0
        return node

    return run


def _identical(workload: str) -> None:
    def digest(node):
        kernel = node.kernel
        return (node.cpu.instret, node.cpu.cycles, node.cpu.sp,
                bytes(node.cpu.mem.data),
                dict(kernel.stats.trap_counts),
                kernel.stats.kernel_cycles,
                kernel.stats.scheduler_checks)

    assert digest(_run(workload, True)()) == \
        digest(_run(workload, False)())


def _rate(benchmark, run, rounds: int = 3) -> float:
    node = benchmark.pedantic(run, rounds=rounds, iterations=1)
    return node.cpu.instret / benchmark.stats["mean"]


def test_trap_loop_generic(benchmark):
    rate = _rate(benchmark, _run("trap_loop", specialize=False))
    print(f"\ntrap_loop, generic: {rate / 1e6:.2f} M instr/s")
    _record("trap_loop_generic", rate)


def test_trap_loop_specialized(benchmark):
    rate = _rate(benchmark, _run("trap_loop", specialize=True))
    print(f"\ntrap_loop, specialized: {rate / 1e6:.2f} M instr/s")
    _record("trap_loop_specialized", rate)
    _identical("trap_loop")


def test_trap_mix_generic(benchmark):
    rate = _rate(benchmark, _run("trap_mix", specialize=False))
    print(f"\ntrap_mix, generic: {rate / 1e6:.2f} M instr/s")
    _record("trap_mix_generic", rate)


def test_trap_mix_specialized(benchmark):
    rate = _rate(benchmark, _run("trap_mix", specialize=True))
    print(f"\ntrap_mix, specialized: {rate / 1e6:.2f} M instr/s")
    _record("trap_mix_specialized", rate)
    _identical("trap_mix")


def _quick() -> None:
    """CI smoke: one timed pass per configuration, no pytest plugin,
    no BENCH_trapspec.json update — prove both modes run, retire
    identical state, and the specializer actually engages."""
    import time
    for workload in WORKLOADS:
        rates = {}
        for specialize in (True, False):
            run = _run(workload, specialize)
            started = time.perf_counter()
            node = run()
            elapsed = time.perf_counter() - started
            rates[specialize] = node.cpu.instret / elapsed
            mode = "specialized" if specialize else "generic"
            print(f"{workload}, {mode}: "
                  f"{rates[specialize] / 1e6:.2f} M instr/s")
        _identical(workload)
    print("quick smoke OK")


if __name__ == "__main__":
    import sys
    if "--quick" in sys.argv:
        _quick()
    else:
        raise SystemExit(
            "run under pytest, or pass --quick for the CI smoke")
