"""Extra experiment: trampoline merging on compiled code."""

from conftest import run_once

from repro.experiments import extra_compiled


def test_compiled(benchmark):
    result = run_once(benchmark, extra_compiled.run)
    print()
    print(result.render())
    # Compiled programs merge heavily; tiny hand-written ones cannot.
    assert result.by_name("crc (compiled)").merge_rate > 0.4
    assert result.by_name("treesearch (compiled)").merge_rate > 0.5
    # Cross-program merging across the suite is even stronger.
    suite_rate = 1 - result.suite_slots / result.suite_requests
    assert suite_rate > 0.6
    # Inflation of compiled code stays in the paper's ballpark.
    for row in result.rows_data:
        assert row.ratio < 3.0, row.name
