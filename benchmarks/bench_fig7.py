"""Figure 7: binary-tree search — stack versatility."""

from conftest import run_once

from repro.experiments import fig7

TREE_SIZES = [10, 20, 40, 60]


def test_fig7(benchmark):
    result = run_once(
        benchmark, lambda: fig7.run(tree_sizes=TREE_SIZES))
    print()
    print(result.render())
    points = result.points
    # Larger trees -> fewer schedulable search tasks (both heap and
    # recursion depth grow with tree size).
    counts = [p.max_search_tasks for p in points]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] >= 2 * counts[-1]
    # Tasks run with average allocations near or below their ~180-200 B
    # peak need — the versatility claim.
    assert any(p.avg_stack_allocation < 200 for p in points)
    # Relocations occur somewhere in the sweep (stacks adapt), and stay
    # modest — the paper reports under 50 for its configurations; our
    # extra 10-node point packs in more tasks than any paper config, so
    # the bound applies from 20 nodes up.
    assert any(p.relocations > 0 for p in points)
    assert all(p.relocations < 50 for p in points if p.tree_nodes >= 20)
