"""Figure 6: PeriodicTask — time, utilization, and the Maté comparison."""

from conftest import run_once

from repro.experiments import fig6

SIZES = [10_000, 30_000, 60_000, 90_000, 120_000]


def test_fig6(benchmark):
    result = run_once(
        benchmark, lambda: fig6.run(sizes=SIZES, activations=10))
    print()
    print(result.render())
    points = result.points
    small, knee, largest = points[0], points[2], points[-1]

    # (a) Below the knee SenSmart tracks native closely...
    assert small.sensmart_cycles < 1.1 * small.native_cycles
    # ...and beats the t-kernel, whose warm-up dominates (paper: "for
    # tasks with less than 60,000 instructions, SenSmart performs
    # better than t-kernel").
    assert small.sensmart_cycles < small.tkernel_cycles
    assert knee.sensmart_cycles < knee.tkernel_cycles
    # Beyond the knee SenSmart's time rises steeply.
    assert largest.sensmart_cycles > 1.5 * largest.native_cycles

    # (b) Utilization grows with computation size and saturates at the
    # knee for SenSmart ("when it reaches 60,000 instructions, the CPU
    # utilization in SenSmart is nearly saturated").
    assert knee.sensmart_utilization > 0.85
    assert small.sensmart_utilization < 0.5
    assert small.native_utilization < small.sensmart_utilization

    # (c) Maté's interpretation is at least an order of magnitude
    # slower than SenSmart on computation-heavy settings.
    assert largest.mate_cycles > 5 * largest.sensmart_cycles
    assert knee.mate_cycles > 3 * knee.sensmart_cycles
