"""Ablation: stack relocation on/off (Section IV-C3).

With relocation disabled, SenSmart degrades to fixed initial stacks:
the recursion-heavy task must die instead of borrowing a neighbour's
surplus.
"""

from conftest import run_once

from repro.kernel import KernelConfig, SensorNode
from repro.workloads.bintree import search_task_source

SPINNER = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 6
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def _run(enable_relocation: bool):
    sources = [("spin0", SPINNER),
               ("search", search_task_source(nodes=140, searches=10))]
    for index in range(1, 12):
        sources.append((f"spin{index}", SPINNER))
    config = KernelConfig(time_slice_cycles=20_000,
                          enable_relocation=enable_relocation)
    node = SensorNode.from_sources(sources, config=config)
    node.run(max_instructions=60_000_000)
    assert node.finished
    return node


def test_relocation_ablation(benchmark):
    with_relocation = run_once(benchmark, lambda: _run(True))
    without = _run(False)
    search_with = with_relocation.task_named("search")
    search_without = without.task_named("search")
    print(f"\nwith relocation: {search_with.exit_reason!r} "
          f"({with_relocation.stats.relocations} relocations); "
          f"without: {search_without.exit_reason!r}")
    assert search_with.exit_reason == "exit"
    assert with_relocation.stats.relocations >= 1
    assert search_without.exit_reason == "stack overflow"
