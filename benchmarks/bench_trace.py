"""Trace-JIT ablation: chained traces vs per-block specialization.

The same two trap-heavy workloads as ``bench_trapspec.py`` run with the
trace compiler on and off (everything else identical: fused,
specialized):

* ``TRAP_LOOP`` — the SPIN shape the recorded kernelized baselines
  measure.  Traced, the whole nested loop runs inside two closures: the
  inner spin strip-mines (one bound computation per dispatch, zero
  per-iteration checks) and the outer loop chains ``dec`` + branch trap
  back to the strip.
* ``TRAP_MIX`` — every specialized PatchKind per iteration; traced, the
  loop body's eight trap sites chain under a single hoisted guard.

Both modes must retire bit-identical state — tracing is a pure
execution-speed knob.  Measured rates land in ``BENCH_trace.json``.

Extra modes for CI and tuning (no pytest plugin needed):

* ``--quick`` — one timed pass per configuration plus the identity
  check.
* ``--sweep`` — rate vs the ``max_block_members`` fusion cap
  (satellite knob: ``KernelConfig.max_block_members``).
* ``--phase cold|warm`` — persistent-store round trip: ``cold``
  populates ``SENSMART_TRACE_STORE`` and prints a digest; ``warm`` (a
  fresh process) must compile zero traces, serve everything from the
  store, and print the same digest.
"""

import json
from pathlib import Path

from bench_trapspec import TRAP_LOOP, TRAP_MIX

from repro.kernel import SensorNode

RESULTS_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_trace.json"

WORKLOADS = {"trap_loop": TRAP_LOOP, "trap_mix": TRAP_MIX}


def _record(key: str, rate: float) -> None:
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[key] = round(rate)
    RESULTS_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def _run(workload: str, trace: bool, max_block_members=None):
    def run():
        node = SensorNode.from_sources(
            [(workload, WORKLOADS[workload])], trace=trace,
            max_block_members=max_block_members, block_cache=False)
        node.run(max_instructions=10_000_000)
        assert node.finished
        if trace:
            stats = node.kernel.tracer.stats
            assert stats.compiled > 0 or stats.store_hits > 0
        return node

    return run


def _digest(node):
    kernel = node.kernel
    return (node.cpu.instret, node.cpu.cycles, node.cpu.sp,
            bytes(node.cpu.mem.data), dict(kernel.stats.trap_counts),
            kernel.stats.kernel_cycles, kernel.stats.scheduler_checks)


def _identical(workload: str) -> None:
    assert _digest(_run(workload, True)()) == \
        _digest(_run(workload, False)())


def _rate(benchmark, run, rounds: int = 3) -> float:
    node = benchmark.pedantic(run, rounds=rounds, iterations=1)
    return node.cpu.instret / benchmark.stats["mean"]


def test_trap_loop_specialized(benchmark):
    rate = _rate(benchmark, _run("trap_loop", trace=False))
    print(f"\ntrap_loop, specialized: {rate / 1e6:.2f} M instr/s")
    _record("trap_loop_specialized", rate)


def test_trap_loop_traced(benchmark):
    rate = _rate(benchmark, _run("trap_loop", trace=True))
    print(f"\ntrap_loop, traced: {rate / 1e6:.2f} M instr/s")
    _record("trap_loop_traced", rate)
    _identical("trap_loop")


def test_trap_mix_specialized(benchmark):
    rate = _rate(benchmark, _run("trap_mix", trace=False))
    print(f"\ntrap_mix, specialized: {rate / 1e6:.2f} M instr/s")
    _record("trap_mix_specialized", rate)


def test_trap_mix_traced(benchmark):
    rate = _rate(benchmark, _run("trap_mix", trace=True))
    print(f"\ntrap_mix, traced: {rate / 1e6:.2f} M instr/s")
    _record("trap_mix_traced", rate)
    _identical("trap_mix")


def _quick() -> None:
    """CI smoke: one timed pass per configuration — prove both modes
    run, retire identical state, and the tracer actually engages."""
    import time
    for workload in WORKLOADS:
        for trace in (True, False):
            run = _run(workload, trace)
            started = time.perf_counter()
            node = run()
            elapsed = time.perf_counter() - started
            mode = "traced" if trace else "specialized"
            print(f"{workload}, {mode}: "
                  f"{node.cpu.instret / elapsed / 1e6:.2f} M instr/s")
        _identical(workload)
    print("quick smoke OK")


def _sweep() -> None:
    """Rate vs the superblock/trace fusion length cap."""
    import time
    for cap in (4, 8, 16, 32, 48, 64):
        run = _run("trap_mix", trace=True, max_block_members=cap)
        started = time.perf_counter()
        node = run()
        elapsed = time.perf_counter() - started
        print(f"max_block_members={cap:>3}: "
              f"{node.cpu.instret / elapsed / 1e6:.2f} M instr/s")


def _phase(which: str) -> None:
    """Persistent-store round trip, one phase per process.

    ``cold`` compiles and populates the store; ``warm`` must run
    entirely from it (zero fresh compiles) and reproduce the same
    digest.  Drive it as:

        export SENSMART_TRACE_STORE=/tmp/sensmart-traces
        python benchmarks/bench_trace.py --phase cold  > cold.out
        python benchmarks/bench_trace.py --phase warm  > warm.out
        cmp cold.out warm.out
    """
    import os
    import sys

    from repro.fingerprint import blake2b_hex
    assert os.environ.get("SENSMART_TRACE_STORE"), \
        "set SENSMART_TRACE_STORE to the store directory first"
    for workload in WORKLOADS:
        node = _run(workload, trace=True)()
        stats = node.kernel.tracer.stats
        if which == "warm":
            assert stats.compiled == 0, \
                f"warm run compiled {stats.compiled} traces " \
                f"({workload}): store did not serve them"
            assert stats.store_hits > 0
        digest = blake2b_hex(repr(_digest(node)).encode(),
                             digest_size=8)
        print(f"{workload}: digest {digest}")
    # stdout carries only the digests, so ``cmp cold.out warm.out``
    # proves byte-identical results across the two processes.
    print(f"{which} phase OK", file=sys.stderr)


if __name__ == "__main__":
    import sys
    if "--quick" in sys.argv:
        _quick()
    elif "--sweep" in sys.argv:
        _sweep()
    elif "--phase" in sys.argv:
        _phase(sys.argv[sys.argv.index("--phase") + 1])
    else:
        raise SystemExit(
            "run under pytest, or pass --quick / --sweep / "
            "--phase cold|warm")
