"""Figure 4: code inflation of the seven kernel benchmarks."""

from conftest import run_once

from repro.experiments import fig4


def test_fig4(benchmark):
    result = run_once(benchmark, fig4.run)
    print()
    print(result.render())
    assert len(result.breakdowns) == 7
    for breakdown in result.breakdowns:
        # Paper: SenSmart inflation within ~200%; small hand-written
        # programs amplify the fixed trampoline share slightly.
        assert breakdown.sensmart_ratio < 3.0, breakdown.name
        # Paper: the t-kernel makes the code "much larger" than
        # SenSmart for every benchmark.
        assert breakdown.tkernel_bytes > breakdown.sensmart_total, \
            breakdown.name
        # Decomposition is complete and positive.
        assert breakdown.sensmart_rewritten >= breakdown.native_bytes
        assert breakdown.sensmart_shift > 0
        assert breakdown.sensmart_trampoline > 0
