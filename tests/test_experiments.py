"""Experiment harnesses: structure and key claims at smoke-test scale."""

from __future__ import annotations

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, table1, table2
from repro.experiments.runner import run_all, run_suite


def test_table1_structure_and_verification():
    result = table1.run()
    assert result.verified
    assert len(result.rows) == 8
    assert "Feature" not in result.rows[0]  # headers live in render()
    rendered = result.render()
    assert "SenSmart" in rendered
    assert "Stack Relocation" in rendered


def test_table2_measures_calibrated_costs():
    result = table2.run(reps=8)
    assert result.measured("Mem direct, I/O area") == pytest.approx(2, abs=1)
    assert result.measured("Mem direct, others") == pytest.approx(28, abs=2)
    assert result.measured("Get stack pointer") == pytest.approx(45, abs=2)
    assert result.measured("Set stack pointer") == pytest.approx(94, abs=2)
    assert result.measured("Full switching") == pytest.approx(2298, abs=10)
    assert "Table II" in result.render()


def test_fig4_covers_all_benchmarks():
    result = fig4.run()
    names = sorted(b.name for b in result.breakdowns)
    assert names == ["am", "amplitude", "crc", "eventchain", "lfsr",
                     "readadc", "timer"]
    for breakdown in result.breakdowns:
        assert breakdown.tkernel_bytes > breakdown.sensmart_total
        assert 1.0 < breakdown.sensmart_ratio < 3.5


def test_fig5_orderings_hold_at_small_scale():
    result = fig5.run(parameters={
        "am": {"packets": 2}, "amplitude": {"samples": 8},
        "crc": {"rounds": 2}, "eventchain": {"rounds": 4},
        "lfsr": {"steps": 512}, "readadc": {"samples": 8},
        "timer": {"ticks": 32}})
    for row in result.measurements:
        assert row.native_cycles <= row.sensmart_full_cycles
        assert row.native_cycles <= row.tkernel_cycles


def test_fig6_knee_behaviour_smoke():
    result = fig6.run(sizes=[10_000, 60_000], activations=3)
    small, knee = result.points
    assert small.sensmart_cycles < small.tkernel_cycles
    assert knee.sensmart_utilization > small.sensmart_utilization
    assert small.mate_cycles > small.sensmart_cycles


def test_fig7_small_sweep():
    result = fig7.run(tree_sizes=[15, 50], max_tasks=16)
    first, second = result.points
    assert first.max_search_tasks > second.max_search_tasks >= 1
    assert first.avg_stack_allocation > 0


def test_fig8_small_sweep():
    result = fig8.run(tree_sizes=[15, 50], max_tasks=16)
    for point in result.points:
        assert point.sensmart_tasks >= point.liteos_tasks >= 1
    assert any(p.sensmart_tasks > p.liteos_tasks for p in result.points)


def test_runner_quick_subset():
    suite = run_all(quick=True, only=["table1", "fig4"])
    assert set(suite.results) == {"table1", "fig4"}
    rendered = suite.render()
    assert "===== table1 =====" in rendered
    assert "===== fig4 =====" in rendered


def test_runner_parallel_output_is_byte_identical():
    names = ["table1", "table2", "fig4"]
    serial = run_suite(quick=True, only=names, jobs=1).render()
    parallel = run_suite(quick=True, only=names, jobs=2).render()
    assert parallel == serial


def test_static_bounds_dominate_observed_peaks():
    from repro.experiments import extra_static
    result = extra_static.run(quick=True)
    assert result.all_bounds_hold
    assert result.all_lint_ok
    # Recursive tasks are exactly the statically unprovisionable ones.
    assert set(result.unbounded_tasks) == {"table2/needy",
                                           "bintree/search"}
    # The never-taken deep path shows the static over-provisioning gap.
    errpath = result.row_for("errpath", "errpath")
    assert errpath.bound > errpath.observed
    assert result.savings_bytes > 0
    rendered = result.render()
    assert "bound holds" in rendered
    assert "100.0%" in rendered


def test_runner_includes_static_experiment():
    suite = run_all(quick=True, only=["static"])
    assert set(suite.results) == {"static"}
    assert suite.results["static"].all_bounds_hold
