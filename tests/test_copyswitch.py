"""External flash and the copy-on-switch baseline."""

from __future__ import annotations

import pytest

from repro.avr.devices.extflash import (ExternalFlash, PAGE_ENDURANCE,
                                        PAGE_READ_CYCLES,
                                        PAGE_WRITE_CYCLES)
from repro.baselines.copyswitch import (CONTEXT_CYCLES, CopyOnSwitchOS,
                                        switch_cost_cycles)
from repro.errors import SimulationError
from repro.kernel import costs


# -- external flash ---------------------------------------------------------------

def test_flash_roundtrip():
    flash = ExternalFlash()
    cost = flash.write_page(3, b"hello flash")
    assert cost == PAGE_WRITE_CYCLES
    data, read_cost = flash.read_page(3)
    assert data[:11] == b"hello flash"
    assert read_cost == PAGE_READ_CYCLES


def test_flash_blob_spans_pages():
    flash = ExternalFlash()
    payload = bytes(range(256)) * 3  # 768 bytes -> 3 pages
    cycles = flash.write_blob(10, payload)
    assert cycles == 3 * PAGE_WRITE_CYCLES
    data, _ = flash.read_blob(10, len(payload))
    assert data == payload


def test_flash_write_is_slow():
    # The paper's Section I argument: >10 ms at 7.37 MHz.
    assert PAGE_WRITE_CYCLES > 0.010 * 7_372_800


def test_flash_wears_out():
    flash = ExternalFlash()
    for _ in range(PAGE_ENDURANCE):
        flash.write_page(0, b"x")
    with pytest.raises(SimulationError):
        flash.write_page(0, b"x")
    assert flash.max_wear() == PAGE_ENDURANCE


def test_flash_rejects_bad_page():
    flash = ExternalFlash(pages=4)
    with pytest.raises(SimulationError):
        flash.write_page(4, b"x")


# -- copy-on-switch OS -----------------------------------------------------------

SPINNER = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 1
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""

WRITER = """
.bss mark, 1
main:
    ldi r16, {value}
    sts mark, r16
    push r16
    ldi r20, 200
spin:
    dec r20
    brne spin
    pop r17
    break
"""


def test_copyswitch_runs_tasks_to_completion():
    os_model = CopyOnSwitchOS(
        [("a", SPINNER), ("b", SPINNER)], slice_cycles=50_000)
    stats = os_model.run()
    assert all(t.done for t in os_model.threads)
    assert stats.switches >= 2
    assert stats.swap_cycles > 0


def test_copyswitch_preserves_stack_contents_across_swap():
    os_model = CopyOnSwitchOS(
        [("a", WRITER.format(value=0x11)),
         ("b", WRITER.format(value=0x22))],
        slice_cycles=300)  # force swaps mid-spin, with live stack data
    os_model.run()
    a, b = os_model.threads
    assert a.done and b.done
    # Each task popped back the byte it pushed (r17 == its value).
    assert a.regs[17] == 0x11
    assert b.regs[17] == 0x22


def test_copyswitch_cost_dwarfs_sensmart():
    per_switch = switch_cost_cycles(512)
    assert per_switch > 30 * costs.FULL_SWITCH
    assert per_switch > CONTEXT_CYCLES


def test_copyswitch_accounts_wear():
    os_model = CopyOnSwitchOS(
        [("a", SPINNER), ("b", SPINNER)], slice_cycles=5_000)
    os_model.run()
    assert os_model.flash_device.max_wear() >= 1


def test_copyswitch_experiment_renders():
    from repro.experiments import extra_copyswitch
    result = extra_copyswitch.run()
    text = result.render()
    assert "copy-on-switch" in text
    assert result.copyswitch_switch_cycles > \
        10 * result.sensmart_switch_cycles
    assert result.lifetime_hours_at_100hz < 1.0


def test_latency_experiment_bounds_hold():
    from repro.experiments import extra_latency
    result = extra_latency.run()
    for row in result.rows_data:
        assert row.samples > 10
        assert row.max_us <= row.bound_us * 1.2
    # CLI row behaves like its interrupt-enabled twin.
    normal = result.rows_data[1]
    with_cli = result.rows_data[3]
    assert abs(normal.mean_us - with_cli.mean_us) < 5.0
