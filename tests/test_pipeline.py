"""Content-addressed build pipeline: store, stages, cache correctness.

The economics the serve layer depends on are proven here:

* a second identical submission does **zero** build work — no assemble,
  no rewrite, no lint, no boot, no simulation (the process-wide work
  odometer, not cache counters, is the witness);
* a fresh process (modelled by a fresh pipeline over the same disk
  store) serves the verdict from disk, also work-free;
* a corrupted on-disk artifact is detected by checksum, counted,
  discarded, and recomputed into an identical verdict.
"""

from __future__ import annotations

import json

import pytest

from repro.pipeline import (ArtifactStore, BuildRequest, Pipeline,
                            VERDICT_SCHEMA, build_image)
from repro.pipeline.stages import COUNTERS

SPIN = """
start:
    ldi r24, 40
outer:
    ldi r25, 10
inner:
    dec r25
    brne inner
    dec r24
    brne outer
    break
"""

BLINK = """
start:
    ldi r24, 4
again:
    ldi r26, 0x01
    out 0x18, r26
    ldi r26, 0x00
    out 0x18, r26
    dec r24
    brne again
    break
"""

OPTIONS = {"max_instructions": 500_000}


def _request(sources=None, **options) -> BuildRequest:
    if sources is None:
        sources = [("spin", SPIN)]
    merged = dict(OPTIONS)
    merged.update(options)
    return BuildRequest.from_payload({
        "programs": [{"name": name, "source": source}
                     for name, source in sources],
        "options": merged,
    })


def _body(verdict: dict) -> dict:
    return {key: value for key, value in verdict.items()
            if key != "cached"}


# -- the artifact store ----------------------------------------------------------

def test_store_memory_lru_eviction():
    store = ArtifactStore(max_memory=2)
    store.put("a", 1)
    store.put("b", 2)
    store.put("c", 3)  # evicts "a"
    assert store.stats.evictions == 1
    assert store.get("a") is None
    assert store.get("b") == 2
    # "b" is now most-recent; inserting "d" evicts "c"
    store.put("d", 4)
    assert store.get("c") is None
    assert store.get("d") == 4
    assert store.stats.hits == 2
    assert store.stats.misses == 2


def test_store_contains_does_not_count():
    store = ArtifactStore()
    store.put("k", "v")
    assert store.contains("k")
    assert not store.contains("absent")
    assert store.stats.lookups == 0


def test_store_rejects_none_values():
    store = ArtifactStore()
    with pytest.raises(ValueError):
        store.put("k", None)


def test_store_disk_round_trip_and_promotion(tmp_path):
    writer = ArtifactStore(path=str(tmp_path))
    writer.put("k", {"x": 1}, artifact={"x": 1})
    reader = ArtifactStore(path=str(tmp_path))
    assert reader.get("k") == {"x": 1}
    assert reader.stats.disk_hits == 1
    # promoted into memory: the second get is a memory hit
    assert reader.get("k") == {"x": 1}
    assert reader.stats.hits == 1


def test_store_checksum_detects_tampering(tmp_path):
    store = ArtifactStore(path=str(tmp_path))
    store.put("k", {"x": 1}, artifact={"x": 1})
    (file,) = tmp_path.glob("*.json")
    wrapper = json.loads(file.read_text())
    wrapper["payload"]["x"] = 2  # bit-flip without updating checksum
    file.write_text(json.dumps(wrapper))
    fresh = ArtifactStore(path=str(tmp_path))
    assert fresh.get("k") is None
    assert fresh.stats.corrupt == 1
    assert not file.exists()  # corrupt files are removed


def test_store_garbage_file_counts_corrupt(tmp_path):
    store = ArtifactStore(path=str(tmp_path))
    store.put("k", 1, artifact={"v": 1})
    (file,) = tmp_path.glob("*.json")
    file.write_text("{ not json")
    fresh = ArtifactStore(path=str(tmp_path))
    assert fresh.get("k") is None
    assert fresh.stats.corrupt == 1


# -- requests and keys -----------------------------------------------------------

def test_request_payload_validation():
    with pytest.raises(ValueError):
        BuildRequest.from_payload({"programs": []})
    with pytest.raises(ValueError):
        BuildRequest.from_payload({"programs": [{"name": "x"}]})
    with pytest.raises(ValueError):
        BuildRequest.from_payload({
            "programs": [{"name": "x", "source": "break"}],
            "options": {"bogus": 1}})


def test_stage_keys_are_stable_and_discriminating():
    pipeline = Pipeline()
    r1 = _request()
    keys = pipeline.stage_keys(r1)
    assert list(keys) == ["assemble", "rewrite", "lint", "precompile",
                          "simulate", "verdict"]
    assert keys == pipeline.stage_keys(_request())
    # different sources, options, or kernel config change every key
    assert keys["verdict"] != \
        pipeline.stage_keys(_request([("blink", BLINK)]))["verdict"]
    assert keys["verdict"] != \
        pipeline.stage_keys(_request(max_instructions=1))["verdict"]
    from repro.kernel.config import KernelConfig
    other = Pipeline(config=KernelConfig(trace=False))
    assert keys["verdict"] != other.stage_keys(r1)["verdict"]


def test_trace_store_path_does_not_change_keys(tmp_path):
    """The trace store is a performance knob, not a semantic input."""
    from dataclasses import replace
    from repro.kernel.config import KernelConfig
    base = KernelConfig()
    with_store = replace(base, trace_store=str(tmp_path))
    assert Pipeline(config=base).stage_keys(_request()) == \
        Pipeline(config=with_store).stage_keys(_request())


# -- cache correctness -----------------------------------------------------------

def test_cold_submission_produces_a_verdict():
    pipeline = Pipeline()
    verdict = pipeline.submit(_request())
    assert verdict["schema"] == VERDICT_SCHEMA
    assert verdict["cached"] is False
    assert verdict["programs"] == ["spin"]
    assert verdict["simulation"]["finished"] is True
    assert verdict["lint"]["ok"] is True
    assert verdict["stack"]["spin"]["bounded"] is True
    assert verdict["rewrite"]["tasks"][0]["inflation_ratio"] >= 1.0
    assert pipeline.stage_runs == {name: 1 for name in (
        "assemble", "rewrite", "lint", "precompile", "simulate",
        "verdict")}


def test_warm_submission_does_zero_build_work():
    pipeline = Pipeline()
    cold = pipeline.submit(_request())
    before = COUNTERS.snapshot()
    warm = pipeline.submit(_request())
    assert warm["cached"] is True
    assert _body(warm) == _body(cold)
    assert COUNTERS.delta(before) == {}, \
        "a warm submission must not assemble/rewrite/simulate anything"
    # no stage ran a second time
    assert all(count == 1 for count in pipeline.stage_runs.values())


def test_disk_warm_fresh_pipeline_does_zero_build_work(tmp_path):
    cold = Pipeline(store=ArtifactStore(path=str(tmp_path)))
    verdict = cold.submit(_request())
    # a fresh pipeline over the same directory models a new process
    fresh = Pipeline(store=ArtifactStore(path=str(tmp_path)))
    before = COUNTERS.snapshot()
    warm = fresh.submit(_request())
    assert warm["cached"] is True
    assert _body(warm) == _body(verdict)
    assert COUNTERS.delta(before) == {}
    assert fresh.stage_runs == {}
    assert fresh.store.stats.disk_hits == 1


def test_corrupt_disk_artifact_recomputes_identically(tmp_path):
    cold = Pipeline(store=ArtifactStore(path=str(tmp_path)))
    verdict = cold.submit(_request())
    files = sorted(tmp_path.glob("*.json"))
    assert files, "persistent stages wrote no artifacts"
    for file in files:  # flip a byte in every artifact's payload
        wrapper = json.loads(file.read_text())
        wrapper["payload"] = {"tampered": True}
        file.write_text(json.dumps(wrapper))
    fresh = Pipeline(store=ArtifactStore(path=str(tmp_path)))
    recomputed = fresh.submit(_request())
    assert recomputed["cached"] is False
    assert fresh.store.stats.corrupt >= 1
    assert _body(recomputed) == _body(verdict)


def test_multitask_verdict_and_digest_matches_direct_run():
    """The verdict's trace digest is bit-identical to a direct
    SensorNode run of the same bundle — the pipeline adds no
    observable behaviour."""
    from repro.kernel import SensorNode
    from repro.pipeline.report import sim_digest
    sources = [("spin", SPIN), ("blink", BLINK)]
    verdict = Pipeline().submit(_request(sources))
    node = SensorNode.from_sources(sources)
    node.run(max_instructions=OPTIONS["max_instructions"])
    assert verdict["simulation"]["trace_digest"] == sim_digest(node)
    assert verdict["simulation"]["instructions"] == node.cpu.instret
    assert set(verdict["simulation"]["tasks"]) == {"spin", "blink"}


def test_adopt_seeds_the_verdict_key():
    source = Pipeline()
    verdict = source.submit(_request())
    target = Pipeline()
    target.adopt(_request(), verdict)
    before = COUNTERS.snapshot()
    warm = target.submit(_request())
    assert warm["cached"] is True
    assert COUNTERS.delta(before) == {}
    assert _body(warm) == _body(verdict)


# -- the process-default image cache ---------------------------------------------

def test_build_image_caches_by_content():
    sources = [("spin", SPIN)]
    first = build_image(sources)
    before = COUNTERS.snapshot()
    again = build_image(sources)
    assert again is first, "identical sources must reuse the image"
    assert COUNTERS.delta(before) == {}
    bypass = build_image(sources, cache=False)
    assert bypass is not first
    assert COUNTERS.delta(before) != {}


def test_reboot_relinks_nothing(tmp_path):
    """A chaos campaign's Nth reboot re-links zero programs."""
    from repro.kernel import SensorNode
    node = SensorNode.from_sources([("spin", SPIN)])
    before = COUNTERS.snapshot()
    node.crash()
    node.reboot()
    assert COUNTERS.delta(before) == {}
    node.run(max_instructions=OPTIONS["max_instructions"])
    assert node.finished
