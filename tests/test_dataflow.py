"""Forward dataflow engine, elision certificates, guard-free JIT tiers.

Three layers under test:

* the abstract domain (intervals, SP-relative words, abstract states)
  and the fixpoint engine's precision on indirect control;
* certificate emission and the *independent* checker — honest proofs
  verify, every tampering vector is rejected with a precise finding;
* the execution tiers with ``KernelConfig.elide`` on: bit-identical
  state against every guarded tier, including under a (null) fault
  plan, while the generated code demonstrably drops the bound guards.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.static import build_cfg, lint_image
from repro.analysis.static.dataflow import (DataflowAnalysis,
                                            image_certificates,
                                            program_certificates,
                                            validated_elisions,
                                            verify_certificate)
from repro.analysis.static.values import AbsState, Interval, Word
from repro.avr.encoding import decode
from repro.experiments.extra_static import _workload_sources
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import SensorNode
from repro.toolchain import compile_source, link_image

# The bench_dataflow TRAP_MIX shape, sized for tests: every access is
# provably in-region (X/Y are heap constants, pops never underflow).
TRAP_MIX = """
    .bss buf, 96

main:
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ldi r28, lo8(buf)
    ldi r29, hi8(buf)
    ldi r20, 0x11
    ldi r21, 0x22
    ldi r25, 4
outer:
    ldi r22, 8
inner:
    st X, r20
    ld r23, X
    push r20
    push r21
    std Y+2, r23
    ldd r23, Y+2
    pop r21
    pop r20
    rcall helper
    dec r22
    brne inner
    dec r25
    brne outer
    break

helper:
    ret
"""


def _digest(node):
    """Complete observable state: CPU, SRAM, kernel accounting."""
    kernel, cpu = node.kernel, node.cpu
    return (bytes(cpu.r), cpu.pc, cpu.sp, cpu.sreg, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data),
            dict(kernel.stats.trap_counts), kernel.stats.kernel_cycles,
            kernel.stats.context_switches, kernel.stats.scheduler_checks,
            tuple(kernel.stats.terminations),
            tuple((task.task_id, task.kernel_cycles, task.min_sp_seen,
                   task.max_stack_used, task.branch_counter,
                   task.exit_reason)
                  for task in kernel.tasks.values()))


def _analysis(source: str, name: str = "t") -> DataflowAnalysis:
    program = compile_source(source, name=name)
    return program, DataflowAnalysis(program.items, program.entry,
                                     dict(program.symbols.labels)).run()


# -- abstract domain ----------------------------------------------------------

def test_interval_join_and_contains():
    assert Interval(0, 4).join(Interval(2, 9)) == Interval(0, 9)
    assert Interval(0, 9).contains(Interval(2, 4))
    assert not Interval(2, 4).contains(Interval(0, 9))
    with pytest.raises(ValueError):
        Interval(3, 1)


def test_interval_widen_jumps_grown_bound_to_extreme():
    old = Interval(0, 4)
    assert old.widen(Interval(0, 6), 0, 0xFFFF) == Interval(0, 0xFFFF)
    assert old.widen(Interval(0, 3), 0, 0xFFFF) == old  # no growth


def test_interval_add_drops_on_wraparound():
    assert Interval(10, 20).add(5) == Interval(15, 25)
    assert Interval(0xFFF0, 0xFFFF).add(0x20) is None


def test_word_pair_roundtrip_through_bytes():
    state = AbsState.top(Interval(0, 0))
    state.set_word(30, Word("abs", Interval(0x120, 0x140)))
    word = state.get_word(30)
    assert word == Word("abs", Interval(0x120, 0x140))
    # Writing one half kills the pair fact; the word re-derives from
    # the byte facts (high byte is constant 0x01 across [0x120,0x140]).
    state.set_byte(30, Interval(7, 7))
    assert state.get_word(30) == Word("abs", Interval(0x107, 0x107))


def test_absstate_serialization_roundtrip():
    state = AbsState.top(Interval(2, 5))
    state.set_byte(24, Interval(3, 3))
    state.set_word(28, Word("sp", Interval(1, 4)))
    state.flags[1] = 1
    restored = AbsState.from_obj(state.to_obj())
    assert restored.leq(state) and state.leq(restored)


# -- engine precision on indirect control -------------------------------------

def test_lpm_chain_narrows_icall_to_loaded_entry():
    program, analysis = _analysis("""
main:
    ldi r30, lo8(handlers*2)
    ldi r31, hi8(handlers*2)
    lpm r24, Z+
    lpm r25, Z
    mov r30, r24
    mov r31, r25
    icall
    break

handlers:
    .dw h_one
    .dw h_two

h_one:
    ret
h_two:
    ret
""")
    h_one = program.symbols.labels["h_one"]
    assert list(analysis.indirect_targets.values()) == [(h_one,)]


def test_widened_table_index_keeps_pool():
    """A looping LPM dispatch widens the table index; the engine must
    not claim a narrowed target set it cannot prove."""
    program, analysis = _analysis("""
main:
    ldi r21, 2
loop:
    ldi r30, lo8(handlers*2)
    ldi r31, hi8(handlers*2)
    add r30, r21
    lpm r24, Z+
    lpm r25, Z
    mov r30, r24
    mov r31, r25
    icall
    dec r21
    brne loop
    break

handlers:
    .dw h_one
    .dw h_two

h_one:
    ret
h_two:
    ret
""")
    assert analysis.indirect_targets == {}


def test_mov_fed_ijmp_drops_data_only_labels():
    """Satellite: a block with no LPM cannot be dispatching through a
    ``.dw`` table, so table-only labels leave its fallback set."""
    program = compile_source("""
main:
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ld r30, X
    ld r31, X
    ijmp

table:
    .dw h_one
    .dw h_two

h_one:
    ret
h_two:
    ret

dispatch2:
    ldi r30, lo8(other)
    ldi r31, hi8(other)
    ijmp
other:
    break

    .bss buf, 4
""", name="t")
    cfg = build_cfg(program.items, program.entry,
                    dict(program.symbols.labels))
    labels = program.symbols.labels
    site = cfg.node_containing(labels["main"])
    # The candidate pool holds the two table entries plus the one
    # LDI-loaded constant; a site that never LPM-reads the table keeps
    # only the latter.
    assert labels["h_one"] not in site.successors
    assert labels["h_two"] not in site.successors
    assert labels["other"] in site.successors
    # The table-reading shape (an LPM in the block) keeps them: proven
    # by test_lpm_chain_narrows_icall_to_loaded_entry and the
    # eventchain workload's dispatch loop.


# -- certificates: emission and independent verification ----------------------

def test_trap_mix_emits_heap_and_pop_certificates():
    program = compile_source(TRAP_MIX, name="trap_mix")
    certs = program_certificates(program)
    claims = sorted(cert.claim for cert in certs.values())
    assert claims == ["heap"] * 4 + ["pop"] * 2
    for cert in certs.values():
        assert verify_certificate(program, cert) == []


def _tampered(cert, **changes):
    copy = dataclasses.replace(cert)
    copy.fact = dict(cert.fact)
    for field, value in changes.items():
        setattr(copy, field, value)
    return copy


def test_tampered_certificates_are_rejected_precisely():
    program = compile_source(TRAP_MIX, name="trap_mix")
    certs = program_certificates(program)
    heap = next(c for c in certs.values() if c.claim == "heap")
    pop = next(c for c in certs.values() if c.claim == "pop")

    # 1. widened site fact: the claim no longer follows from it.
    wide = _tampered(heap)
    wide.fact["access"] = ["abs", 0, 0x10FF]
    errors = verify_certificate(program, wide)
    assert any("does not follow from the site fact" in e
               for e in errors)

    # 2. corrupted invariants: entry coverage / inductiveness fail.
    broken = _tampered(heap, invariants={
        fn: dict(blocks) for fn, blocks in heap.invariants.items()})
    entry = str(program.entry)
    entry_obj = dict(broken.invariants[entry][entry])
    entry_obj["d"] = [3, 3]   # claim depth >= 3 at boot (it is 0)
    broken.invariants[entry] = dict(broken.invariants[entry])
    broken.invariants[entry][entry] = entry_obj
    errors = verify_certificate(program, broken)
    assert any("does not cover the boot state" in e for e in errors)

    # 3. retargeted site: not an instruction of the claimed kind.
    moved = _tampered(heap, site=program.entry)
    errors = verify_certificate(program, moved)
    assert any("is not a MEM_INDIRECT instruction" in e
               for e in errors)

    # 4. foreign geometry: rejected before anything else runs.
    alien = _tampered(heap, geometry=(0x100, 0x200, 0x1100))
    errors = verify_certificate(program, alien)
    assert any("does not match the image" in e for e in errors)

    # 5. swapped claim: a heap claim cannot attach to a POP site.
    swapped = _tampered(pop, claim="heap")
    errors = verify_certificate(program, swapped)
    assert any("cannot attach" in e for e in errors)


def test_lint_validates_certificates_and_flags_tampering():
    sources = [("trap_mix", TRAP_MIX)]
    image = link_image(sources)
    report = lint_image(image)
    assert report.ok
    assert report.certificates == 6
    assert report.certificates_verified == 6

    # Tamper the memoized certificate store the way a corrupted build
    # artifact would present: the independent checker must notice and
    # the report must abort the link.
    cert = next(iter(image_certificates(image)["trap_mix"].values()))
    cert.geometry = (0x100, 0x200, 0x1100)
    tampered = lint_image(image)
    assert not tampered.ok
    findings = tampered.findings_for("certificate")
    assert findings and "does not match the image" in findings[0].message
    # The kernel-facing table refuses the tampered site too.
    image._validated_elisions = None
    node = SensorNode.from_image(image)
    table = validated_elisions(image, node.kernel.config)
    assert cert.nat_site not in table
    assert len(table) == 5


# -- elision wiring: generated code and bit-identity --------------------------

def _run_node(sources, max_instructions=50_000_000, plan=None, **kw):
    node = SensorNode.from_sources(sources, block_cache=False, **kw)
    if plan is not None:
        injector = FaultInjector(plan)
        injector.attach("n0", node)
    node.run(max_instructions=max_instructions)
    return node


def test_elided_sources_drop_the_guards():
    node = _run_node([("trap_mix", TRAP_MIX)], elide=True,
                     max_instructions=100)  # task must stay alive
    kernel = node.kernel
    assert sorted(kernel.elisions.values()) == \
        ["heap"] * 4 + ["pop"] * 2
    natural = kernel.image.tasks[0].natural
    for site, claim in kernel.elisions.items():
        offset = site - natural.base
        jmp = decode(natural.words[offset], natural.words[offset + 1],
                     site)
        result = kernel.specializer.inline_source(
            node.cpu, site, jmp.operands[0], False,
            invalidate=f"k_ex[{site}] = None")
        assert result is not None
        lines, _, spec_key, _ = result
        assert ("elide", claim) in spec_key
        body = "\n".join(lines)
        if claim in ("heap", "stack"):
            assert "elif" not in body          # no range-check chain
            assert "<= ta <" not in body
        else:
            assert "if tsp <" not in body      # no underflow check
        facts = kernel.specializer.trace_facts(
            node.cpu, site, jmp.operands[0], False)
        assert facts is not None and facts.elide == claim


def test_default_config_keeps_guards():
    """elide off (the default) must emit the full guard chain and a
    spec key with no elide token — certified or not."""
    node = _run_node([("trap_mix", TRAP_MIX)], elide=False,
                     max_instructions=100)  # task must stay alive
    kernel = node.kernel
    assert kernel.elisions == {}
    certs = image_certificates(kernel.image)["trap_mix"]
    site = next(s for s, c in certs.items() if c.claim == "heap")
    natural = kernel.image.tasks[0].natural
    offset = site - natural.base
    jmp = decode(natural.words[offset], natural.words[offset + 1], site)
    lines, _, spec_key, _ = kernel.specializer.inline_source(
        node.cpu, site, jmp.operands[0], False,
        invalidate=f"k_ex[{site}] = None")
    body = "\n".join(lines)
    assert "elif" in body and "<= ta <" in body
    assert not any(isinstance(part, tuple) and part[0] == "elide"
                   for part in spec_key)


@pytest.mark.parametrize("workload", ["table1", "table2", "kernelbench"])
def test_elision_is_bit_identical_across_tiers(workload):
    sources = _workload_sources(workload, quick=True)
    baseline = _run_node(sources, elide=False)
    tiers = [
        {"elide": True},                                    # traced
        {"elide": True, "trace": False},                    # specialized
        {"elide": True, "specialize": False},               # fused
        {"elide": True, "fuse": False, "specialize": False,
         "trace": False},                                   # stepwise
    ]
    want = _digest(baseline)
    for overrides in tiers:
        assert _digest(_run_node(sources, **overrides)) == want, overrides


def test_elision_is_bit_identical_under_null_fault_plan():
    plan = FaultPlan(seed=0xBEEF, horizon_cycles=2_000_000)
    sources = _workload_sources("table2", quick=True)
    guarded = _run_node(sources, elide=False, plan=plan)
    elided = _run_node(sources, elide=True, plan=plan)
    assert _digest(elided) == _digest(guarded)
