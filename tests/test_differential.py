"""Differential fuzzing: SenSmart must be an invisible substrate.

Two generators drive this:

* random straight-line AVR programs (ALU + heap traffic) run both
  bare-metal and under the kernel; architectural state must match —
  the strongest form of the paper's "programs run on SenSmart without
  knowing" claim;
* random TinyC expressions are compiled and run, and the result is
  checked against Python's evaluation of the same expression.

Every generated program additionally runs in both execution modes —
superblock-fused and per-instruction — and the two must agree on all
architectural state, cycle for cycle.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.avr import AvrCpu, Flash, assemble
from repro.baselines.native import run_native
from repro.cc import compile_c_to_asm
from repro.kernel import SensorNode

# -- random assembly programs ---------------------------------------------------

_ALU_TEMPLATES = [
    "add r{a}, r{b}",
    "sub r{a}, r{b}",
    "adc r{a}, r{b}",
    "and r{a}, r{b}",
    "or r{a}, r{b}",
    "eor r{a}, r{b}",
    "mov r{a}, r{b}",
    "inc r{a}",
    "dec r{a}",
    "com r{a}",
    "neg r{a}",
    "swap r{a}",
    "lsr r{a}",
    "ror r{a}",
    "asr r{a}",
]

_regs = st.integers(16, 23)  # keep clear of pointers and immediates


@st.composite
def alu_program(draw):
    """A straight-line program: seed registers, ALU soup, heap spills."""
    lines = [".bss cells, 16", "main:"]
    for reg in range(16, 24):
        lines.append(f"    ldi r{reg}, {draw(st.integers(0, 255))}")
    count = draw(st.integers(5, 40))
    for index in range(count):
        template = draw(st.sampled_from(_ALU_TEMPLATES))
        line = template.format(a=draw(_regs), b=draw(_regs))
        lines.append("    " + line)
        if draw(st.booleans()):
            slot = draw(st.integers(0, 15))
            lines.append(f"    sts cells + {slot}, r{draw(_regs)}")
    # Read a few cells back so heap state feeds register state.
    for reg in (16, 17):
        slot = draw(st.integers(0, 15))
        lines.append(f"    lds r{reg}, cells + {slot}")
    lines.append("    break")
    return "\n".join(lines) + "\n"


@given(alu_program())
@settings(max_examples=60, deadline=None)
def test_sensmart_is_architecturally_invisible(source):
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    native = AvrCpu(flash)
    native.run(max_instructions=100_000)
    assert native.halted

    node = SensorNode.from_sources([("fuzz", source)])
    kernel = node.kernel
    region = kernel.regions.by_task(0)
    node.run(max_instructions=1_000_000)
    assert node.finished

    # Register file identical (r0..r25: pointer regs unused here).
    assert bytes(native.r[:26]) == bytes(kernel.cpu.r[:26])
    # SREG flags identical (I may differ: the kernel does not fake it).
    assert native.sreg & 0x7F == kernel.cpu.sreg & 0x7F
    # Heap contents identical.
    assert native.mem.data[0x100:0x110] == \
        kernel.cpu.mem.data[region.p_l:region.p_l + 16]


@given(alu_program())
@settings(max_examples=40, deadline=None)
def test_superblock_fusion_is_observationally_identical(source):
    """Fused and per-instruction execution agree on everything."""
    program = assemble(source)
    cpus = []
    for fuse in (True, False):
        flash = Flash()
        flash.load(0, program.words)
        cpu = AvrCpu(flash, fuse=fuse)
        cpu.run(max_instructions=100_000)
        assert cpu.halted
        cpus.append(cpu)
    fused, stepwise = cpus
    assert bytes(fused.r) == bytes(stepwise.r)
    assert fused.sreg == stepwise.sreg
    assert fused.cycles == stepwise.cycles
    assert fused.instret == stepwise.instret
    assert fused.mem.data == stepwise.mem.data


@given(alu_program())
@settings(max_examples=12, deadline=None)
def test_kernelized_fusion_is_observationally_identical(source):
    """The kernel's trap-driven execution is mode-independent too."""
    states = []
    for fuse in (True, False):
        node = SensorNode.from_sources([("fuzz", source)], fuse=fuse)
        node.run(max_instructions=1_000_000)
        assert node.finished
        cpu = node.kernel.cpu
        states.append((bytes(cpu.r), cpu.sreg, cpu.pc, cpu.sp,
                       cpu.cycles, cpu.instret, bytes(cpu.mem.data)))
    assert states[0] == states[1]


# -- random TinyC expressions -----------------------------------------------------

@st.composite
def c_expression(draw, depth: int = 0):
    """(text, python_value) pairs over u16 arithmetic."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(0, 0xFFFF))
        return str(value), value
    op = draw(st.sampled_from(
        ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==",
         "!=", "<", "<=", ">", ">="]))
    left_text, left_value = draw(c_expression(depth=depth + 1))
    right_text, right_value = draw(c_expression(depth=depth + 1))
    if op in ("<<", ">>"):
        shift = draw(st.integers(0, 15))
        right_text, right_value = str(shift), shift
    if op in ("/", "%") and right_value == 0:
        right_text, right_value = "1", 1  # division by zero is UB-ish
    text = f"({left_text} {op} {right_text})"
    if op == "+":
        value = (left_value + right_value) & 0xFFFF
    elif op == "-":
        value = (left_value - right_value) & 0xFFFF
    elif op == "*":
        value = (left_value * right_value) & 0xFFFF
    elif op == "/":
        value = left_value // right_value
    elif op == "%":
        value = left_value % right_value
    elif op == "&":
        value = left_value & right_value
    elif op == "|":
        value = left_value | right_value
    elif op == "^":
        value = left_value ^ right_value
    elif op == "<<":
        value = (left_value << right_value) & 0xFFFF
    elif op == ">>":
        value = left_value >> right_value
    else:
        value = int({
            "==": left_value == right_value,
            "!=": left_value != right_value,
            "<": left_value < right_value,
            "<=": left_value <= right_value,
            ">": left_value > right_value,
            ">=": left_value >= right_value,
        }[op])
    return text, value


@given(c_expression())
@settings(max_examples=40, deadline=None)
def test_tinyc_expressions_match_python(pair):
    text, expected = pair
    asm = compile_c_to_asm(f"""
u16 out;
void main() {{ out = {text}; halt(); }}
""")
    result = run_native(asm, max_instructions=2_000_000)
    assert result.finished
    measured = result.heap_byte(0) | (result.heap_byte(1) << 8)
    assert measured == expected, text
