"""ALU semantics: results and SREG flags."""

from __future__ import annotations

import pytest

from repro.avr.cpu import C, H, N, S, V, Z
from tests.conftest import run_asm


def flags(cpu) -> int:
    return cpu.sreg & 0x3F  # C..H


def test_add_carry_and_halfcarry():
    cpu = run_asm("""
main:
    ldi r16, 0xFF
    ldi r17, 0x01
    add r16, r17
    break
""")
    assert cpu.r[16] == 0x00
    assert flags(cpu) & C
    assert flags(cpu) & Z
    assert flags(cpu) & H
    assert not flags(cpu) & N


def test_add_signed_overflow():
    cpu = run_asm("""
main:
    ldi r16, 0x7F
    ldi r17, 0x01
    add r16, r17
    break
""")
    assert cpu.r[16] == 0x80
    assert flags(cpu) & V
    assert flags(cpu) & N
    assert not flags(cpu) & S  # S = N xor V


def test_adc_uses_carry():
    cpu = run_asm("""
main:
    sec
    ldi r16, 1
    ldi r17, 1
    adc r16, r17
    break
""")
    assert cpu.r[16] == 3


def test_sub_borrow():
    cpu = run_asm("""
main:
    ldi r16, 0x02
    ldi r17, 0x03
    sub r16, r17
    break
""")
    assert cpu.r[16] == 0xFF
    assert flags(cpu) & C
    assert flags(cpu) & N


def test_sbc_z_flag_is_sticky():
    # 16-bit compare idiom: Z survives SBC only if already set.
    cpu = run_asm("""
main:
    ldi r16, 0x00
    ldi r17, 0x01
    ldi r18, 0x00
    ldi r19, 0x01
    cp  r16, r18
    cpc r17, r19
    break
""")
    assert flags(cpu) & Z  # 0x0100 == 0x0100

    cpu = run_asm("""
main:
    ldi r16, 0x01
    ldi r17, 0x01
    ldi r18, 0x00
    ldi r19, 0x01
    cp  r16, r18
    cpc r17, r19
    break
""")
    assert not flags(cpu) & Z  # 0x0101 != 0x0100


@pytest.mark.parametrize("op,a,b,expected", [
    ("and", 0xF0, 0x3C, 0x30),
    ("or", 0xF0, 0x0C, 0xFC),
    ("eor", 0xFF, 0x0F, 0xF0),
])
def test_logic_ops(op, a, b, expected):
    cpu = run_asm(f"""
main:
    ldi r16, {a}
    ldi r17, {b}
    {op} r16, r17
    break
""")
    assert cpu.r[16] == expected
    assert not flags(cpu) & V


def test_com_sets_carry():
    cpu = run_asm("""
main:
    ldi r16, 0x55
    com r16
    break
""")
    assert cpu.r[16] == 0xAA
    assert flags(cpu) & C


def test_neg():
    cpu = run_asm("""
main:
    ldi r16, 1
    neg r16
    break
""")
    assert cpu.r[16] == 0xFF
    assert flags(cpu) & C
    assert flags(cpu) & N


def test_inc_dec_do_not_touch_carry():
    cpu = run_asm("""
main:
    sec
    ldi r16, 0x00
    dec r16
    inc r16
    break
""")
    assert flags(cpu) & C


def test_lsr_ror_chain_divides_16bit_by_two():
    cpu = run_asm("""
main:
    ldi r25, 0x03
    ldi r24, 0x01   ; r25:r24 = 0x0301
    lsr r25
    ror r24
    break
""")
    assert (cpu.r[25] << 8) | cpu.r[24] == 0x0301 >> 1
    assert flags(cpu) & C  # bit shifted out


def test_asr_preserves_sign():
    cpu = run_asm("""
main:
    ldi r16, 0x84
    asr r16
    break
""")
    assert cpu.r[16] == 0xC2


def test_swap():
    cpu = run_asm("""
main:
    ldi r16, 0xA5
    swap r16
    break
""")
    assert cpu.r[16] == 0x5A


def test_mul():
    cpu = run_asm("""
main:
    ldi r16, 200
    ldi r17, 3
    mul r16, r17
    break
""")
    assert cpu.r[0] == (200 * 3) & 0xFF
    assert cpu.r[1] == (200 * 3) >> 8
    assert not cpu.sreg & Z


def test_adiw_and_sbiw():
    cpu = run_asm("""
main:
    ldi r26, 0xFF
    ldi r27, 0x00
    adiw r26, 2
    break
""")
    assert cpu.get_pair(26) == 0x101

    cpu = run_asm("""
main:
    ldi r28, 0x01
    ldi r29, 0x00
    sbiw r28, 2
    break
""")
    assert cpu.get_pair(28) == 0xFFFF
    assert cpu.sreg & C


def test_movw():
    cpu = run_asm("""
main:
    ldi r16, 0x34
    ldi r17, 0x12
    movw r30, r16
    break
""")
    assert cpu.get_pair(30) == 0x1234


def test_synthetic_mnemonics():
    cpu = run_asm("""
main:
    ldi r16, 0x41
    clr r17
    lsl r16
    tst r17
    break
""")
    assert cpu.r[16] == 0x82
    assert cpu.r[17] == 0
    assert cpu.sreg & Z  # from TST of zero


def test_bld_bst():
    cpu = run_asm("""
main:
    ldi r16, 0x08
    bst r16, 3      ; T := 1
    clr r17
    bld r17, 7      ; r17.7 := T
    break
""")
    assert cpu.r[17] == 0x80
