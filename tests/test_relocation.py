"""Property tests for stack relocation: logical contents survive moves."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.avr.memory import DataMemory
from repro.kernel.config import KernelConfig
from repro.kernel.regions import RegionTable
from repro.kernel.relocation import StackRelocator
from repro.kernel.translation import AddressTranslator


def build_world(heaps, stack_usages):
    """Create regions + memory with recognizable per-task contents.

    Each task's heap bytes are ``(task<<4) | i`` and its used stack
    bytes are ``0x80 | (task<<4) | i``, so any cross-task corruption is
    detectable.  Returns (config, memory, table, sps, relocator).
    """
    config = KernelConfig()
    memory = DataMemory()
    table = RegionTable(config)
    count = len(heaps)
    table.allocate_initial(list(heaps), list(range(count)))
    sps = {}
    for task_id, usage in enumerate(stack_usages):
        region = table.by_task(task_id)
        usage = min(usage, region.stack_size - 2)
        sps[task_id] = region.p_u - 1 - usage
        for i in range(region.heap_size):
            memory.data[region.p_l + i] = ((task_id << 4) | (i & 0xF)) & 0xFF
        for i in range(usage):
            memory.data[region.p_u - 1 - i] = \
                (0x80 | (task_id << 4) | (i & 0xF)) & 0xFF
    relocator = StackRelocator(config, memory, table,
                               sp_of=lambda task_id: sps[task_id])
    def adjust(task_id, delta):
        sps[task_id] += delta
    relocator.on_sp_adjust = adjust
    return config, memory, table, sps, relocator


def snapshot_logical(memory, table, sps):
    """Capture every task's logical view: heap bytes + used stack bytes."""
    views = {}
    for region in table.regions:
        task_id = region.task_id
        heap = bytes(memory.data[region.p_l:region.p_h])
        sp = sps[task_id]
        stack = bytes(memory.data[sp + 1:region.p_u])
        views[task_id] = (heap, stack)
    return views


@given(
    heaps=st.lists(st.integers(0, 60), min_size=2, max_size=6),
    usages=st.lists(st.integers(0, 200), min_size=6, max_size=6),
    needy=st.integers(0, 5),
    needed=st.integers(1, 64),
)
@settings(max_examples=200, deadline=None)
def test_relocation_preserves_logical_contents(heaps, usages, needy, needed):
    count = len(heaps)
    needy %= count
    usages = usages[:count]
    config, memory, table, sps, relocator = build_world(heaps, usages)
    before = snapshot_logical(memory, table, sps)

    result = relocator.grow_stack(needy, needed)

    table.check_invariants()
    after = snapshot_logical(memory, table, sps)
    assert before == after, "relocation corrupted a task's logical memory"
    if result.moved:
        region = table.by_task(needy)
        # The needy stack area actually grew by delta.
        assert result.delta >= needed
        # SP stays inside the (possibly moved) region.
        assert region.p_h <= sps[needy] <= region.p_u - 1


@given(
    heaps=st.lists(st.integers(0, 40), min_size=3, max_size=6),
    usages=st.lists(st.integers(0, 150), min_size=6, max_size=6),
    sequence=st.lists(st.tuples(st.integers(0, 5), st.integers(1, 48)),
                      min_size=1, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_repeated_relocations_keep_invariants(heaps, usages, sequence):
    count = len(heaps)
    usages = usages[:count]
    config, memory, table, sps, relocator = build_world(heaps, usages)
    for needy, needed in sequence:
        needy %= count
        before = snapshot_logical(memory, table, sps)
        relocator.grow_stack(needy, needed)
        table.check_invariants()
        assert snapshot_logical(memory, table, sps) == before


def test_donor_is_the_largest_surplus():
    config, memory, table, sps, relocator = build_world(
        heaps=[4, 4, 4], stack_usages=[100, 900, 10])
    donor = relocator.pick_donor(0)
    assert donor is not None
    assert donor.task_id == 2  # least stack usage -> most surplus


def test_no_donor_when_everyone_is_full():
    config, memory, table, sps, relocator = build_world(
        heaps=[4, 4], stack_usages=[5000, 5000])
    # Usages were clamped to region size; both stacks are nearly full.
    result = relocator.grow_stack(0, 64)
    assert not result.moved


def test_relocation_charges_cycles_proportional_to_bytes():
    config, memory, table, sps, relocator = build_world(
        heaps=[8, 8, 8], stack_usages=[50, 10, 10])
    result = relocator.grow_stack(0, 32)
    assert result.moved
    from repro.kernel import costs
    assert result.cycles == costs.STACK_RELOCATION + \
        costs.RELOCATION_PER_BYTE * result.bytes_moved


def test_translator_logical_physical_bijection():
    config = KernelConfig()
    table = RegionTable(config)
    table.allocate_initial([16, 32], [0, 1])
    translator = AddressTranslator(config)
    for task_id in (0, 1):
        region = table.by_task(task_id)
        seen = set()
        # Heap addresses.
        for logical in range(0x100, 0x100 + region.heap_size):
            physical, _ = translator.to_physical(region, logical, task_id)
            assert translator.to_logical(region, physical, task_id) == logical
            seen.add(physical)
        # Stack-zone addresses.
        top = config.memory_size
        for logical in range(top - region.stack_size, top):
            physical, _ = translator.to_physical(region, logical, task_id)
            assert translator.to_logical(region, physical, task_id) == logical
            seen.add(physical)
        # The valid logical space maps exactly onto the region.
        assert seen == set(range(region.p_l, region.p_u))
