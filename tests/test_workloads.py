"""Workload programs: native correctness and SenSmart equivalence."""

from __future__ import annotations

import pytest

from repro.baselines.native import run_native
from repro.kernel import SensorNode
from repro.workloads.bintree import feeder_source, search_task_source
from repro.workloads.kernelbench import KERNEL_BENCHMARKS
from repro.workloads.periodic import (periodic_native_source,
                                      periodic_sensmart_source)


def run_sensmart_single(source: str, name: str = "app",
                        max_instructions: int = 10_000_000):
    """Run one program under SenSmart; returns (node, heap_reader)."""
    node = SensorNode.from_sources([(name, source)])
    kernel = node.kernel
    heap_base = kernel.regions.by_task(0).p_l
    node.run(max_instructions=max_instructions)
    return node, lambda offset: kernel.cpu.mem.data[heap_base + offset]


# -- native correctness -------------------------------------------------------

def test_am_transmits_packets():
    result = run_native(KERNEL_BENCHMARKS["am"](packets=3))
    assert result.finished
    radio = result.devices["radio"]
    assert len(radio.transmitted) == 3 * 36
    packet = radio.transmitted[:36]
    assert packet[0] == packet[1] == 0xFF     # broadcast dest
    assert packet[2] == 0x06                  # AM type
    assert packet[4] == 29                    # payload length
    checksum = packet[5] | (packet[6] << 8)
    assert checksum == sum(packet[7:36])


def test_amplitude_sees_signal_swing():
    result = run_native(KERNEL_BENCHMARKS["amplitude"](samples=32))
    assert result.finished
    amplitude = result.heap_byte(0) | (result.heap_byte(1) << 8)
    assert 100 < amplitude < 1024  # triangle swing + noise


def test_crc_matches_reference():
    result = run_native(KERNEL_BENCHMARKS["crc"](rounds=1))
    assert result.finished
    measured = result.heap_byte(32) | (result.heap_byte(33) << 8)
    # Reference CRC-16-CCITT over the same pattern.
    crc, value = 0xFFFF, 0xA5
    for _ in range(32):
        crc ^= value << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 \
                else (crc << 1) & 0xFFFF
        value = (value - 0x33) & 0xFF
    assert measured == crc


def test_eventchain_runs_every_handler():
    result = run_native(KERNEL_BENCHMARKS["eventchain"](rounds=5))
    assert result.finished
    assert [result.heap_byte(i) for i in range(4)] == [5, 5, 5, 5]


def test_lfsr_matches_reference():
    result = run_native(KERNEL_BENCHMARKS["lfsr"](steps=1000))
    assert result.finished
    lfsr = 0xACE1
    for _ in range(1000):
        lsb = lfsr & 1
        lfsr >>= 1
        if lsb:
            lfsr ^= 0xB400
    assert result.heap_byte(0) | (result.heap_byte(1) << 8) == lfsr


def test_readadc_counts_samples():
    result = run_native(KERNEL_BENCHMARKS["readadc"](samples=20))
    assert result.finished
    assert result.heap_byte(16) == 20


def test_timer_counts_ticks():
    result = run_native(KERNEL_BENCHMARKS["timer"](ticks=32))
    assert result.finished
    assert result.heap_byte(0) | (result.heap_byte(1) << 8) == 32


# -- SenSmart equivalence: same observable results as native -------------------

@pytest.mark.parametrize("name", sorted(KERNEL_BENCHMARKS))
def test_benchmark_equivalent_under_sensmart(name):
    source = KERNEL_BENCHMARKS[name]()
    native = run_native(source)
    node, heap = run_sensmart_single(source, name)
    assert node.finished
    assert node.task_named(name).exit_reason == "exit"
    if name == "am":
        assert node.radio.transmitted == \
            native.devices["radio"].transmitted
    elif name == "amplitude":
        assert heap(0) | (heap(1) << 8) == \
            native.heap_byte(0) | (native.heap_byte(1) << 8)
    elif name == "crc":
        assert heap(32) | (heap(33) << 8) == \
            native.heap_byte(32) | (native.heap_byte(33) << 8)
    elif name == "eventchain":
        assert [heap(i) for i in range(4)] == \
            [native.heap_byte(i) for i in range(4)]
    elif name == "lfsr":
        assert heap(0) | (heap(1) << 8) == \
            native.heap_byte(0) | (native.heap_byte(1) << 8)
    elif name == "readadc":
        assert heap(16) == native.heap_byte(16)
    elif name == "timer":
        assert heap(0) | (heap(1) << 8) == \
            native.heap_byte(0) | (native.heap_byte(1) << 8)


def test_sensmart_slower_but_same_order():
    """Overhead exists but stays within an order of magnitude (Fig. 5)."""
    source = KERNEL_BENCHMARKS["crc"](rounds=2)
    native = run_native(source)
    node, _ = run_sensmart_single(source, "crc")
    ratio = node.cpu.cycles / native.cycles
    assert 1.0 < ratio < 10.0


# -- PeriodicTask ------------------------------------------------------------------

def test_periodic_native_completes_all_activations():
    result = run_native(periodic_native_source(500, 10),
                        max_instructions=10_000_000)
    assert result.finished
    assert result.heap_byte(0) == 10
    # Ten 2048-tick periods at prescaler 8.
    assert result.cycles >= 10 * 2048 * 8 * 0.9


def test_periodic_sensmart_completes_all_activations():
    node, heap = run_sensmart_single(
        periodic_sensmart_source(500, 10), "periodic")
    assert node.finished
    assert heap(0) == 10
    assert node.kernel.stats.idle_cycles > 0  # slept between events


def test_periodic_utilization_grows_with_computation():
    def utilization(compute):
        node, _ = run_sensmart_single(
            periodic_sensmart_source(compute, 10), "periodic",
            max_instructions=30_000_000)
        assert node.finished
        return node.kernel.stats.utilization(node.cpu.cycles)
    low = utilization(200)
    high = utilization(8000)
    assert high > low


# -- binary-tree workload -------------------------------------------------------------

def test_search_task_recursion_depth_matches_paper():
    """~15 bytes per level; 60-node trees reach ~13 levels (paper: 12-15)."""
    node = SensorNode.from_sources(
        [("s", search_task_source(nodes=60, searches=15))])
    kernel = node.kernel
    region = kernel.regions.by_task(0)

    node.run(max_instructions=30_000_000)
    assert node.finished
    # min_sp_seen is the stack high-water mark every push/call records
    # (on both the generic and the specialized trap paths).
    max_stack = region.p_u - kernel.tasks[0].min_sp_seen
    levels = max_stack / 15
    assert 8 <= levels <= 16


def test_bigger_trees_recurse_deeper():
    def max_stack(nodes):
        node = SensorNode.from_sources(
            [("s", search_task_source(nodes=nodes, searches=15))])
        kernel = node.kernel
        region = kernel.regions.by_task(0)
        node.run(max_instructions=30_000_000)
        assert node.finished
        return region.p_u - kernel.tasks[0].min_sp_seen
    assert max_stack(80) > max_stack(10)


def test_feeder_plus_searchers_coexist():
    sources = [("feeder", feeder_source(nodes_per_tree=10, trees=6,
                                        updates=8))]
    for index in range(2):
        sources.append((f"search{index}",
                        search_task_source(nodes=30, searches=8,
                                           seed=0x1111 * (index + 1))))
    node = SensorNode.from_sources(sources)
    node.run(max_instructions=50_000_000)
    assert node.finished
    assert all(t.exit_reason == "exit"
               for t in node.kernel.tasks.values())


def test_search_tasks_with_different_seeds_diverge():
    node = SensorNode.from_sources(
        [("a", search_task_source(nodes=40, searches=5, seed=0x1111)),
         ("b", search_task_source(nodes=40, searches=5, seed=0x2222))])
    kernel = node.kernel
    region_a = kernel.regions.by_task(0)
    region_b = kernel.regions.by_task(1)
    heap_a = bytes(kernel.cpu.mem.data[region_a.p_l:region_a.p_l + 60])
    node.run(max_instructions=50_000_000)
    assert node.finished
