"""Static analysis subsystem: CFG, stack bounds, soundness linter."""

from __future__ import annotations

import pytest

from repro.analysis.static import (INFINITE_DEPTH, analyze_program,
                                   build_cfg, lint_image, lint_sources)
from repro.avr.encoding import encode
from repro.avr.instruction import Instruction
from repro.toolchain import compile_source, link_image
from repro.workloads.bintree import feeder_source, search_task_source
from repro.workloads.kernelbench import (KERNEL_BENCHMARKS,
                                         kernel_benchmark_source)


def _cfg(source: str, name: str = "t"):
    program = compile_source(source, name=name)
    return program, build_cfg(program.items, program.entry,
                              dict(program.symbols.labels))


# -- CFG construction ---------------------------------------------------------

def test_cfg_straightline_single_block():
    program, cfg = _cfg("""
main:
    ldi r16, 1
    dec r16
    break
""")
    assert len(cfg.nodes) == 1
    node = cfg.nodes[program.entry]
    assert node.successors == ()          # BREAK never falls through
    assert node.calls == ()


def test_cfg_branch_has_target_and_fallthrough():
    program, cfg = _cfg("""
main:
    ldi r16, 2
loop:
    dec r16
    brne loop
    break
""")
    loop = program.symbols.labels["loop"]
    node = cfg.node_containing(loop)
    assert set(node.successors) == {loop, node.block.end}


def test_cfg_call_edge_and_return():
    program, cfg = _cfg("""
main:
    call helper
    break
helper:
    ldi r17, 1
    ret
""")
    helper = program.symbols.labels["helper"]
    entry_node = cfg.nodes[program.entry]
    assert entry_node.calls == ((program.entry, helper),)
    assert helper in cfg.function_entries()
    # RET terminates the helper with no successors.
    assert cfg.nodes[helper].successors == ()


def test_cfg_skip_splits_shadow_and_both_edges():
    program, cfg = _cfg("""
main:
    ldi r16, 1
    sbrc r16, 0
    ldi r17, 2
    ldi r18, 3
    break
""")
    skip = next(address for address, ins in cfg.instructions.items()
                if ins.mnemonic == "SBRC")
    node = cfg.node_containing(skip)
    shadow = skip + 1
    after = shadow + 1
    # Both the shadow and the post-shadow instruction are successors,
    # and both are block starts.
    assert set(node.successors) == {shadow, after}
    assert shadow in cfg.nodes and after in cfg.nodes


def test_cfg_icall_resolves_dw_handler_table():
    program, cfg = _cfg("""
main:
    ldi r30, lo8(table * 2)
    ldi r31, hi8(table * 2)
    lpm r24, Z+
    lpm r25, Z+
    movw r30, r24
    icall
    break
h_one:
    ldi r20, 1
    ret
h_two:
    ldi r20, 2
    ret
table:
    .dw h_one, h_two
""")
    callees = {callee for node in cfg.nodes.values()
               for _, callee in node.calls}
    # The straight-line LPM chain provably loads table entry 0, so the
    # dataflow pass narrows the ICALL to exactly h_one.
    assert callees == {program.symbols.labels["h_one"]}
    # Pool resolution is not the all-labels fallback.
    assert not cfg.unresolved_indirect


def test_cfg_icall_looping_table_keeps_all_handlers():
    program, cfg = _cfg("""
main:
    ldi r21, 2
    ldi r30, lo8(table * 2)
    ldi r31, hi8(table * 2)
loop:
    lpm r24, Z+
    lpm r25, Z+
    push r21
    movw r30, r24
    icall
    pop r21
    dec r21
    brne loop
    break
h_one:
    ldi r20, 1
    ret
h_two:
    ldi r20, 2
    ret
table:
    .dw h_one, h_two
""")
    handlers = {program.symbols.labels["h_one"],
                program.symbols.labels["h_two"]}
    callees = {callee for node in cfg.nodes.values()
               for _, callee in node.calls}
    # Z widens across the loop head, so dataflow reports ⊤ and the
    # pool (the .dw table) stays the candidate set — both handlers.
    assert handlers <= callees
    assert not cfg.unresolved_indirect


def test_cfg_ijmp_without_pool_falls_back_to_labels():
    program, cfg = _cfg("""
main:
    mov r30, r24
    mov r31, r25
    ijmp
after:
    break
""")
    assert cfg.unresolved_indirect  # flagged as conservative
    ijmp_node = next(node for node in cfg.nodes.values()
                     if node.indirect_site is not None)
    assert program.symbols.labels["after"] in ijmp_node.successors


# -- stack-depth analysis -----------------------------------------------------

def test_stack_bound_zero_for_pushless_program():
    program = compile_source("main:\n    ldi r16, 1\n    break\n",
                             name="t")
    assert analyze_program(program).bound == 0


def test_stack_bound_counts_push_and_call_frames():
    program = compile_source("""
main:
    push r16
    call helper
    pop r16
    break
helper:
    push r17
    pop r17
    ret
""", name="t")
    analysis = analyze_program(program)
    # push(1) + call frame(2) + helper push(1)
    assert analysis.bound == 4
    helper = analysis.function_by_name("helper")
    assert helper.local_peak == 1 and helper.bound == 1


def test_stack_bound_takes_worst_path():
    program = compile_source("""
main:
    ldi r16, 0
    cpi r16, 1
    brne cheap
    call deep
cheap:
    break
deep:
    push r2
    push r3
    push r4
    pop r4
    pop r3
    pop r2
    ret
""", name="t")
    analysis = analyze_program(program)
    assert analysis.bound == 5  # call frame 2 + three pushes


def test_recursion_detected_and_unbounded():
    program = compile_source("""
main:
    ldi r24, 4
    call recurse
    break
recurse:
    push r2
    dec r24
    brne deeper
    rjmp unwind
deeper:
    call recurse
unwind:
    pop r2
    ret
""", name="t")
    analysis = analyze_program(program)
    assert not analysis.bounded
    assert analysis.bound == INFINITE_DEPTH
    recurse = analysis.function_by_name("recurse")
    assert recurse.recursive
    assert analysis.recursion_cycles == [(recurse.entry,)]
    assert "recursion" in analysis.describe_bound()


def test_net_positive_loop_diverges():
    program = compile_source("""
main:
    ldi r16, 4
loop:
    push r16
    dec r16
    brne loop
    break
""", name="t")
    analysis = analyze_program(program)
    assert analysis.bound == INFINITE_DEPTH
    assert not analysis.recursion_cycles
    assert any("without bound" in d for d in analysis.diagnostics)


def test_bintree_search_is_statically_unbounded():
    program = compile_source(search_task_source(nodes=10, searches=2),
                             name="search")
    analysis = analyze_program(program)
    assert not analysis.bounded
    assert analysis.function_by_name("search").recursive


def test_kernelbench_bounds_are_finite():
    for name in sorted(KERNEL_BENCHMARKS):
        program = compile_source(kernel_benchmark_source(name),
                                 name=name)
        analysis = analyze_program(program)
        assert analysis.bounded, name
        assert analysis.bound >= 0


# -- soundness linter ---------------------------------------------------------

def _benchmark_sources():
    return [(name, kernel_benchmark_source(name))
            for name in sorted(KERNEL_BENCHMARKS)]


def test_lint_clean_on_every_bundled_workload():
    report = lint_sources(_benchmark_sources())
    assert report.ok, report.render()
    assert report.coverage == 1.0
    assert report.sites_total > 0


def test_lint_clean_on_multiprogram_image():
    report = lint_sources(
        [("search", search_task_source(nodes=8, searches=2)),
         ("feeder", feeder_source(nodes_per_tree=8, trees=2, updates=4))])
    assert report.ok, report.render()
    assert report.coverage == 1.0


def _single_image():
    return link_image([("crc", kernel_benchmark_source("crc"))])


def test_lint_detects_overwritten_site_with_location_and_kind():
    image = _single_image()
    natural = image.tasks[0].natural
    site_address = sorted(natural.sites)[0]
    site = natural.sites[site_address]
    offset = site_address - natural.base
    natural.words[offset] = 0x0000  # NOP over the trampoline JMP
    natural.words[offset + 1] = 0x0000

    report = lint_image(image)
    assert not report.ok
    finding = report.findings_for("site-not-jmp")[0]
    assert finding.address == site_address
    assert finding.kind is site.kind
    assert finding.program == "crc"
    assert report.sites_verified == report.sites_total - 1


def test_lint_detects_jmp_escaping_trampoline_region():
    image = _single_image()
    natural = image.tasks[0].natural
    site_address = sorted(natural.sites)[0]
    offset = site_address - natural.base
    word1, word2 = encode(Instruction("JMP", (natural.base,)))
    natural.words[offset] = word1
    natural.words[offset + 1] = word2

    report = lint_image(image)
    findings = report.findings_for("site-target-outside")
    assert findings and findings[0].address == site_address


def test_lint_detects_shift_table_tampering():
    image = _single_image()
    entries = image.tasks[0].natural.shift_table.entries

    removed = entries.pop()
    report = lint_image(image)
    assert report.findings_for("shift-missing-entry")

    entries.append(removed)
    entries.append(removed + 1)  # spurious entry
    assert lint_image(image).findings_for("shift-extra-entry")

    entries.pop()
    entries[0], entries[-1] = entries[-1], entries[0]
    assert lint_image(image).findings_for("shift-nonmonotonic")

    entries[0], entries[-1] = entries[-1], entries[0]
    assert lint_image(image).ok


def test_lint_flags_untrapped_dangerous_instruction():
    # A classifier that deliberately misses PUSH produces an image where
    # a native PUSH survives — the independent predicate must catch it.
    from repro.rewriter.classify import PatchKind, classify

    def blind(instruction):
        if instruction.mnemonic == "PUSH":
            return PatchKind.NONE
        return classify(instruction)

    from repro.rewriter.rewriter import Rewriter
    image = link_image(
        [("t", "main:\n    push r16\n    pop r16\n    break\n")],
        rewriter=Rewriter(classify_fn=blind))
    report = lint_image(image)  # linter uses the real classifier
    assert not report.ok
    checks = {finding.check for finding in report.findings}
    assert "untrapped-memory" in checks or "site-missing" in checks


def test_lint_counts_match_image():
    image = _single_image()
    report = lint_image(image)
    natural = image.tasks[0].natural
    assert report.sites_total == len(natural.sites)
    assert report.shift_entries == len(natural.shift_table.entries)
    assert report.trampolines == image.pool.count
