"""Fleet sharding: conservative sync edge cases and shard invariance."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.fleet import (FleetSim, FleetSpec, Topology, build_spec, grid,
                         partition, random_geometric)
from repro.fleet.topology import LinkSpec, NodeSpec
from repro.fleet.workload import receiver_src, relay_src, sender_src
from repro.kernel import SensorNode
from repro.net import Network

QUICK_GRID = grid(4, 4, latency_cycles=2_000)


def _quick_spec(fault_plan=None, max_cycles=300_000):
    return build_spec(QUICK_GRID, "flood", count=6,
                      max_cycles=max_cycles, fault_plan=fault_plan)


# -- conservative-sync edge cases ---------------------------------------------

def test_zero_latency_link_rejected():
    """A zero-latency link has no lookahead — the bulletin protocol
    could deadlock on it, so FleetSim refuses it up front (for every
    shard count: behavior must not depend on where the partition cut
    happens to fall)."""
    nodes = [NodeSpec("n000", (0, 0)), NodeSpec("n001", (0, 1))]
    links = [LinkSpec(index=0, source="n000", destination="n001",
                      latency_cycles=0)]
    topo = Topology(kind="pair", seed=0, nodes=nodes, links=links)
    spec = FleetSpec(
        topology=topo,
        programs={"n000": (("sender", sender_src(4)),),
                  "n001": (("receiver", receiver_src(4)),)},
        roles={"n000": "source", "n001": "sink"},
        workload="flood", count=4, seed=1, max_cycles=100_000)
    for shards in (1, 2):
        with pytest.raises(ReproError, match="latency"):
            FleetSim(spec, shards=shards)


def test_finished_shard_keeps_peers_running():
    """A shard whose nodes all halt early must not stall peers that
    still transmit into it: the sender ships 12 bytes, the receiver
    halts after 4, and the fleet still terminates with both finished —
    identically at 1 and 2 shards.  The 8 bytes sent after the halt
    settle into the dead receiver's RX residue (the radio latches even
    when the CPU no longer runs), so all 12 count as delivered."""
    nodes = [NodeSpec("n000", (0, 0)), NodeSpec("n001", (0, 1))]
    links = [LinkSpec(index=0, source="n000", destination="n001",
                      latency_cycles=1_500)]
    topo = Topology(kind="pair", seed=0, nodes=nodes, links=links)
    spec = FleetSpec(
        topology=topo,
        programs={"n000": (("sender", sender_src(12)),),
                  "n001": (("receiver", receiver_src(4)),)},
        roles={"n000": "source", "n001": "sink"},
        workload="flood", count=12, seed=1, max_cycles=2_000_000)
    digests = []
    for shards in (1, 2):
        result = FleetSim(spec, shards=shards, prime=False).run()
        assert result.finished_nodes == 2, result.node_summaries
        assert result.delivered == 12
        digests.append(result.digest)
    assert digests[0] == digests[1]


def test_shard_count_invariance_under_faults():
    """1-shard vs k-shard bit-identity on the 16-node grid while a
    nonzero FaultPlan fires (SRAM/flash flips + clock drift; crash
    reboot timing is round-granular, so crash-free plans are the
    invariance contract)."""
    plan = FaultPlan(seed=77, horizon_cycles=40_000,
                     warmup_cycles=4_000, sram_flips=2, flash_flips=1,
                     drift_steps=1)
    digests = {}
    fault_totals = {}
    for shards in (1, 2, 4):
        result = FleetSim(_quick_spec(fault_plan=plan),
                          shards=shards).run()
        digests[shards] = result.digest
        fault_totals[shards] = sum(result.fault_counts.values())
    assert fault_totals[1] > 0, "fault plan never fired"
    assert len(set(fault_totals.values())) == 1
    assert len(set(digests.values())) == 1, digests
    clean = FleetSim(_quick_spec(), shards=1).run()
    assert clean.digest not in digests.values(), \
        "fault plan had no observable effect"


def test_shard_count_invariance_clean():
    """Clean flood digests agree across shard counts, and warm-forked
    workers compile (almost) nothing thanks to the priming pass."""
    results = {shards: FleetSim(_quick_spec(), shards=shards).run()
               for shards in (1, 2, 4)}
    assert len({r.digest for r in results.values()}) == 1
    for r in results.values():
        assert r.finished_nodes == 16
        assert sum(r.compiled_per_shard) <= 2, r.compiled_per_shard


def test_attack_workload_digest_invariant_and_contained():
    """Attack traffic through the fleet: digests agree across shard
    counts, every node quiesces, and the sink's unchecked copy is
    trapped by logical addressing (an oob fault termination)."""
    from repro.fleet import build_programs
    from repro.kernel.termination import classify_fault_detail

    topo = grid(3, 3, latency_cycles=2_000, seed=0xF1EE7)
    spec = build_spec(topo, "attack", count=40, seed=0xF1EE7,
                      max_cycles=3_000_000)
    assert spec.roles["n000"] == "mallory"
    assert "victim" in spec.roles.values()
    results = {shards: FleetSim(spec, shards=shards).run()
               for shards in (1, 2)}
    assert len({r.digest for r in results.values()}) == 1
    for r in results.values():
        assert r.finished_nodes == 9

    # Replay the same route on a plain Network to inspect the sink.
    programs, roles = build_programs(topo, "attack", count=40)
    sink = next(n for n, role in roles.items() if role == "victim")
    net = Network()
    for name in topo.names:
        net.add_node(name, SensorNode.from_sources(
            list(programs[name])))
    for link in topo.links:
        net.connect(link.source, link.destination,
                    latency_cycles=link.latency_cycles)
    net.run(max_cycles=3_000_000)
    victim = net.nodes[sink].task_named("victim")
    assert victim.exit_reason.startswith("fault")
    assert classify_fault_detail(victim.exit_reason) == "oob"


# -- heap scheduler vs reference scan ----------------------------------------

SENDER = sender_src(6)
RECEIVER = receiver_src(6)
RELAY_SRC = relay_src(6)


def _node_state(node: SensorNode):
    cpu = node.cpu
    return (bytes(cpu.r), cpu.sreg, cpu.pc, cpu.sp, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data), cpu.halted,
            node.kernel.stats.context_switches)


def _relay_chain() -> Network:
    net = Network()
    net.add_node("src", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("r1", SensorNode.from_sources([("relay", RELAY_SRC)]))
    net.add_node("r2", SensorNode.from_sources([("relay", RELAY_SRC)]))
    net.add_node("dst", SensorNode.from_sources(
        [("receiver", RECEIVER)]))
    net.connect("src", "r1", latency_cycles=1_000)
    net.connect("r1", "r2", latency_cycles=3_000)
    net.connect("r2", "dst", latency_cycles=500)
    return net


def _star() -> Network:
    net = Network()
    for index, name in enumerate(("leaf0", "leaf1", "leaf2")):
        net.add_node(name, SensorNode.from_sources(
            [("sender", sender_src(6, start=0x30 + 0x10 * index))]))
    net.add_node("hub", SensorNode.from_sources(
        [("receiver", receiver_src(18))]))
    for index, name in enumerate(("leaf0", "leaf1", "leaf2")):
        net.connect(name, "hub", latency_cycles=1_000 * (index + 1))
    return net


@pytest.mark.parametrize("build", [_relay_chain, _star],
                         ids=["relay-chain", "star"])
def test_heap_scheduler_matches_scan(build):
    """The lazy-min-heap lagging-node scheduler must land every node
    in exactly the state the O(N)-scan reference produces."""
    heap_net, scan_net = build(), build()
    heap_net.run(max_cycles=50_000_000)
    scan_net.run_scan(max_cycles=50_000_000)
    assert all(n.finished for n in heap_net.nodes.values())
    for name in heap_net.nodes:
        assert _node_state(heap_net.nodes[name]) == \
            _node_state(scan_net.nodes[name]), name
    assert heap_net.stats() == scan_net.stats()
    assert [link.arrival_cycles for link in heap_net.links] == \
        [link.arrival_cycles for link in scan_net.links]


def test_until_all_finished_deprecated():
    net = Network()
    net.add_node("solo", SensorNode.from_sources([("sender", SENDER)]))
    with pytest.warns(DeprecationWarning, match="until_all_finished"):
        net.run(max_cycles=5_000_000, until_all_finished=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        fresh = Network()
        fresh.add_node("solo", SensorNode.from_sources(
            [("sender", SENDER)]))
        fresh.run(max_cycles=5_000_000)  # no kwarg -> no warning


def test_cli_fleet_quick_matches_golden():
    """`sensmart fleet --quick` is pinned byte-for-byte (CI diffs the
    same command against the same golden).  Runs in a fresh subprocess
    because the compiled-blocks line reflects a cold JIT cache."""
    import pathlib
    import subprocess
    import sys
    golden = pathlib.Path(__file__).parent / "golden" / "fleet_quick.txt"
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "fleet", "--quick"],
        capture_output=True, text=True, timeout=600)
    assert out.returncode == 0, out.stderr
    assert out.stdout == golden.read_text()


# -- topology generators ------------------------------------------------------

def test_grid_topology_shape():
    topo = grid(3, 4)
    assert len(topo.nodes) == 12
    # 4-neighbor bidirectional: 2*(rows*(cols-1) + cols*(rows-1))
    assert len(topo.links) == 2 * (3 * 3 + 4 * 2)
    assert [ls.index for ls in topo.links] == list(range(len(topo.links)))
    depth = topo.bfs_order("n000")
    assert len(depth) == 12 and depth["n011"] == 2 + 3


def test_random_geometric_deterministic_and_connected():
    first = random_geometric(24, radius_permille=320, seed=0xBEEF)
    second = random_geometric(24, radius_permille=320, seed=0xBEEF)
    assert first.nodes == second.nodes
    assert first.links == second.links
    assert len(first.bfs_order("n000")) == 24  # connectivity fallback
    other = random_geometric(24, radius_permille=320, seed=0xBEE0)
    assert other.nodes != first.nodes


def test_partition_contiguous_and_balanced():
    topo = grid(4, 4)
    blocks = partition(topo, 3)
    assert [name for block in blocks for name in block] == topo.names
    sizes = sorted(len(block) for block in blocks)
    assert sizes == [5, 5, 6]
    assert partition(topo, 99) == [[name] for name in topo.names]
