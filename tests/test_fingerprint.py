"""The unified content-key helper.

Every cache in the system — superblock cache, trace store, artifact
store, image cache — keys through :mod:`repro.fingerprint`, so these
digests are load-bearing: a silent change to the encoding invalidates
(or worse, aliases) every on-disk artifact in the field.  The pins
below freeze the exact output; changing the encoding must bump
``KEY_VERSION``, which changes every pinned value on purpose.
"""

from __future__ import annotations

import pytest

from repro.fingerprint import (DIGEST_SIZE, KEY_VERSION, blake2b_hex,
                               content_key)


# -- pinned digests --------------------------------------------------------------

def test_blake2b_hex_pinned():
    assert blake2b_hex(b"") == "cae66941d9efbd404e4d88758ea67670"
    assert blake2b_hex(b"abc") == "cf4ab791c62b8d2b2109c90275287816"
    assert blake2b_hex(b"abc", digest_size=8) == "d8bb14d833d59559"


def test_content_key_pinned():
    assert KEY_VERSION == 1
    assert content_key() == "d52e26540a38d831614368353754c355"
    assert content_key(1, "a", None, True) == \
        "bce8982e21487e1cc952f24f233fcb99"
    assert content_key([1, [2, 3]], {"b": 2, "a": 1}) == \
        "68a5f47d4fdbfc2160c7343c442f255c"
    assert content_key(b"xy", 2.5, False) == \
        "4473d05734e61149315cef6c07dc806d"


def test_flash_fingerprint_pinned():
    """The flash fingerprint keys the cross-CPU superblock cache and
    the trace store; it must not churn across releases."""
    from repro.avr.memory import Flash
    flash = Flash()
    flash.load(0, [0x940C, 0x0000, 0xE011])
    assert flash.fingerprint() == \
        "8be5e0d8b70eefc1d9947bb257f7b45d"


# -- collision resistance of the encoding ----------------------------------------

def test_string_split_does_not_alias():
    assert content_key("ab") != content_key("a", "b")
    assert content_key(["ab"]) != content_key(["a", "b"])
    assert content_key("ab", "c") != content_key("a", "bc")


def test_container_shape_is_part_of_the_key():
    # lists and tuples encode identically on purpose (JSON round trips
    # turn tuples into lists); sets and dicts do not alias them
    assert content_key([1, 2]) == content_key((1, 2))
    assert content_key([1, 2]) != content_key({1, 2})
    assert content_key([]) != content_key({})
    assert content_key([["a"], []]) != content_key([[], ["a"]])


def test_scalar_types_do_not_alias():
    assert content_key(1) != content_key("1")
    assert content_key(1) != content_key(True)
    assert content_key(0) != content_key(False)
    assert content_key(0) != content_key(None)
    assert content_key(1) != content_key(1.0)
    assert content_key("x") != content_key(b"x")


def test_dict_ordering_is_canonical():
    assert content_key({"a": 1, "b": 2}) == \
        content_key({"b": 2, "a": 1})
    assert content_key({"a": 1, "b": 2}) != \
        content_key({"a": 2, "b": 1})


def test_unsupported_types_raise():
    with pytest.raises(TypeError):
        content_key(object())
    with pytest.raises(TypeError):
        content_key([1, {1: object()}])


def test_digest_size_parameter():
    assert len(content_key("x")) == DIGEST_SIZE * 2
    assert len(content_key("x", digest_size=6)) == 12
    assert content_key("x", digest_size=6) != content_key("x")[:12]
