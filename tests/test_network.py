"""The multi-node network simulator."""

from __future__ import annotations

import pytest

from repro.avr import ioports
from repro.avr.devices.radio import RXC
from repro.errors import ReproError
from repro.kernel import SensorNode
from repro.net import Network

SENDER = f"""
main:
    ldi r20, 6
    ldi r16, 0x30
send:
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    inc r16
    dec r20
    brne send
    break
"""

RECEIVER = f"""
.bss received, 8
main:
    ldi r20, 6
    ldi r26, lo8(received)
    ldi r27, hi8(received)
recv:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    st X+, r16
    dec r20
    brne recv
    break
"""

RELAY = f"""
main:
    ldi r20, 6
relay:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
wait_tx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    dec r20
    brne relay
    break
"""


def heap_bytes(node: SensorNode, task_name: str, count: int) -> bytes:
    task = node.task_named(task_name)
    region_base = 0x100  # logical; resolve via the saved region map
    kernel = node.kernel
    # Regions are released at exit; heap bytes stay where they were.
    # Recompute the physical base from the initial layout (task 0 only
    # in these tests).
    return bytes(kernel.cpu.mem.data[kernel.config.ram_start:
                                     kernel.config.ram_start + count])


def test_point_to_point_delivery():
    net = Network(quantum_cycles=5_000)
    net.add_node("tx", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("rx", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("tx", "rx", latency_cycles=1_000)
    net.run(max_cycles=5_000_000)
    assert net.nodes["tx"].finished
    assert net.nodes["rx"].finished
    assert heap_bytes(net.nodes["rx"], "receiver", 6) == b"012345"
    link = net.link_between("tx", "rx")
    assert link.delivered == 6
    assert link.dropped == 0


def test_relay_chain():
    net = Network(quantum_cycles=5_000)
    net.add_node("src", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("mid", SensorNode.from_sources([("relay", RELAY)]))
    net.add_node("dst", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("src", "mid", latency_cycles=1_000)
    net.connect("mid", "dst", latency_cycles=1_000)
    net.run(max_cycles=20_000_000)
    assert all(n.finished for n in net.nodes.values())
    assert heap_bytes(net.nodes["dst"], "receiver", 6) == b"012345"


def test_lossy_link_drops_deterministically():
    def run_once():
        net = Network(quantum_cycles=5_000)
        net.add_node("tx", SensorNode.from_sources([("sender", SENDER)]))
        net.add_node("rx", SensorNode.from_sources(
            [("receiver", RECEIVER)]))
        net.connect("tx", "rx", loss_permille=400)
        net.run(max_cycles=3_000_000, until_all_finished=False)
        link = net.link_between("tx", "rx")
        return link.delivered, link.dropped
    first = run_once()
    second = run_once()
    assert first == second  # deterministic
    delivered, dropped = first
    assert dropped > 0
    assert delivered + dropped == 6


def test_latency_delays_delivery():
    net = Network(quantum_cycles=5_000)
    net.add_node("tx", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("rx", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("tx", "rx", latency_cycles=200_000)
    net.run(max_cycles=10_000_000)
    assert net.nodes["rx"].finished
    # The receiver had to wait out the link latency.
    assert net.nodes["rx"].cpu.cycles > 200_000


def test_duplicate_node_rejected():
    net = Network()
    net.add_node("a", SensorNode.from_sources([("s", SENDER)]))
    with pytest.raises(ReproError):
        net.add_node("a", SensorNode.from_sources([("s", SENDER)]))


def test_connect_requires_known_nodes():
    net = Network()
    net.add_node("a", SensorNode.from_sources([("s", SENDER)]))
    with pytest.raises(ReproError):
        net.connect("a", "ghost")


def test_bidirectional_creates_two_links():
    net = Network()
    net.add_node("a", SensorNode.from_sources([("s", SENDER)]))
    net.add_node("b", SensorNode.from_sources([("r", RECEIVER)]))
    net.connect("a", "b", bidirectional=True)
    assert net.link_between("a", "b") is not None
    assert net.link_between("b", "a") is not None
