"""The multi-node network simulator."""

from __future__ import annotations

import pytest

from repro.avr import ioports
from repro.avr.devices.radio import RXC
from repro.errors import ReproError
from repro.kernel import SensorNode
from repro.net import Network

SENDER = f"""
main:
    ldi r20, 6
    ldi r16, 0x30
send:
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    inc r16
    dec r20
    brne send
    break
"""

RECEIVER = f"""
.bss received, 8
main:
    ldi r20, 6
    ldi r26, lo8(received)
    ldi r27, hi8(received)
recv:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    st X+, r16
    dec r20
    brne recv
    break
"""

RELAY = f"""
main:
    ldi r20, 6
relay:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
wait_tx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    dec r20
    brne relay
    break
"""


def heap_bytes(node: SensorNode, task_name: str, count: int) -> bytes:
    task = node.task_named(task_name)
    region_base = 0x100  # logical; resolve via the saved region map
    kernel = node.kernel
    # Regions are released at exit; heap bytes stay where they were.
    # Recompute the physical base from the initial layout (task 0 only
    # in these tests).
    return bytes(kernel.cpu.mem.data[kernel.config.ram_start:
                                     kernel.config.ram_start + count])


def test_point_to_point_delivery():
    net = Network(quantum_cycles=5_000)
    net.add_node("tx", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("rx", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("tx", "rx", latency_cycles=1_000)
    net.run(max_cycles=5_000_000)
    assert net.nodes["tx"].finished
    assert net.nodes["rx"].finished
    assert heap_bytes(net.nodes["rx"], "receiver", 6) == b"012345"
    link = net.link_between("tx", "rx")
    assert link.delivered == 6
    assert link.dropped == 0


def test_relay_chain():
    net = Network(quantum_cycles=5_000)
    net.add_node("src", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("mid", SensorNode.from_sources([("relay", RELAY)]))
    net.add_node("dst", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("src", "mid", latency_cycles=1_000)
    net.connect("mid", "dst", latency_cycles=1_000)
    net.run(max_cycles=20_000_000)
    assert all(n.finished for n in net.nodes.values())
    assert heap_bytes(net.nodes["dst"], "receiver", 6) == b"012345"


def test_lossy_link_drops_deterministically():
    def run_once():
        net = Network(quantum_cycles=5_000)
        net.add_node("tx", SensorNode.from_sources([("sender", SENDER)]))
        net.add_node("rx", SensorNode.from_sources(
            [("receiver", RECEIVER)]))
        net.connect("tx", "rx", loss_permille=400)
        net.run(max_cycles=3_000_000)
        link = net.link_between("tx", "rx")
        return link.delivered, link.dropped
    first = run_once()
    second = run_once()
    assert first == second  # deterministic
    delivered, dropped = first
    assert dropped > 0
    assert delivered + dropped == 6


def test_latency_delays_delivery():
    net = Network(quantum_cycles=5_000)
    net.add_node("tx", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("rx", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("tx", "rx", latency_cycles=200_000)
    net.run(max_cycles=10_000_000)
    assert net.nodes["rx"].finished
    # The receiver had to wait out the link latency.
    assert net.nodes["rx"].cpu.cycles > 200_000


def test_duplicate_node_rejected():
    net = Network()
    net.add_node("a", SensorNode.from_sources([("s", SENDER)]))
    with pytest.raises(ReproError):
        net.add_node("a", SensorNode.from_sources([("s", SENDER)]))


def test_connect_requires_known_nodes():
    net = Network()
    net.add_node("a", SensorNode.from_sources([("s", SENDER)]))
    with pytest.raises(ReproError):
        net.connect("a", "ghost")


def test_bidirectional_creates_two_links():
    net = Network()
    net.add_node("a", SensorNode.from_sources([("s", SENDER)]))
    net.add_node("b", SensorNode.from_sources([("r", RECEIVER)]))
    net.connect("a", "b", bidirectional=True)
    assert net.link_between("a", "b") is not None
    assert net.link_between("b", "a") is not None


def test_duplicate_link_rejected():
    net = Network()
    net.add_node("a", SensorNode.from_sources([("s", SENDER)]))
    net.add_node("b", SensorNode.from_sources([("r", RECEIVER)]))
    net.connect("a", "b")
    with pytest.raises(ReproError):
        net.connect("a", "b")


# -- event-driven co-simulation ------------------------------------------------

def _sender_src(start: int, count: int = 6) -> str:
    return f"""
main:
    ldi r20, {count}
    ldi r16, {start}
send:
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    inc r16
    dec r20
    brne send
    break
"""


def _receiver_src(count: int) -> str:
    return f"""
.bss received, {count}
main:
    ldi r20, {count}
    ldi r26, lo8(received)
    ldi r27, hi8(received)
recv:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    st X+, r16
    dec r20
    brne recv
    break
"""


def test_four_node_relay_chain():
    """src -> r1 -> r2 -> dst: per-link counts and end-to-end payload."""
    net = Network()
    net.add_node("src", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("r1", SensorNode.from_sources([("relay", RELAY)]))
    net.add_node("r2", SensorNode.from_sources([("relay", RELAY)]))
    net.add_node("dst", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("src", "r1", latency_cycles=1_000)
    net.connect("r1", "r2", latency_cycles=3_000)
    net.connect("r2", "dst", latency_cycles=500)
    net.run(max_cycles=50_000_000)
    assert all(node.finished for node in net.nodes.values())
    assert heap_bytes(net.nodes["dst"], "receiver", 6) == b"012345"
    for src, dst in (("src", "r1"), ("r1", "r2"), ("r2", "dst")):
        link = net.link_between(src, dst)
        assert (link.delivered, link.dropped) == (6, 0), (src, dst)


def test_star_topology():
    """Three leaf senders feed one hub; every link delivers its bytes."""
    net = Network()
    starts = {"leaf0": 0x30, "leaf1": 0x40, "leaf2": 0x50}
    for name, start in starts.items():
        net.add_node(name, SensorNode.from_sources(
            [("sender", _sender_src(start))]))
    net.add_node("hub", SensorNode.from_sources(
        [("receiver", _receiver_src(18))]))
    for index, name in enumerate(starts):
        net.connect(name, "hub", latency_cycles=1_000 * (index + 1))
    net.run(max_cycles=50_000_000)
    assert all(node.finished for node in net.nodes.values())
    for name in starts:
        link = net.link_between(name, "hub")
        assert (link.delivered, link.dropped) == (6, 0), name
    received = heap_bytes(net.nodes["hub"], "receiver", 18)
    expected = bytes(sorted(
        start + offset for start in starts.values() for offset in range(6)))
    assert bytes(sorted(received)) == expected


def test_arrivals_are_cycle_exact():
    """Every delivered byte arrives at exactly TX cycle + link latency."""
    latency = 1_234
    net = Network()
    net.add_node("tx", SensorNode.from_sources([("sender", SENDER)]))
    net.add_node("rx", SensorNode.from_sources([("receiver", RECEIVER)]))
    net.connect("tx", "rx", latency_cycles=latency)
    net.run(max_cycles=5_000_000)
    link = net.link_between("tx", "rx")
    tx_cycles = net.nodes["tx"].radio.tx_cycles
    assert len(tx_cycles) == 6
    assert link.arrival_cycles == [tx + latency for tx in tx_cycles]


def test_frame_arriving_exactly_at_task_switch_boundary():
    """Bytes landing in the exact cycle of a context switch are not
    lost: the receiver task drains them when it is scheduled back in.
    """
    from repro.kernel import KernelConfig
    compute = """
main:
    ldi r21, 12
outer:
    ldi r20, 250
inner:
    add r24, r20
    dec r20
    brne inner
    dec r21
    brne outer
    break
"""
    config = KernelConfig(time_slice_cycles=20_000)
    node = SensorNode.from_sources(
        [("receiver", RECEIVER), ("compute", compute)], config=config)
    kernel = node.kernel
    # Run to the exact moment of the first context switch...
    node.run(max_cycles=50_000_000,
             until=lambda cpu: kernel.stats.context_switches >= 1)
    assert kernel.stats.context_switches == 1
    assert not node.finished
    # ...and deliver the whole frame in that very cycle.
    node.radio.deliver(b"012345")
    node.run(max_cycles=50_000_000)
    assert node.finished
    assert heap_bytes(node, "receiver", 6) == b"012345"
    assert not node.radio.rx_queue


def test_zero_and_max_frames_between_nodes():
    """Network delivery edge sizes: an empty TX log ferries nothing; a
    200-byte burst (the workload builders' cap) arrives intact."""
    net = Network(quantum_cycles=5_000)
    net.add_node("mute", SensorNode.from_sources(
        [("compute", "main:\n    ldi r16, 1\n    break\n")]))
    net.add_node("rx", SensorNode.from_sources(
        [("receiver", _receiver_src(1))]))
    net.connect("mute", "rx", latency_cycles=1_000)
    net.run(max_cycles=400_000)
    link = net.link_between("mute", "rx")
    assert (link.delivered, link.dropped) == (0, 0)
    assert not net.nodes["rx"].finished  # still waiting: nothing sent

    net = Network(quantum_cycles=5_000)
    count = 200
    net.add_node("tx", SensorNode.from_sources(
        [("sender", _sender_src(0x10, count=count))]))
    net.add_node("rx", SensorNode.from_sources(
        [("receiver", _receiver_src(count))]))
    net.connect("tx", "rx", latency_cycles=1_000)
    net.run(max_cycles=50_000_000)
    assert net.nodes["rx"].finished
    expected = bytes((0x10 + i) & 0xFF for i in range(count))
    assert heap_bytes(net.nodes["rx"], "receiver", count) == expected
    link = net.link_between("tx", "rx")
    assert (link.delivered, link.dropped) == (count, 0)


def _node_state(node: SensorNode):
    cpu = node.cpu
    return (bytes(cpu.r), cpu.sreg, cpu.pc, cpu.sp, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data), cpu.halted,
            node.kernel.stats.context_switches)


def test_single_node_network_identical_to_standalone():
    """Wrapping one node in a Network must not perturb its execution."""
    standalone = SensorNode.from_sources([("sender", SENDER)])
    standalone.run(max_cycles=5_000_000)

    net = Network()
    wrapped = net.add_node("solo", SensorNode.from_sources(
        [("sender", SENDER)]))
    net.run(max_cycles=5_000_000)

    assert standalone.finished and wrapped.finished
    assert _node_state(standalone) == _node_state(wrapped)


def test_network_identical_across_execution_modes():
    """The relay chain lands in the same state fused and stepwise."""
    outcomes = []
    for fuse in (True, False):
        net = Network()
        net.add_node("src", SensorNode.from_sources(
            [("sender", SENDER)], fuse=fuse))
        net.add_node("mid", SensorNode.from_sources(
            [("relay", RELAY)], fuse=fuse))
        net.add_node("dst", SensorNode.from_sources(
            [("receiver", RECEIVER)], fuse=fuse))
        net.connect("src", "mid", latency_cycles=1_000)
        net.connect("mid", "dst", latency_cycles=1_000)
        net.run(max_cycles=20_000_000)
        assert all(node.finished for node in net.nodes.values())
        outcomes.append((
            [_node_state(node) for node in net.nodes.values()],
            net.stats(),
            [link.arrival_cycles for link in net.links]))
    assert outcomes[0] == outcomes[1]
