"""SREG liveness edge cases: trap continuations and CFG joins.

Satellite coverage for :mod:`repro.analysis.static.liveness`: the
dead-write analysis must stay conservative exactly where the kernel's
trap machinery re-enters the program (call continuations leak every
flag to code the local CFG cannot see), while branch predicates must
stay live across join points until the block that finally reads them.
"""

from __future__ import annotations

from repro.analysis.static import build_cfg
from repro.analysis.static.liveness import (ALL_FLAGS, C, Z,
                                            block_transfer,
                                            sreg_effects,
                                            sreg_liveness)
from repro.toolchain import compile_source


def _liveness(source: str):
    program = compile_source(source, name="t")
    cfg = build_cfg(program.items, program.entry,
                    dict(program.symbols.labels))
    return program, cfg, sreg_liveness(cfg)


# -- dead-write kill across trap continuations --------------------------------

def test_dead_flag_write_without_continuation_is_reported():
    """DEC's flag writes are provably dead when the only successor
    overwrites them before any read."""
    program, cfg, live = _liveness("""
main:
    dec r24
    rjmp next
next:
    ldi r20, 1
    add r20, r20
    break
""")
    first = cfg.node_containing(program.entry)
    dead = live.dead_writes(cfg)
    assert dead[first.block.start] & Z  # DEC's Z write: nothing reads it


def test_call_continuation_kills_the_dead_write():
    """The same DEC followed by a call: the callee (a trap continuation
    the local analysis cannot see through) may read any flag, so the
    write must NOT be reported dead."""
    program, cfg, live = _liveness("""
main:
    dec r24
    rcall helper
    rjmp next
next:
    ldi r20, 1
    add r20, r20
    break
helper:
    ret
""")
    first = cfg.node_containing(program.entry)
    assert first.calls                      # the RCALL edge is there
    assert live.live_out[first.block.start] == ALL_FLAGS
    dead = live.dead_writes(cfg)
    assert dead[first.block.start] == 0     # conservatively kept


def test_ret_leaks_all_flags_to_the_caller():
    reads, writes = sreg_effects("RET")
    assert reads == ALL_FLAGS and writes == 0


# -- branch-predicate deferral at CFG joins -----------------------------------

def test_branch_predicate_stays_live_across_join():
    """CPI writes C; the read (BRCC) happens only *after* the join of
    the two arms, so C must be live-in through both — and CPI's C
    write must not be reported dead."""
    program, cfg, live = _liveness("""
main:
    cpi r24, 4
    brne other
    ldi r20, 1
    rjmp join
other:
    ldi r20, 2
join:
    brcc done
    ldi r21, 1
done:
    break
""")
    labels = program.symbols.labels
    first = cfg.node_containing(program.entry)
    fall = cfg.node_containing(labels["other"] - 2)  # ldi r20,1 arm
    other = cfg.node_containing(labels["other"])
    join = cfg.node_containing(labels["join"])
    # The join block itself demands C on entry.
    assert live.live_in[join.block.start] & C
    # Both arms defer the predicate: neither writes C, both carry it.
    for arm in (fall, other):
        assert live.live_in[arm.block.start] & C
        assert live.live_out[arm.block.start] & C
    # And the writer block keeps C live-out, so it is never dead.
    assert live.live_out[first.block.start] & C
    assert not live.dead_writes(cfg)[first.block.start] & C


def test_block_transfer_defers_unwritten_bits():
    """block_transfer propagates bits the block neither reads nor
    writes (the join-deferral primitive the fixpoint relies on)."""
    program, cfg, _ = _liveness("""
main:
    ldi r20, 2
    mov r21, r20
    break
""")
    node = cfg.node_containing(program.entry)
    assert block_transfer(node, C | Z) == C | Z
