"""Baseline systems: t-kernel model, fixed-stack OS, Maté VM."""

from __future__ import annotations

import pytest

from repro.baselines.fixedstack import (FixedStackOS, ThreadSpec,
                                        max_schedulable_threads)
from repro.baselines.mate import MateVm, Op, assemble_bytecode, \
    periodic_task_bytecode
from repro.baselines.native import run_native
from repro.baselines.tkernel import TkernelRunner, tk_classify, \
    tkernel_inflation_bytes
from repro.avr import Instruction
from repro.kernel import SensorNode
from repro.rewriter import PatchKind
from repro.toolchain import link_image
from repro.workloads.bintree import search_task_source
from repro.workloads.kernelbench import KERNEL_BENCHMARKS
from repro.workloads.periodic import periodic_sensmart_source


# -- t-kernel ------------------------------------------------------------------

def test_tk_classify_is_asymmetric():
    # Writes patched, reads native.
    assert tk_classify(Instruction("ST", (0, "X+"), 0)) is \
        PatchKind.MEM_INDIRECT
    assert tk_classify(Instruction("LD", (0, "X+"), 0)) is PatchKind.NONE
    assert tk_classify(Instruction("LDS", (2, 0x200), 0)) is PatchKind.NONE
    assert tk_classify(Instruction("STS", (2, 0x200), 0)) is \
        PatchKind.MEM_DIRECT
    assert tk_classify(Instruction("POP", (1,), 0)) is PatchKind.NONE
    assert tk_classify(Instruction("IN", (16, 0x3D), 0)) is PatchKind.NONE


def test_tk_patches_forward_branches_too():
    assert tk_classify(Instruction("RJMP", (5,), 10)) is \
        PatchKind.BRANCH_BACKWARD
    assert tk_classify(Instruction("BRBC", (1, 3), 10)) is \
        PatchKind.BRANCH_BACKWARD


@pytest.mark.parametrize("name", sorted(KERNEL_BENCHMARKS))
def test_tkernel_runs_benchmarks_correctly(name):
    source = KERNEL_BENCHMARKS[name]()
    native = run_native(source)
    result = TkernelRunner(source).run()
    assert result.finished
    if name == "crc":
        assert result.heap_byte(32) == native.heap_byte(32)
        assert result.heap_byte(33) == native.heap_byte(33)
    if name == "lfsr":
        assert result.heap_byte(0) == native.heap_byte(0)
    if name == "eventchain":
        assert [result.heap_byte(i) for i in range(4)] == \
            [native.heap_byte(i) for i in range(4)]


def test_tkernel_lighter_than_sensmart_at_runtime():
    """Asymmetric protection is cheaper than full translation (Fig. 5)."""
    source = KERNEL_BENCHMARKS["crc"](rounds=2)
    tk = TkernelRunner(source).run()
    node = SensorNode.from_sources([("crc", source)])
    node.run(max_instructions=10_000_000)
    assert tk.exec_cycles < node.cpu.cycles


def test_tkernel_warmup_is_substantial():
    """~1 second of on-node rewriting before the first run (Fig. 6a)."""
    result = TkernelRunner(KERNEL_BENCHMARKS["lfsr"]()).run()
    assert result.warmup_cycles > 5_000_000   # >0.7 s at 7.37 MHz
    assert result.warmup_cycles < 15_000_000  # but not many seconds


def test_tkernel_inflation_exceeds_sensmart():
    """Figure 4: per-site inline expansion beats merged trampolines."""
    for name in KERNEL_BENCHMARKS:
        source = KERNEL_BENCHMARKS[name]()
        tk = tkernel_inflation_bytes(source)
        image = link_image([(name, source)])
        sensmart_total = image.tasks[0].natural.stats.total_bytes
        assert tk["naturalized_bytes"] > sensmart_total, name


def test_tkernel_blocks_kernel_memory_writes():
    poke_kernel = """
main:
    ldi r26, 0xF0      ; X = 0x10F0, inside the kernel reserve
    ldi r27, 0x10
    ldi r16, 0x66
    st X, r16
    break
"""
    runner = TkernelRunner(poke_kernel)
    result = runner.run()
    assert runner.faulted
    assert not result.finished


# -- fixed-stack OS (LiteOS / MANTIS model) ----------------------------------------

def test_fixedstack_threads_complete():
    specs = [
        ThreadSpec("crc", KERNEL_BENCHMARKS["crc"](rounds=1), 64),
        ThreadSpec("lfsr", KERNEL_BENCHMARKS["lfsr"](steps=500), 64),
    ]
    result = FixedStackOS(specs, static_data_bytes=500).run(
        max_cycles=20_000_000)
    assert result.schedulable
    assert all(t.done for t in result.threads)


def test_fixedstack_detects_overflow_via_canary():
    spec = ThreadSpec("search",
                      search_task_source(nodes=60, searches=5),
                      stack_size=64)  # worst case is ~200: must fail
    result = FixedStackOS([spec], static_data_bytes=500).run(
        max_cycles=100_000_000)
    assert not result.schedulable
    assert result.overflows == ["search"]


def test_fixedstack_worst_case_stack_suffices():
    spec = ThreadSpec("search",
                      search_task_source(nodes=60, searches=5),
                      stack_size=256)
    result = FixedStackOS([spec], static_data_bytes=500).run(
        max_cycles=100_000_000)
    assert result.schedulable
    assert result.threads[0].done


def test_fixedstack_layout_rejects_overcommit():
    specs = [ThreadSpec(f"s{i}", "main:\n    break\n", 1000)
             for i in range(8)]
    result = FixedStackOS(specs, static_data_bytes=2000).run()
    assert not result.schedulable
    assert "layout" in result.reason or "budget" in result.reason


def test_fixedstack_heaps_do_not_collide():
    writer = """
.bss cell, 2
main:
    ldi r16, {value}
    sts cell, r16
    ldi r17, 100
spin:
    dec r17
    brne spin
    lds r18, cell
    break
"""
    specs = [ThreadSpec("a", writer.format(value=0xAA), 64),
             ThreadSpec("b", writer.format(value=0xBB), 64)]
    os_model = FixedStackOS(specs, static_data_bytes=500,
                            slice_cycles=100)
    result = os_model.run(max_cycles=10_000_000)
    assert result.schedulable
    # Each thread read back its own value: r18 in its saved registers.
    values = {t.name: t.regs[18] for t in result.threads}
    assert values == {"a": 0xAA, "b": 0xBB}


def test_fixedstack_max_schedulable_is_memory_bound():
    def make(i):
        return ThreadSpec(f"s{i}", "main:\n    break\n", 400)
    # 4096 bytes of SRAM - 2000 static = 2096 -> 5 threads of 400.
    count = max_schedulable_threads(make, static_data_bytes=2000,
                                    limit=10, max_cycles=1_000_000)
    assert count == 5


# -- Maté VM ------------------------------------------------------------------------

def test_mate_arithmetic():
    program = assemble_bytecode([
        (Op.PUSHC, 40),
        (Op.PUSHC, 2),
        Op.ADD,
        (Op.STORE, 0),
        Op.HALT,
    ])
    vm = MateVm(program)
    vm.run()
    assert vm.halted
    assert vm.heap[0] == 42


def test_mate_loop_and_branch():
    program = assemble_bytecode([
        (Op.PUSH16, 10),
        "loop:",
        Op.DEC,
        Op.DUP,
        (Op.JNZ, "loop"),
        (Op.STORE, 0),
        Op.HALT,
    ])
    vm = MateVm(program)
    stats = vm.run()
    assert vm.heap[0] == 0
    assert stats.ops_executed == 1 + 3 * 10 + 2  # push, loop body, tail


def test_mate_periodic_task_completes():
    program = periodic_task_bytecode(compute_instructions=100,
                                     activations=5)
    vm = MateVm(program)
    stats = vm.run()
    assert vm.halted
    assert vm.heap[1] == 5
    assert stats.idle_cycles > 0


def test_mate_is_order_of_magnitude_slower_than_native():
    """Figure 6(c): interpretation costs 1-2 orders of magnitude."""
    compute, activations = 2000, 5
    native = run_native(
        periodic_sensmart_source(compute, activations)
        .replace("sleep", "nop"),  # strip sleeps: compare busy work
        max_instructions=10_000_000)
    vm = MateVm(periodic_task_bytecode(compute, activations))
    stats = vm.run()
    assert stats.busy_cycles > 10 * native.cycles


def test_mate_sense_and_send():
    program = assemble_bytecode([
        (Op.SETTIMER, 64),
        Op.SLEEP,
        Op.SENSE,
        (Op.STORE, 2),
        (Op.LOAD, 2),
        Op.SENDR,
        Op.HALT,
    ])
    vm = MateVm(program)
    vm.run()
    assert len(vm.transmitted) == 1
