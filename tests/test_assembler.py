"""Assembler: directives, labels, expressions, aliases, diagnostics."""

from __future__ import annotations

import pytest

from repro.avr import assemble, decode
from repro.avr import ioports
from repro.errors import AssemblerError


def test_labels_and_branches():
    program = assemble("""
main:
    ldi r16, 3
loop:
    dec r16
    brne loop
    rjmp done
done:
    break
""")
    assert program.labels["main"] == 0
    assert program.labels["loop"] == 1
    # BRNE at address 2 targets 1 -> offset -2 words.
    brne = program.instructions[2]
    assert brne.mnemonic == "BRBC"
    assert brne.operands == (1, -2)


def test_equ_expressions():
    program = assemble("""
.equ BASE = 0x100
.equ SIZE = 4 * 8
.equ TOP = BASE + SIZE - 1
main:
    ldi r16, lo8(TOP)
    ldi r17, hi8(TOP)
    break
""")
    assert program.instructions[0].operands == (16, 0x1F)
    assert program.instructions[1].operands == (17, 0x01)


def test_bss_allocates_from_ram_start():
    program = assemble("""
.bss first, 10
.bss second, 6
main:
    break
""")
    assert program.bss_symbols["first"] == ioports.RAM_START
    assert program.bss_symbols["second"] == ioports.RAM_START + 10
    assert program.heap_size == 16


def test_bss_overflow_detected():
    with pytest.raises(AssemblerError):
        assemble("""
.bss huge, 5000
main:
    break
""")


def test_org_pads_with_nops():
    program = assemble("""
main:
    nop
.org 4
later:
    break
""")
    assert program.labels["later"] == 4
    assert len(program.words) == 5
    assert program.words[1:4] == [0, 0, 0]


def test_dw_and_db_data():
    program = assemble("""
main:
    break
words:
    .dw 0x1234, 0xABCD
bytes:
    .db 1, 2, 3
""")
    assert program.words[1:3] == [0x1234, 0xABCD]
    # .db packs little-endian into words, zero-padded.
    assert program.words[3:5] == [0x0201, 0x0003]


def test_dw_accepts_label_references():
    program = assemble("""
main:
    break
table:
    .dw main, table
""")
    assert program.words[1] == 0
    assert program.words[2] == 1


def test_sreg_aliases():
    program = assemble("""
main:
    sei
    cli
    sec
    break
""")
    mnemonics = [(i.mnemonic, i.operands) for i in program.instructions[:3]]
    assert mnemonics == [("BSET", (7,)), ("BCLR", (7,)), ("BSET", (0,))]


def test_plain_y_z_loads_become_displacement_zero():
    program = assemble("""
main:
    ld r4, Y
    st Z, r5
    break
""")
    assert program.instructions[0].mnemonic == "LDD"
    assert program.instructions[0].operands == (4, "Y", 0)
    assert program.instructions[1].mnemonic == "STD"
    assert program.instructions[1].operands == (5, "Z", 0)


def test_case_insensitive_mnemonics_and_registers():
    program = assemble("""
MAIN:
    LDI R16, 1
    Break
""")
    assert program.instructions[0].operands == (16, 1)


def test_comments_and_blank_lines_ignored():
    program = assemble("""
; leading comment

main:          ; trailing comment
    nop        ; another
    break
""")
    assert len(program.instructions) == 2


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("main:\n    frobnicate r1\n")
    assert "line 2" in str(excinfo.value)


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\n    nop\na:\n    break\n")


def test_branch_out_of_range_rejected():
    source = "main:\n    breq far\n" + "    nop\n" * 100 + "far:\n    break\n"
    with pytest.raises(AssemblerError):
        assemble(source)


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("main:\n    ldi r16, MISSING\n    break\n")


def test_entry_defaults_to_main_label():
    program = assemble("""
helper:
    nop
main:
    break
""")
    assert program.entry == program.labels["main"] == 1


def test_words_decode_back_to_source_instructions():
    program = assemble("""
main:
    ldi r16, 0x42
    push r16
    call sub
    pop r16
    break
sub:
    ret
""")
    # Every emitted instruction decodes back identically from the image.
    for instruction in program.instructions:
        words = program.words[instruction.address:instruction.address + 2]
        decoded = decode(words[0], words[1] if len(words) > 1 else None,
                         instruction.address)
        assert decoded.mnemonic == instruction.mnemonic
        assert decoded.operands == instruction.operands
