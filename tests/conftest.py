"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.avr import AvrCpu, Flash, assemble


def run_asm(source: str, max_instructions: int = 1_000_000,
            devices=(), origin: int = 0) -> AvrCpu:
    """Assemble *source*, run it natively until BREAK, return the CPU."""
    program = assemble(source, origin=origin)
    flash = Flash()
    flash.load(origin, program.words)
    cpu = AvrCpu(flash)
    cpu.pc = program.entry
    for device in devices:
        cpu.attach_device(device)
    cpu.run(max_instructions=max_instructions)
    assert cpu.halted, "program did not reach BREAK"
    return cpu


@pytest.fixture
def asm_runner():
    return run_asm
