"""Rewriter statics: classification, layout, shift table, trampolines."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.avr import Instruction, decode
from repro.avr import ioports
from repro.rewriter import (PatchKind, Rewriter, ShiftTable, TrampolinePool,
                            classify)
from repro.rewriter.blocks import build_blocks
from repro.rewriter.grouping import find_grouped_followers
from repro.toolchain import compile_source, link_image


# -- classification --------------------------------------------------------------

@pytest.mark.parametrize("instruction,expected", [
    (Instruction("ADD", (1, 2), 0), PatchKind.NONE),
    (Instruction("LDI", (16, 5), 0), PatchKind.NONE),
    (Instruction("LD", (0, "X+"), 0), PatchKind.MEM_INDIRECT),
    (Instruction("STD", (2, "Y", 1), 0), PatchKind.MEM_INDIRECT),
    (Instruction("LDS", (2, 0x200), 0), PatchKind.MEM_DIRECT),
    (Instruction("PUSH", (1,), 0), PatchKind.STACK_PUSH),
    (Instruction("POP", (1,), 0), PatchKind.STACK_POP),
    (Instruction("IN", (16, 0x3D), 0), PatchKind.SP_READ),
    (Instruction("OUT", (0x3E, 16), 0), PatchKind.SP_WRITE),
    (Instruction("IN", (16, 0x10), 0), PatchKind.NONE),
    (Instruction("CALL", (0x100,), 0), PatchKind.CALL_DIRECT),
    (Instruction("RCALL", (5,), 0), PatchKind.CALL_DIRECT),
    (Instruction("IJMP", (), 0), PatchKind.INDIRECT_JUMP),
    (Instruction("ICALL", (), 0), PatchKind.INDIRECT_CALL),
    (Instruction("LPM", (0, "Z"), 0), PatchKind.PROG_MEM),
    (Instruction("SLEEP", (), 0), PatchKind.SLEEP),
    (Instruction("BREAK", (), 0), PatchKind.TASK_EXIT),
    (Instruction("RET", (), 0), PatchKind.NONE),
    (Instruction("RETI", (), 0), PatchKind.NONE),
    # Backward vs forward branches.
    (Instruction("RJMP", (-3,), 10), PatchKind.BRANCH_BACKWARD),
    (Instruction("RJMP", (3,), 10), PatchKind.NONE),
    (Instruction("BRBC", (1, -2), 10), PatchKind.BRANCH_BACKWARD),
    (Instruction("BRBC", (1, 2), 10), PatchKind.NONE),
    (Instruction("JMP", (5,), 10), PatchKind.BRANCH_BACKWARD),
    (Instruction("JMP", (50,), 10), PatchKind.NONE),
    # Timer3 is OS-reserved.
    (Instruction("LDS", (2, ioports.TCNT3L), 0), PatchKind.TIMER3_IO),
    (Instruction("STS", (2, ioports.OCR3AH), 0), PatchKind.TIMER3_IO),
])
def test_classification(instruction, expected):
    assert classify(instruction) is expected


def test_self_loop_is_backward():
    # RJMP to itself (offset -1) must trap, or a tight loop never yields.
    assert classify(Instruction("RJMP", (-1,), 4)) is \
        PatchKind.BRANCH_BACKWARD


# -- shift table -----------------------------------------------------------------

def test_shift_table_mapping():
    table = ShiftTable(base=0)
    for address in (2, 5, 9):
        table.add(address)
    # Instructions before the first inflated site do not move.
    assert table.to_naturalized(0) == 0
    assert table.to_naturalized(2) == 2   # the site itself starts in place
    assert table.to_naturalized(3) == 4   # pushed down by site at 2
    assert table.to_naturalized(5) == 6
    assert table.to_naturalized(6) == 8
    assert table.to_naturalized(9) == 11
    assert table.to_naturalized(20) == 23
    assert table.size_bytes == 6


@given(st.sets(st.integers(0, 500), max_size=40),
       st.integers(0, 520))
def test_shift_table_roundtrip(entries, address):
    table = ShiftTable()
    for entry in sorted(entries):
        table.add(entry)
    natural = table.to_naturalized(address)
    assert table.to_original(natural) == address
    # Monotone: mapping preserves order.
    assert table.to_naturalized(address + 1) > natural


# -- trampoline pool ---------------------------------------------------------------

def test_pool_merges_identical_requests():
    pool = TrampolinePool()
    a = pool.request(PatchKind.STACK_PUSH, (16,))
    b = pool.request(PatchKind.STACK_PUSH, (16,))
    c = pool.request(PatchKind.STACK_PUSH, (17,))
    assert a == b != c
    assert pool.count == 2
    assert pool.requests == 3


def test_pool_merge_disabled():
    pool = TrampolinePool(merge=False)
    a = pool.request(PatchKind.STACK_PUSH, (16,))
    b = pool.request(PatchKind.STACK_PUSH, (16,))
    assert a != b
    assert pool.count == 2


def test_pool_placement_is_contiguous():
    pool = TrampolinePool()
    pool.request(PatchKind.STACK_PUSH, (16,))
    pool.request(PatchKind.SLEEP, ())
    end = pool.place(0x1000)
    trampolines = pool.trampolines
    assert trampolines[0].address == 0x1000
    assert trampolines[1].address == 0x1000 + trampolines[0].size_words
    assert end == 0x1000 + pool.size_words


# -- basic blocks and grouping ---------------------------------------------------

def test_blocks_split_at_branches():
    program = compile_source("""
main:
    ldi r16, 1
    breq skip
    ldi r17, 2
skip:
    ldi r18, 3
    rjmp main
""")
    blocks = build_blocks(program.items)
    starts = sorted(block.start for block in blocks)
    assert starts == [0, 2, 3]


def test_grouping_detects_word_access_pairs():
    program = compile_source("""
main:
    ld  r24, Z
    ldd r25, Z+1
    ldd r26, Z+2
    std Z+3, r24
    break
""")
    followers = find_grouped_followers(build_blocks(program.items))
    # First access leads; the next three share its translation.
    assert followers == {1, 2, 3}


def test_grouping_broken_by_pointer_write():
    program = compile_source("""
main:
    ld  r24, Z
    ldi r30, 0
    ldd r25, Z+1
    break
""")
    followers = find_grouped_followers(build_blocks(program.items))
    assert followers == set()


def test_grouping_not_across_branches():
    program = compile_source("""
main:
    ld  r24, Z
    breq over
    ldd r25, Z+1
over:
    break
""")
    followers = find_grouped_followers(build_blocks(program.items))
    assert followers == set()


# -- end-to-end rewriting properties -------------------------------------------------

DEMO = """
.bss counter, 2
main:
    ldi r16, 5
loop:
    push r16
    pop r17
    dec r16
    brne loop
    sts counter, r17
    call helper
    break
helper:
    ldi r18, 1
    ret
"""


def test_instruction_count_preserved():
    image = link_image([("demo", DEMO)])
    natural = image.tasks[0].natural
    original_instructions = natural.program.instructions
    natural_instructions = [i for i in natural.items
                            if not hasattr(i, "value")]
    assert len(natural_instructions) == len(original_instructions)


def test_every_patched_site_is_a_jmp_into_the_trap_region():
    image = link_image([("demo", DEMO)])
    natural = image.tasks[0].natural
    lo, hi = image.trap_region
    for address, site in natural.sites.items():
        word_offset = address - natural.base
        word1 = natural.words[word_offset]
        word2 = natural.words[word_offset + 1]
        decoded = decode(word1, word2)
        assert decoded.mnemonic == "JMP"
        assert lo <= decoded.operands[0] < hi


def test_shift_table_matches_site_inflation():
    image = link_image([("demo", DEMO)])
    natural = image.tasks[0].natural
    one_word_patched = [site for site in natural.sites.values()
                        if site.original.words == 1]
    assert len(natural.shift_table) == len(one_word_patched)


def test_unpatched_branches_retargeted():
    image = link_image([("demo", DEMO)])
    natural = image.tasks[0].natural
    # The original BRNE targeted `loop`; after rewriting it must target
    # the naturalized address of `loop`.
    original = natural.program
    loop_orig = original.symbols.label("loop")
    loop_nat = natural.shift_table.to_naturalized(loop_orig)
    # BRNE is backward here, hence patched; its trampoline target param
    # must be the naturalized loop address.
    backward = [site for site in natural.sites.values()
                if site.kind is PatchKind.BRANCH_BACKWARD]
    assert backward[0].params[2] == loop_nat


def test_two_programs_share_mergeable_trampolines():
    image = link_image([("a", DEMO), ("b", DEMO)])
    # push/pop/sts/sleep-free: merged across programs; branch and call
    # targets differ, so those stay separate.
    assert image.pool.count < image.pool.requests


def test_trampoline_bytes_attributed_once():
    solo = link_image([("a", DEMO)])
    duo = link_image([("a", DEMO), ("b", DEMO)])
    first, second = (t.natural.stats for t in duo.tasks)
    assert first.trampoline_bytes == solo.tasks[0].natural.stats. \
        trampoline_bytes
    # The second program only pays for its unmerged (branch/call) slots.
    assert second.trampoline_bytes < first.trampoline_bytes


def test_inflation_ratio_reasonable():
    image = link_image([("demo", DEMO)])
    stats = image.tasks[0].natural.stats
    assert 1.0 < stats.inflation_ratio < 8.0


def test_naturalized_body_is_fully_decodable():
    """Every word of every naturalized workload decodes as a valid
    instruction walk (no stray data in the executable body)."""
    from repro.avr.disassembler import iter_instructions
    from repro.workloads.kernelbench import KERNEL_BENCHMARKS
    for name, generator in KERNEL_BENCHMARKS.items():
        image = link_image([(name, generator())])
        natural = image.tasks[0].natural
        decoded = list(iter_instructions(natural.words, natural.base))
        undecodable = [entry for entry in decoded
                       if entry[1] is None and entry[2] != 0xFFFF]
        # eventchain carries a .dw handler table; everything else in
        # every program must decode.
        data_words = sum(1 for item in natural.items
                         if hasattr(item, "value"))
        assert len(undecodable) <= data_words, name
