"""Kernel behaviour: isolation, logical addressing, scheduling, stacks."""

from __future__ import annotations

import pytest

from repro.avr import AvrCpu, Flash, assemble
from repro.kernel import KernelConfig, SensorNode
from repro.kernel.task import TaskState

COUNT_TO_TEN = """
.bss result, 2
main:
    ldi r16, 0
    ldi r17, 10
loop:
    inc r16
    dec r17
    brne loop
    sts result, r16
    break
"""


def physical_heap_byte(node, task_name: str, offset: int = 0) -> int:
    kernel = node.kernel
    task = node.task_named(task_name)
    region = kernel.regions.by_task(task.task_id)
    return kernel.cpu.mem.data[region.p_l + offset]


def test_single_task_runs_to_completion():
    node = SensorNode.from_sources([("count", COUNT_TO_TEN)])
    node.run(max_instructions=100_000)
    assert node.finished
    assert node.task_named("count").exit_reason == "exit"


def test_heap_write_lands_in_task_region():
    node = SensorNode.from_sources([("count", COUNT_TO_TEN)])
    kernel = node.kernel
    region = kernel.regions.by_task(0)
    node.run(max_instructions=100_000)
    # result lives at logical 0x100 -> physical p_l (region released at
    # exit, so capture the address first — memory is untouched after).
    assert kernel.cpu.mem.data[region.p_l] == 10


def test_two_tasks_with_same_logical_addresses_are_isolated():
    writer_a = """
.bss cell, 2
main:
    ldi r16, 0xAA
    sts cell, r16
    ldi r17, 200
spin:
    dec r17
    brne spin
    lds r18, cell
    break
"""
    writer_b = writer_a.replace("0xAA", "0xBB")
    node = SensorNode.from_sources([("a", writer_a), ("b", writer_b)])
    kernel = node.kernel
    node.run(max_instructions=1_000_000)
    assert node.finished
    # Each task read its own value back from the identical logical
    # address (r18 holds the LDS result in the saved exit context).
    assert kernel.tasks[0].context.regs[18] == 0xAA
    assert kernel.tasks[1].context.regs[18] == 0xBB
    assert kernel.tasks[0].exit_reason == "exit"
    assert kernel.tasks[1].exit_reason == "exit"


def test_out_of_region_heap_access_terminates_task():
    bad = """
.bss small, 2
main:
    ldi r26, 0x50      ; X = 0x0350: beyond the 2-byte heap, not stack
    ldi r27, 0x03
    ld r16, X
    break
"""
    node = SensorNode.from_sources([("bad", bad), ("good", COUNT_TO_TEN)])
    node.run(max_instructions=1_000_000)
    assert node.finished
    bad_task = node.task_named("bad")
    assert bad_task.state is TaskState.TERMINATED
    assert "fault" in bad_task.exit_reason
    assert node.task_named("good").exit_reason == "exit"


def test_kernel_region_is_unreachable():
    # The kernel area sits at the top of SRAM; a stack-zone access that
    # translates beyond p_u must fault, never touch kernel memory.
    poke = """
main:
    ldi r26, 0xFF
    ldi r27, 0x10      ; logical 0x10FF: top of the logical stack zone
    ldi r16, 0x5A
    st X, r16          ; legal: this is the task's own stack bottom
    break
"""
    node = SensorNode.from_sources([("poke", poke)])
    kernel = node.kernel
    region = kernel.regions.by_task(0)
    node.run(max_instructions=100_000)
    assert node.finished
    # The write landed at the task's physical stack bottom, not 0x10FF.
    assert kernel.cpu.mem.data[region.p_u - 1] == 0x5A


def test_native_equivalence_single_task():
    """A program's visible behaviour is identical native vs SenSmart."""
    source = """
.bss data, 8
main:
    ldi r16, 7
    ldi r26, lo8(data)
    ldi r27, hi8(data)
fill:
    st X+, r16
    dec r16
    brne fill
    call mix
    break
mix:
    push r16
    ldi r16, 3
    lds r18, data + 1
    add r18, r16
    sts data + 1, r18
    pop r16
    ret
"""
    # Native run.
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    native = AvrCpu(flash)
    native.run(max_instructions=100_000)

    # SenSmart run.
    node = SensorNode.from_sources([("p", source)])
    kernel = node.kernel
    region = kernel.regions.by_task(0)
    node.run(max_instructions=100_000)
    assert node.finished

    # Registers agree (r0..r25; pointer registers may differ by design:
    # they hold logical addresses, identical here since heap logical ==
    # native physical for a 0x100-based layout).
    assert list(native.r[:28]) == list(kernel.cpu.r[:28])
    # Heap contents agree byte-for-byte.
    native_heap = native.mem.data[0x100:0x108]
    sensmart_heap = kernel.cpu.mem.data[region.p_l:region.p_l + 8]
    assert native_heap == sensmart_heap


def test_sp_read_returns_logical_address():
    probe = """
main:
    in r16, 0x3D       ; SPL
    in r17, 0x3E       ; SPH
    break
"""
    node = SensorNode.from_sources([("probe", probe), ("other", COUNT_TO_TEN)])
    node.run(max_instructions=1_000_000)
    task = node.task_named("probe")
    logical_sp = (task.context.regs[17] << 8) | task.context.regs[16]
    # Fresh task: logical SP is the top of the logical space (RAM_END),
    # regardless of where the region physically sits.
    assert logical_sp == 0x10FF


def test_sp_write_roundtrip():
    probe = """
main:
    in r16, 0x3D
    in r17, 0x3E
    subi r16, 16       ; drop the logical SP by 16 (no borrow here)
    out 0x3E, r17
    out 0x3D, r16
    in r20, 0x3D
    in r21, 0x3E
    break
"""
    node = SensorNode.from_sources([("probe", probe)])
    node.run(max_instructions=100_000)
    task = node.task_named("probe")
    before = (task.context.regs[17] << 8) | task.context.regs[16]
    after = (task.context.regs[21] << 8) | task.context.regs[20]
    assert after == before == 0x10FF - 16


def test_preemption_interleaves_cpu_bound_tasks():
    spinner = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 4
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    config = KernelConfig(time_slice_cycles=20_000)
    node = SensorNode.from_sources(
        [("s1", spinner), ("s2", spinner)], config=config)
    node.run(max_instructions=10_000_000)
    assert node.finished
    kernel = node.kernel
    # Both ran, with many preemptive switches between them.
    assert kernel.stats.context_switches > 10
    t1, t2 = kernel.tasks[0], kernel.tasks[1]
    # Fair shares: within ~2 slices of each other.
    assert abs(t1.cycles_used - t2.cycles_used) < 3 * 20_000


def test_preemption_survives_cli():
    """Software traps preempt even with interrupts disabled (Sec. IV-B)."""
    selfish = """
main:
    cli                 ; disable interrupts -- should not matter
    ldi r26, 0
    ldi r27, 0
    ldi r28, 4
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    config = KernelConfig(time_slice_cycles=20_000)
    node = SensorNode.from_sources(
        [("selfish", selfish), ("meek", COUNT_TO_TEN)], config=config)
    node.run(max_instructions=10_000_000)
    assert node.finished
    # The meek task completed long before the selfish spinner could have
    # finished, proving preemption happened under CLI.
    assert node.task_named("meek").exit_reason == "exit"
    assert node.kernel.stats.context_switches >= 2


def test_round_robin_is_fair_for_three_tasks():
    spinner = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 2
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    config = KernelConfig(time_slice_cycles=10_000)
    node = SensorNode.from_sources(
        [(f"s{i}", spinner) for i in range(3)], config=config)
    node.run(max_instructions=10_000_000)
    assert node.finished
    used = [t.cycles_used for t in node.kernel.tasks.values()]
    assert max(used) - min(used) < 3 * 10_000


def test_sleep_and_virtual_timer_periodic_wakeup():
    periodic = """
.bss ticks, 1
main:
    ldi r16, 0x02       ; period = 0x0200 timer ticks
    sts 0x87, r16       ; OCR3AH
    ldi r16, 0x00
    sts 0x86, r16       ; OCR3AL (arms the virtual timer)
    ldi r20, 0          ; wake counter
again:
    sleep
    inc r20
    cpi r20, 5
    brne again
    sts ticks, r20
    break
"""
    node = SensorNode.from_sources([("periodic", periodic)])
    kernel = node.kernel
    region = kernel.regions.by_task(0)
    node.run(max_instructions=1_000_000)
    assert node.finished
    assert kernel.cpu.mem.data[region.p_l] == 5
    # Five periods of 0x200 ticks at prescaler 8 = 5 * 4096 cycles.
    assert kernel.cpu.cycles >= 5 * 0x200 * 8
    # Most of that time was idle (the task only wakes briefly).
    assert kernel.stats.idle_cycles > 0.7 * 5 * 0x200 * 8


def test_sleep_without_timer_terminates():
    sleeper = """
main:
    sleep
    break
"""
    node = SensorNode.from_sources([("sleeper", sleeper)])
    node.run(max_instructions=100_000)
    assert node.finished
    assert "sleep" in node.task_named("sleeper").exit_reason


def test_timer3_reads_are_virtualized():
    probe = """
main:
    ldi r20, 100
spin:
    dec r20
    brne spin
    lds r16, 0x88       ; TCNT3L -- intercepted, returns kernel ticks
    lds r17, 0x89       ; TCNT3H (latched)
    break
"""
    node = SensorNode.from_sources([("probe", probe)])
    node.run(max_instructions=100_000)
    task = node.task_named("probe")
    ticks = (task.context.regs[17] << 8) | task.context.regs[16]
    expected = node.cpu.cycles // node.kernel.config.timer3_prescaler
    # Read happened shortly before the end of the run.
    assert 0 < ticks <= expected


def test_stack_overflow_without_donor_terminates_requester():
    # One task, tiny memory: no donor exists, deep recursion must die.
    hog = """
main:
    call recurse
    break
recurse:
    push r0
    push r1
    push r2
    push r3
    rjmp recurse_entry
recurse_entry:
    call recurse
    ret
"""
    config = KernelConfig(kernel_data_bytes=3800)  # squeeze the app area
    node = SensorNode.from_sources([("hog", hog)], config=config)
    node.run(max_instructions=5_000_000)
    assert node.finished
    assert node.task_named("hog").exit_reason == "stack overflow"


def test_relocation_grows_needy_stack_from_donor():
    needy = """
main:
    ldi r24, 60
    call recurse
    break
recurse:
    push r2
    push r3
    push r4
    push r5
    push r6
    push r7
    dec r24
    brne deeper
    rjmp unwind
deeper:
    call recurse
unwind:
    pop r7
    pop r6
    pop r5
    pop r4
    pop r3
    pop r2
    ret
"""
    spinner = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 6
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    config = KernelConfig(time_slice_cycles=20_000)
    sources = [("spin_a", spinner), ("needy", needy),
               ("spin_b", spinner), ("spin_c", spinner),
               ("spin_d", spinner), ("spin_e", spinner),
               ("spin_f", spinner), ("spin_g", spinner)]
    node = SensorNode.from_sources(sources, config=config)
    node.run(max_instructions=30_000_000)
    assert node.finished
    kernel = node.kernel
    assert kernel.stats.relocations >= 1
    needy_task = node.task_named("needy")
    assert needy_task.exit_reason == "exit"
    assert needy_task.stack_grows >= 1
    # Everybody else survived too.
    assert all(t.exit_reason == "exit" for t in kernel.tasks.values())


def test_relocation_can_be_disabled():
    needy = """
main:
    ldi r24, 60
    call recurse
    break
recurse:
    push r2
    push r3
    push r4
    push r5
    push r6
    push r7
    dec r24
    brne deeper
    rjmp unwind
deeper:
    call recurse
unwind:
    pop r7
    pop r6
    pop r5
    pop r4
    pop r3
    pop r2
    ret
"""
    spinner = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 6
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    config = KernelConfig(time_slice_cycles=20_000,
                          enable_relocation=False)
    sources = [("spin_a", spinner), ("needy", needy),
               ("spin_b", spinner), ("spin_c", spinner),
               ("spin_d", spinner), ("spin_e", spinner),
               ("spin_f", spinner), ("spin_g", spinner)]
    node = SensorNode.from_sources(sources, config=config)
    node.run(max_instructions=30_000_000)
    assert node.finished
    assert node.task_named("needy").exit_reason == "stack overflow"


def test_terminated_task_region_is_reclaimed():
    node = SensorNode.from_sources(
        [("a", COUNT_TO_TEN), ("b", COUNT_TO_TEN)])
    kernel = node.kernel
    node.run(max_instructions=1_000_000)
    assert node.finished
    assert kernel.regions.regions == []  # all released


def test_kernel_features_match_table1_claims():
    node = SensorNode.from_sources([("count", COUNT_TO_TEN)])
    features = node.kernel.features()
    assert features["preemptive_multitasking"]
    assert features["concurrent_applications"]
    assert features["interrupt_free_preemption"]
    assert features["memory_protection"]
    assert features["logical_memory_address"]
    assert features["stack_relocation"]


def test_termination_during_call_does_not_corrupt_next_task():
    """Regression: when a stack check terminates the requesting task,
    the aborted push/call must not execute against the task the kernel
    switched to (found via examples/stack_stress.py)."""
    from repro.workloads.bintree import search_task_source
    spinner = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 6
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    sources = [("spin0", spinner),
               ("deep", search_task_source(nodes=140, searches=10))]
    for index in range(1, 12):
        sources.append((f"spin{index}", spinner))
    config = KernelConfig(time_slice_cycles=20_000,
                          enable_relocation=False)
    node = SensorNode.from_sources(sources, config=config)
    node.run(max_instructions=80_000_000)
    assert node.finished
    assert node.task_named("deep").exit_reason == "stack overflow"
    # Every other task is unharmed.
    for task in node.kernel.tasks.values():
        if task.name != "deep":
            assert task.exit_reason == "exit", task.name


def test_region_release_preserves_survivor_stack_frames():
    """Regression: when a task exits, the region below absorbs its
    space; the survivor's logical stack addresses are anchored to p_u,
    so its live stack must slide to the new top (found via a compiled
    C task whose frame-pointer reads went stale after a neighbour
    died)."""
    # Survivor keeps live data in a Y-addressed frame across the
    # neighbour's exit.
    survivor = """
main:
    in r28, 0x3D
    in r29, 0x3E
    sbiw r28, 4          ; allocate a 4-byte frame
    out 0x3D, r28
    out 0x3E, r29
    ldi r16, 0x5C
    std Y+1, r16         ; live frame byte
    ldi r26, 0
    ldi r27, 0
    ldi r20, 6
outer:
inner:
    adiw r26, 1
    brne inner
    dec r20
    brne outer
    ldd r17, Y+1         ; must still read 0x5C after 'quick' exited
    break
"""
    quick = """
main:
    ldi r16, 40
spin:
    dec r16
    brne spin
    break
"""
    config = KernelConfig(time_slice_cycles=20_000)
    node = SensorNode.from_sources(
        [("survivor", survivor), ("quick", quick)], config=config)
    node.run(max_instructions=10_000_000)
    assert node.finished
    task = node.task_named("survivor")
    assert task.exit_reason == "exit"
    assert task.context.regs[17] == 0x5C


def test_boot_with_no_tasks_raises():
    from repro.errors import KernelError, LinkError
    with pytest.raises((KernelError, LinkError)):
        SensorNode.from_sources([])


def test_unsupported_timer3_access_faults_the_task_not_the_node():
    # Timer3 registers live in extended I/O, beyond SBIC/SBIS reach on
    # real AVR, so the handler's defensive branch is exercised directly.
    from repro.errors import TaskFault
    node = SensorNode.from_sources(
        [("victim", COUNT_TO_TEN), ("other", COUNT_TO_TEN)])
    kernel = node.kernel
    kernel.boot()
    with pytest.raises(TaskFault):
        kernel.handlers.timer3_io(kernel.cpu, ("SBIC", (0x68, 0)), 0)
    # The node keeps running regardless.
    node.run(max_instructions=1_000_000)
    assert node.finished
