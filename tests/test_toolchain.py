"""Toolchain: compile, link, image handling, edge cases."""

from __future__ import annotations

import pytest

from repro.avr.memory import Flash
from repro.errors import LinkError, RewriteError
from repro.rewriter import Rewriter
from repro.toolchain import compile_source, link_image
from repro.toolchain.image import KERNEL_CODE_WORDS

TINY = """
main:
    ldi r16, 1
    break
"""

CALLS_OUT = """
main:
    call 0x0000      ; absolute call outside this program
    break
"""


def test_compile_source_records_symbols():
    program = compile_source("""
.bss table, 10
.bss cursor, 2
main:
    break
helper:
    ret
""")
    assert program.symbols.heap_size == 12
    assert program.symbols.data_address("table") == 0x100
    assert program.symbols.data_address("cursor") == 0x10A
    assert program.symbols.label("helper") == program.symbols.entry + 1


def test_compile_at_origin_shifts_labels():
    at_zero = compile_source(TINY, origin=0)
    at_base = compile_source(TINY, origin=0x400)
    assert at_base.entry == at_zero.entry + 0x400
    assert at_base.size_words == at_zero.size_words


def test_bss_base_relocates_data():
    program = compile_source(".bss cell, 2\nmain:\n    break\n",
                             bss_base=0x300)
    assert program.symbols.data_address("cell") == 0x300


def test_link_image_places_programs_consecutively():
    image = link_image([("a", TINY), ("b", TINY), ("c", TINY)])
    bases = [task.base for task in image.tasks]
    assert bases[0] == KERNEL_CODE_WORDS
    for first, second in zip(image.tasks, image.tasks[1:]):
        assert second.base == first.base + first.natural.size_words
    lo, hi = image.trap_region
    assert lo == image.tasks[-1].base + image.tasks[-1].natural.size_words
    assert hi > lo


def test_link_image_rejects_empty_input():
    with pytest.raises(LinkError):
        link_image([])


def test_inter_program_call_rejected():
    with pytest.raises(RewriteError):
        link_image([("bad", CALLS_OUT)])


def test_burn_fills_trap_region_with_breaks():
    image = link_image([("a", TINY)])
    flash = Flash()
    image.burn(flash)
    lo, hi = image.trap_region
    assert all(flash.word(address) == 0x9598 for address in range(lo, hi))


def test_task_for_address():
    image = link_image([("a", TINY), ("b", TINY)])
    for task in image.tasks:
        assert image.task_for_address(task.base) is task
    with pytest.raises(KeyError):
        image.task_for_address(0)


def test_merge_disabled_produces_more_trampolines():
    merged = link_image([("a", TINY), ("b", TINY)])
    unmerged = link_image([("a", TINY), ("b", TINY)],
                          merge_trampolines=False)
    assert unmerged.pool.count >= merged.pool.count


def test_custom_rewriter_flows_through():
    plain = link_image([("a", TINY)])
    ungrouped = link_image([("a", TINY)],
                           rewriter=Rewriter(enable_grouping=False))
    # Same structure for this trivial program, but both paths link.
    assert plain.tasks[0].natural.size_words == \
        ungrouped.tasks[0].natural.size_words


def test_linker_is_deterministic():
    first = link_image([("a", TINY), ("b", TINY)])
    second = link_image([("a", TINY), ("b", TINY)])
    assert first.tasks[0].natural.words == second.tasks[0].natural.words
    assert first.trap_region == second.trap_region
