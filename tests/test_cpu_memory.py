"""Data-memory access: pointer modes, stack, I/O mapping, LPM."""

from __future__ import annotations

import pytest

from repro.avr import AvrCpu, Flash, assemble
from repro.avr import ioports
from repro.errors import MemoryFault
from tests.conftest import run_asm


def test_ld_st_pointer_modes():
    cpu = run_asm("""
.bss area, 8
main:
    ldi r26, lo8(area)
    ldi r27, hi8(area)
    ldi r16, 0x11
    st  X+, r16          ; area[0], X -> area+1
    ldi r16, 0x22
    st  X, r16           ; area[1]
    ldi r28, lo8(area+4)
    ldi r29, hi8(area+4)
    ldi r16, 0x33
    st  -Y, r16          ; area[3], Y -> area+3
    ldi r16, 0x44
    std Y+2, r16         ; area[5]
    ldi r30, lo8(area)
    ldi r31, hi8(area)
    ldd r20, Z+1
    break
""")
    base = 0x100
    assert cpu.mem.data[base + 0] == 0x11
    assert cpu.mem.data[base + 1] == 0x22
    assert cpu.mem.data[base + 3] == 0x33
    assert cpu.mem.data[base + 5] == 0x44
    assert cpu.r[20] == 0x22


def test_lds_sts():
    cpu = run_asm("""
.bss cell, 2
main:
    ldi r16, 0xAB
    sts cell, r16
    lds r17, cell
    break
""")
    assert cpu.r[17] == 0xAB


def test_push_pop_and_sp():
    cpu = run_asm("""
main:
    ldi r16, 0xAA
    ldi r17, 0xBB
    push r16
    push r17
    pop r18
    pop r19
    break
""")
    assert cpu.r[18] == 0xBB
    assert cpu.r[19] == 0xAA
    assert cpu.sp == ioports.RAM_END


def test_sp_accessible_via_in_out():
    cpu = run_asm("""
main:
    in r16, 0x3D      ; SPL
    in r17, 0x3E      ; SPH
    ldi r18, 0x80
    out 0x3D, r18
    ldi r18, 0x05
    out 0x3E, r18
    break
""")
    assert cpu.r[16] == ioports.RAM_END & 0xFF
    assert cpu.r[17] == ioports.RAM_END >> 8
    assert cpu.sp == 0x0580


def test_register_file_visible_in_data_space():
    # Addresses 0..31 alias the register file, as on real AVR.
    cpu = run_asm("""
main:
    ldi r16, 0x5A
    ldi r26, 16       ; X = 16 -> r16
    ldi r27, 0
    ld  r20, X
    break
""")
    assert cpu.r[20] == 0x5A


def test_sreg_readable_in_data_space():
    cpu = run_asm("""
main:
    sec
    in r16, 0x3F
    break
""")
    assert cpu.r[16] & 1


def test_lpm_reads_program_memory():
    cpu = run_asm("""
main:
    ldi r30, lo8(table * 2)    ; LPM uses byte addresses
    ldi r31, hi8(table * 2)
    lpm r16, Z+
    lpm r17, Z+
    lpm r18, Z
    break
table:
    .db 0x10, 0x20, 0x30, 0x40
""")
    assert (cpu.r[16], cpu.r[17], cpu.r[18]) == (0x10, 0x20, 0x30)


def test_memory_fault_on_out_of_range_access():
    program = assemble("""
main:
    ldi r26, 0x00
    ldi r27, 0x20     ; X = 0x2000, beyond RAM_END
    ld r16, X
    break
""")
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    with pytest.raises(MemoryFault):
        cpu.run(max_instructions=100)


def test_stack_grows_down_in_memory():
    cpu = run_asm("""
main:
    ldi r16, 0x77
    push r16
    break
""")
    assert cpu.mem.data[ioports.RAM_END] == 0x77
    assert cpu.sp == ioports.RAM_END - 1


def test_block_helpers_roundtrip():
    cpu = run_asm("main:\n    break\n")
    cpu.mem.write_block(0x200, b"hello")
    assert cpu.mem.read_block(0x200, 5) == b"hello"
    cpu.mem.move_block(0x200, 0x202, 5)  # overlapping move
    assert cpu.mem.read_block(0x202, 5) == b"hello"
