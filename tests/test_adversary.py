"""Adversarial campaigns: injection containment and OTA hot-patching."""

from __future__ import annotations

import pytest

from repro.adversary import run_inject, run_patch
from repro.adversary.attacks import (
    DEFAULT_SEED, MARKER, SHAPE_NAMES, status_digest,
)
from repro.adversary.campaign import (
    CONTAINED_OUTCOMES, OUTCOMES, address_book, build_target,
)
from repro.adversary.patch import (
    FRAME_PAYLOAD, PatchSession, WORKER_V1, make_frames, updater_payload,
)

#: Tier overrides the campaign digests must be invariant under (the
#: default config — fused + elision — is the baseline fixture).
TIER_VARIANTS = (
    dict(fuse=False),
    dict(specialize=True),
    dict(trace=True),
    dict(elide=False),
    dict(trace=True, elide=False),
)


@pytest.fixture(scope="module")
def quick_inject():
    return run_inject(quick=True)


@pytest.fixture(scope="module")
def quick_patch():
    return run_patch(quick=True)


# -- injection campaign --------------------------------------------------------------


def test_campaign_covers_taxonomy(quick_inject):
    result = quick_inject
    # >= 5 distinct attack shapes, each classified (acceptance floor).
    assert len(result.shapes) >= 5
    assert set(result.shapes) <= set(SHAPE_NAMES)
    for trial in result.trials:
        assert trial.outcome in OUTCOMES
    # The anchors are chosen to exercise most of the taxonomy.
    assert result.count("TRAPPED_OOB") >= 1
    assert result.count("TASK_TERMINATED") >= 1
    assert result.count("WATCHDOG") >= 1
    assert result.count("SILENT_CORRUPTION") >= 1
    assert result.hijacked >= 1
    assert result.contained == sum(result.count(o)
                                   for o in CONTAINED_OUTCOMES)


def test_kernel_counters_cross_check(quick_inject):
    # The survivability table's TRAPPED_OOB row equals the kernels'
    # own oob fault-kind counters (satellite 6 wiring).
    assert quick_inject.kernel_oob_faults == \
        quick_inject.count("TRAPPED_OOB")


def test_trapped_distinguished_from_silent_by_canary(quick_inject):
    # At least one attack is contained by logical addressing with the
    # victim's integrity state provably intact...
    trapped = [t for t in quick_inject.trials
               if t.outcome == "TRAPPED_OOB"]
    assert trapped and all(t.canary_ok for t in trapped)
    # ...while a silent-corruption trial shows what "nothing trapped,
    # something is wrong" looks like: canary or self-digest damaged.
    silent = [t for t in quick_inject.trials
              if t.outcome == "SILENT_CORRUPTION"]
    assert silent
    for t in silent:
        assert not t.canary_ok or tuple(t.tx) != (status_digest(),)


def test_hijack_trials_show_attacker_execution(quick_inject):
    hijacked = [t for t in quick_inject.trials
                if t.outcome == "HIJACKED"]
    assert hijacked
    # At least one hijack transmits the gadget marker bytes.
    assert any(MARKER[0] in t.tx and MARKER[1] in t.tx
               for t in hijacked)


def test_inject_digest_tier_invariant(quick_inject):
    for tier in TIER_VARIANTS:
        result = run_inject(quick=True, **tier)
        assert result.digest == quick_inject.digest, tier


def test_elision_never_silences_a_trap():
    # Guard elision must never turn TRAPPED_OOB into
    # SILENT_CORRUPTION: compare trial-by-trial, elide on vs off.
    shapes = ["heap-ovf", "sp-pivot"]
    on = run_inject(quick=True, shapes=shapes, elide=True)
    off = run_inject(quick=True, shapes=shapes, elide=False)
    assert [t.key for t in on.trials] == [t.key for t in off.trials]


def test_campaign_reproduces_from_seed(quick_inject):
    again = run_inject(quick=True, seed=DEFAULT_SEED)
    assert again.digest == quick_inject.digest
    assert [t.key for t in again.trials] == \
        [t.key for t in quick_inject.trials]


def test_render_table_shape(quick_inject):
    text = quick_inject.render()
    for shape in quick_inject.shapes:
        assert shape in text
    assert "campaign digest" in text
    assert "(ok)" in text  # kernel cross-check line


# -- hot-patching --------------------------------------------------------------------


def test_patch_session_succeeds(quick_patch):
    report = quick_patch
    assert report.ok, report.failure
    assert report.network_alive
    assert report.beacons_before > 0 and report.beacons_after > 0
    assert report.flash_words > 0
    # Compaction really relocated resident state in the patch window.
    assert report.ram_bytes_moved > 0
    # The lossy updater link exercised the checksum reject path.
    assert report.frames_rejected >= 1


def test_patched_task_matches_cold_boot(quick_patch):
    assert quick_patch.worker_digest == quick_patch.cold_digest


def test_patch_digest_tier_invariant(quick_patch):
    for tier in (dict(fuse=False), dict(trace=True), dict(elide=False)):
        report = run_patch(quick=True, **tier)
        assert report.digest == quick_patch.digest, tier


# -- OTA framing ---------------------------------------------------------------------


def test_make_frames_round_trip():
    session = PatchSession()
    for frame in make_frames(WORKER_V1):
        session.feed(frame)
    assert session.complete
    assert session.assembled == WORKER_V1.encode("ascii")


def test_session_rejects_corrupt_and_dedups():
    frames = make_frames(WORKER_V1)
    bad = bytearray(frames[1])
    bad[-1] ^= 0x40  # checksum bit flip breaks the frame
    session = PatchSession()
    session.feed(b"\x99\x42")        # leading garbage: resync on magic
    session.feed(bytes(bad))         # rejected
    assert not session.complete
    for frame in frames:
        session.feed(frame)
        session.feed(frame)          # every frame again: duplicates
    assert session.complete
    assert session.assembled == WORKER_V1.encode("ascii")
    assert session.rejected >= 1
    assert session.duplicates >= len(frames) - 2


def test_session_incomplete_without_all_frames():
    frames = make_frames(WORKER_V1)
    session = PatchSession()
    for frame in frames[:-2] + [frames[-1]]:  # one data frame missing
        session.feed(frame)
    assert not session.complete


def test_updater_payload_repeats_shuffled_passes():
    payload = updater_payload(WORKER_V1, passes=3, seed=DEFAULT_SEED)
    one_pass = updater_payload(WORKER_V1, passes=1, seed=DEFAULT_SEED)
    assert len(payload) == 3 * len(one_pass)
    assert payload[:len(one_pass)] == one_pass  # pass 0 in order
    assert payload[len(one_pass):2 * len(one_pass)] != one_pass
    # Deterministic from the seed.
    assert payload == updater_payload(WORKER_V1, passes=3,
                                      seed=DEFAULT_SEED)
    # Frames are bounded so a length byte can never alias the magic.
    for frame in make_frames(WORKER_V1):
        assert len(frame) - 4 <= FRAME_PAYLOAD


# -- targeting map -------------------------------------------------------------------


def test_address_book_resolves_victim_labels():
    book = address_book(build_target("stack"))
    assert "gadget" in book.labels
    assert book.naturalized["gadget"] != book.labels["gadget"]
    lo, hi = book.victim_span
    assert lo <= book.labels["gadget"] < hi
    trap_lo, trap_hi = book.trap_region
    assert trap_lo < trap_hi <= book.flash_end
