"""Unit tests for the simulation core: EventQueue and SimClock."""

from __future__ import annotations

from repro.sim import INFINITY, EventQueue, SimClock


def test_empty_queue_next_due_is_infinity():
    queue = EventQueue()
    assert queue.next_due == INFINITY
    assert len(queue) == 0
    assert queue.run_due(1_000_000) == 0


def test_schedule_updates_next_due_to_earliest():
    queue = EventQueue()
    queue.schedule(500, lambda: None)
    assert queue.next_due == 500
    queue.schedule(200, lambda: None)
    assert queue.next_due == 200
    queue.schedule(900, lambda: None)
    assert queue.next_due == 200
    assert len(queue) == 3


def test_run_due_fires_in_due_then_seq_order():
    queue = EventQueue()
    fired = []
    queue.schedule(100, lambda: fired.append("b"))
    queue.schedule(50, lambda: fired.append("a"))
    queue.schedule(100, lambda: fired.append("c"))  # same cycle, later seq
    assert queue.run_due(100) == 3
    assert fired == ["a", "b", "c"]
    assert queue.next_due == INFINITY


def test_run_due_leaves_future_events():
    queue = EventQueue()
    fired = []
    queue.schedule(10, lambda: fired.append(10))
    queue.schedule(20, lambda: fired.append(20))
    assert queue.run_due(15) == 1
    assert fired == [10]
    assert queue.next_due == 20


def test_cancelled_event_never_fires():
    queue = EventQueue()
    fired = []
    event = queue.schedule(10, lambda: fired.append("no"))
    queue.schedule(20, lambda: fired.append("yes"))
    queue.cancel(event)
    assert event.cancelled
    assert queue.next_due == 20  # cancelling the head refreshes next_due
    assert queue.run_due(100) == 1
    assert fired == ["yes"]


def test_cancel_tolerates_none_and_double_cancel():
    queue = EventQueue()
    queue.cancel(None)
    event = queue.schedule(10, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert queue.next_due == INFINITY


def test_callback_may_schedule_immediate_event():
    """A callback scheduling an event due <= now fires in the same call."""
    queue = EventQueue()
    fired = []

    def first():
        fired.append("first")
        queue.schedule(5, lambda: fired.append("chained"))

    queue.schedule(10, first)
    assert queue.run_due(10) == 2
    assert fired == ["first", "chained"]


def test_callback_may_cancel_pending_event():
    queue = EventQueue()
    fired = []
    victim = queue.schedule(20, lambda: fired.append("victim"))
    queue.schedule(10, lambda: queue.cancel(victim))
    assert queue.run_due(30) == 1
    assert fired == []


def test_rearming_pattern_keeps_firing():
    """The Timer3/virtual-timer idiom: each fire re-schedules itself."""
    queue = EventQueue()
    fires = []

    def fire(due=100):
        fires.append(due)
        if due < 500:
            queue.schedule(due + 100, lambda: fire(due + 100))

    queue.schedule(100, fire)
    for now in range(0, 601, 50):
        queue.run_due(now)
    assert fires == [100, 200, 300, 400, 500]


def test_simclock_skip_to_accounts_idle():
    clock = SimClock()
    fired = []
    clock.events.schedule(700, lambda: fired.append(clock.cycles))
    clock.skip_to(1_000)
    assert clock.cycles == 1_000
    assert clock.idle_cycles == 1_000
    assert fired == [1_000]  # fired after the jump, at the new now
    clock.skip_to(500)  # never moves backwards
    assert clock.cycles == 1_000
    assert clock.idle_cycles == 1_000
