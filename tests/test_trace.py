"""Trace JIT: chained superblocks must be an invisible speed knob.

Four angles:

* differential bit-identity — the paper workloads retire identical
  architectural and kernel state traced, specialized, fused, and
  stepwise;
* deoptimization — a forced mid-run relocation bumps the region epoch,
  the stale traces' hoisted guards fire, and the run (resumed from an
  arbitrary mid-loop stop) stays bit-identical;
* the persistent store — a warm process compiles nothing and
  reproduces the cold digest byte for byte; corrupt or mismatched
  store files fall back to a clean recompile;
* the SREG-liveness masks the flag-elision pass is built on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.static import ALL_FLAGS, sreg_effects
from repro.experiments.extra_static import _workload_sources
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import KernelConfig, SensorNode

# SPIN shape (inner self-loop strip + outer chain) plus stack traffic,
# so traces with both branch traps and region-guarded sites compile.
_SPIN_STACK = """
main:
    ldi r28, 24
outer:
    push r16
    pop r16
    ldi r26, 0
    ldi r27, 0
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def _digest(node):
    kernel, cpu = node.kernel, node.cpu
    return (bytes(cpu.r), cpu.pc, cpu.sp, cpu.sreg, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data),
            dict(kernel.stats.trap_counts), kernel.stats.kernel_cycles,
            kernel.stats.context_switches,
            kernel.stats.scheduler_checks,
            tuple(kernel.stats.terminations))


def _boot(sources, **overrides):
    return SensorNode.from_sources(sources, block_cache=False,
                                   **overrides)


# -- differential bit-identity --------------------------------------------------

@pytest.mark.parametrize("workload", ["table1", "table2", "kernelbench"])
def test_traced_matches_every_other_tier(workload):
    sources = _workload_sources(workload, quick=True)

    def run(**overrides):
        node = _boot(sources, **overrides)
        node.run(max_instructions=50_000_000)
        assert node.finished
        return node

    traced = run(trace=True)
    if workload != "table1":  # table1-quick's loops are single-block
        assert traced.kernel.tracer.stats.compiled > 0
    reference = _digest(traced)
    assert reference == _digest(run(trace=False))
    assert reference == _digest(run(trace=False, specialize=False))
    assert reference == _digest(run(trace=False, specialize=False,
                                    fuse=False))


def test_fusion_cap_override_reaches_cpu_and_preserves_state():
    wide = _boot([("spin", _SPIN_STACK)])
    assert wide.cpu._max_block == KernelConfig().max_block_members
    narrow = _boot([("spin", _SPIN_STACK)], max_block_members=3)
    assert narrow.cpu._max_block == 3
    for node in (wide, narrow):
        node.run(max_instructions=5_000_000)
        assert node.finished
    assert _digest(wide) == _digest(narrow)


# -- deoptimization and mid-trace re-entry --------------------------------------

def test_relocation_deopts_stale_traces_bit_identically():
    """Growing a stack mid-run bumps the region epoch: every trace
    compiled before the move must deopt (guard failure, counted), the
    interrupted loop must re-enter correctly from its mid-trace stop
    point, and the final state must match the untraced run."""

    def run(trace):
        # Two tasks so growing one stack has a donor to take from.
        node = _boot([("spin", _SPIN_STACK), ("spin2", _SPIN_STACK)],
                     trace=trace)
        # Stop mid-loop (inside the strip-mined inner spin), with
        # every hot trace already compiled and guarded on epoch 0.
        node.run(max_instructions=600_000)
        assert not node.finished
        result = node.kernel.relocator.grow_stack(0, 16)
        assert result.moved
        assert node.kernel.tasks[0].region_epoch > 0
        node.run(max_instructions=50_000_000)
        assert node.finished
        return node

    traced = run(trace=True)
    assert traced.kernel.specializer.stats.deopts > 0
    assert _digest(traced) == _digest(run(trace=False))


def test_null_fault_plan_with_traces_leaves_no_trace():
    sources = _workload_sources("kernelbench", quick=True)

    def run(attach):
        node = _boot(sources, trace=True)
        if attach:
            plan = FaultPlan(seed=0xDEAD, horizon_cycles=10_000_000)
            FaultInjector(plan).attach("n", node)
        node.run(max_instructions=50_000_000)
        assert node.finished
        return node

    assert _digest(run(attach=False)) == _digest(run(attach=True))


# -- the persistent store -------------------------------------------------------

_STORE_DRIVER = """
import json, sys
from repro.kernel import SensorNode

source = '''{source}'''
node = SensorNode.from_sources([("spin", source)], block_cache=False)
node.run(max_instructions=5_000_000)
assert node.finished
stats = node.kernel.tracer.stats
print(json.dumps({{
    "compiled": stats.compiled,
    "store_hits": stats.store_hits,
    "instret": node.cpu.instret,
    "cycles": node.cpu.cycles,
    "mem": node.cpu.mem.data.hex(),
}}))
"""


def _store_run(tmp_path, store_dir):
    script = _STORE_DRIVER.format(source=_SPIN_STACK)
    env = dict(os.environ, SENSMART_TRACE_STORE=str(store_dir),
               PYTHONPATH=str(Path(__file__).resolve().parent.parent
                              / "src"))
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


def test_store_round_trip_warm_process_compiles_nothing(tmp_path):
    store = tmp_path / "traces"
    cold = _store_run(tmp_path, store)
    assert cold["compiled"] > 0
    files = list(store.glob("*.json"))
    assert files, "cold run persisted no artifacts"
    warm = _store_run(tmp_path, store)
    assert warm["compiled"] == 0
    assert warm["store_hits"] > 0
    assert warm == dict(cold, compiled=0,
                        store_hits=warm["store_hits"])


def test_store_corruption_falls_back_to_clean_recompile(tmp_path):
    store = tmp_path / "traces"
    cold = _store_run(tmp_path, store)
    (file,) = store.glob("*.json")

    # Outright garbage: unreadable JSON.
    pristine = file.read_text()
    file.write_text("{ not json")
    garbage = _store_run(tmp_path, store)
    assert garbage["compiled"] == cold["compiled"]
    assert garbage["mem"] == cold["mem"]

    # Valid JSON, wrong version: versioned artifacts are ignored.
    payload = json.loads(pristine)
    payload["version"] = 999
    file.write_text(json.dumps(payload))
    stale = _store_run(tmp_path, store)
    assert stale["compiled"] == cold["compiled"]
    assert stale["mem"] == cold["mem"]

    # Truncated artifact source: per-entry fallback, state unharmed.
    payload = json.loads(pristine)
    for entries in payload["traces"].values():
        for artifact in entries.values():
            artifact["source"] = "def _blk(:\n"
    file.write_text(json.dumps(payload))
    broken = _store_run(tmp_path, store)
    assert broken["compiled"] == cold["compiled"]
    assert broken["mem"] == cold["mem"]


# -- SREG liveness masks --------------------------------------------------------

def test_sreg_effects_masks():
    C, Z, N, V, S, H, T, I = (1 << b for b in range(8))
    arith = C | Z | N | V | S | H
    assert sreg_effects("ADD") == (0, arith)
    assert sreg_effects("ADC") == (C, arith)
    assert sreg_effects("SBC") == (C | Z, arith)
    assert sreg_effects("BRBS", (1, -3)) == (Z, 0)
    assert sreg_effects("BSET", (7,)) == (0, I)
    assert sreg_effects("OUT", (0x3F, 16)) == (0, ALL_FLAGS)
    assert sreg_effects("IN", (16, 0x3F)) == (ALL_FLAGS, 0)
    assert sreg_effects("RET") == (ALL_FLAGS, 0)
    assert sreg_effects("MYSTERY_OP") == (ALL_FLAGS, 0)  # conservative
    assert sreg_effects("LDI") == (0, 0)


def test_strip_elision_keeps_flag_tables_out_of_the_hot_loop():
    """The SPIN inner loop's ADIW flags feed only its own BRNE: the
    strip-mined body must test the result predicate directly, with the
    flag materialization hoisted to the strip exits."""
    import repro.avr.trace as trace_mod

    captured = {}
    original = trace_mod._Emitter.source

    def capture(self):
        text = original(self)
        captured[self.head_addr] = text
        return text

    trace_mod._Emitter.source = capture
    try:
        node = _boot([("spin", _SPIN_STACK)])
        node.run(max_instructions=300_000)
    finally:
        trace_mod._Emitter.source = original
    strip_sources = [text for text in captured.values()
                     if "for j in range(1, im + 1):" in text]
    assert strip_sources, "inner spin did not strip-mine"
    for text in strip_sources:
        loop = text.split("for j in range(1, im + 1):", 1)[1]
        loop = loop.split("else:", 1)[0]
        assert "sr =" not in loop  # flags elided from the hot body


# -- store bounding -------------------------------------------------------------

def _fake_base(tag: int):
    # the filename keeps only a fingerprint prefix, so vary the front
    return (f"{tag:02x}" * 16, 4096, ((100, 120),))


def test_store_is_bounded_with_lru_eviction(tmp_path):
    from repro.avr.trace import TraceStore
    store = TraceStore(str(tmp_path), max_files=3)
    for tag in range(5):
        store.put(_fake_base(tag), 0x100, "key", {"source": "pass\n"})
        time.sleep(0.01)  # distinct mtimes order the eviction
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 3
    assert store.stats.writes == 5
    assert store.stats.evictions == 2
    # the survivors are the most recently written images
    assert store.load(_fake_base(4))
    assert store.load(_fake_base(0)) == {}


def test_store_load_refreshes_mtime_lru(tmp_path):
    from repro.avr.trace import TraceStore
    store = TraceStore(str(tmp_path), max_files=2)
    store.put(_fake_base(0), 0x100, "key", {"source": "pass\n"})
    time.sleep(0.01)
    store.put(_fake_base(1), 0x100, "key", {"source": "pass\n"})
    time.sleep(0.01)
    # touch image 0 from a fresh store (no warm cache), then add a
    # third image: image 1 is now the oldest and must be the victim
    reader = TraceStore(str(tmp_path), max_files=2)
    assert reader.load(_fake_base(0))
    time.sleep(0.01)
    reader.put(_fake_base(2), 0x100, "key", {"source": "pass\n"})
    assert reader.load(_fake_base(0))
    assert reader.load(_fake_base(2))
    fresh = TraceStore(str(tmp_path), max_files=2)
    assert fresh.load(_fake_base(1)) == {}


def test_store_counts_corrupt_files(tmp_path):
    from repro.avr.trace import TraceStore
    store = TraceStore(str(tmp_path), max_files=8)
    store.put(_fake_base(0), 0x100, "key", {"source": "pass\n"})
    (file,) = tmp_path.glob("*.json")
    file.write_text("{ not json")
    fresh = TraceStore(str(tmp_path), max_files=8)
    assert fresh.load(_fake_base(0)) == {}
    assert fresh.stats.corrupt == 1
    # fingerprint mismatch with a valid file also counts
    file.write_text(json.dumps({"version": 1,
                                "fingerprint": "f" * 32,
                                "traces": {}}))
    fresh2 = TraceStore(str(tmp_path), max_files=8)
    assert fresh2.load(_fake_base(0)) == {}
    assert fresh2.stats.corrupt == 1


def test_store_max_files_env_override(tmp_path, monkeypatch):
    from repro.avr import trace as trace_mod
    monkeypatch.setenv("SENSMART_TRACE_STORE_MAX", "7")
    assert trace_mod.TraceStore(str(tmp_path)).max_files == 7
    monkeypatch.setenv("SENSMART_TRACE_STORE_MAX", "junk")
    assert trace_mod.TraceStore(str(tmp_path)).max_files == \
        trace_mod._DEFAULT_STORE_MAX_FILES
    monkeypatch.delenv("SENSMART_TRACE_STORE_MAX")
    assert trace_mod.TraceStore(str(tmp_path)).max_files == \
        trace_mod._DEFAULT_STORE_MAX_FILES
