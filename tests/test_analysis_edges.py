"""Edge cases: classify extensions, skip distances, analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis.inflation import inflation_breakdown
from repro.analysis.profile import flat_profile, trap_histogram
from repro.avr.instruction import Instruction
from repro.errors import ReproError, RewriteError
from repro.kernel import SensorNode
from repro.rewriter.classify import PatchKind, classify
from repro.rewriter.naturalized import RewriteStats
from repro.toolchain import link_image

# -- classify: extended-addressing rejection ----------------------------------

@pytest.mark.parametrize("mnemonic", ["EIJMP", "EICALL", "ELPM"])
def test_classify_rejects_extended_indirect(mnemonic):
    with pytest.raises(RewriteError) as excinfo:
        classify(Instruction(mnemonic, (), 0x123))
    message = str(excinfo.value)
    assert mnemonic in message
    assert "0x0123" in message


def test_extended_rejection_is_a_repro_error():
    with pytest.raises(ReproError):
        classify(Instruction("EIJMP", (), 0))


# -- classify: skips over reserved registers ----------------------------------

@pytest.mark.parametrize("mnemonic", ["SBIC", "SBIS"])
def test_classify_rejects_skip_over_timer3(mnemonic):
    # I/O address 0x5C maps to data address 0x7C (ETIFR, Timer3 block).
    with pytest.raises(RewriteError) as excinfo:
        classify(Instruction(mnemonic, (0x5C, 3), 0x10))
    assert mnemonic in str(excinfo.value)


def test_classify_allows_skip_over_ordinary_io():
    assert classify(Instruction("SBIC", (0x06, 3), 0)) is PatchKind.NONE


def test_classify_patches_sbi_cbi_on_timer3():
    assert classify(Instruction("SBI", (0x5C, 1), 0)) is \
        PatchKind.TIMER3_IO
    assert classify(Instruction("CBI", (0x5C, 1), 0)) is \
        PatchKind.TIMER3_IO


# -- skip distance over inflated successors -----------------------------------

_SKIP_SOURCE = """
.bss out, 1
main:
    ldi r16, {value}
    ldi r17, 0xAA
    ldi r18, 0x00
    sbrc r16, 0
    push r17
    sbrc r16, 0
    pop r18
    sts out, r18
    break
"""


def _run_skip(value: int):
    node = SensorNode.from_sources(
        [("skip", _SKIP_SOURCE.format(value=value))])
    kernel = node.kernel
    heap_base = kernel.regions.by_task(0).p_l
    node.run(max_instructions=1_000_000)
    assert node.finished
    return node, kernel.cpu.mem.data[heap_base]


def test_skip_clears_whole_inflated_site():
    # Bit 0 clear: both SBRC skips fire.  In the naturalized image the
    # skipped PUSH/POP are 2-word trampoline JMPs — the skip must clear
    # the whole 32-bit site, not land in its second word.
    node, out = _run_skip(0)
    assert out == 0x00
    assert node.kernel.tasks[0].max_stack_used == 0


def test_skip_not_taken_runs_patched_site():
    node, out = _run_skip(1)
    assert out == 0xAA
    assert node.kernel.tasks[0].max_stack_used == 1


def test_skipped_site_is_inflated_in_image():
    # Pin the layout this regression relies on: the PUSH after SBRC
    # really is a 1->2 word inflated site in the naturalized image.
    image = link_image([("skip", _SKIP_SOURCE.format(value=0))])
    natural = image.tasks[0].natural
    push = next(item for item in natural.program.items
                if isinstance(item, Instruction)
                and item.mnemonic == "PUSH")
    nat_address = natural.shift_table.to_naturalized(push.address)
    site = natural.sites[nat_address]
    assert site.kind is PatchKind.STACK_PUSH
    assert push.words == 1  # original is 16-bit; the site is 32-bit


# -- inflation helpers --------------------------------------------------------

def test_inflation_ratio_of_empty_stats_is_one():
    assert RewriteStats().inflation_ratio == 1.0


def test_inflation_breakdown_trivial_program():
    breakdown = inflation_breakdown("t", "main:\n    break\n")
    assert breakdown.native_bytes == 2
    assert breakdown.sensmart_rewritten == 4  # BREAK inflates to a JMP
    assert breakdown.sensmart_ratio >= 1.0
    assert breakdown.tkernel_bytes >= breakdown.native_bytes


# -- profile helpers ----------------------------------------------------------

def test_flat_profile_empty_counts():
    profile = flat_profile([], {})
    assert profile.total_executions == 0
    assert profile.symbols == []
    assert profile.share_of("anything") == 0.0


def test_flat_profile_zero_hits_have_zero_share():
    profile = flat_profile([0, 0, 0, 0], {"main": 0, "helper": 2})
    assert profile.total_executions == 0
    assert profile.symbols == []


def test_flat_profile_share_of_missing_symbol_is_zero():
    profile = flat_profile([5, 5], {"main": 0})
    assert profile.share_of("main") == 1.0
    assert profile.share_of("no_such_symbol") == 0.0


def test_flat_profile_renders_with_no_symbols():
    text = flat_profile([], {}).render()
    assert "flat profile (0 instructions)" in text


def test_trap_histogram_handles_fresh_kernel():
    node = SensorNode.from_sources([("t", "main:\n    break\n")])
    text = trap_histogram(node.kernel)  # no traps executed yet
    assert "kernel trap histogram" in text
