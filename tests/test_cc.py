"""TinyC compiler: expressions, control flow, functions, intrinsics."""

from __future__ import annotations

import pytest

from repro.baselines.native import run_native
from repro.cc import compile_c_to_asm
from repro.cc.lexer import CompileError
from repro.kernel import SensorNode


def run_c(source: str, max_instructions: int = 5_000_000):
    asm = compile_c_to_asm(source)
    result = run_native(asm, max_instructions=max_instructions)
    assert result.finished, "program did not halt"
    return result


def global_u16(result, offset: int) -> int:
    return result.heap_byte(offset) | (result.heap_byte(offset + 1) << 8)


# -- expressions ----------------------------------------------------------------

@pytest.mark.parametrize("expression,expected", [
    ("1 + 2", 3),
    ("10 - 3", 7),
    ("200 + 200", 400),
    ("7 * 6", 42),
    ("300 * 17", (300 * 17) & 0xFFFF),
    ("0xF0F0 & 0x0FF0", 0x00F0),
    ("0xF000 | 0x000F", 0xF00F),
    ("0xFF00 ^ 0x0FF0", 0xF0F0),
    ("1 << 10", 1024),
    ("0x8000 >> 15", 1),
    ("5 < 6", 1),
    ("6 < 5", 0),
    ("5 <= 5", 1),
    ("6 <= 5", 0),
    ("6 > 5", 1),
    ("5 > 6", 0),
    ("5 >= 5", 1),
    ("5 >= 6", 0),
    ("300 == 300", 1),
    ("300 == 301", 0),
    ("300 != 301", 1),
    ("1 && 2", 1),
    ("1 && 0", 0),
    ("0 || 3", 1),
    ("0 || 0", 0),
    ("!0", 1),
    ("!7", 0),
    ("-1", 0xFFFF),
    ("~0", 0xFFFF),
    ("(2 + 3) * 4", 20),
    ("2 + 3 * 4", 14),
    ("1 + 2 == 3", 1),
    ("100 / 7", 14),
    ("100 % 7", 2),
    ("65535 / 255", 257),
    ("1234 % 100", 34),
    ("7 / 9", 0),
    ("7 % 9", 7),
])
def test_expression(expression, expected):
    result = run_c(f"""
u16 out;
void main() {{ out = {expression}; halt(); }}
""")
    assert global_u16(result, 0) == expected, expression


def test_u8_truncates_on_store():
    result = run_c("""
u8 small;
u16 wide;
void main() {
    small = 300;        // truncates to 44
    wide = small + 1;   // loads zero-extended
    halt();
}
""")
    assert result.heap_byte(0) == 300 & 0xFF
    assert global_u16(result, 1) == (300 & 0xFF) + 1


def test_u16_wraparound():
    result = run_c("""
u16 out;
void main() { out = 65535 + 2; halt(); }
""")
    assert global_u16(result, 0) == 1


# -- control flow -------------------------------------------------------------------

def test_if_else_chain():
    result = run_c("""
u16 out;
u16 classify(u16 x) {
    if (x < 10) { return 1; }
    else if (x < 100) { return 2; }
    else { return 3; }
}
void main() {
    out = classify(5) + classify(50) * 10 + classify(500) * 100;
    halt();
}
""")
    assert global_u16(result, 0) == 1 + 20 + 300


def test_while_loop():
    result = run_c("""
u16 out;
void main() {
    u16 n = 0;
    u16 acc = 0;
    while (n < 100) { acc = acc + n; n = n + 1; }
    out = acc;
    halt();
}
""")
    assert global_u16(result, 0) == sum(range(100))


def test_for_loop_with_step():
    result = run_c("""
u16 out;
void main() {
    u16 i;
    u16 acc = 0;
    for (i = 0; i < 20; i = i + 2) { acc = acc + i; }
    out = acc;
    halt();
}
""")
    assert global_u16(result, 0) == sum(range(0, 20, 2))


def test_nested_loops():
    result = run_c("""
u16 out;
void main() {
    u16 i;
    u16 j;
    u16 acc = 0;
    for (i = 1; i <= 5; i = i + 1) {
        for (j = 1; j <= 5; j = j + 1) {
            acc = acc + i * j;
        }
    }
    out = acc;
    halt();
}
""")
    assert global_u16(result, 0) == sum(i * j for i in range(1, 6)
                                        for j in range(1, 6))


# -- arrays -----------------------------------------------------------------------------

def test_u8_and_u16_arrays():
    result = run_c("""
u8 bytes[8];
u16 words[4];
u16 out;
void main() {
    u16 i;
    for (i = 0; i < 8; i = i + 1) { bytes[i] = i + 1; }
    for (i = 0; i < 4; i = i + 1) { words[i] = (i + 1) * 1000; }
    out = bytes[3] + words[2];
    halt();
}
""")
    assert result.heap_byte(0 + 3) == 4
    # words start after bytes (offset 8), element 2 at offset 8 + 4.
    assert global_u16(result, 8 + 4) == 3000
    assert global_u16(result, 16) == 4 + 3000


def test_array_index_expression():
    result = run_c("""
u8 data[10];
u16 out;
void main() {
    u16 i;
    for (i = 0; i < 10; i = i + 1) { data[i] = i * i; }
    out = data[2 + 3];
    halt();
}
""")
    assert global_u16(result, 10) == 25


# -- functions ----------------------------------------------------------------------------

def test_four_parameters():
    result = run_c("""
u16 out;
u16 weigh(u16 a, u16 b, u16 c, u16 d) {
    return a + b * 2 + c * 3 + d * 4;
}
void main() { out = weigh(1, 2, 3, 4); halt(); }
""")
    assert global_u16(result, 0) == 1 + 4 + 9 + 16


def test_recursion_fibonacci():
    result = run_c("""
u16 out;
u16 fib(u16 n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { out = fib(12); halt(); }
""")
    assert global_u16(result, 0) == 144


def test_mutual_recursion():
    result = run_c("""
u16 out;
u16 is_even(u16 n);
u16 is_odd(u16 n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
u16 is_even(u16 n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
void main() { out = is_even(10) * 10 + is_odd(7); halt(); }
""".replace("u16 is_even(u16 n);\n", ""))
    assert global_u16(result, 0) == 11


def test_call_arguments_evaluate_in_order():
    result = run_c("""
u16 out;
u16 sub2(u16 a, u16 b) { return a - b; }
void main() { out = sub2(10, 3); halt(); }
""")
    assert global_u16(result, 0) == 7


# -- intrinsics ------------------------------------------------------------------------------

def test_io_intrinsics_drive_leds():
    asm = compile_c_to_asm("""
void main() {
    io_write(0x3B, 5);     // PORTA (LEDs)
    halt();
}
""")
    result = run_native(asm)
    assert result.finished
    assert result.devices["leds"].state == 5


def test_io_read_intrinsic():
    result = run_c("""
u16 out;
void main() {
    io_write(0x3B, 3);
    out = io_read(0x3B);
    halt();
}
""")
    assert global_u16(result, 0) == 3


def test_settimer_and_sleep_under_sensmart():
    asm = compile_c_to_asm("""
u16 wakes;
void main() {
    u16 i;
    settimer(512);
    for (i = 0; i < 4; i = i + 1) { sleep(); }
    wakes = i;
    halt();
}
""")
    node = SensorNode.from_sources([("periodic", asm)])
    kernel = node.kernel
    heap = kernel.regions.by_task(0).p_l
    node.run(max_instructions=5_000_000)
    assert node.finished
    assert kernel.cpu.mem.data[heap] == 4
    assert kernel.stats.idle_cycles > 0


# -- SenSmart equivalence -------------------------------------------------------------------

def test_compiled_code_equivalent_under_sensmart():
    source = """
u16 out;
u8 buf[12];
u16 checksum(u8 n) {
    u16 acc = 0;
    u8 i = 0;
    while (i < n) { acc = acc + buf[i] * (i + 1); i = i + 1; }
    return acc;
}
void main() {
    u8 i;
    for (i = 0; i < 12; i = i + 1) { buf[i] = 17 * (i + 1); }
    out = checksum(12);
    halt();
}
"""
    asm = compile_c_to_asm(source)
    native = run_native(asm, max_instructions=5_000_000)
    node = SensorNode.from_sources([("csum", asm)])
    heap = node.kernel.regions.by_task(0).p_l
    node.run(max_instructions=20_000_000)
    assert native.finished and node.finished
    native_value = native.heap_byte(0) | (native.heap_byte(1) << 8)
    sensmart_value = node.kernel.cpu.mem.data[heap] | \
        (node.kernel.cpu.mem.data[heap + 1] << 8)
    expected = sum((17 * (i + 1) & 0xFF) * (i + 1)
                   for i in range(12)) & 0xFFFF
    assert native_value == sensmart_value == expected


# -- diagnostics --------------------------------------------------------------------------------

@pytest.mark.parametrize("source,fragment", [
    ("void main() { out = 1; halt(); }", "unknown variable"),
    ("u16 x; void main() { y(); }", "unknown function"),
    ("u16 f(u16 a) { return a; } void main() { f(); halt(); }",
     "argument"),
    ("void main() { u16 a; u16 a; halt(); }", "duplicate local"),
    ("u16 a[4]; void main() { a = 1; halt(); }", "assign whole array"),
    ("u16 a; void main() { a[0] = 1; halt(); }", "not an array"),
    ("u8 x; u8 y() { return 0; }", "no main"),
])
def test_compile_errors(source, fragment):
    with pytest.raises(CompileError) as excinfo:
        compile_c_to_asm(source)
    assert fragment in str(excinfo.value)


def test_syntax_error_reports_line():
    with pytest.raises(CompileError) as excinfo:
        compile_c_to_asm("void main() {\n    u16 x = ;\n}")
    assert "line 2" in str(excinfo.value)


# -- extended syntax (compound assignment, ++/--, do-while, break/continue) ----

def test_compound_assignment_operators():
    result = run_c("""
u16 out;
void main() {
    u16 x = 10;
    x += 5;
    x -= 3;
    x *= 2;
    x |= 0x100;
    x &= 0x1FF;
    x ^= 0x003;
    x <<= 2;
    x >>= 1;
    out = x;
    halt();
}
""")
    x = 10
    x += 5; x -= 3; x *= 2; x |= 0x100; x &= 0x1FF; x ^= 0x003
    x = (x << 2) & 0xFFFF; x >>= 1
    assert global_u16(result, 0) == x


def test_increment_decrement():
    result = run_c("""
u16 out;
u8 arr[4];
void main() {
    u16 i = 5;
    i++;
    i++;
    i--;
    arr[2]++;
    arr[2]++;
    out = i * 100 + arr[2];
    halt();
}
""")
    assert global_u16(result, 0) == 602


def test_do_while_runs_at_least_once():
    result = run_c("""
u16 out;
void main() {
    u16 n = 0;
    do { n++; } while (n < 5);
    out = n;
    u16 m = 100;
    do { m++; } while (0);
    out = out * 1000 + m;
    halt();
}
""".replace("u16 m = 100;", "").replace("m++", "out = out").replace(
        "out = out * 1000 + m;", ""))
    assert global_u16(result, 0) == 5


def test_do_while_body_executes_once_on_false_condition():
    result = run_c("""
u16 out;
void main() {
    out = 0;
    do { out += 7; } while (0);
    halt();
}
""")
    assert global_u16(result, 0) == 7


def test_break_exits_loop():
    result = run_c("""
u16 out;
void main() {
    u16 i;
    out = 0;
    for (i = 0; i < 100; i++) {
        if (i == 5) { break; }
        out += 1;
    }
    out = out * 100 + i;
    halt();
}
""")
    assert global_u16(result, 0) == 505


def test_continue_skips_iteration():
    result = run_c("""
u16 out;
void main() {
    u16 i;
    out = 0;
    for (i = 0; i < 10; i++) {
        if (i & 1) { continue; }
        out += i;
    }
    halt();
}
""")
    assert global_u16(result, 0) == sum(i for i in range(10) if not i & 1)


def test_continue_in_while_reaches_condition():
    result = run_c("""
u16 out;
void main() {
    u16 i = 0;
    out = 0;
    while (i < 8) {
        i++;
        if (i == 3) { continue; }
        out += i;
    }
    halt();
}
""")
    assert global_u16(result, 0) == sum(range(1, 9)) - 3


def test_break_outside_loop_is_an_error():
    with pytest.raises(CompileError) as excinfo:
        compile_c_to_asm("void main() { break; halt(); }")
    assert "break outside" in str(excinfo.value)


def test_nested_break_targets_inner_loop():
    result = run_c("""
u16 out;
void main() {
    u16 i;
    u16 j;
    out = 0;
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 10; j++) {
            if (j == 2) { break; }
            out += 1;
        }
    }
    halt();
}
""")
    assert global_u16(result, 0) == 4 * 2


def test_global_initializers():
    result = run_c("""
u16 big = 0x1234;
u8 small = 77;
u16 out;
void main() { out = big + small; halt(); }
""")
    assert global_u16(result, 0) == 0x1234
    assert result.heap_byte(2) == 77
    assert global_u16(result, 3) == 0x1234 + 77


def test_division_by_zero_is_deterministic():
    first = run_c("""
u16 out;
void main() { out = 123 / 0; halt(); }
""")
    second = run_c("""
u16 out;
void main() { out = 123 / 0; halt(); }
""")
    assert global_u16(first, 0) == global_u16(second, 0)
