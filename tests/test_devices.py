"""Device models: timers, ADC, radio, LEDs."""

from __future__ import annotations

from repro.avr import AvrCpu, Flash, assemble
from repro.avr import ioports
from repro.avr.devices import Adc, Leds, Radio, Timer0, Timer3
from tests.conftest import run_asm


def test_timer0_counts_with_cycles():
    cpu = run_asm("""
main:
    in r16, 0x32      ; TCNT0 at I/O 0x32 (data 0x52)
    ldi r20, 100
spin:
    dec r20
    brne spin
    in r17, 0x32
    break
""", devices=[Timer0(prescaler=8)])
    elapsed = cpu.r[17] - cpu.r[16]
    # ~300 cycles of spinning at prescaler 8 -> ~37 ticks.
    assert 30 <= elapsed <= 45


def test_timer3_16bit_read_latches_high_byte():
    timer = Timer3(prescaler=1)
    cpu = run_asm(f"""
main:
    ldi r20, 200
spin1:
    dec r20
    brne spin1
    lds r16, {ioports.TCNT3L}
    lds r17, {ioports.TCNT3H}
    break
""", devices=[timer])
    value = (cpu.r[17] << 8) | cpu.r[16]
    # The latched pair must be a consistent 16-bit snapshot near ~600.
    assert 550 <= value <= 650


def test_timer3_compare_wakes_sleeping_cpu():
    timer = Timer3(prescaler=8)
    source = f"""
.org {ioports.VECT_TIMER3_COMPA}
    jmp isr
.org 0x40
main:
    ldi r16, 0x02       ; OCR3A = 0x0200 ticks
    sts {ioports.OCR3AH}, r16
    ldi r16, 0x00
    sts {ioports.OCR3AL}, r16
    ldi r16, 1
    sts {ioports.TCCR3B}, r16   ; enable compare interrupt
    sei
    sleep
    nop
    break
isr:
    ldi r20, 0xCC
    reti
"""
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    cpu.attach_device(timer)
    cpu.pc = program.labels["main"]
    cpu.run(max_instructions=1000)
    assert cpu.halted
    assert cpu.r[20] == 0xCC
    # Woke around the compare point: 0x200 ticks * prescaler 8.
    assert cpu.cycles >= 0x200 * 8


def test_adc_conversion_poll():
    adc = Adc()
    cpu = run_asm(f"""
main:
    ldi r16, {1 << ioports.ADSC}
    sts {ioports.ADCSRA}, r16     ; start conversion
poll:
    lds r17, {ioports.ADCSRA}
    sbrc r17, {ioports.ADSC}      ; still busy?
    rjmp poll
    lds r18, {ioports.ADCL}
    lds r19, {ioports.ADCH}
    break
""", devices=[adc])
    sample = (cpu.r[19] << 8) | cpu.r[18]
    assert 0 < sample <= 0x3FF
    assert adc.samples_taken == 1
    assert cpu.cycles >= adc.conversion_cycles


def test_adc_signal_is_deterministic():
    a, b = Adc(seed=7), Adc(seed=7)
    assert [a.sample_value() for _ in range(50)] == \
        [b.sample_value() for _ in range(50)]


def test_adc_signal_varies():
    adc = Adc()
    samples = [adc.sample_value() for _ in range(64)]
    assert max(samples) - min(samples) > 100  # triangle swing visible


def test_radio_transmits_bytes_with_ready_flag():
    radio = Radio(byte_cycles=50)
    cpu = run_asm(f"""
main:
    ldi r16, 3
    ldi r17, 0x41
send:
    lds r18, {ioports.UCSR0A}
    sbrs r18, {ioports.UDRE}
    rjmp send
    sts {ioports.UDR0}, r17
    inc r17
    dec r16
    brne send
    break
""", devices=[radio])
    assert radio.packets == b"ABC"


def test_radio_drops_bytes_when_busy():
    radio = Radio(byte_cycles=10_000)
    cpu = run_asm(f"""
main:
    ldi r17, 0x41
    sts {ioports.UDR0}, r17
    sts {ioports.UDR0}, r17   ; dropped: still busy
    break
""", devices=[radio])
    assert radio.packets == b"A"


def test_leds_record_changes():
    leds = Leds()
    run_asm("""
main:
    ldi r16, 1
    out 0x1B, r16
    ldi r16, 3
    out 0x1B, r16
    ldi r16, 0
    out 0x1B, r16
    break
""", devices=[leds])
    assert leds.changes == [1, 3, 0]


def test_radio_rx_queue_and_flag():
    from repro.avr.devices.radio import RXC
    radio = Radio()
    cpu = run_asm(f"""
main:
    lds r16, {ioports.UCSR0A}     ; no data yet
    break
""", devices=[radio])
    assert not cpu.r[16] & (1 << RXC)

    radio = Radio()
    radio.deliver(b"\x41\x42")
    cpu = run_asm(f"""
main:
    lds r16, {ioports.UCSR0A}
    lds r20, {ioports.UDR0}
    lds r21, {ioports.UDR0}
    lds r17, {ioports.UCSR0A}     ; queue drained
    break
""", devices=[radio])
    assert cpu.r[16] & (1 << RXC)
    assert cpu.r[20] == 0x41
    assert cpu.r[21] == 0x42
    assert not cpu.r[17] & (1 << RXC)


def test_radio_rx_empty_reads_zero():
    radio = Radio()
    cpu = run_asm(f"""
main:
    lds r20, {ioports.UDR0}
    break
""", devices=[radio])
    assert cpu.r[20] == 0


def test_radio_zero_length_frame_is_noop():
    from repro.avr.devices.radio import RXC
    radio = Radio()
    radio.deliver(b"")  # zero-length delivery: nothing queued
    cpu = run_asm(f"""
main:
    lds r16, {ioports.UCSR0A}
    break
""", devices=[radio])
    assert not cpu.r[16] & (1 << RXC)
    assert not radio.rx_queue


def test_radio_max_length_frame_delivered_intact():
    """A 255-byte frame (the largest a one-byte length field can
    claim) drains in order with no loss and leaves RXC clear."""
    from repro.avr.devices.radio import RXC
    radio = Radio()
    payload = bytes((7 + 3 * i) & 0xFF for i in range(255))
    radio.deliver(payload)
    cpu = run_asm(f"""
main:
    ldi r20, 255
    ldi r26, 0x00
    ldi r27, 0x02
recv:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp recv
    lds r16, {ioports.UDR0}
    st X+, r16
    dec r20
    brne recv
    lds r18, {ioports.UCSR0A}
    break
""", devices=[radio])
    assert bytes(cpu.mem.data[0x200:0x200 + 255]) == payload
    assert not cpu.r[18] & (1 << RXC)
    assert not radio.rx_queue
