"""Small units: table rendering and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro import errors


def test_format_table_alignment_and_types():
    text = format_table(
        ["name", "count", "ratio", "flag"],
        [["alpha", 5, 1.5, True], ["b", 12345, 0.25, False]],
        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "flag" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert "yes" in text and "no" in text
    assert "1.500" in text and "0.250" in text
    # Columns align: every data row has the same width as the header.
    assert len(lines[3]) == len(lines[1])


def test_format_table_empty_rows():
    text = format_table(["a"], [])
    assert "a" in text


def test_error_hierarchy():
    for cls in (errors.EncodingError, errors.AssemblerError,
                errors.LinkError, errors.SimulationError,
                errors.RewriteError, errors.KernelError,
                errors.OutOfMemory):
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.InvalidInstruction, errors.SimulationError)
    assert issubclass(errors.MemoryFault, errors.SimulationError)
    assert issubclass(errors.TaskFault, errors.KernelError)


def test_error_messages_carry_context():
    fault = errors.MemoryFault(0x1234, "write")
    assert "0x1234" in str(fault) and "write" in str(fault)
    invalid = errors.InvalidInstruction(0x40, 0xFFFF)
    assert "0xffff" in str(invalid)
    task = errors.TaskFault(3, "went rogue")
    assert "task 3" in str(task) and task.task_id == 3
    asm = errors.AssemblerError("bad operand", line=7, source="  foo x")
    assert "line 7" in str(asm)
