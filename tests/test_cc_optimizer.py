"""TinyC peephole optimizer: savings with identical semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.baselines.native import run_native
from repro.cc import compile_c_to_asm
from repro.cc.optimizer import optimize_lines
from tests.test_differential import c_expression

PROGRAMS = [
    """
u16 out;
u16 fib(u16 n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { out = fib(11); halt(); }
""",
    """
u16 out;
u8 data[16];
void main() {
    u16 i;
    u16 acc = 0;
    for (i = 0; i < 16; i++) { data[i] = i * 7; }
    for (i = 0; i < 16; i++) { acc += data[i] & 0x3F; }
    out = acc;
    halt();
}
""",
    """
u16 out;
void main() {
    u16 x = 1;
    u16 i;
    for (i = 0; i < 10; i++) { x = (x << 1) ^ (x + 3); }
    out = x;
    halt();
}
""",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_optimizer_preserves_results_and_saves_cycles(source):
    plain = run_native(compile_c_to_asm(source, optimize=False),
                       max_instructions=20_000_000)
    optimized = run_native(compile_c_to_asm(source, optimize=True),
                           max_instructions=20_000_000)
    assert plain.finished and optimized.finished
    assert plain.heap_byte(0) == optimized.heap_byte(0)
    assert plain.heap_byte(1) == optimized.heap_byte(1)
    assert optimized.cycles < plain.cycles


def test_leaf_spill_pattern_rewritten():
    lines = [
        "    push r24",
        "    push r25",
        "    ldi r24, 5",
        "    ldi r25, 0",
        "    pop r23",
        "    pop r22",
        "    add r22, r24",
    ]
    out = optimize_lines(lines)
    assert out == [
        "    movw r22, r24",
        "    ldi r24, 5",
        "    ldi r25, 0",
        "    add r22, r24",
    ]


def test_non_leaf_spill_untouched():
    lines = [
        "    push r24",
        "    push r25",
        "    call fib",        # not a leaf: must keep the spill
        "    pop r23",
        "    pop r22",
    ]
    assert optimize_lines(list(lines)) == lines


def test_patterns_do_not_cross_labels():
    lines = [
        "    push r24",
        "    push r25",
        "somewhere:",
        "    ldi r24, 5",
        "    ldi r25, 0",
        "    pop r23",
        "    pop r22",
    ]
    assert optimize_lines(list(lines)) == lines


def test_store_load_forwarding():
    lines = [
        "    std Y+3, r24",
        "    ldd r24, Y+3",
        "    inc r24",
    ]
    assert optimize_lines(lines) == [
        "    std Y+3, r24",
        "    inc r24",
    ]


def test_store_load_different_slots_untouched():
    lines = [
        "    std Y+3, r24",
        "    ldd r24, Y+5",
    ]
    assert optimize_lines(list(lines)) == lines


@given(c_expression())
@settings(max_examples=30, deadline=None)
def test_optimized_expressions_match_unoptimized(pair):
    text, expected = pair
    source = f"""
u16 out;
void main() {{ out = {text}; halt(); }}
"""
    optimized = run_native(compile_c_to_asm(source, optimize=True),
                           max_instructions=2_000_000)
    assert optimized.finished
    assert optimized.heap_byte(0) | (optimized.heap_byte(1) << 8) == \
        expected
