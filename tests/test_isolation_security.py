"""Adversarial isolation tests: a hostile task cannot escape its region.

SenSmart's protection claims (Table I: memory protection, logical
memory addressing) are tested here the way an attacker would: forged
pointers, stack-pointer manipulation, wild indirect branches, hostile
I/O writes, and scheduler starvation attempts.  In every case the
hostile task must be terminated (or contained) and innocent tasks and
the kernel must be unharmed.
"""

from __future__ import annotations

from repro.kernel import KernelConfig, SensorNode
from repro.kernel.task import TaskState

VICTIM = """
.bss treasure, 4
main:
    ldi r16, 0x99
    sts treasure, r16
    ldi r17, 250
spin:
    dec r17
    brne spin
    lds r18, treasure
    break
"""


def run_pair(attacker: str, slice_cycles: int = 20_000):
    node = SensorNode.from_sources(
        [("victim", VICTIM), ("attacker", attacker)],
        config=KernelConfig(time_slice_cycles=slice_cycles))
    node.run(max_instructions=20_000_000)
    assert node.finished
    return node


def assert_victim_unharmed(node) -> None:
    victim = node.task_named("victim")
    assert victim.exit_reason == "exit"
    assert victim.context.regs[18] == 0x99  # treasure intact


def test_forged_heap_pointer_is_contained():
    # The attacker walks a pointer past its heap: every logical address
    # either translates inside its own region or faults.
    attacker = """
.bss mine, 2
main:
    ldi r26, lo8(mine + 2)      ; just past its own heap
    ldi r27, hi8(mine + 2)
    ldi r16, 0xEE
    st X, r16                    ; must fault
    break
"""
    node = run_pair(attacker)
    assert "fault" in node.task_named("attacker").exit_reason
    assert_victim_unharmed(node)


def test_heap_sweep_cannot_reach_other_regions():
    # Sweep logical data space downward from the top: all stack-zone
    # writes land in the attacker's own stack area by construction.
    attacker = """
.bss mine, 2
main:
    ldi r26, 0xFF
    ldi r27, 0x10               ; logical RAM_END
    ldi r16, 0xEE
    ldi r20, 64
sweep:
    st X, r16                   ; own stack zone: allowed, harmless
    sbiw r26, 1
    dec r20
    brne sweep
    break
"""
    node = run_pair(attacker)
    # The sweep either completes inside its own region or faults at the
    # boundary — the victim is untouched either way.
    assert_victim_unharmed(node)


def test_sp_forgery_is_rejected():
    attacker = """
main:
    ldi r16, 0x00
    out 0x3D, r16               ; logical SPL = 0
    ldi r16, 0x02
    out 0x3E, r16               ; logical SP = 0x0200: inside the heap
    push r16                    ; zone of the logical space -> reject
    break
"""
    node = run_pair(attacker)
    assert "fault" in node.task_named("attacker").exit_reason
    assert_victim_unharmed(node)


def test_wild_indirect_jump_is_contained():
    attacker = """
main:
    ldi r30, 0x00               ; Z = flash 0x0000: kernel vectors,
    ldi r31, 0x00               ; outside the attacker's program
    ijmp
    break
"""
    node = run_pair(attacker)
    assert "fault" in node.task_named("attacker").exit_reason
    assert_victim_unharmed(node)


def test_indirect_call_into_other_program_is_contained():
    attacker = """
main:
    ldi r30, lo8(0x0C00)        ; another task's code region
    ldi r31, hi8(0x0C00)
    icall
    break
"""
    node = run_pair(attacker)
    assert "fault" in node.task_named("attacker").exit_reason
    assert_victim_unharmed(node)


def test_lpm_outside_own_program_is_contained():
    attacker = """
main:
    ldi r30, 0x10               ; program-memory byte address far
    ldi r31, 0xFF               ; outside the attacker's image
    lpm r16, Z
    break
"""
    node = run_pair(attacker)
    assert "fault" in node.task_named("attacker").exit_reason
    assert_victim_unharmed(node)


def test_stack_underflow_is_contained():
    attacker = """
main:
    pop r16                     ; nothing was pushed
    break
"""
    node = run_pair(attacker)
    assert "fault" in node.task_named("attacker").exit_reason
    assert_victim_unharmed(node)


def test_cli_infinite_loop_cannot_starve_victim():
    attacker = """
main:
    cli
forever:
    rjmp forever
"""
    node = SensorNode.from_sources(
        [("victim", VICTIM), ("attacker", attacker)],
        config=KernelConfig(time_slice_cycles=20_000))
    node.run(max_cycles=2_000_000)
    # The attacker never exits, but the victim completed regardless.
    victim = node.task_named("victim")
    assert victim.exit_reason == "exit"
    assert victim.context.regs[18] == 0x99
    assert node.task_named("attacker").state is TaskState.RUNNING or \
        node.task_named("attacker").state is TaskState.READY


def test_hostile_timer_writes_do_not_break_others():
    attacker = """
main:
    ldi r16, 0xFF
    sts 0x89, r16               ; garbage into (virtual) TCNT3H
    sts 0x88, r16               ; and TCNT3L
    ldi r16, 0x00
    sts 0x87, r16               ; OCR3AH = 0
    sts 0x86, r16               ; OCR3AL = 0 -> zero period (disarmed)
    break
"""
    node = run_pair(attacker)
    assert node.task_named("attacker").exit_reason == "exit"
    assert_victim_unharmed(node)


def test_kernel_memory_never_touched_by_hostile_writes():
    # Canary the kernel data area, run a write-happy attacker, verify.
    attacker = """
.bss mine, 16
main:
    ldi r26, lo8(mine)
    ldi r27, hi8(mine)
    ldi r16, 0xEE
    ldi r20, 16
fill:
    st X+, r16
    dec r20
    brne fill
    ldi r26, 0xF0               ; logical 0x10F0: own stack zone
    ldi r27, 0x10
    st X, r16
    break
"""
    node = SensorNode.from_sources(
        [("victim", VICTIM), ("attacker", attacker)],
        config=KernelConfig(time_slice_cycles=20_000))
    kernel = node.kernel
    kernel_area = range(kernel.config.app_area.stop,
                        kernel.config.memory_size)
    for address in kernel_area:
        kernel.cpu.mem.data[address] = 0xC3
    node.run(max_instructions=20_000_000)
    assert node.finished
    assert all(kernel.cpu.mem.data[a] == 0xC3 for a in kernel_area), \
        "a task wrote into the kernel reserve"
    assert_victim_unharmed(node)


def test_stack_watermarks_recorded():
    recursive = """
main:
    ldi r24, 12
    call down
    break
down:
    push r2
    push r3
    dec r24
    brne deeper
    rjmp up
deeper:
    call down
up:
    pop r3
    pop r2
    ret
"""
    node = run_pair(recursive.replace("main:", "main:", 1))
    # run_pair names the second task "attacker"; reuse it here as a
    # plain recursive task.
    task = node.task_named("attacker")
    assert task.exit_reason == "exit"
    # 12 levels x (2 pushes + 2-byte return) = 48 bytes + main's call.
    assert 48 <= task.max_stack_used <= 64
