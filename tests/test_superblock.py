"""Superblock fusion: fused execution must be observationally identical.

The fused interpreter compiles straight-line instruction runs into
single closures; these tests pin down the properties that make that
safe — identical architectural state in both modes, exact stop
semantics, cache invalidation on every path that re-burns flash or
extends the trap region, and device alarms that land mid-block being
serviced before the next dispatch.
"""

from __future__ import annotations

from repro.avr import AvrCpu, Flash, assemble, ioports
from repro.avr.devices import Timer3
from repro.kernel import SensorNode

# Exercises every fused member template family: 8-bit ALU, immediates,
# 16-bit ADIW/SBIW, MUL, MOVW, shifts, bit ops, static SRAM LDS/STS,
# LPM, plus BRNE/RJMP terminators inlined into blocks.
_SOUP = """
.bss cells, 8
main:
    ldi r16, 0x3C
    ldi r17, 0xA5
    ldi r18, 0x0F
    ldi r19, 0x81
    ldi r24, 0xF0
    ldi r25, 0x02
    ldi r20, 5
loop:
    add r16, r17
    adc r17, r18
    sub r18, r19
    sbc r19, r16
    and r16, r18
    or r17, r19
    eor r18, r16
    subi r24, 3
    sbci r25, 0
    andi r16, 0xF7
    ori r17, 0x11
    cpi r18, 0x40
    inc r16
    dec r17
    com r18
    neg r19
    swap r16
    lsr r17
    asr r18
    ror r19
    adiw r24, 17
    sbiw r24, 5
    mul r16, r17
    movw r18, r0
    bst r16, 3
    bld r17, 6
    sts cells + 2, r16
    lds r21, cells + 2
    dec r20
    brne loop
    break
"""


def _state(cpu: AvrCpu):
    return (bytes(cpu.r), cpu.sreg, cpu.pc, cpu.sp, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data), cpu.halted)


def _run(source: str, fuse: bool, **kwargs) -> AvrCpu:
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash, fuse=fuse)
    cpu.pc = program.labels["main"]
    cpu.run(max_instructions=kwargs.pop("max_instructions", 1_000_000),
            **kwargs)
    return cpu


def test_fused_state_identical_to_stepwise():
    fused = _run(_SOUP, fuse=True)
    stepwise = _run(_SOUP, fuse=False)
    assert fused.halted and stepwise.halted
    assert _state(fused) == _state(stepwise)


def test_fused_max_cycles_stop_is_exact():
    source = "main:\n    rjmp main\n"
    fused = _run(source, fuse=True, max_cycles=1000)
    stepwise = _run(source, fuse=False, max_cycles=1000)
    assert not fused.halted
    assert fused.cycles == stepwise.cycles
    assert fused.instret == stepwise.instret


def test_fused_max_instructions_stop_is_exact():
    fused = _run(_SOUP, fuse=True, max_instructions=137)
    stepwise = _run(_SOUP, fuse=False, max_instructions=137)
    assert fused.instret == stepwise.instret == 137
    assert _state(fused) == _state(stepwise)


def test_profiling_counts_identical_across_modes():
    runs = []
    for fuse in (True, False):
        program = assemble(_SOUP)
        flash = Flash()
        flash.load(0, program.words)
        cpu = AvrCpu(flash, fuse=fuse)
        cpu.enable_profiling()
        cpu.pc = program.labels["main"]
        cpu.run(max_instructions=1_000_000)
        assert cpu.halted
        runs.append(cpu.profile)
    assert runs[0] == runs[1]


# -- cache invalidation --------------------------------------------------------

def _cached_blocks(cpu: AvrCpu) -> int:
    return sum(1 for entry in cpu._blocks if entry is not None)


def test_invalidate_decode_drops_fused_blocks():
    cpu = _run(_SOUP, fuse=True)
    assert _cached_blocks(cpu) > 0
    cpu.invalidate_decode()
    assert _cached_blocks(cpu) == 0


def test_trap_region_changes_drop_fused_blocks():
    cpu = _run(_SOUP, fuse=True)
    assert _cached_blocks(cpu) > 0
    cpu.set_trap_region(0x300, 0x310, lambda *args: None)
    assert _cached_blocks(cpu) == 0

    cpu.halted = False
    cpu.pc = 0
    cpu.run(max_instructions=50)  # repopulate the cache
    assert _cached_blocks(cpu) > 0
    cpu.add_trap_region(0x320, 0x330)
    assert _cached_blocks(cpu) == 0


def test_reburning_flash_drops_stale_blocks():
    """Dynamic loading re-burns flash; old fused blocks must not run."""
    first = assemble("main:\n    ldi r16, 1\n    ldi r17, 1\n    break\n")
    flash = Flash()
    flash.load(0, first.words)
    cpu = AvrCpu(flash, fuse=True)
    cpu.run(max_instructions=100)
    assert cpu.halted and cpu.r[16] == 1

    second = assemble("main:\n    ldi r16, 2\n    ldi r17, 2\n    break\n")
    flash.load(0, second.words)  # burn listener invalidates the caches
    cpu.halted = False
    cpu.pc = 0
    cpu.run(max_instructions=100)
    assert cpu.halted and cpu.r[16] == 2 and cpu.r[17] == 2


def test_trap_handler_may_invalidate_mid_run():
    """A trap handler that re-burns flash (dynamic task loading) must
    take effect immediately, even though ``run()`` is mid-flight."""
    source = """
main:
    ldi r16, 1
    jmp 0x200
"""
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash, fuse=True)
    continuation = assemble(
        "main:\n    ldi r17, 9\n    break\n", origin=0x100)

    def handler(cpu, site, target, is_call):
        # Load a fresh program past the region and resume there.
        flash.load(0x100, continuation.words)
        cpu.pc = 0x100

    cpu.set_trap_region(0x200, 0x210, handler)
    cpu.run(max_instructions=100)
    assert cpu.halted
    assert cpu.r[16] == 1 and cpu.r[17] == 9


# -- events landing mid-block -------------------------------------------------

class _AlarmProbe:
    """Device that records the cycle at which its event finally fires."""

    def __init__(self, due: int):
        self.due = due
        self.serviced_at = None

    def attach(self, cpu) -> None:
        self._cpu = cpu
        cpu.events.schedule(self.due, self._fire)

    def _fire(self) -> None:
        if self.serviced_at is None:
            self.serviced_at = self._cpu.cycles


def test_alarm_due_mid_block_serviced_before_next_dispatch():
    # A long straight-line block looped forever: every event cycle falls
    # inside some fused block.
    body = "    add r16, r17\n" * 40
    source = "main:\n" + body + "    rjmp main\n"
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash, fuse=True)
    probe = _AlarmProbe(due=101)  # mid-block by construction
    cpu.attach_device(probe)
    cpu.run(max_cycles=1000)
    assert probe.serviced_at is not None
    # Serviced at the first block boundary after coming due — within one
    # block's worth of cycles, never deferred to the run's end.
    assert probe.serviced_at >= probe.due
    assert probe.serviced_at - probe.due <= 60


def test_timer_alarm_mid_block_fires_interrupt():
    """Regression: a Timer3 compare landing inside a fused block must
    still deliver its interrupt (the waiting loop fuses into a
    self-looping block; the alarm has to break it out)."""
    timer = Timer3(prescaler=1)
    source = f"""
.org {ioports.VECT_TIMER3_COMPA}
    jmp isr
.org 0x40
main:
    ldi r16, 0x00
    sts {ioports.OCR3AH}, r16
    ldi r16, 0x60
    sts {ioports.OCR3AL}, r16   ; compare at ~0x60 cycles
    ldi r16, 1
    sts {ioports.TCCR3B}, r16   ; enable compare interrupt
    sei
    ldi r20, 0
wait:
    add r17, r18
    add r17, r18
    add r17, r18
    add r17, r18
    cpi r20, 0xCC
    brne wait
    break
isr:
    ldi r20, 0xCC
    reti
"""
    program = assemble(source)
    results = []
    for fuse in (True, False):
        flash = Flash()
        flash.load(0, program.words)
        cpu = AvrCpu(flash, fuse=fuse)
        cpu.attach_device(Timer3(prescaler=1))
        cpu.pc = program.labels["main"]
        cpu.run(max_instructions=10_000)
        assert cpu.halted, "interrupt lost: wait loop never broke"
        assert cpu.r[20] == 0xCC
        results.append(cpu.instret)
    # Fused delivery happens at a block boundary, so it may retire a few
    # extra loop instructions — but never run away.
    assert abs(results[0] - results[1]) <= 50


# -- kernelized dual-mode ------------------------------------------------------

_SPIN = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 2
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def _kernel_state(node: SensorNode):
    cpu = node.cpu
    kernel = node.kernel
    return (bytes(cpu.r), cpu.sreg, cpu.pc, cpu.sp, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data),
            dict(kernel.stats.trap_counts),
            kernel.stats.context_switches, cpu.halted)


def test_kernel_bit_identical_across_modes():
    states = []
    for fuse in (True, False):
        node = SensorNode.from_sources([("spin", _SPIN)], fuse=fuse)
        node.run(max_instructions=10_000_000)
        assert node.finished
        states.append(_kernel_state(node))
    assert states[0] == states[1]
