"""Component-level tests: scheduler queue, config helpers, context,
snapshot diagnostics."""

from __future__ import annotations

from repro.kernel import KernelConfig, SensorNode
from repro.kernel.context import TaskContext
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.task import Task, TaskState
from repro.toolchain import link_image
from repro.toolchain.image import TaskImage


def make_task(task_id: int) -> Task:
    image = link_image([(f"t{task_id}", "main:\n    break\n")])
    return Task(task_id=task_id, image=image.tasks[0])


def test_ready_queue_is_fifo():
    scheduler = RoundRobinScheduler(KernelConfig())
    tasks = [make_task(i) for i in range(3)]
    for task in tasks:
        scheduler.enqueue(task)
    assert scheduler.pick() is tasks[0]
    assert scheduler.pick() is tasks[1]
    scheduler.enqueue(tasks[0])
    assert scheduler.pick() is tasks[2]
    assert scheduler.pick() is tasks[0]
    assert scheduler.pick() is None


def test_pick_skips_terminated_entries():
    scheduler = RoundRobinScheduler(KernelConfig())
    first, second = make_task(0), make_task(1)
    scheduler.enqueue(first)
    scheduler.enqueue(second)
    first.state = TaskState.TERMINATED
    assert scheduler.pick() is second


def test_remove_is_idempotent():
    scheduler = RoundRobinScheduler(KernelConfig())
    task = make_task(0)
    scheduler.enqueue(task)
    scheduler.remove(task)
    scheduler.remove(task)  # no error
    assert scheduler.pick() is None


def test_slice_expiry():
    config = KernelConfig(time_slice_cycles=1000)
    scheduler = RoundRobinScheduler(config)
    task = make_task(0)
    task.slice_start_cycle = 5000
    assert not scheduler.slice_expired(task, 5999)
    assert scheduler.slice_expired(task, 6000)


def test_config_helpers():
    config = KernelConfig()
    assert config.memory_size == 0x1100
    assert config.app_area.start == 0x100
    assert config.app_area.stop == 0x1100 - config.kernel_data_bytes
    assert config.ticks_to_cycles(100) == 800
    assert config.ms_to_cycles(10) == 73_728


def test_context_roundtrip():
    from repro.avr import AvrCpu, Flash
    cpu = AvrCpu(Flash())
    cpu.r[5] = 0x42
    cpu.pc = 0x123
    cpu.sreg = 0x81
    cpu.sp = 0x0ABC
    context = TaskContext()
    context.save_from(cpu)
    cpu.r[5] = 0
    cpu.pc = 0
    cpu.sreg = 0
    cpu.sp = 0
    context.restore_to(cpu)
    assert cpu.r[5] == 0x42
    assert cpu.pc == 0x123
    assert cpu.sreg == 0x81
    assert cpu.sp == 0x0ABC


def test_kernel_snapshot_shape():
    spinner = """
main:
    ldi r16, 50
loop:
    dec r16
    brne loop
    break
"""
    node = SensorNode.from_sources([("a", spinner), ("b", spinner)])
    node.kernel.boot()
    snap = node.kernel.snapshot()
    assert snap["current"] == 0
    assert set(snap["tasks"]) == {0, 1}
    assert snap["tasks"][0]["state"] == "running"
    assert snap["tasks"][1]["state"] == "ready"
    assert snap["tasks"][0]["region"]["stack"] > 0
    node.run(max_instructions=1_000_000)
    snap = node.kernel.snapshot()
    assert all(t["state"] == "terminated"
               for t in snap["tasks"].values())
    assert snap["tasks"][0]["region"] is None
