"""Encoder/decoder tests: golden opcodes and property-based round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.avr import Instruction, decode, encode, instruction_words
from repro.avr.isa import Format, OPCODES
from repro.errors import EncodingError

# -- golden encodings taken from the AVR instruction-set manual ----------------

GOLDEN = [
    (Instruction("NOP"), (0x0000,)),
    (Instruction("ADD", (1, 2)), (0x0C12,)),
    (Instruction("ADD", (17, 16)), (0x0F10,)),
    (Instruction("ADC", (5, 21)), (0x1E55,)),
    (Instruction("SUB", (0, 31)), (0x1A0F,)),
    (Instruction("MOV", (30, 1)), (0x2DE1,)),
    (Instruction("MOVW", (30, 0)), (0x01F0,)),
    (Instruction("MUL", (16, 17)), (0x9F01,)),
    (Instruction("LDI", (16, 0xFF)), (0xEF0F,)),
    (Instruction("LDI", (31, 0x10)), (0xE1F0,)),
    (Instruction("CPI", (16, 0x42)), (0x3402,)),
    (Instruction("ANDI", (20, 0x0F)), (0x704F,)),
    (Instruction("COM", (7,)), (0x9470,)),
    (Instruction("INC", (28,)), (0x95C3,)),
    (Instruction("DEC", (16,)), (0x950A,)),
    (Instruction("LSR", (3,)), (0x9436,)),
    (Instruction("ADIW", (24, 1)), (0x9601,)),
    (Instruction("SBIW", (30, 63)), (0x97FF,)),
    (Instruction("LD", (0, "X+")), (0x900D,)),
    (Instruction("ST", (17, "-Y")), (0x931A,)),
    (Instruction("LDD", (4, "Y", 3)), (0x804B,)),
    (Instruction("LDD", (4, "Z", 0)), (0x8040,)),
    (Instruction("STD", (2, "Z", 5)), (0x8225,)),
    (Instruction("LDS", (2, 0x0103)), (0x9020, 0x0103)),
    (Instruction("STS", (2, 0x0103)), (0x9220, 0x0103)),
    (Instruction("PUSH", (16,)), (0x930F,)),
    (Instruction("POP", (16,)), (0x910F,)),
    (Instruction("LPM", (0, "LEGACY")), (0x95C8,)),
    (Instruction("LPM", (6, "Z+")), (0x9065,)),
    (Instruction("IN", (16, 0x3D)), (0xB70D,)),
    (Instruction("OUT", (0x3E, 29)), (0xBFDE,)),
    (Instruction("SBI", (0x18, 2)), (0x9AC2,)),
    (Instruction("SBIC", (0x06, 1)), (0x9931,)),
    (Instruction("RJMP", (-1,)), (0xCFFF,)),
    (Instruction("RJMP", (2,)), (0xC002,)),
    (Instruction("RCALL", (0,)), (0xD000,)),
    (Instruction("JMP", (0x123,)), (0x940C, 0x0123)),
    (Instruction("CALL", (0x1FFFF,)), (0x940F, 0xFFFF)),
    (Instruction("IJMP", ()), (0x9409,)),
    (Instruction("ICALL", ()), (0x9509,)),
    (Instruction("RET", ()), (0x9508,)),
    (Instruction("RETI", ()), (0x9518,)),
    (Instruction("BRBS", (1, -2)), (0xF3F1,)),
    (Instruction("BRBC", (1, 4)), (0xF421,)),
    (Instruction("SBRC", (10, 3)), (0xFCA3,)),
    (Instruction("SBRS", (31, 7)), (0xFFF7,)),
    (Instruction("BLD", (3, 0)), (0xF830,)),
    (Instruction("BST", (3, 7)), (0xFA37,)),
    (Instruction("BSET", (7,)), (0x9478,)),  # SEI
    (Instruction("BCLR", (7,)), (0x94F8,)),  # CLI
    (Instruction("SLEEP", ()), (0x9588,)),
    (Instruction("WDR", ()), (0x95A8,)),
    (Instruction("BREAK", ()), (0x9598,)),
]


@pytest.mark.parametrize("instruction,expected", GOLDEN,
                         ids=[str(i) for i, _ in GOLDEN])
def test_golden_encode(instruction, expected):
    assert encode(instruction) == expected


@pytest.mark.parametrize("instruction,words", GOLDEN,
                         ids=[str(i) for i, _ in GOLDEN])
def test_golden_decode(instruction, words):
    decoded = decode(words[0], words[1] if len(words) > 1 else None)
    assert decoded.mnemonic == instruction.mnemonic
    assert decoded.operands == instruction.operands


@pytest.mark.parametrize("instruction,words", GOLDEN,
                         ids=[str(i) for i, _ in GOLDEN])
def test_instruction_words_matches_spec(instruction, words):
    assert instruction_words(words[0]) == len(words)
    assert OPCODES[instruction.mnemonic].words == len(words)


# -- property-based round-trips over the full operand space --------------------

_regs = st.integers(0, 31)
_high_regs = st.integers(16, 31)
_imm8 = st.integers(0, 255)
_bits = st.integers(0, 7)


def _strategy_for(mnemonic: str):
    fmt = OPCODES[mnemonic].fmt
    if fmt in (Format.R2, Format.MUL):
        return st.tuples(_regs, _regs)
    if fmt is Format.MOVW:
        even = st.integers(0, 15).map(lambda v: v * 2)
        return st.tuples(even, even)
    if fmt in (Format.RD, Format.PUSHPOP):
        return st.tuples(_regs)
    if fmt is Format.IMM8:
        return st.tuples(_high_regs, _imm8)
    if fmt is Format.ADIW:
        return st.tuples(st.sampled_from([24, 26, 28, 30]),
                         st.integers(0, 63))
    if fmt is Format.LDST_DISP:
        return st.tuples(_regs, st.sampled_from(["Y", "Z"]),
                         st.integers(0, 63))
    if fmt is Format.LDST_PTR:
        return st.tuples(_regs, st.sampled_from(
            ["X", "X+", "-X", "Y+", "-Y", "Z+", "-Z"]))
    if fmt is Format.LDST_DIRECT:
        return st.tuples(_regs, st.integers(0, 0xFFFF))
    if fmt is Format.LPM:
        return st.one_of(
            st.just((0, "LEGACY")),
            st.tuples(_regs, st.sampled_from(["Z", "Z+"])))
    if fmt is Format.IO:
        if mnemonic == "IN":
            return st.tuples(_regs, st.integers(0, 63))
        return st.tuples(st.integers(0, 63), _regs)
    if fmt is Format.IOBIT:
        return st.tuples(st.integers(0, 31), _bits)
    if fmt is Format.REL12:
        return st.tuples(st.integers(-2048, 2047))
    if fmt is Format.BRANCH:
        return st.tuples(_bits, st.integers(-64, 63))
    if fmt in (Format.SKIP_REG, Format.TFLAG):
        return st.tuples(_regs, _bits)
    if fmt is Format.JMPCALL:
        return st.tuples(st.integers(0, (1 << 22) - 1))
    if fmt is Format.SREG_OP:
        return st.tuples(_bits)
    if fmt is Format.IMPLIED:
        return st.just(())
    raise AssertionError(fmt)


@st.composite
def any_instruction(draw):
    mnemonic = draw(st.sampled_from(sorted(OPCODES)))
    operands = draw(_strategy_for(mnemonic))
    return Instruction(mnemonic, tuple(operands))


@given(any_instruction())
def test_roundtrip(instruction):
    words = encode(instruction)
    assert len(words) == OPCODES[instruction.mnemonic].words
    decoded = decode(words[0], words[1] if len(words) > 1 else None)
    assert decoded.mnemonic == instruction.mnemonic
    assert decoded.operands == instruction.operands


@given(any_instruction())
def test_instruction_words_consistent(instruction):
    words = encode(instruction)
    assert instruction_words(words[0]) == len(words)


def test_decode_rejects_erased_flash():
    with pytest.raises(EncodingError):
        decode(0xFFFF)


def test_two_word_instruction_requires_second_word():
    with pytest.raises(EncodingError):
        decode(0x940C, None)
    with pytest.raises(EncodingError):
        decode(0x9020, None)


def test_encode_rejects_bad_operands():
    with pytest.raises(EncodingError):
        encode(Instruction("LDI", (5, 1)))  # LDI needs r16..r31
    with pytest.raises(EncodingError):
        encode(Instruction("ADIW", (25, 1)))  # odd pair base
    with pytest.raises(EncodingError):
        encode(Instruction("RJMP", (5000,)))  # offset too large
    with pytest.raises(EncodingError):
        encode(Instruction("XYZZY", ()))
