"""Flat profiling and the kernel trap histogram."""

from __future__ import annotations

from repro.analysis.profile import flat_profile, trap_histogram
from repro.avr import AvrCpu, Flash, assemble
from repro.kernel import SensorNode
from repro.rewriter import PatchKind

HOT_LOOP = """
main:
    ldi r20, 3
cold:
    ldi r16, 200
hot:
    dec r16
    brne hot
    dec r20
    brne cold
    break
"""


def run_profiled(source: str) -> tuple:
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    cpu.enable_profiling()
    cpu.run(max_instructions=1_000_000)
    assert cpu.halted
    return cpu, program


def test_per_pc_counts_are_exact():
    cpu, program = run_profiled(HOT_LOOP)
    hot = program.labels["hot"]
    # DEC at `hot` runs 3 * 200 times.
    assert cpu.profile[hot] == 600
    assert cpu.profile[program.labels["main"]] == 1
    assert sum(cpu.profile) == cpu.instret


def test_flat_profile_folds_by_symbol():
    cpu, program = run_profiled(HOT_LOOP)
    profile = flat_profile(cpu.profile, program.labels)
    assert profile.total_executions == cpu.instret
    # The hot loop dominates.
    top = profile.symbols[0]
    assert top.symbol == "hot"
    assert top.share > 0.9
    assert profile.share_of("cold") < 0.1
    assert "hot" in profile.render()


def test_profiling_does_not_change_results():
    program = assemble(HOT_LOOP)
    flash = Flash()
    flash.load(0, program.words)
    plain = AvrCpu(flash)
    plain.run(max_instructions=1_000_000)

    flash2 = Flash()
    flash2.load(0, program.words)
    profiled = AvrCpu(flash2)
    profiled.enable_profiling()
    profiled.run(max_instructions=1_000_000)

    assert plain.cycles == profiled.cycles
    assert plain.instret == profiled.instret
    assert bytes(plain.r) == bytes(profiled.r)


def test_trap_histogram_counts_by_kind():
    node = SensorNode.from_sources([("loop", HOT_LOOP)])
    node.run(max_instructions=1_000_000)
    assert node.finished
    counts = node.kernel.stats.trap_counts
    # Two nested backward branches: 600 + 3 executions... plus exit.
    assert counts[PatchKind.BRANCH_BACKWARD] == 603
    assert counts[PatchKind.TASK_EXIT] == 1
    rendered = trap_histogram(node.kernel)
    assert "branch-back" in rendered
