"""Control flow: branches, calls, skips, interrupts, sleep, cycles."""

from __future__ import annotations

from repro.avr import AvrCpu, Flash, assemble
from repro.avr import ioports
from tests.conftest import run_asm


def test_call_ret():
    cpu = run_asm("""
main:
    ldi r16, 1
    call double
    call double
    break
double:
    add r16, r16
    ret
""")
    assert cpu.r[16] == 4
    assert cpu.sp == ioports.RAM_END


def test_rcall_ret():
    cpu = run_asm("""
main:
    ldi r16, 5
    rcall bump
    break
bump:
    inc r16
    ret
""")
    assert cpu.r[16] == 6


def test_icall_via_z():
    cpu = run_asm("""
main:
    ldi r30, lo8(target)
    ldi r31, hi8(target)
    icall
    break
target:
    ldi r20, 0x99
    ret
""")
    assert cpu.r[20] == 0x99


def test_ijmp():
    cpu = run_asm("""
main:
    ldi r30, lo8(finish)
    ldi r31, hi8(finish)
    ijmp
    ldi r20, 1        ; skipped
finish:
    break
""")
    assert cpu.r[20] == 0


def test_skip_instructions_skip_two_word_instruction():
    cpu = run_asm("""
main:
    ldi r16, 0x01
    sbrs r16, 0           ; bit set -> skip the 2-word JMP
    jmp bad
    ldi r20, 0xAA
    break
bad:
    ldi r20, 0xFF
    break
""")
    assert cpu.r[20] == 0xAA


def test_cpse():
    cpu = run_asm("""
main:
    ldi r16, 7
    ldi r17, 7
    cpse r16, r17
    ldi r20, 1        ; skipped
    ldi r21, 2
    break
""")
    assert cpu.r[20] == 0
    assert cpu.r[21] == 2


def test_branch_cycle_costs():
    # Taken branch costs 2 cycles, not-taken costs 1.
    taken = run_asm("""
main:
    sez
    breq target
target:
    break
""")
    not_taken = run_asm("""
main:
    clz
    breq target
target:
    break
""")
    # Same instruction counts; the taken variant costs one more cycle.
    assert taken.cycles == not_taken.cycles + 1


def test_documented_cycle_counts():
    cpu = run_asm("""
main:
    nop               ; 1
    ldi r16, 1        ; 1
    push r16          ; 2
    pop r16           ; 2
    rjmp over         ; 2
over:
    break             ; 1
""")
    assert cpu.cycles == 9


def test_interrupt_dispatch_and_reti():
    source = f"""
.org {ioports.VECT_TIMER3_COMPA}
    jmp isr

.org 0x40
main:
    sei
    ldi r16, 0
wait:
    cpi r16, 1
    brne wait
    break

isr:
    ldi r16, 1
    reti
"""
    program = assemble(source)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    cpu.pc = program.labels["main"]
    # Raise the interrupt after a few instructions.
    cpu.run(max_instructions=5)
    cpu.raise_interrupt(ioports.VECT_TIMER3_COMPA)
    cpu.run(max_instructions=100)
    assert cpu.halted
    assert cpu.r[16] == 1
    assert cpu.sreg & (1 << 7)  # I restored by RETI


def test_interrupts_masked_when_i_clear():
    program = assemble(f"""
.org {ioports.VECT_TIMER3_COMPA}
    jmp isr
.org 0x40
main:
    cli
    ldi r16, 0
    nop
    nop
    break
isr:
    ldi r16, 1
    reti
""")
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    cpu.pc = program.labels["main"]
    cpu.run(max_instructions=3)
    cpu.raise_interrupt(ioports.VECT_TIMER3_COMPA)
    cpu.run(max_instructions=100)
    assert cpu.halted
    assert cpu.r[16] == 0  # ISR never ran


def test_run_respects_cycle_limit():
    program = assemble("""
main:
    rjmp main
""")
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    cpu.run(max_cycles=1000)
    assert not cpu.halted
    assert cpu.cycles >= 1000
    assert cpu.cycles <= 1002
