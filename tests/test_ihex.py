"""Intel HEX encoding/decoding of flash images."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.avr.memory import Flash
from repro.toolchain import link_image
from repro.toolchain.ihex import (IhexError, ihex_to_bytes, ihex_to_words,
                                  image_to_ihex, load_ihex_into_flash,
                                  words_to_ihex)


def test_known_record_format():
    text = words_to_ihex([0x1234], byte_origin=0)
    lines = text.splitlines()
    # Segment record for segment 0, one data record, EOF.
    assert lines[0] == ":020000020000FC"
    assert lines[1] == ":020000003412B8"
    assert lines[2] == ":00000001FF"


def test_eof_required():
    with pytest.raises(IhexError):
        ihex_to_bytes(":020000003412B8\n")


def test_checksum_verified():
    with pytest.raises(IhexError):
        ihex_to_bytes(":020000003412B9\n:00000001FF\n")


def test_rejects_garbage():
    with pytest.raises(IhexError):
        ihex_to_bytes("hello\n")
    with pytest.raises(IhexError):
        ihex_to_bytes(":02zz00003412B8\n:00000001FF\n")


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=300),
       st.integers(0, 200))
@settings(max_examples=80, deadline=None)
def test_roundtrip(words, word_origin):
    text = words_to_ihex(words, byte_origin=word_origin * 2)
    runs = ihex_to_words(text)
    assert len(runs) == 1
    start, decoded = runs[0]
    assert start == word_origin
    assert decoded == words


def test_high_addresses_use_segment_records():
    # Place data beyond the first 64 KB of byte addresses.
    words = [0xBEEF, 0xCAFE]
    text = words_to_ihex(words, byte_origin=0x20000)
    assert ":02000002" in text  # extended segment record present
    runs = ihex_to_words(text)
    assert runs == [(0x10000, words)]


def test_image_roundtrips_through_hex():
    source = """
.bss counter, 2
main:
    ldi r16, 9
loop:
    dec r16
    brne loop
    sts counter, r16
    break
"""
    image = link_image([("app", source)])
    text = image_to_ihex(image)

    direct = Flash()
    image.burn(direct)
    via_hex = Flash()
    load_ihex_into_flash(text, via_hex)

    start = image.tasks[0].base
    end = image.trap_region[1]
    assert direct.as_words(start, end - start) == \
        via_hex.as_words(start, end - start)
