"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main

BLINK = """
main:
    ldi r16, 1
    ldi r20, 3
loop:
    out 0x1B, r16
    eor r16, r20
    dec r20
    brne loop
    break
"""


@pytest.fixture
def blink_file(tmp_path):
    path = tmp_path / "blink.asm"
    path.write_text(BLINK)
    return str(path)


def test_asm_command(blink_file, capsys):
    assert main(["asm", blink_file]) == 0
    out = capsys.readouterr().out
    assert "LDI r16, 0x01" in out
    assert "14 bytes" in out


def test_rewrite_command(blink_file, capsys):
    assert main(["rewrite", blink_file]) == 0
    out = capsys.readouterr().out
    assert "naturalized blink" in out
    assert "<- patched" in out
    assert "trampolines" in out


def test_run_command(blink_file, capsys):
    assert main(["run", blink_file]) == 0
    out = capsys.readouterr().out
    assert "finished: True" in out
    assert "'blink'" in out


def test_run_command_multiple_tasks(blink_file, tmp_path, capsys):
    second = tmp_path / "blink2.asm"
    second.write_text(BLINK)
    assert main(["run", blink_file, str(second)]) == 0
    out = capsys.readouterr().out
    assert "task 0" in out
    assert "task 1" in out


def test_exp_command_quick_table1(capsys):
    assert main(["exp", "table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_exp_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["exp", "fig99"])


def test_trace_command(blink_file, capsys):
    assert main(["trace", blink_file, "--limit", "20"]) == 0
    out = capsys.readouterr().out
    assert "main:" in out
    assert "LDI r16, 0x01" in out
    assert "halted" in out


def test_cli_compiles_c_files(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text("""
u16 out;
void main() { out = 6 * 7; halt(); }
""")
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "finished: True" in out


def test_lint_command_on_file(blink_file, capsys):
    assert main(["lint", blink_file]) == 0
    out = capsys.readouterr().out
    assert "100.0% coverage" in out
    assert "image is sound" in out


def test_lint_command_bounds(blink_file, capsys):
    assert main(["lint", blink_file, "--bounds"]) == 0
    out = capsys.readouterr().out
    assert "static stack bounds" in out


def test_lint_command_workloads(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    for workload in ("table1", "table2", "kernelbench", "bintree",
                     "errpath"):
        assert f"--- {workload} ---" in out
    assert "violation" not in out


def test_run_json_report(blink_file, capsys):
    import json
    assert main(["run", blink_file, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "sensmart-run/1"
    assert report["run"]["finished"] is True
    assert "blink" in report["run"]["tasks"]
    assert "trace_digest" in report["run"]
    assert "jit" not in report  # jit section needs --stats


def test_run_json_stats_report(blink_file, capsys):
    import json
    assert main(["run", blink_file, "--json", "--stats"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "sensmart-run/1"
    assert "block_cache" in report["jit"]
    assert "tracer" in report["jit"]


def test_run_stats_reports_containment(tmp_path, capsys):
    bad = tmp_path / "bad.asm"
    # Reads past the task's logical space -> an oob fault termination.
    bad.write_text("""
main:
    ldi r26, 0xFF
    ldi r27, 0x1F
    ld r16, X
    break
""")
    assert main(["run", str(bad), "--stats"]) == 0
    out = capsys.readouterr().out
    assert "terminations: FAULT=1" in out
    assert "fault kinds: oob=1" in out


def test_run_json_stats_containment(blink_file, capsys):
    import json
    assert main(["run", blink_file, "--json", "--stats"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["containment"]["terminations_by_reason"] == {"EXIT": 1}
    assert report["containment"]["faults_by_kind"] == {}


def test_chaos_json_report(monkeypatch, capsys):
    import json
    from repro.experiments import extra_faults
    from repro.experiments.extra_faults import ChaosResult, ChaosRow
    row = ChaosRow(mix="table1", level=1, tasks=9, finished=8,
                   restarted_ok=2, dead=1, terminations=3, restarts=2,
                   watchdog=1, crashes=1, recovered=1, delivered=64,
                   dropped=2, corrupted=1, duplicated=0)
    fake = ChaosResult(seed=0x5EED5, rows=[row])
    monkeypatch.setattr(extra_faults, "run",
                        lambda quick=False, seed=0: fake)
    assert main(["chaos", "--json", "--quick"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "sensmart-chaos/1"
    assert report["chaos"]["seed"] == 0x5EED5
    (got,) = report["chaos"]["rows"]
    assert got["mix"] == "table1" and got["delivered"] == 64
    assert report["chaos"]["moderate"]["terminations"] == 3


def test_attack_patch_family_json(capsys):
    import json
    assert main(["attack", "--family", "patch", "--quick",
                 "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "sensmart-attack/1"
    assert report["ok"] is True
    assert "inject" not in report["families"]
    patch = report["families"]["patch"]
    assert patch["ok"] is True
    assert patch["digest_match"] is True
    assert patch["network_alive"] is True
    assert patch["frames_rejected"] >= 1


def test_attack_inject_family_text(capsys):
    assert main(["attack", "--family", "inject", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "injection campaign" in out
    assert "campaign digest" in out
    assert "kernel cross-check" in out and "(ok)" in out
    assert "hot-patch" not in out


def test_fleet_accepts_attack_workload(capsys):
    import json
    assert main(["fleet", "--topology", "grid", "--rows", "2",
                 "--cols", "2", "--workload", "attack", "--count",
                 "40", "--max-cycles", "2000000", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    fleet = report["fleet"]
    assert fleet["finished_nodes"] == fleet["nodes"] == 4


def test_lint_json_report(blink_file, capsys):
    import json
    assert main(["lint", blink_file, "--json", "--bounds"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "sensmart-lint/1"
    assert report["ok"] is True
    (target,) = report["targets"]
    assert target["label"] == "cli"
    assert target["lint"]["ok"] is True
    assert target["lint"]["coverage"] == 1.0
    assert target["stack"]["blink"]["bounded"] is True
