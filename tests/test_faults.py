"""Fault injection, kernel recovery, and survivability campaigns.

Three contracts guard the subsystem:

* **Null plan = no trace.**  With no faults scheduled, a node with an
  attached injector is bit-identical to a plain node in every
  execution mode — the hooks are free when unused.
* **Deterministic chaos.**  The same seed replays the same campaign:
  same fault times, same targets, same survivability table.
* **Recovery invariants.**  The watchdog fires only on trap-starved
  tasks; restart caps are honored; a crash mid-relocation reboots
  into a consistent region table; an injected flip under specialized
  code deopts instead of running stale assumptions.
"""

from __future__ import annotations

import pytest

from repro.experiments import extra_faults
from repro.experiments.extra_static import _workload_sources
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import (KernelConfig, SensorNode, TerminationReason)
from repro.kernel.task import TaskState
from repro.net.network import Link, Network


def _digest(node):
    """Complete observable state: CPU, SRAM, kernel accounting."""
    kernel, cpu = node.kernel, node.cpu
    return (bytes(cpu.r), cpu.pc, cpu.sp, cpu.sreg, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data),
            dict(kernel.stats.trap_counts), kernel.stats.kernel_cycles,
            kernel.stats.context_switches,
            kernel.stats.scheduler_checks,
            tuple(kernel.stats.terminations),
            tuple((task.task_id, task.kernel_cycles, task.min_sp_seen,
                   task.max_stack_used, task.branch_counter,
                   task.exit_reason)
                  for task in kernel.tasks.values()))


# -- null plan: attached-but-empty injector leaves no trace --------------------

@pytest.mark.parametrize("workload", ["table1", "table2", "kernelbench"])
@pytest.mark.parametrize("fuse,specialize",
                         [(True, True), (True, False), (False, False)])
def test_null_plan_is_bit_identical(workload, fuse, specialize):
    sources = _workload_sources(workload, quick=True)

    def run(attach):
        node = SensorNode.from_sources(sources, fuse=fuse,
                                       specialize=specialize,
                                       block_cache=False)
        if attach:
            plan = FaultPlan(seed=0xDEAD, horizon_cycles=10_000_000)
            FaultInjector(plan).attach("n", node)
        node.run(max_instructions=50_000_000)
        assert node.finished
        return node

    assert _digest(run(attach=False)) == _digest(run(attach=True))


# -- link loss stream: exact drop positions, pinned ----------------------------

def _expected_drops(count: int, permille: int, seed: int = 0xB5AD):
    state, positions = seed, []
    for index in range(count):
        state = Link._step_lfsr(state)
        if (state % 1000) < permille:
            positions.append(index)
    return positions


def _relay_net(loss=0, corrupt=0, dup=0):
    net = Network(quantum_cycles=5_000)
    net.add_node("tx", SensorNode.from_sources(
        [("sender", extra_faults._sender(6))]))
    net.add_node("rx", SensorNode.from_sources(
        [("receiver", extra_faults._receiver(6))]))
    net.connect("tx", "rx", latency_cycles=1_000, loss_permille=loss,
                corrupt_permille=corrupt, dup_permille=dup)
    return net


@pytest.mark.parametrize("scheduler", ["run", "run_lockstep"])
def test_loss_drop_positions_are_pinned_per_byte(scheduler):
    """The loss LFSR is drawn once per byte in ferry order, so the
    exact drop positions for a known seed are a contract — identical
    under the event-driven and lockstep schedulers."""
    net = _relay_net(loss=400)
    getattr(net, scheduler)(max_cycles=3_000_000)
    link = net.link_between("tx", "rx")
    expected = _expected_drops(6, 400)
    assert link.drop_positions == expected
    assert link.dropped == len(expected)
    assert link.delivered == 6 - len(expected)


def test_corruption_and_duplication_streams_are_independent():
    """Enabling corruption/duplication must not perturb which bytes
    the loss stream drops — each fault kind has its own LFSR."""
    plain = _relay_net(loss=400)
    plain.run(max_cycles=3_000_000)
    noisy = _relay_net(loss=400, corrupt=500, dup=400)
    noisy.run(max_cycles=3_000_000)
    link_plain = plain.link_between("tx", "rx")
    link_noisy = noisy.link_between("tx", "rx")
    assert link_noisy.drop_positions == link_plain.drop_positions
    assert link_noisy.dropped == link_plain.dropped
    assert link_noisy.corrupted > 0
    assert link_noisy.duplicated > 0
    # Duplicates inflate delivery; corruption never eats a byte.
    assert link_noisy.delivered == \
        link_plain.delivered + link_noisy.duplicated


# -- watchdog ------------------------------------------------------------------

_LONG_SPIN = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 40
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def test_watchdog_fires_on_trap_starved_task():
    node = SensorNode.from_sources(
        [("spin", _LONG_SPIN)],
        config=KernelConfig(watchdog_slices=4))
    node.run(max_cycles=50_000)
    assert not node.finished
    # Starve the scheduler: with a huge branch credit the task never
    # reaches a scheduler tick, so its slice never renews.
    task = node.kernel.current
    assert task is not None
    task.branch_counter = 10 ** 9
    node.run(max_cycles=3_000_000)
    assert node.kernel.stats.watchdog_fires >= 1
    assert task.termination is TerminationReason.WATCHDOG
    assert task.exit_reason == "watchdog: no scheduler progress"


def test_watchdog_never_fires_on_healthy_tasks():
    from repro.workloads.periodic import periodic_sensmart_source
    node = SensorNode.from_sources(
        [("sampler", periodic_sensmart_source(800, 20, 2)),
         ("spin", _LONG_SPIN)],
        config=KernelConfig(watchdog_slices=4))
    node.run(max_cycles=60_000_000)
    assert node.finished
    assert node.kernel.stats.watchdog_fires == 0
    assert all(t.termination is TerminationReason.EXIT
               for t in node.kernel.tasks.values())


# -- restart policies ----------------------------------------------------------

#: Unbounded recursion: terminates with a stack overflow every run.
_OVERFLOWER = """
main:
rec:
    push r2
    push r3
    call rec
    break
"""


def test_restart_cap_keeps_repeat_offender_dead():
    node = SensorNode.from_sources(
        [("bad", _OVERFLOWER)],
        config=KernelConfig(restart_policy="restart", restart_max=2))
    node.run(max_cycles=80_000_000)
    assert node.finished
    task = node.task_named("bad")
    assert task.state is TaskState.TERMINATED
    assert task.restarts_used == 2          # capped
    assert task.exit_reason == "stack overflow"  # legacy text intact
    # initial failure + one per restart, all recorded
    assert len(node.kernel.stats.terminations) == 3
    assert len(node.kernel.stats.restarts) == 2


def test_exit_is_never_restarted():
    node = SensorNode.from_sources(
        [("probe", _workload_sources("table1", True)[0][1])],
        config=KernelConfig(restart_policy="restart", restart_max=3))
    node.run(max_cycles=10_000_000)
    assert node.finished
    task = node.kernel.tasks[0]
    assert task.termination is TerminationReason.EXIT
    assert task.restarts_used == 0
    assert node.kernel.stats.terminations == [f"{task.name}: exit"]


def test_backoff_restart_recovers_after_transient_fault():
    """A transient SRAM flip kills the worker; the wiped-region restart
    runs it to a clean exit."""
    node = SensorNode.from_sources(
        [("worker", extra_faults._worker(400))],
        config=KernelConfig(restart_policy="restart-with-backoff",
                            restart_max=8))
    plan = FaultPlan(seed=0xF00D, horizon_cycles=1)
    injector = FaultInjector(plan)
    injector.attach("n", node)
    for cycle in range(60_000, 300_000, 40_000):
        injector.schedule_sram_flip("n", cycle)
    node.run(max_cycles=40_000_000)
    assert node.finished
    task = node.task_named("worker")
    assert task.termination is TerminationReason.EXIT
    assert task.restarts_used >= 1


# -- crash & reboot ------------------------------------------------------------

def test_crash_mid_relocation_reboots_consistently():
    """Power dying halfway through a relocation memmove leaves torn
    RAM; the reboot must come back with a consistent region table and
    rerun every task to completion."""
    from repro.workloads.bintree import search_task_source
    sources = [("s0", search_task_source(nodes=60, searches=15,
                                         seed=0x1357)),
               ("s1", search_task_source(nodes=60, searches=15,
                                         seed=0x2468))]
    node = SensorNode.from_sources(sources)
    node.run(max_instructions=8_000)
    assert not node.finished

    memory = node.cpu.mem
    original = memory.move_block

    def torn_move(src, dst, length):
        original(src, dst, length // 2)   # half the copy, then dark
        node.crash()

    memory.move_block = torn_move
    node.kernel.relocator.grow_stack(0, 16)
    assert node.crashed

    node.reboot()
    node.kernel.regions.check_invariants()
    node.run(max_instructions=80_000_000)
    assert node.finished
    assert node.reboots == 1
    node.kernel.regions.check_invariants()
    assert all(t.termination is TerminationReason.EXIT
               for t in node.kernel.tasks.values())


def test_reboot_persists_network_time():
    node = SensorNode.from_sources(
        [("spin", _LONG_SPIN)])
    node.run(max_cycles=100_000)
    before = node.cpu.cycles
    node.crash()
    assert node.finished            # halted: co-sim stops visiting it
    node.reboot()
    assert node.cpu.cycles == before + 60_000  # BOOT_DELAY_CYCLES
    assert not node.finished


# -- specialized code vs injected flips ----------------------------------------

#: Self-looping inner spin plus stack traffic in the outer loop: the
#: inner loop specializes into a self-looping superblock, and the
#: push/pop sites specialize with baked region constants guarded by
#: the region epoch.
_SPIN_WITH_STACK = """
main:
    ldi r28, 40
outer:
    push r16
    pop r16
    ldi r26, 0
    ldi r27, 0
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def test_sram_flip_under_specialized_superblock_deopts():
    """A flip into a guarded region bumps the region epoch: the
    specialized stack-op closures must deopt (counter > 0) and the
    run must stay bit-identical with generic dispatch."""
    def run(specialize):
        node = SensorNode.from_sources([("spin", _SPIN_WITH_STACK)],
                                       specialize=specialize,
                                       block_cache=False)
        plan = FaultPlan(seed=0xD15E, horizon_cycles=1)
        injector = FaultInjector(plan)
        injector.attach("n", node)
        injector.schedule_sram_flip("n", 200_000)
        node.run(max_instructions=80_000_000)
        assert node.finished
        return node

    specialized = run(specialize=True)
    stats = specialized.kernel.specializer.stats
    assert stats.compiled > 0
    assert stats.deopts > 0
    assert _digest(specialized) == _digest(run(specialize=False))


# -- campaigns -----------------------------------------------------------------

def test_chaos_point_is_seed_deterministic():
    first = extra_faults.compute_point("table1", 1, quick=True)
    second = extra_faults.compute_point("table1", 1, quick=True)
    assert first == second
    other_seed = extra_faults.compute_point("table1", 1, seed=0x1234,
                                            quick=True)
    assert other_seed != first  # the dial actually turns


def test_moderate_campaign_shows_survivability():
    """The acceptance bar: at the moderate level on 3-node networks,
    the sweep must show tasks terminated by faults, at least one task
    restarted to a clean finish, and crashed nodes recovered."""
    result = extra_faults.run(quick=True, levels=(1,))
    assert result.moderate_terminations >= 1
    assert result.moderate_restarted_ok >= 1
    assert result.moderate_recovered >= 1
    rendered = result.render()
    assert "survivability" in rendered


def test_fault_free_level_finishes_every_task():
    row = extra_faults.compute_point("table2", 0, quick=True)
    assert row.finished == row.tasks
    assert row.terminations == row.crashes == row.dead == 0
    assert row.dropped == row.corrupted == row.duplicated == 0
