"""Trap specialization: bit-identical execution and code caches.

The specializing trap compiler (repro.kernel.specialize) is a pure
speed knob: every register, memory byte, cycle count and kernel
statistic must match the generic dispatch chain exactly, including
across stack relocations that invalidate specialized code through the
per-task region epoch.  The cross-node :class:`SuperblockCache` must
compile each hot block once per flash image, not once per node.
"""

from __future__ import annotations

import pytest

from repro.avr.cpu import SuperblockCache
from repro.avr.devices.radio import Radio
from repro.errors import LinkError
from repro.experiments.extra_static import _workload_sources
from repro.kernel import SensorNode
from repro.net.network import Network
from repro.workloads.bintree import search_task_source
from repro.workloads.kernelbench import KERNEL_BENCHMARKS


def _digest(node):
    """Complete observable state: CPU, SRAM, kernel accounting."""
    kernel, cpu = node.kernel, node.cpu
    return (bytes(cpu.r), cpu.pc, cpu.sp, cpu.sreg, cpu.cycles,
            cpu.instret, bytes(cpu.mem.data),
            dict(kernel.stats.trap_counts), kernel.stats.kernel_cycles,
            kernel.stats.context_switches, kernel.stats.scheduler_checks,
            tuple(kernel.stats.terminations),
            tuple((task.task_id, task.kernel_cycles, task.min_sp_seen,
                   task.max_stack_used, task.branch_counter,
                   task.exit_reason)
                  for task in kernel.tasks.values()))


def _run(sources, specialize, fuse=True, max_instructions=50_000_000):
    node = SensorNode.from_sources(sources, fuse=fuse,
                                   specialize=specialize,
                                   block_cache=False)
    node.run(max_instructions=max_instructions)
    return node


# -- differential: specialized vs generic is bit-identical ---------------------

@pytest.mark.parametrize("workload", ["table1", "table2", "kernelbench"])
def test_specialized_execution_is_bit_identical(workload):
    sources = _workload_sources(workload, quick=True)
    specialized = _run(sources, specialize=True)
    generic_fused = _run(sources, specialize=False)
    generic_stepwise = _run(sources, specialize=False, fuse=False)
    assert specialized.finished
    assert specialized.kernel.specializer.stats.compiled > 0
    assert _digest(specialized) == _digest(generic_fused)
    assert _digest(specialized) == _digest(generic_stepwise)


def test_relocation_invalidates_specialized_code_and_stays_identical():
    """A mid-run stack relocation moves region constants out from under
    every specialized thunk and block the task owns; the epoch guard
    must deopt them and the recompiled code must keep the run
    bit-identical with generic dispatch."""
    sources = [("s0", search_task_source(nodes=60, searches=15,
                                         seed=0x1357)),
               ("s1", search_task_source(nodes=60, searches=15,
                                         seed=0x2468))]

    def run(specialize, fuse=True):
        node = SensorNode.from_sources(sources, fuse=fuse,
                                       specialize=specialize,
                                       block_cache=False)
        node.run(max_instructions=8_000)
        assert not node.finished
        # Force a relocation at a deterministic instruction boundary
        # (the workload alone does not create enough stack pressure).
        result = node.kernel.relocator.grow_stack(0, 16)
        assert result.moved
        node.run(max_instructions=80_000_000)
        assert node.finished
        return node

    specialized = run(specialize=True)
    stats = specialized.kernel.specializer.stats
    assert specialized.kernel.relocator.relocation_count > 0
    assert stats.compiled > 0
    assert stats.deopts > 0  # stale-epoch guards fired and recompiled
    assert _digest(specialized) == _digest(run(specialize=False))
    assert _digest(specialized) == _digest(run(specialize=False,
                                               fuse=False))


# -- cross-node superblock sharing ---------------------------------------------

def test_network_of_identical_nodes_compiles_each_block_once():
    cache = SuperblockCache()
    source = KERNEL_BENCHMARKS["am"](packets=2)
    net = Network()
    for name in ("a", "b", "c"):
        net.add_node(name, SensorNode.from_sources(
            [("am", source)], block_cache=cache))
    net.connect("a", "b")
    net.connect("b", "c")
    net.run(max_cycles=50_000_000)
    assert all(node.finished for node in net.nodes.values())
    assert cache.hits > 0  # later nodes rebound shared code
    assert cache.compile_counts  # something was compiled at all
    assert max(cache.compile_counts.values()) == 1  # each block once


# -- radio TX ring -------------------------------------------------------------

class _StubEvents:
    def schedule(self, due, callback):
        return (due, callback)

    def cancel(self, event):
        pass


class _StubCpu:
    def __init__(self):
        self.cycles = 0
        self.events = _StubEvents()


def test_radio_tx_ring_evicts_and_counts():
    radio = Radio(byte_cycles=10, tx_log_limit=4)
    radio._cpu = cpu = _StubCpu()
    for value in range(0x40, 0x46):  # 6 bytes through a 4-entry ring
        radio._write_data(value)
        cpu.cycles += 10
    assert radio.tx_seq == 6
    assert radio.tx_log_dropped == 2
    assert radio.transmitted == [0x42, 0x43, 0x44, 0x45]
    assert radio.tx_cycles == [20, 30, 40, 50]
    assert radio.packets == bytes([0x42, 0x43, 0x44, 0x45])

    fresh, missed = radio.tx_since(0)
    assert missed == 2  # bytes 0 and 1 were evicted before pickup
    assert [entry[1] for entry in fresh] == [0x42, 0x43, 0x44, 0x45]
    fresh, missed = radio.tx_since(5)
    assert missed == 0 and [entry[1] for entry in fresh] == [0x45]
    fresh, missed = radio.tx_since(6)
    assert missed == 0 and fresh == []


def test_ferry_reports_bytes_evicted_before_pickup():
    source = KERNEL_BENCHMARKS["am"](packets=1)
    net = Network()
    for name in ("tx", "rx"):
        net.add_node(name, SensorNode.from_sources([("am", source)]))
    net.connect("tx", "rx")
    link = net.link_between("tx", "rx")
    radio = net.nodes["tx"].radio
    # Simulate a ring that already evicted ten bytes the ferry never saw.
    radio._tx_ring.append((10, 0xAB, 1_000))
    radio.tx_seq = 11
    net._ferry()
    assert link.log_missed == 10
    assert link._tx_cursor == 11  # cursor resynchronized past the gap


# -- lint on link --------------------------------------------------------------

def test_lint_on_link_blocks_unsound_image():
    from repro.rewriter.classify import PatchKind, classify
    from repro.rewriter.rewriter import Rewriter

    def blind(instruction):  # classifier that misses PUSH
        if instruction.mnemonic == "PUSH":
            return PatchKind.NONE
        return classify(instruction)

    source = "main:\n    push r16\n    pop r16\n    break\n"
    with pytest.raises(LinkError):
        SensorNode.from_sources([("t", source)],
                                rewriter=Rewriter(classify_fn=blind))
    # The ablation switch still allows building the unsound image.
    node = SensorNode.from_sources([("t", source)],
                                   rewriter=Rewriter(classify_fn=blind),
                                   lint=False)
    assert node.kernel is not None
