"""Energy model and the energy experiment."""

from __future__ import annotations

import pytest

from repro.analysis.energy import (EnergyModel, measure_native,
                                   measure_sensmart)
from repro.baselines.native import run_native
from repro.kernel import SensorNode
from repro.workloads.kernelbench import KERNEL_BENCHMARKS
from repro.workloads.periodic import (periodic_native_source,
                                      periodic_sensmart_source)


def test_model_unit_conversion():
    model = EnergyModel(active_ma=10.0, idle_ma=0.0, voltage=3.0,
                        clock_hz=1_000_000)
    report = model.report(total_cycles=1_000_000)  # exactly 1 s active
    assert report.cpu_mj == pytest.approx(30.0)  # 10 mA * 3 V * 1 s
    assert report.total_mj == pytest.approx(30.0)
    assert report.average_ma() == pytest.approx(10.0)


def test_idle_cycles_cost_little():
    model = EnergyModel()
    busy = model.report(total_cycles=1_000_000, idle_cycles=0)
    sleepy = model.report(total_cycles=1_000_000, idle_cycles=900_000)
    assert sleepy.total_mj < 0.2 * busy.total_mj


def test_radio_energy_counted():
    result = run_native(KERNEL_BENCHMARKS["am"](packets=4))
    report = measure_native(result)
    assert report.radio_mj > 0
    assert report.adc_mj == 0


def test_adc_energy_counted():
    result = run_native(KERNEL_BENCHMARKS["readadc"](samples=16))
    report = measure_native(result)
    assert report.adc_mj > 0
    assert report.radio_mj == 0


def test_sensmart_energy_exceeds_native_on_computation():
    size, activations = 20_000, 5
    native = run_native(
        periodic_native_source(size, activations),
        max_instructions=200_000_000)
    node = SensorNode.from_sources(
        [("p", periodic_sensmart_source(size, activations))])
    node.run(max_instructions=200_000_000)
    assert native.finished and node.finished
    native_report = measure_native(native)
    sensmart_report = measure_sensmart(node)
    assert sensmart_report.total_mj > native_report.total_mj
    # ...but the average current stays low while sleep dominates.
    assert sensmart_report.average_ma() < EnergyModel().active_ma


def test_energy_experiment_structure():
    from repro.experiments import extra_energy
    result = extra_energy.run(sizes=[10_000, 60_000], activations=4)
    assert len(result.points) == 2
    for point in result.points:
        assert point.sensmart_mj > point.native_mj
    # Average draw approaches the active figure at saturation.
    assert result.points[-1].sensmart_ma > result.points[0].sensmart_ma
    assert "mJ" in result.render()
