"""Disassembler: listings, round-trips, and properties."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.avr import assemble, disassemble
from repro.avr.disassembler import format_instruction, iter_instructions
from repro.avr.encoding import encode
from tests.test_encoding import any_instruction


@given(any_instruction())
@settings(max_examples=300)
def test_format_reassembles_to_same_words(instruction):
    """Disassembled text re-assembles to the identical encoding.

    Branches carry relative offsets whose textual form (``.+n``) is not
    assembler syntax, so they are exercised separately below.
    """
    from repro.avr.isa import Format
    fmt = instruction.opspec.fmt
    if fmt in (Format.REL12, Format.BRANCH):
        return  # offset syntax differs; covered by the label test
    text = format_instruction(instruction)
    source = f"main:\n    {text}\n"
    program = assemble(source)
    assert tuple(program.words[:instruction.words]) == encode(instruction)


def test_branch_listing_shows_target():
    program = assemble("""
main:
    ldi r16, 3
loop:
    dec r16
    brne loop
    rjmp main
""")
    listing = disassemble(program.words)
    brne_line = listing[2]
    assert "-> 0x0001" in brne_line
    rjmp_line = listing[3]
    assert "-> 0x0000" in rjmp_line


def test_iter_instructions_walks_two_word_instructions():
    program = assemble("""
main:
    jmp far
    nop
far:
    lds r16, 0x200
    break
""")
    entries = list(iter_instructions(program.words))
    mnemonics = [e[1].mnemonic for e in entries if e[1] is not None]
    assert mnemonics == ["JMP", "NOP", "LDS", "BREAK"]
    # Addresses advance by instruction size.
    addresses = [e[0] for e in entries]
    assert addresses == [0, 2, 3, 5]


def test_data_words_render_as_dw():
    program = assemble("""
main:
    break
table:
    .dw 0xFFFF
""")
    listing = disassemble(program.words)
    assert any(".dw 0xffff" in line for line in listing)


def test_full_program_roundtrip_through_listing():
    """A listing of straight-line code reassembles to identical words."""
    source = """
main:
    ldi r16, 0x42
    push r16
    lds r17, 0x0123
    sts 0x0124, r17
    ldd r4, Y+3
    std Z+5, r2
    in r20, 0x3D
    out 0x3E, r21
    adiw r24, 17
    pop r16
    break
"""
    program = assemble(source)
    listing = disassemble(program.words)
    body = "\n".join("    " + line.split(": ", 1)[1] for line in listing)
    reassembled = assemble("main:\n" + body + "\n")
    assert reassembled.words == program.words
