"""The ``sensmart serve`` job server and its NDJSON protocol."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.pipeline.report import SERVE_STATS_SCHEMA, VERDICT_SCHEMA
from repro.pipeline.stages import COUNTERS
from repro.serve import ServeClient, ServeServer, serve_in_thread

SPIN = """
start:
    ldi r24, 30
outer:
    ldi r25, 10
inner:
    dec r25
    brne inner
    dec r24
    brne outer
    break
"""

BLINK = """
start:
    ldi r24, 3
again:
    ldi r26, 0x01
    out 0x18, r26
    dec r24
    brne again
    break
"""

OPTIONS = {"max_instructions": 500_000}


def _programs(*sources):
    return [{"name": name, "source": source}
            for name, source in sources]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("artifacts")
    with serve_in_thread(store_path=str(store)) as live:
        yield live


@pytest.fixture
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


def test_cold_then_warm_submission(client):
    programs = _programs(("spin", SPIN))
    cold = client.submit(programs, options=OPTIONS, ident=1)
    assert cold["ok"] is True
    assert cold["id"] == 1
    verdict = cold["verdict"]
    assert verdict["schema"] == VERDICT_SCHEMA
    assert verdict["simulation"]["finished"] is True

    before = COUNTERS.snapshot()
    warm = client.submit(programs, options=OPTIONS, ident=2)
    assert warm["verdict"]["cached"] is True
    assert COUNTERS.delta(before) == {}, \
        "a repeated identical submission must do zero build work"
    body = {k: v for k, v in verdict.items() if k != "cached"}
    warm_body = {k: v for k, v in warm["verdict"].items()
                 if k != "cached"}
    assert warm_body == body


def test_distinct_submission_is_a_fresh_build(client):
    response = client.submit(_programs(("blink", BLINK)),
                             options=OPTIONS)
    assert response["ok"] is True
    assert response["verdict"]["programs"] == ["blink"]


def test_stats_op(client):
    client.submit(_programs(("spin", SPIN)), options=OPTIONS)
    stats = client.stats()["stats"]
    assert stats["schema"] == SERVE_STATS_SCHEMA
    assert stats["requests"] >= 1
    assert stats["errors"] >= 0
    assert stats["pipeline"]["store"]["hits"] >= 1
    assert stats["jobs"] == 1


def test_error_paths(client):
    bad = client.request({"programs": []})
    assert bad["ok"] is False
    assert "programs" in bad["error"]

    unknown = client.request({"op": "frobnicate"})
    assert unknown["ok"] is False
    assert "unknown op" in unknown["error"]

    not_json = client.request({"programs": [{"name": "x"}]})
    assert not_json["ok"] is False

    # a bad request must not wedge the connection
    good = client.submit(_programs(("spin", SPIN)), options=OPTIONS)
    assert good["ok"] is True


def test_bad_json_line(server):
    import socket
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=30) as sock:
        handle = sock.makefile("rwb")
        handle.write(b"{ not json\n")
        handle.flush()
        response = json.loads(handle.readline())
        assert response["ok"] is False
        assert "bad JSON" in response["error"]


def test_single_flight_coalescing():
    """Two identical concurrent submissions share one build."""
    async def scenario():
        server = ServeServer(port=0)
        await server.start()
        try:
            payload = {"programs": _programs(("spin", SPIN)),
                       "options": OPTIONS}
            v1, v2 = await asyncio.gather(server._submit(payload),
                                          server._submit(payload))
            assert server.coalesced == 1
            assert server.pipeline.submissions == 1
            body = {k: v for k, v in v1.items() if k != "cached"}
            assert {k: v for k, v in v2.items()
                    if k != "cached"} == body
        finally:
            await server.close()

    asyncio.run(scenario())


def test_shutdown_op_stops_the_server(tmp_path):
    with serve_in_thread(store_path=str(tmp_path)) as server:
        with ServeClient(port=server.port) as client:
            ack = client.shutdown()
            assert ack["ok"] is True
            assert ack["stopping"] is True


def test_cli_serve_and_submit_round_trip(tmp_path):
    """The subprocess path: ``sensmart serve`` announces its port,
    ``sensmart submit`` gets a verdict, ``--shutdown`` stops it."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    program = tmp_path / "spin.asm"
    program.write_text(SPIN)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--store", str(tmp_path / "store")],
        stdout=subprocess.PIPE, text=True, env=env)
    try:
        announce = proc.stdout.readline()
        assert announce.startswith("sensmart serve listening on ")
        port = announce.strip().rsplit(":", 1)[1]
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "submit",
             str(program), "--port", port,
             "--max-instructions", "500000", "--shutdown"],
            capture_output=True, text=True, env=env, timeout=120)
        assert result.returncode == 0, result.stderr
        response = json.loads(result.stdout)
        assert response["ok"] is True
        assert response["verdict"]["schema"] == VERDICT_SCHEMA
        proc.wait(timeout=30)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
