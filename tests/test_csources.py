"""Compiled (TinyC) workloads: correctness and merging behaviour."""

from __future__ import annotations

from repro.baselines.native import run_native
from repro.experiments import extra_compiled
from repro.kernel import SensorNode
from repro.workloads.csources import (crc_c_source, lfsr_c_source,
                                      search_c_source)


def test_compiled_crc_matches_reference():
    result = run_native(crc_c_source(rounds=1),
                        max_instructions=10_000_000)
    assert result.finished
    # Same buffer pattern as the assembly benchmark: CRC = 0xD997.
    assert result.heap_byte(32) | (result.heap_byte(33) << 8) == 0xD997


def test_compiled_lfsr_matches_reference():
    result = run_native(lfsr_c_source(steps=4096),
                        max_instructions=10_000_000)
    assert result.finished
    assert result.heap_byte(0) | (result.heap_byte(1) << 8) == 0xB6B4


def test_compiled_search_runs_under_sensmart():
    node = SensorNode.from_sources(
        [("search", search_c_source(nodes=40, searches=20))])
    node.run(max_instructions=60_000_000)
    assert node.finished
    task = node.task_named("search")
    assert task.exit_reason == "exit"
    # Recursive compiled frames: real stack usage was recorded.
    assert task.max_stack_used > 40


def test_compiled_crc_equivalent_under_sensmart():
    source = crc_c_source(rounds=1)
    node = SensorNode.from_sources([("crc", source)])
    heap = node.kernel.regions.by_task(0).p_l
    node.run(max_instructions=30_000_000)
    assert node.finished
    mem = node.kernel.cpu.mem.data
    assert mem[heap + 32] | (mem[heap + 33] << 8) == 0xD997


def test_compiled_code_merges_far_better_than_tiny_asm():
    result = extra_compiled.run()
    compiled = result.by_name("crc (compiled)")
    hand = result.by_name("crc (asm)")
    assert compiled.merge_rate > 0.4
    assert compiled.merge_rate > hand.merge_rate
    # Cross-program merging across the compiled suite is substantial.
    assert result.suite_slots < 0.4 * result.suite_requests
    assert "merged" in result.render()
