"""The dynamic-allocation emulation module (Section III-A)."""

from __future__ import annotations

from repro.baselines.native import run_native
from repro.kernel import SensorNode
from repro.workloads.alloclib import allocator_library


def _program(body: str, pool_bytes: int = 64) -> str:
    return f"""
.bss results, 8
main:
    call alloc_init
{body}
    break
{allocator_library(pool_bytes=pool_bytes)}
"""


def test_blocks_are_distinct_and_writable():
    source = _program("""
    ldi r16, 4
    ldi r17, 0
    call alloc              ; block A
    sts results, r24
    sts results + 1, r25
    movw r26, r24
    ldi r18, 0xAA
    st X, r18               ; write into A
    ldi r16, 4
    ldi r17, 0
    call alloc              ; block B
    sts results + 2, r24
    sts results + 3, r25
    movw r26, r24
    ldi r18, 0xBB
    st X, r18
    ; read A back: must still be 0xAA
    lds r26, results
    lds r27, results + 1
    ld r20, X
""")
    result = run_native(source)
    assert result.finished
    a = result.heap_byte(0) | (result.heap_byte(1) << 8)
    b = result.heap_byte(2) | (result.heap_byte(3) << 8)
    assert a != 0 and b != 0
    assert b == a + 4  # bump allocation
    assert result.cpu.r[20] == 0xAA


def test_exhaustion_returns_null():
    source = _program("""
    ldi r16, 40
    ldi r17, 0
    call alloc              ; fits (pool 64 - 2-byte header)
    sts results, r24
    ldi r16, 40
    ldi r17, 0
    call alloc              ; cannot fit
    sts results + 2, r24
    sts results + 3, r25
""", pool_bytes=64)
    result = run_native(source)
    assert result.finished
    assert result.heap_byte(0) != 0
    assert result.heap_byte(2) == 0 and result.heap_byte(3) == 0


def test_mark_release_frees_in_lifo_order():
    source = _program("""
    call alloc_mark
    movw r2, r24            ; save watermark
    ldi r16, 16
    ldi r17, 0
    call alloc
    sts results, r24        ; first block
    movw r16, r2
    call alloc_release      ; roll back
    ldi r16, 16
    ldi r17, 0
    call alloc
    sts results + 2, r24    ; reuses the same space
""")
    result = run_native(source)
    assert result.finished
    assert result.heap_byte(0) == result.heap_byte(2)


def test_allocator_works_under_sensmart():
    source = _program("""
    ldi r16, 8
    ldi r17, 0
    call alloc
    movw r26, r24
    ldi r18, 0x77
    st X+, r18
    ld r20, -X
""")
    node = SensorNode.from_sources([("alloc", source)])
    node.run(max_instructions=1_000_000)
    assert node.finished
    task = node.task_named("alloc")
    assert task.exit_reason == "exit"
    assert task.context.regs[20] == 0x77


def test_init_resets_pool():
    source = _program("""
    ldi r16, 16
    ldi r17, 0
    call alloc
    sts results, r24
    call alloc_init
    ldi r16, 16
    ldi r17, 0
    call alloc
    sts results + 2, r24
""")
    result = run_native(source)
    assert result.finished
    assert result.heap_byte(0) == result.heap_byte(2)
