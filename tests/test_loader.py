"""Dynamic task loading (the reprogramming OS service)."""

from __future__ import annotations

import pytest

from repro.errors import LoadError, OutOfMemory
from repro.kernel import KernelConfig, SensorNode
from repro.workloads.bintree import search_task_source

SPINNER = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 8
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""

STACK_USER = """
.bss cells, 4
main:
    ldi r16, 0x5A
    sts cells, r16
    push r16
    ldi r17, 0x66
    push r17
    ldi r26, 0
    ldi r27, 0
    ldi r28, 8
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    pop r18
    pop r19
    lds r20, cells
    break
"""

NEW_TASK = """
.bss hello, 4
main:
    ldi r16, 0xCE
    sts hello, r16
    lds r17, hello
    break
"""


def make_node(*sources, slice_cycles=20_000):
    config = KernelConfig(time_slice_cycles=slice_cycles)
    return SensorNode.from_sources(list(sources), config=config)


def test_load_task_mid_run():
    node = make_node(("s1", SPINNER), ("s2", SPINNER))
    kernel = node.kernel
    node.run(max_cycles=100_000)
    assert not node.finished
    report = kernel.load_task("hot", NEW_TASK)
    assert report.flash_words > 0
    assert report.total_cycles > 0
    node.run(max_instructions=30_000_000)
    assert node.finished
    hot = node.task_named("hot")
    assert hot.exit_reason == "exit"
    assert hot.context.regs[17] == 0xCE


def test_compaction_preserves_live_stacks_and_heaps():
    node = make_node(("u1", STACK_USER), ("u2", STACK_USER))
    kernel = node.kernel
    # Run until both tasks have pushed their live data.
    node.run(max_cycles=120_000)
    report = kernel.load_task("hot", NEW_TASK)
    assert report.ram_bytes_moved > 0  # live bytes really moved
    node.run(max_instructions=30_000_000)
    assert node.finished
    for name in ("u1", "u2"):
        task = node.task_named(name)
        assert task.exit_reason == "exit"
        # Pops returned the pushed values, heap read its value.
        assert task.context.regs[18] == 0x66
        assert task.context.regs[19] == 0x5A
        assert task.context.regs[20] == 0x5A


def test_loaded_task_gets_logical_isolation():
    node = make_node(("s1", SPINNER))
    kernel = node.kernel
    node.run(max_cycles=50_000)
    kernel.load_task("a", NEW_TASK)
    kernel.load_task("b", NEW_TASK.replace("0xCE", "0xDF"))
    node.run(max_instructions=30_000_000)
    assert node.finished
    assert node.task_named("a").context.regs[17] == 0xCE
    assert node.task_named("b").context.regs[17] == 0xDF


def test_loaded_task_can_grow_its_stack():
    node = make_node(("s1", SPINNER), ("s2", SPINNER))
    kernel = node.kernel
    node.run(max_cycles=50_000)
    kernel.load_task("deep",
                     search_task_source(nodes=100, searches=5),
                     min_stack=48)
    node.run(max_instructions=60_000_000)
    assert node.finished
    deep = node.task_named("deep")
    assert deep.exit_reason == "exit"


def test_unload_task_reclaims_region():
    node = make_node(("s1", SPINNER), ("s2", SPINNER))
    kernel = node.kernel
    node.run(max_cycles=50_000)
    kernel.load_task("hot", NEW_TASK)
    count_before = len(kernel.regions.regions)
    kernel.unload_task("s2")
    assert len(kernel.regions.regions) == count_before - 1
    assert node.task_named("s2").exit_reason == "unloaded"
    node.run(max_instructions=30_000_000)
    assert node.finished
    assert node.task_named("hot").exit_reason == "exit"


def test_unload_unknown_task_raises():
    node = make_node(("s1", SPINNER))
    with pytest.raises(KeyError):
        node.kernel.unload_task("ghost")


def test_load_fails_when_memory_exhausted():
    node = make_node(("s1", SPINNER))
    kernel = node.kernel
    huge = """
.bss big, 3650
main:
    break
"""
    with pytest.raises(OutOfMemory):
        kernel.load_task("huge", huge)
    # The node keeps running after the refused load.
    node.run(max_instructions=10_000_000)
    assert node.finished
    assert node.task_named("s1").exit_reason == "exit"


def test_sequential_loads_extend_flash():
    node = make_node(("s1", SPINNER))
    kernel = node.kernel
    first = kernel.loader.flash_cursor
    kernel.load_task("a", NEW_TASK)
    second = kernel.loader.flash_cursor
    kernel.load_task("b", NEW_TASK)
    third = kernel.loader.flash_cursor
    assert first < second < third
    node.run(max_instructions=30_000_000)
    assert node.finished


def _node_snapshot(node):
    """Everything a failed load must leave untouched."""
    kernel = node.kernel
    cursor = kernel.loader.flash_cursor
    return (
        bytes(kernel.cpu.mem.data),
        tuple((r.task_id, r.p_l, r.p_h, r.p_u)
              for r in kernel.regions.regions),
        cursor,
        tuple(kernel.cpu.flash.word(w)
              for w in range(cursor, min(cursor + 64,
                                         kernel.cpu.flash.size_words))),
        sorted(kernel.trampolines),
        tuple(kernel.cpu._trap_ranges),
    )


@pytest.mark.parametrize("bad_source", [
    "main:\n    frobnicate r16\n",          # unknown mnemonic
    "main:\n    rjmp nowhere\n",            # truncated: missing label
    "main:\n    ldi r16, 9999\n",           # immediate does not encode
])
def test_malformed_load_rejected_cleanly(bad_source):
    """A failed mid-patch load keeps running tasks bit-identical.

    The validation pass is charged, but flash, trampolines, regions
    and every byte of RAM stay exactly as they were, and the node runs
    on to the same final state.
    """
    node = make_node(("u1", STACK_USER), ("u2", STACK_USER))
    kernel = node.kernel
    node.run(max_cycles=120_000)  # both tasks hold live data
    before = _node_snapshot(node)
    cycles_before = node.cpu.cycles
    with pytest.raises(LoadError) as info:
        kernel.load_task("bad", bad_source)
    assert "rejected" in str(info.value)
    assert _node_snapshot(node) == before
    assert node.cpu.cycles > cycles_before  # validation was charged
    # The node keeps running; live stacks and heaps are intact.
    node.run(max_instructions=30_000_000)
    assert node.finished
    for name in ("u1", "u2"):
        task = node.task_named(name)
        assert task.exit_reason == "exit"
        assert task.context.regs[18] == 0x66
        assert task.context.regs[19] == 0x5A
        assert task.context.regs[20] == 0x5A


def test_failed_load_then_good_load_still_works():
    node = make_node(("s1", SPINNER))
    kernel = node.kernel
    node.run(max_cycles=50_000)
    with pytest.raises(LoadError):
        kernel.load_task("bad", "main:\n    frobnicate r16\n")
    kernel.load_task("hot", NEW_TASK)
    node.run(max_instructions=30_000_000)
    assert node.finished
    assert node.task_named("hot").exit_reason == "exit"


def test_load_onto_idle_node_revives_scheduler():
    node = make_node(("quick", "main:\n    ldi r16, 1\n    break\n"))
    node.run(max_instructions=1_000_000)
    assert node.finished  # everything exited; node is idle-halted
    report = node.kernel.load_task("late", NEW_TASK)
    node.run(max_instructions=10_000_000)
    assert node.finished
    assert node.task_named("late").exit_reason == "exit"
    assert node.task_named("late").context.regs[17] == 0xCE
