#!/usr/bin/env python3
"""Sense-and-send: the workload pattern the paper's evaluation models.

Three concurrent application tasks on one mote:

* ``sampler`` — periodically reads the ADC and keeps a running maximum
  (the "data feeding" side);
* ``compressor`` — a processing task doing CRC-style folding over its
  buffer (computation between events);
* ``reporter`` — assembles a small packet and clocks it out through the
  radio.

Each is an independent program with its own logical memory; SenSmart
schedules them preemptively and the radio output proves end-to-end
delivery.
"""

from repro.avr import ioports
from repro.kernel import KernelConfig, SensorNode

SAMPLER = f"""
; periodically sample the ADC, track the max reading
.bss max_reading, 2
.bss samples, 1
main:
    ldi r16, hi8(1024)
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8(1024)
    sts {ioports.OCR3AL}, r16       ; 1024-tick virtual timer
    ldi r20, 24                     ; samples to take
sample_round:
    sleep
    ldi r18, {1 << ioports.ADSC}
    sts {ioports.ADCSRA}, r18
adc_poll:
    lds r18, {ioports.ADCSRA}
    sbrc r18, {ioports.ADSC}
    rjmp adc_poll
    lds r18, {ioports.ADCL}
    lds r19, {ioports.ADCH}
    lds r24, max_reading
    lds r25, max_reading + 1
    cp  r24, r18
    cpc r25, r19
    brsh not_bigger
    sts max_reading, r18
    sts max_reading + 1, r19
not_bigger:
    lds r16, samples
    inc r16
    sts samples, r16
    dec r20
    brne sample_round
    break
"""

COMPRESSOR = """
; fold a 48-byte buffer repeatedly (stand-in for compression)
.bss window, 48
.bss digest, 1
main:
    ldi r26, lo8(window)
    ldi r27, hi8(window)
    ldi r16, 48
    ldi r17, 0x3C
fill:
    st X+, r17
    subi r17, 0x29
    dec r16
    brne fill
    ldi r20, 12                 ; passes
pass_loop:
    ldi r26, lo8(window)
    ldi r27, hi8(window)
    ldi r16, 48
    ldi r18, 0
fold:
    ld r19, X+
    eor r18, r19
    lsl r18
    adc r18, r16
    dec r16
    brne fold
    sts digest, r18
    dec r20
    brne pass_loop
    break
"""

REPORTER = f"""
; build an 8-byte report and transmit it
.bss report, 8
.bss sent, 1
main:
    ldi r16, hi8(4096)
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8(4096)
    sts {ioports.OCR3AL}, r16
    ldi r20, 3                  ; reports to send
report_round:
    sleep
    ; header: magic, sequence; payload: pattern bytes
    ldi r26, lo8(report)
    ldi r27, hi8(report)
    ldi r16, 0x7E
    st X+, r16
    lds r16, sent
    st X+, r16
    ldi r17, 6
    ldi r16, 0xA0
payload:
    st X+, r16
    inc r16
    dec r17
    brne payload
    ; transmit
    ldi r26, lo8(report)
    ldi r27, hi8(report)
    ldi r17, 8
tx_loop:
    ld r18, X+
wait_ready:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_ready
    sts {ioports.UDR0}, r18
    dec r17
    brne tx_loop
    lds r16, sent
    inc r16
    sts sent, r16
    dec r20
    brne report_round
    break
"""


def main() -> None:
    node = SensorNode.from_sources(
        [("sampler", SAMPLER), ("compressor", COMPRESSOR),
         ("reporter", REPORTER)],
        config=KernelConfig(time_slice_cycles=20_000))
    kernel = node.kernel
    sampler_heap = kernel.regions.by_task(0).p_l
    node.run(max_instructions=20_000_000)

    print(f"finished: {node.finished} in "
          f"{node.cpu.cycles / node.cpu.clock_hz * 1000:.1f} ms mote time")
    mem = kernel.cpu.mem.data
    max_reading = mem[sampler_heap] | (mem[sampler_heap + 1] << 8)
    print(f"sampler: {mem[sampler_heap + 2]} samples, "
          f"max ADC reading {max_reading}")
    packets = node.radio.packets
    print(f"reporter transmitted {len(packets)} bytes:")
    for offset in range(0, len(packets), 8):
        frame = packets[offset:offset + 8]
        print(f"  frame {frame.hex(' ')}  (seq {frame[1]})")
    print(f"context switches: {kernel.stats.context_switches}, "
          f"idle: {kernel.stats.idle_cycles} cycles "
          f"({kernel.stats.idle_cycles / node.cpu.cycles:.0%})")
    for task in kernel.tasks.values():
        print(f"  {task.name}: {task.exit_reason}")


if __name__ == "__main__":
    main()
