#!/usr/bin/env python3
"""Two motes, one link: a sender and a receiver, both running SenSmart.

The sensing node samples its ADC and transmits framed readings over a
`repro.net.Network` link; the co-simulator delivers each byte into the
sink node's radio at exactly the TX cycle plus the link latency, where
a receiver task reframes it, verifies the checksum, and tallies the
readings.  Both nodes run their tasks under the SenSmart kernel — the
example shows the library composing into the *networked* systems the
paper's introduction motivates.
"""

from repro.avr import ioports
from repro.avr.devices.radio import RXC
from repro.kernel import SensorNode
from repro.net import Network

FRAME = 5  # magic, seq, lo, hi, checksum

SENDER = f"""
; sample the ADC and transmit framed readings
.bss seq, 1
main:
    ldi r20, 8              ; frames to send
frame_loop:
    ; sample
    ldi r18, {1 << ioports.ADSC}
    sts {ioports.ADCSRA}, r18
poll:
    lds r18, {ioports.ADCSRA}
    sbrc r18, {ioports.ADSC}
    rjmp poll
    lds r24, {ioports.ADCL}
    lds r25, {ioports.ADCH}
    ; frame: magic, seq, lo, hi, checksum(sum of previous three)
    lds r22, seq
    mov r23, r22
    add r23, r24
    add r23, r25
    ldi r16, 0x7E
    call send_byte
    mov r16, r22
    call send_byte
    mov r16, r24
    call send_byte
    mov r16, r25
    call send_byte
    mov r16, r23
    call send_byte
    lds r22, seq
    inc r22
    sts seq, r22
    dec r20
    brne frame_loop
    break

send_byte:
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    ret
"""

RECEIVER = f"""
; reframe received bytes, verify checksums, tally good readings
.bss good, 1
.bss bad, 1
.bss total_lo, 1
.bss total_hi, 1
main:
    ldi r20, 8              ; frames expected
frame_loop:
    call recv_byte          ; magic
    cpi r16, 0x7E
    brne bad_frame
    call recv_byte          ; seq
    mov r22, r16
    call recv_byte          ; lo
    mov r24, r16
    call recv_byte          ; hi
    mov r25, r16
    call recv_byte          ; checksum
    mov r23, r22
    add r23, r24
    add r23, r25
    cp r16, r23
    brne bad_frame
    lds r18, good
    inc r18
    sts good, r18
    lds r18, total_lo
    lds r19, total_hi
    add r18, r24
    adc r19, r25
    sts total_lo, r18
    sts total_hi, r19
    rjmp next_frame
bad_frame:
    lds r18, bad
    inc r18
    sts bad, r18
next_frame:
    dec r20
    brne frame_loop
    break

recv_byte:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    ret
"""


def main() -> None:
    latency = 2_000
    net = Network()
    sensing = net.add_node("sensing", SensorNode.from_sources(
        [("sender", SENDER)], adc_seed=0x1357))
    sink = net.add_node("sink", SensorNode.from_sources(
        [("receiver", RECEIVER)]))
    net.connect("sensing", "sink", latency_cycles=latency)
    sink_kernel = sink.kernel
    receiver_heap = sink_kernel.regions.by_task(0).p_l

    # Co-simulate both motes; the link ferries bytes cycle-exactly.
    net.run(max_cycles=50_000_000)
    frames = sensing.radio.packets
    print(f"sensing node sent {len(frames)} bytes "
          f"({len(frames) // FRAME} frames):")
    for offset in range(0, len(frames), FRAME):
        frame = frames[offset:offset + FRAME]
        reading = frame[2] | (frame[3] << 8)
        print(f"  seq {frame[1]}: reading {reading:4d} "
              f"(frame {frame.hex(' ')})")

    link = net.link_between("sensing", "sink")
    print(f"\nlink: {link.delivered} bytes delivered, "
          f"{link.dropped} dropped; first byte arrived at cycle "
          f"{link.arrival_cycles[0]} "
          f"(TX {sensing.radio.tx_cycles[0]} + {latency} latency)")
    assert link.arrival_cycles == [
        tx + latency for tx in sensing.radio.tx_cycles]

    mem = sink_kernel.cpu.mem.data
    good, bad = mem[receiver_heap], mem[receiver_heap + 1]
    total = mem[receiver_heap + 2] | (mem[receiver_heap + 3] << 8)
    print(f"\nsink node: {good} good frames, {bad} bad, "
          f"reading total {total}")
    expected = sum(frames[i + 2] | (frames[i + 3] << 8)
                   for i in range(0, len(frames), FRAME)) & 0xFFFF
    assert good == 8 and bad == 0 and total == expected
    print("all frames verified end-to-end across the link.")


if __name__ == "__main__":
    main()
