#!/usr/bin/env python3
"""Reprogramming as an OS service: install tasks on a *running* node.

The paper's Section III-A notes that, while application code never
self-modifies, "reprogramming can be performed as an OS service".  This
example exercises that service: a node boots with two long-running
tasks, and while they spin, a brand-new application is compiled,
naturalized, burned into flash and given a freshly-carved memory region
— the resident tasks' regions are compacted around their *live* stacks,
invisible to them thanks to logical addressing.
"""

from repro.kernel import KernelConfig, SensorNode

RESIDENT = """
; long-running resident task with live stack state
.bss progress, 2
main:
    ldi r16, 0x42
    push r16            ; live stack byte across the hot-load
    ldi r26, 0
    ldi r27, 0
    ldi r28, 12
outer:
inner:
    adiw r26, 1
    brne inner
    lds r18, progress
    inc r18
    sts progress, r18
    dec r28
    brne outer
    pop r19             ; must still be 0x42 afterwards
    break
"""

HOTFIX = """
; the "firmware update": compute a checksum over its own heap
.bss table, 16
.bss digest, 1
main:
    ldi r26, lo8(table)
    ldi r27, hi8(table)
    ldi r16, 16
    ldi r17, 0x0F
fill:
    st X+, r17
    subi r17, 0xFB      ; += 5
    dec r16
    brne fill
    ldi r26, lo8(table)
    ldi r27, hi8(table)
    ldi r16, 16
    ldi r18, 0
sum:
    ld r19, X+
    add r18, r19
    dec r16
    brne sum
    sts digest, r18
    break
"""


def main() -> None:
    node = SensorNode.from_sources(
        [("res1", RESIDENT), ("res2", RESIDENT)],
        config=KernelConfig(time_slice_cycles=20_000))
    kernel = node.kernel

    node.run(max_cycles=200_000)
    print("node is live:",
          [f"{t.name}({t.state.value})" for t in kernel.tasks.values()])
    print("regions before load:")
    for region in kernel.regions.regions:
        print(f"  {kernel.tasks[region.task_id].name}: "
              f"[{region.p_l:#06x},{region.p_u:#06x}) "
              f"stack {region.stack_size} B")

    report = kernel.load_task("hotfix", HOTFIX)
    print(f"\ninstalled 'hotfix': {report.flash_words} flash words "
          f"burned ({report.flash_cycles} cycles of self-programming), "
          f"{report.ram_bytes_moved} live RAM bytes compacted "
          f"({report.ram_cycles} cycles)")
    print("regions after load:")
    for region in kernel.regions.regions:
        print(f"  {kernel.tasks[region.task_id].name}: "
              f"[{region.p_l:#06x},{region.p_u:#06x}) "
              f"stack {region.stack_size} B")
    hotfix_heap = kernel.regions.by_task(
        node.task_named("hotfix").task_id).p_l

    node.run(max_instructions=60_000_000)
    print(f"\nfinished: {node.finished}")
    digest = kernel.cpu.mem.data[hotfix_heap + 16]
    print(f"hotfix digest: {digest:#04x} "
          f"(expected {sum((0x0F + 5 * i) & 0xFF for i in range(16)) & 0xFF:#04x})")
    for task in kernel.tasks.values():
        extra = ""
        if task.name.startswith("res"):
            extra = f", preserved stack byte: {task.context.regs[19]:#04x}"
        print(f"  {task.name}: {task.exit_reason}{extra}")


if __name__ == "__main__":
    main()
