#!/usr/bin/env python3
"""Versatile stacks in action: watch SenSmart relocate stacks live.

A deep-recursion task shares the node with several long-running tasks.
Its initial stack share cannot hold the recursion; instead of dying (as
it would on a fixed-stack OS), SenSmart takes surplus from the task with
the most free stack and slides the regions — transparently, because
applications only ever see logical addresses.

The same configuration is then run with relocation disabled to show the
counterfactual.
"""

from repro.kernel import KernelConfig, SensorNode
from repro.workloads.bintree import search_task_source

SPINNER = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 6
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


def build(enable_relocation: bool) -> SensorNode:
    sources = [("spin0", SPINNER),
               ("deep", search_task_source(nodes=140, searches=10))]
    for index in range(1, 12):
        sources.append((f"spin{index}", SPINNER))
    config = KernelConfig(time_slice_cycles=20_000,
                          enable_relocation=enable_relocation)
    return SensorNode.from_sources(sources, config=config)


def show_regions(node: SensorNode, label: str) -> None:
    print(f"  {label}:")
    for region in node.kernel.regions.regions:
        name = node.kernel.tasks[region.task_id].name
        bar = "#" * (region.stack_size // 24)
        print(f"    {name:7s} [{region.p_l:#06x},{region.p_u:#06x}) "
              f"heap {region.heap_size:4d} B  stack {region.stack_size:4d} "
              f"B {bar}")


def main() -> None:
    print("=== with stack relocation (SenSmart) ===")
    node = build(enable_relocation=True)
    show_regions(node, "initial layout")

    relocation_log = []
    kernel = node.kernel
    original = kernel.relocator.grow_stack

    def logged(task_id, needed):
        result = original(task_id, needed)
        if result.moved:
            relocation_log.append(
                f"task {kernel.tasks[task_id].name!r} needed {needed} B -> "
                f"donor {kernel.tasks[result.donor_task].name!r} gave "
                f"{result.delta} B ({result.bytes_moved} B moved, "
                f"{result.cycles} cycles)")
        return result
    kernel.relocator.grow_stack = logged

    node.run(max_instructions=80_000_000)
    print("  relocations:")
    for line in relocation_log or ["    (none)"]:
        print(f"    {line}")
    deep = node.task_named("deep")
    print(f"  deep-recursion task: {deep.exit_reason!r} "
          f"(grew its stack {deep.stack_grows} time(s))")

    print("\n=== same node, relocation disabled (fixed shares) ===")
    node = build(enable_relocation=False)
    node.run(max_instructions=80_000_000)
    deep = node.task_named("deep")
    print(f"  deep-recursion task: {deep.exit_reason!r}")
    print(f"  terminations: {node.kernel.stats.terminations}")


if __name__ == "__main__":
    main()
