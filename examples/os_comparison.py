#!/usr/bin/env python3
"""One workload, four systems: native, SenSmart, t-kernel, Maté.

Runs the CRC kernel benchmark bare-metal, under both binary-translation
OSes, and (as computation-equivalent bytecode) on the Maté-style VM,
then prints the Figure 5/6-style comparison.
"""

from repro.baselines.mate import MateVm, Op, assemble_bytecode
from repro.baselines.native import run_native
from repro.baselines.tkernel import TkernelRunner
from repro.kernel import SensorNode
from repro.workloads.kernelbench import crc_source

CLOCK_HZ = 7_372_800
ROUNDS = 8


def mate_crc_equivalent(rounds: int):
    """The CRC workload's inner-loop volume in bytecode terms."""
    # 32 bytes x 8 bits of shift/xor per round ~ 3 ops per bit.
    listing = [
        (Op.PUSH16, rounds * 32 * 8),
        "bitloop:",
        (Op.LOAD, 0),
        (Op.PUSHC, 0x21),
        Op.ADD,
        (Op.STORE, 0),
        Op.DEC,
        Op.DUP,
        (Op.JNZ, "bitloop"),
        Op.HALT,
    ]
    return assemble_bytecode(listing)


def main() -> None:
    source = crc_source(rounds=ROUNDS)

    native = run_native(source)
    crc_value = native.heap_byte(32) | (native.heap_byte(33) << 8)

    node = SensorNode.from_sources([("crc", source)])
    heap_base = node.kernel.regions.by_task(0).p_l  # capture before exit
    node.run(max_instructions=50_000_000)
    sensmart_crc = node.cpu.mem.data[heap_base + 32] | \
        (node.cpu.mem.data[heap_base + 33] << 8)

    tkernel = TkernelRunner(source).run()
    tkernel_crc = tkernel.heap_byte(32) | (tkernel.heap_byte(33) << 8)

    vm = MateVm(mate_crc_equivalent(ROUNDS))
    mate_stats = vm.run()

    def milliseconds(cycles: int) -> float:
        return 1000.0 * cycles / CLOCK_HZ

    print(f"CRC-16 of the 32-byte buffer, {ROUNDS} rounds "
          f"(correct value {crc_value:#06x}):\n")
    rows = [
        ("native", native.cycles, f"{crc_value:#06x}"),
        ("SenSmart", node.cpu.cycles, f"{sensmart_crc:#06x}"),
        ("t-kernel (excl. warm-up)", tkernel.exec_cycles,
         f"{tkernel_crc:#06x}"),
        ("t-kernel (incl. warm-up)", tkernel.total_cycles,
         f"{tkernel_crc:#06x}"),
        ("Maté VM (equivalent work)", mate_stats.cycles, "n/a"),
    ]
    print(f"{'system':28s} {'cycles':>12s} {'ms':>9s} {'vs native':>10s} "
          f"{'result':>8s}")
    for name, cycles, result in rows:
        print(f"{name:28s} {cycles:12d} {milliseconds(cycles):9.2f} "
              f"{cycles / native.cycles:9.1f}x {result:>8s}")

    assert sensmart_crc == crc_value, "SenSmart changed the result!"
    assert tkernel_crc == crc_value, "t-kernel changed the result!"
    print("\nboth OSes preserved the program's semantics exactly.")


if __name__ == "__main__":
    main()
