#!/usr/bin/env python3
"""A sensornet application written in TinyC, run under SenSmart.

The paper's applications are compiled from nesC; this example uses the
bundled TinyC compiler (``repro.cc``) to build two tasks from C-like
source — a periodic ADC smoother and a recursive statistics worker —
and runs them concurrently on one node.  The recursive worker's stack
frames (compiled, not hand-written) are exactly the kind of dynamics
SenSmart's versatile stacks absorb.
"""

from repro.cc import compile_c_to_asm
from repro.kernel import KernelConfig, SensorNode

SMOOTHER_C = """
// Periodic exponential smoothing over ADC readings.
u16 smoothed;
u8 rounds;

u16 read_adc() {
    io_write(0x26, 64);                 // ADCSRA: start conversion
    while (io_read(0x26) & 64) { }      // poll ADSC
    return io_read(0x24) + (io_read(0x25) << 8);
}

void main() {
    u8 i;
    settimer(1024);
    smoothed = read_adc();
    for (i = 0; i < 12; i = i + 1) {
        sleep();
        // smoothed = 3/4 smoothed + 1/4 sample
        smoothed = smoothed - (smoothed >> 2) + (read_adc() >> 2);
        rounds = i + 1;
    }
    halt();
}
"""

WORKER_C = """
// Recursive worker: sum of a comb tree over its data table.
u16 result;
u8 table[24];

u16 comb(u8 lo, u8 hi) {
    u16 mid;
    if (hi - lo <= 1) { return table[lo]; }
    mid = lo + ((hi - lo) >> 1);
    return comb(lo, mid) + comb(mid, hi);
}

void main() {
    u8 i;
    for (i = 0; i < 24; i = i + 1) { table[i] = i * 5 + 1; }
    result = comb(0, 24);
    halt();
}
"""


def main() -> None:
    node = SensorNode.from_sources(
        [("smoother", compile_c_to_asm(SMOOTHER_C)),
         ("worker", compile_c_to_asm(WORKER_C))],
        config=KernelConfig(time_slice_cycles=20_000))
    kernel = node.kernel
    smoother_heap = kernel.regions.by_task(0).p_l
    worker_heap = kernel.regions.by_task(1).p_l

    node.run(max_instructions=30_000_000)
    mem = kernel.cpu.mem.data
    assert node.finished
    print(f"finished in {node.cpu.cycles / node.cpu.clock_hz * 1000:.1f}"
          f" ms of mote time")

    smoothed = mem[smoother_heap] | (mem[smoother_heap + 1] << 8)
    print(f"smoother: {mem[smoother_heap + 2]} rounds, "
          f"final smoothed ADC value {smoothed}")

    result = mem[worker_heap] | (mem[worker_heap + 1] << 8)
    expected = sum((i * 5 + 1) & 0xFF for i in range(24))
    print(f"worker: recursive comb sum = {result} "
          f"(expected {expected})")
    assert result == expected

    worker = node.task_named("worker")
    print(f"worker peak stack usage: {worker.max_stack_used} bytes "
          f"(compiled frames, depth ~5)")
    for task in kernel.tasks.values():
        print(f"  {task.name}: {task.exit_reason}")


if __name__ == "__main__":
    main()
