#!/usr/bin/env python3
"""Quickstart: compile two programs, rewrite them, run them on one node.

Walks the whole SenSmart pipeline (paper Figure 1):

    source -> compiler -> rewriter -> linker -> kernel -> execution

Both tasks use the *same logical addresses* for their data; SenSmart's
logical addressing keeps them isolated without an MMU.
"""

from repro.kernel import SensorNode
from repro.toolchain import link_image

COUNTER_TASK = """
; count to N, store the result at logical address 0x100
.equ N = 25
.bss result, 2
main:
    ldi r16, 0
    ldi r17, N
loop:
    inc r16
    dec r17
    brne loop
    sts result, r16
    break
"""

BLINKER_TASK = """
; toggle the LEDs a few times, then exit
.bss flips, 1
main:
    ldi r16, 0x01
    ldi r20, 6
loop:
    out 0x1B, r16       ; PORTA = LEDs
    com r16
    andi r16, 0x07
    lds r18, flips
    inc r18
    sts flips, r18
    dec r20
    brne loop
    break
"""


def main() -> None:
    # 1. Base-station side: compile + rewrite + link.  (SensorNode
    #    wraps this; shown explicitly here for the tour.)
    image = link_image([("counter", COUNTER_TASK),
                        ("blinker", BLINKER_TASK)])
    for task in image.tasks:
        stats = task.natural.stats
        print(f"{task.name}: {stats.native_bytes} B native -> "
              f"{stats.total_bytes} B naturalized "
              f"(x{stats.inflation_ratio:.2f}), "
              f"{stats.patched_sites} patched sites")
    print(f"trampoline pool: {image.pool.count} slots "
          f"({image.pool.requests} requests before merging)\n")

    # 2. Node side: boot the kernel and run both tasks concurrently.
    node = SensorNode.from_sources([("counter", COUNTER_TASK),
                                    ("blinker", BLINKER_TASK)])
    kernel = node.kernel
    for region in kernel.regions.regions:
        print(f"task {region.task_id} region: "
              f"[{region.p_l:#06x}, {region.p_u:#06x}) "
              f"heap {region.heap_size} B, stack {region.stack_size} B")

    counter_region = kernel.regions.by_task(0)
    node.run(max_instructions=1_000_000)

    print(f"\nfinished: {node.finished} after {node.cpu.cycles} cycles "
          f"({node.cpu.cycles / node.cpu.clock_hz * 1000:.2f} ms of "
          f"mote time)")
    # Both tasks wrote to logical 0x100; each landed in its own region.
    print(f"counter result (its logical 0x100): "
          f"{kernel.cpu.mem.data[counter_region.p_l]}")
    print(f"LED changes recorded: {node.leds.changes}")
    for task in kernel.tasks.values():
        print(f"task {task.name!r}: {task.exit_reason}, "
              f"{task.cycles_used} cycles used, "
              f"{task.kernel_cycles} kernel cycles")


if __name__ == "__main__":
    main()
