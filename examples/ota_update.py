#!/usr/bin/env python3
"""Over-the-air reprogramming: ship a new task to a deployed node.

Combines three pieces of the library: the network simulator carries an
application image from a gateway node to a field node over the lossy
radio channel; a tiny receiver task on the field node acknowledges the
transfer; and the kernel's reprogramming service (paper Section III-A)
installs the update on the *running* node, alongside its existing
sensing task.  The update itself is written in TinyC.
"""

from repro.avr import ioports
from repro.avr.devices.radio import RXC
from repro.cc import compile_c_to_asm
from repro.kernel import KernelConfig, SensorNode
from repro.net import Network

# The field node's resident sensing task (long-running).
SENSING = f"""
.bss readings, 2
main:
    ldi r16, hi8(4096)
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8(4096)
    sts {ioports.OCR3AL}, r16
    ldi r20, 20
sense_round:
    sleep
    ldi r18, {1 << ioports.ADSC}
    sts {ioports.ADCSRA}, r18
adc_poll:
    lds r18, {ioports.ADCSRA}
    sbrc r18, {ioports.ADSC}
    rjmp adc_poll
    lds r16, readings
    inc r16
    sts readings, r16
    dec r20
    brne sense_round
    break
"""

# The field node's OTA receiver: counts image bytes, acks the total.
RECEIVER = f"""
.bss got_lo, 1
.bss got_hi, 1
main:
    ldi r24, 0
    ldi r25, 0
recv:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    cpi r16, 0x04          ; EOT sentinel ends the transfer
    breq done
    adiw r24, 1
    rjmp recv
done:
    sts got_lo, r24
    sts got_hi, r25
    break
"""

# The gateway: clocks a byte buffer out; host glue fills its radio.
GATEWAY = f"""
.bss image_len_lo, 1
.bss image_len_hi, 1
main:
relay:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
wait_tx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    cpi r16, 0x04
    brne relay
    break
"""

# The update, written in TinyC: a duty-cycle reporter.
UPDATE_C = """
u16 blinks;
void main() {
    u16 i;
    settimer(2048);
    for (i = 0; i < 6; i++) {
        sleep();
        io_write(0x3B, i & 7);     // LEDs show progress
        blinks++;
    }
    halt();
}
"""


def main() -> None:
    update_asm = compile_c_to_asm(UPDATE_C)
    image_bytes = update_asm.encode() + b"\x04"  # EOT-terminated

    config = KernelConfig(time_slice_cycles=20_000)
    net = Network(quantum_cycles=10_000)
    gateway = net.add_node(
        "gateway", SensorNode.from_sources([("relay", GATEWAY)],
                                           config=config))
    field = net.add_node(
        "field", SensorNode.from_sources(
            [("sensing", SENSING), ("ota_rx", RECEIVER)], config=config))
    net.connect("gateway", "field", latency_cycles=2_000)

    kernel = field.kernel

    # The base station hands the image to the gateway's radio.
    gateway.radio.deliver(image_bytes)
    print(f"base station queued {len(image_bytes)} image bytes at the "
          f"gateway")

    net.run(max_cycles=80_000_000)
    link = net.link_between("gateway", "field")
    print(f"link carried {link.delivered} bytes "
          f"({link.dropped} dropped)")

    rx = field.task_named("ota_rx")
    # The byte count lives in the receiver's exit context (r25:r24);
    # its heap may have been compacted after neighbouring exits.
    received = rx.context.regs[24] | (rx.context.regs[25] << 8)
    print(f"field node's OTA receiver: {rx.exit_reason or rx.state.value},"
          f" {received} bytes received")
    assert received == len(image_bytes) - 1

    # Transfer verified: the node's reprogramming service installs it.
    report = kernel.load_task("update", update_asm)
    print(f"installed 'update': {report.flash_words} flash words, "
          f"{report.total_cycles} cycles of install work")
    field.run(max_instructions=60_000_000)
    assert field.finished
    update = field.task_named("update")
    print("field node final state:")
    for task in kernel.tasks.values():
        print(f"  {task.name}: {task.exit_reason}")
    assert update.exit_reason == "exit"
    print(f"LED trail from the update: {field.leds.changes}")


if __name__ == "__main__":
    main()
