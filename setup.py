"""Thin setup.py shim.

The package metadata lives in pyproject.toml; this file exists so the
package can be installed in environments without the ``wheel`` package
(e.g. offline boxes) via ``python setup.py develop``.
"""

from setuptools import setup

setup()
