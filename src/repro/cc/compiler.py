"""TinyC compiler driver."""

from __future__ import annotations

from ..toolchain.compile import compile_source
from ..toolchain.program import Program as BinaryProgram
from .codegen import CodeGenerator
from .optimizer import optimize_lines
from .parser import parse


def compile_c_to_asm(source: str, optimize: bool = True) -> str:
    """Compile TinyC *source* to AVR assembly text.

    *optimize* runs the peephole pass (see :mod:`.optimizer`); disable
    it to inspect the generator's raw output or for A/B measurements.
    """
    ast = parse(source)
    text = CodeGenerator(ast).generate()
    if optimize:
        lines = optimize_lines(text.splitlines())
        text = "\n".join(lines) + "\n"
    return text


def compile_c(source: str, name: str = "app", origin: int = 0,
              optimize: bool = True) -> BinaryProgram:
    """Compile TinyC *source* all the way to a binary Program."""
    return compile_source(compile_c_to_asm(source, optimize=optimize),
                          name=name, origin=origin)
