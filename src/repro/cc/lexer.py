"""TinyC lexer."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ReproError


class CompileError(ReproError):
    """TinyC source is malformed."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


KEYWORDS = {"u8", "u16", "void", "if", "else", "while", "for", "do",
            "return", "break", "continue"}

#: Token kinds: NUM, NAME, KW, PUNCT, EOF.
_TOKEN_RE = re.compile(r"""
      (?P<ws>\s+|//[^\n]*)
    | (?P<num>0[xX][0-9a-fA-F]+|\d+)
    | (?P<name>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|\+\+|--|[-+*&|^]=|<<|>>|==|!=|<=|>=|&&|\|\|
                |[-+*/%&|^~!<>=(){}\[\],;])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str  # "num" | "name" | "kw" | "punct" | "eof"
    text: str
    line: int

    @property
    def value(self) -> int:
        return int(self.text, 0)


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise CompileError(f"unexpected character {source[pos]!r}",
                               line)
        pos = match.end()
        if match.lastgroup == "ws":
            line += match.group().count("\n")
            continue
        kind = match.lastgroup
        text = match.group()
        if kind == "name" and text in KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
