"""A miniature C compiler targeting the mote.

The paper's applications are written in nesC and compiled before the
rewriter ever sees them; this package provides the equivalent front end
for the reproduction, so workloads can be written in a small, typed
C-like language ("TinyC") instead of raw assembly:

.. code-block:: c

    u16 total;
    u8 buf[16];

    u16 sum(u8 n) {
        u16 acc = 0;
        u8 i = 0;
        while (i < n) { acc = acc + buf[i]; i = i + 1; }
        return acc;
    }

    void main() {
        u8 i;
        for (i = 0; i < 16; i = i + 1) { buf[i] = i; }
        total = sum(16);
        halt();
    }

Supported: ``u8``/``u16`` scalars and 1-D arrays (globals), stack-frame
locals, functions with up to four parameters and recursion, the usual
arithmetic/bitwise/comparison operators, ``if``/``else``, ``while``,
``for``, and the mote intrinsics ``halt()``, ``sleep()``,
``io_read(a)``, ``io_write(a, v)`` and ``settimer(ticks)``.  Pointers are
intentionally out of scope.

Frame-based locals are deliberate: they exercise SenSmart's
stack-frame access class and SP get/set virtualization exactly the way
avr-gcc output does.
"""

from .compiler import compile_c, compile_c_to_asm

__all__ = ["compile_c", "compile_c_to_asm"]
