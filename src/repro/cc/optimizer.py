"""Peephole optimizer for TinyC output.

The code generator spills the left operand of every binary operator to
the hardware stack; when the right operand is a *leaf* (constant, local
or scalar global) that spill is unnecessary and — under SenSmart —
expensive, since every PUSH/POP is a checked trap.  This pass rewrites
the exact shapes the generator emits:

* ``PUSH r24/r25 … leaf-load … POP r23/r22``  becomes
  ``MOVW r22, r24 … leaf-load …`` (two trapped stack ops saved per
  binary operator, four instructions shrink to three);
* a load immediately following a store to the same frame slot is
  forwarded (``STD Y+q, rX`` then ``LDD rX, Y+q`` drops the load).

Patterns never cross labels, so control-flow joins are safe, and every
replacement preserves the generator's register contract exactly
(r22/r23 were dead before the POPs rewrote them; MOVW writes the same
pair).
"""

from __future__ import annotations

import re
from typing import List, Optional

_LEAF_RES = [
    re.compile(r"^    ldi r24, \d+$"),
    re.compile(r"^    ldi r25, \d+$"),
    re.compile(r"^    ldd r24, Y\+\d+$"),
    re.compile(r"^    ldd r25, Y\+\d+$"),
    re.compile(r"^    lds r24, g_\w+( \+ 1)?$"),
    re.compile(r"^    lds r25, g_\w+( \+ 1)?$"),
]

_STD_RE = re.compile(r"^    std (Y\+\d+), (r\d+)$")
_LDD_RE = re.compile(r"^    ldd (r\d+), (Y\+\d+)$")


def _is_leaf_load(line: str) -> bool:
    return any(pattern.match(line) for pattern in _LEAF_RES)


def _is_label(line: str) -> bool:
    return not line.startswith("    ")


def optimize_lines(lines: List[str]) -> List[str]:
    """Apply the peepholes until a fixed point."""
    changed = True
    while changed:
        lines, changed = _one_pass(lines)
    return lines


def _one_pass(lines: List[str]):
    out: List[str] = []
    changed = False
    index = 0
    while index < len(lines):
        window = lines[index:index + 6]
        # PUSH-pair, two leaf loads into r24/r25, POP-pair.
        if (len(window) == 6
                and window[0] == "    push r24"
                and window[1] == "    push r25"
                and _is_leaf_load(window[2])
                and _is_leaf_load(window[3])
                and window[4] == "    pop r23"
                and window[5] == "    pop r22"):
            out.append("    movw r22, r24")
            out.append(window[2])
            out.append(window[3])
            index += 6
            changed = True
            continue
        # Same shape with a single-byte leaf (u8 global: lds + ldi 0).
        if (len(window) >= 5
                and window[0] == "    push r24"
                and window[1] == "    push r25"
                and _is_leaf_load(window[2])
                and window[3] == "    pop r23"
                and window[4] == "    pop r22"):
            out.append("    movw r22, r24")
            out.append(window[2])
            index += 5
            changed = True
            continue
        # Store-load forwarding within a straight line.
        if index + 1 < len(lines):
            store = _STD_RE.match(lines[index])
            load = _LDD_RE.match(lines[index + 1])
            if (store and load and store.group(1) == load.group(2)
                    and store.group(2) == load.group(1)
                    and not _is_label(lines[index + 1])):
                out.append(lines[index])
                index += 2  # drop the redundant load
                changed = True
                continue
        out.append(lines[index])
        index += 1
    return out, changed


def optimization_report(before: List[str],
                        after: List[str]) -> Optional[str]:
    saved = len(before) - len(after)
    if saved <= 0:
        return None
    return f"peephole: {len(before)} -> {len(after)} lines ({saved} saved)"
