"""TinyC code generator: AST -> AVR assembly (our assembler's dialect).

Conventions (mirroring avr-gcc closely enough to exercise the same
SenSmart code paths):

* all values are u16 at runtime (u8 zero-extended on load, truncated on
  store); the accumulator is r25:r24;
* locals and parameters live in a stack frame addressed through Y
  (r28:r29, callee-saved); the prologue reads SP, lowers it by the
  frame size, and writes it back — exercising SenSmart's SP get/set
  virtualization exactly like compiled C does;
* parameters arrive in r25:r24, r23:r22, r21:r20, r19:r18; the return
  value leaves in r25:r24;
* expression temporaries are spilled to the hardware stack around
  binary operators, so arbitrarily deep expressions are correct (if not
  optimal) and every spill exercises the checked PUSH/POP path;
* SP byte-write ordering is chosen so the intermediate value always
  stays inside the logical stack zone (low byte first when lowering,
  high byte first when raising).

Division and modulo call a 16-bit restoring-division helper (emitted on
demand, like ``__mul16``); division by zero yields 0 quotient with the
dividend's shifted-out remainder (deterministic, documented).
Unsupported on purpose: pointers, nested arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..avr import ioports
from .astnodes import (Assign, Binary, Break, Call, Continue, Declare,
                       DoWhile, Expr, ExprStmt, For, Function, GlobalVar,
                       If, Index, Number, Program, Return, Stmt, Unary,
                       Var, While)
from .lexer import CompileError

#: Parameter register pairs (low, high), first parameter first.
PARAM_REGS = [(24, 25), (22, 23), (20, 21), (18, 19)]

INTRINSICS = {"halt", "sleep", "io_read", "io_write", "settimer"}

MAX_SLOTS = 31  # LDD displacement limit: slot i lives at Y+1+2i


class _FunctionContext:
    def __init__(self, function: Function):
        self.function = function
        self.slots: Dict[str, int] = {}
        self.types: Dict[str, str] = {}
        for param in function.params:
            self._add(param.name, param.type_name, function.line)

    def _add(self, name: str, type_name: str, line: int) -> int:
        if name in self.slots:
            raise CompileError(f"duplicate local {name!r}", line)
        if len(self.slots) >= MAX_SLOTS:
            raise CompileError("too many locals", line)
        self.slots[name] = len(self.slots)
        self.types[name] = type_name
        return self.slots[name]

    def declare(self, statement: Declare) -> int:
        return self._add(statement.name, statement.type_name,
                         statement.line)

    @property
    def frame_bytes(self) -> int:
        return 2 * len(self.slots)

    def offset(self, name: str) -> int:
        return 1 + 2 * self.slots[name]


class CodeGenerator:
    def __init__(self, program: Program):
        self.program = program
        self.globals: Dict[str, GlobalVar] = {
            g.name: g for g in program.globals}
        self.functions: Dict[str, Function] = {
            f.name: f for f in program.functions}
        self.lines: List[str] = []
        self._label_counter = 0
        self._needs_mul16 = False
        self._needs_div16 = False
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)

    # -- helpers ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(text)

    def op(self, text: str) -> None:
        self.lines.append("    " + text)

    def label(self, stem: str) -> str:
        self._label_counter += 1
        return f"L{self._label_counter}_{stem}"

    # -- top level -----------------------------------------------------------------

    def generate(self) -> str:
        if "main" not in self.functions:
            raise CompileError("no main() function")
        for global_var in self.program.globals:
            self.emit(f".bss g_{global_var.name}, "
                      f"{global_var.size_bytes}")
        # main first so the entry convention holds.
        ordered = [self.functions["main"]] + [
            f for f in self.program.functions if f.name != "main"]
        for function in ordered:
            self._function(function)
        if self._needs_mul16:
            self._emit_mul16()
        if self._needs_div16:
            self._emit_div16()
        return "\n".join(self.lines) + "\n"

    def _function(self, function: Function) -> None:
        # Pre-scan declarations so the frame size is known up front.
        context = _FunctionContext(function)
        self._collect_declarations(function.body, context)
        self.emit(f"{function.name}:")
        is_main = function.name == "main"
        frame = context.frame_bytes
        if frame > 0 or not is_main:
            self.op("push r28")
            self.op("push r29")
            self.op(f"in r28, {ioports.SPL - 0x20:#04x}")
            self.op(f"in r29, {ioports.SPH - 0x20:#04x}")
            if frame:
                self.op(f"sbiw r28, {frame}")
                # Lowering SP: low byte first keeps the intermediate
                # inside the stack zone.
                self.op(f"out {ioports.SPL - 0x20:#04x}, r28")
                self.op(f"out {ioports.SPH - 0x20:#04x}, r29")
        # Spill incoming parameters into their frame slots.
        for param, (lo, hi) in zip(function.params, PARAM_REGS):
            offset = context.offset(param.name)
            self.op(f"std Y+{offset}, r{lo}")
            self.op(f"std Y+{offset + 1}, r{hi}")
        epilogue = f"{function.name}_epilogue"
        self._context = context
        self._epilogue_label = epilogue
        if is_main:
            self._emit_global_initializers()
        for statement in function.body:
            self._statement(statement)
        self.emit(f"{epilogue}:")
        if is_main:
            self.op("break")
            return
        if frame:
            self.op(f"adiw r28, {frame}")
            # Raising SP: high byte first (see module docstring).
            self.op(f"out {ioports.SPH - 0x20:#04x}, r29")
            self.op(f"out {ioports.SPL - 0x20:#04x}, r28")
        self.op("pop r29")
        self.op("pop r28")
        self.op("ret")

    def _emit_global_initializers(self) -> None:
        for global_var in self.program.globals:
            if getattr(global_var, "init", None) is None:
                continue
            value = global_var.init & 0xFFFF
            self.op(f"ldi r24, {value & 0xFF}")
            self.op(f"sts g_{global_var.name}, r24")
            if global_var.element_bytes == 2:
                self.op(f"ldi r24, {value >> 8}")
                self.op(f"sts g_{global_var.name} + 1, r24")

    def _collect_declarations(self, body: List[Stmt],
                              context: _FunctionContext) -> None:
        for statement in body:
            if isinstance(statement, Declare):
                context.declare(statement)
            elif isinstance(statement, If):
                self._collect_declarations(statement.then_body, context)
                self._collect_declarations(statement.else_body, context)
            elif isinstance(statement, (While, DoWhile)):
                self._collect_declarations(statement.body, context)
            elif isinstance(statement, For):
                if isinstance(statement.init, Declare):
                    context.declare(statement.init)
                self._collect_declarations(statement.body, context)

    # -- statements -------------------------------------------------------------------

    def _statement(self, statement: Stmt) -> None:
        if isinstance(statement, Declare):
            if statement.init is not None:
                self._expression(statement.init)
                self._store_local(statement.name, statement.line)
            return
        if isinstance(statement, Assign):
            self._assign(statement)
            return
        if isinstance(statement, If):
            self._if(statement)
            return
        if isinstance(statement, While):
            self._while(statement)
            return
        if isinstance(statement, For):
            self._for(statement)
            return
        if isinstance(statement, DoWhile):
            self._do_while(statement)
            return
        if isinstance(statement, Break):
            if not self._loop_stack:
                raise CompileError("break outside a loop", statement.line)
            self.op(f"rjmp {self._loop_stack[-1][1]}")
            return
        if isinstance(statement, Continue):
            if not self._loop_stack:
                raise CompileError("continue outside a loop",
                                   statement.line)
            self.op(f"rjmp {self._loop_stack[-1][0]}")
            return
        if isinstance(statement, Return):
            if statement.value is not None:
                self._expression(statement.value)
            self.op(f"rjmp {self._epilogue_label}")
            return
        if isinstance(statement, ExprStmt):
            self._expression(statement.expr)
            return
        raise CompileError(f"unhandled statement {statement!r}")

    def _assign(self, statement: Assign) -> None:
        target = statement.target
        if isinstance(target, Var):
            self._expression(statement.value)
            self._store_named(target.name, statement.line)
            return
        # Array element: compute the address, save it, then the value.
        self._element_address(target)
        self.op("push r26")
        self.op("push r27")
        self._expression(statement.value)
        self.op("pop r27")
        self.op("pop r26")
        element = self.globals[target.name]
        self.op("st X+, r24")
        if element.element_bytes == 2:
            self.op("st X, r25")

    def _store_named(self, name: str, line: int) -> None:
        context = self._context
        if name in context.slots:
            self._store_local(name, line)
            return
        if name in self.globals:
            global_var = self.globals[name]
            if global_var.array_length is not None:
                raise CompileError(
                    f"cannot assign whole array {name!r}", line)
            self.op(f"sts g_{name}, r24")
            if global_var.element_bytes == 2:
                self.op(f"sts g_{name} + 1, r25")
            return
        raise CompileError(f"unknown variable {name!r}", line)

    def _store_local(self, name: str, line: int) -> None:
        offset = self._context.offset(name)
        self.op(f"std Y+{offset}, r24")
        if self._context.types[name] == "u16":
            self.op(f"std Y+{offset + 1}, r25")
        else:
            # u8 slots still occupy 2 bytes; keep the extension honest.
            self.op("ldi r25, 0")
            self.op(f"std Y+{offset + 1}, r25")

    def _if(self, statement: If) -> None:
        else_label = self.label("else")
        end_label = self.label("endif")
        self._condition_jump_false(statement.condition, else_label)
        for inner in statement.then_body:
            self._statement(inner)
        if statement.else_body:
            self.op(f"rjmp {end_label}")
        self.emit(f"{else_label}:")
        for inner in statement.else_body:
            self._statement(inner)
        if statement.else_body:
            self.emit(f"{end_label}:")

    def _while(self, statement: While) -> None:
        top = self.label("while")
        end = self.label("endwhile")
        self.emit(f"{top}:")
        self._condition_jump_false(statement.condition, end)
        self._loop_stack.append((top, end))
        for inner in statement.body:
            self._statement(inner)
        self._loop_stack.pop()
        self.op(f"rjmp {top}")
        self.emit(f"{end}:")

    def _for(self, statement: For) -> None:
        if statement.init is not None:
            self._statement(statement.init)
        top = self.label("for")
        step_label = self.label("forstep")
        end = self.label("endfor")
        self.emit(f"{top}:")
        if statement.condition is not None:
            self._condition_jump_false(statement.condition, end)
        self._loop_stack.append((step_label, end))
        for inner in statement.body:
            self._statement(inner)
        self._loop_stack.pop()
        self.emit(f"{step_label}:")
        if statement.step is not None:
            self._statement(statement.step)
        self.op(f"rjmp {top}")
        self.emit(f"{end}:")

    def _do_while(self, statement: DoWhile) -> None:
        top = self.label("do")
        check = self.label("docheck")
        end = self.label("enddo")
        self.emit(f"{top}:")
        self._loop_stack.append((check, end))
        for inner in statement.body:
            self._statement(inner)
        self._loop_stack.pop()
        self.emit(f"{check}:")
        self._condition_jump_false(statement.condition, end)
        self.op(f"rjmp {top}")
        self.emit(f"{end}:")

    def _condition_jump_false(self, condition: Expr, target: str) -> None:
        """Evaluate *condition*; jump to *target* when it is zero.

        The jump may exceed the conditional-branch range for large
        bodies, so a short skip + RJMP shape is emitted.
        """
        self._expression(condition)
        keep_going = self.label("true")
        self.op("mov r0, r24")
        self.op("or r0, r25")
        self.op(f"brne {keep_going}")
        self.op(f"rjmp {target}")
        self.emit(f"{keep_going}:")

    # -- expressions --------------------------------------------------------------------

    def _expression(self, expr: Expr) -> None:
        """Evaluate *expr* into r25:r24."""
        if isinstance(expr, Number):
            value = expr.value & 0xFFFF
            self.op(f"ldi r24, {value & 0xFF}")
            self.op(f"ldi r25, {value >> 8}")
            return
        if isinstance(expr, Var):
            self._load_named(expr.name, expr.line)
            return
        if isinstance(expr, Index):
            self._element_address(expr)
            element = self.globals[expr.name]
            self.op("ld r24, X+")
            if element.element_bytes == 2:
                self.op("ld r25, X")
            else:
                self.op("ldi r25, 0")
            return
        if isinstance(expr, Unary):
            self._unary(expr)
            return
        if isinstance(expr, Binary):
            self._binary(expr)
            return
        if isinstance(expr, Call):
            self._call(expr)
            return
        raise CompileError(f"unhandled expression {expr!r}")

    def _load_named(self, name: str, line: int) -> None:
        context = self._context
        if name in context.slots:
            offset = context.offset(name)
            self.op(f"ldd r24, Y+{offset}")
            self.op(f"ldd r25, Y+{offset + 1}")
            return
        if name in self.globals:
            global_var = self.globals[name]
            if global_var.array_length is not None:
                raise CompileError(
                    f"array {name!r} needs an index", line)
            self.op(f"lds r24, g_{name}")
            if global_var.element_bytes == 2:
                self.op(f"lds r25, g_{name} + 1")
            else:
                self.op("ldi r25, 0")
            return
        raise CompileError(f"unknown variable {name!r}", line)

    def _element_address(self, expr: Index) -> None:
        """Leave the element's data address in X (r27:r26)."""
        global_var = self.globals.get(expr.name)
        if global_var is None or global_var.array_length is None:
            raise CompileError(f"{expr.name!r} is not an array",
                               expr.line)
        self._expression(expr.index)
        if global_var.element_bytes == 2:
            self.op("lsl r24")
            self.op("rol r25")
        self.op(f"ldi r26, lo8(g_{expr.name})")
        self.op(f"ldi r27, hi8(g_{expr.name})")
        self.op("add r26, r24")
        self.op("adc r27, r25")

    def _unary(self, expr: Unary) -> None:
        self._expression(expr.operand)
        if expr.op == "-":
            self.op("clr r22")
            self.op("clr r23")
            self.op("sub r22, r24")
            self.op("sbc r23, r25")
            self.op("movw r24, r22")
        elif expr.op == "~":
            self.op("com r24")
            self.op("com r25")
        elif expr.op == "!":
            done = self.label("notz")
            self.op("mov r0, r24")
            self.op("or r0, r25")
            self.op("ldi r24, 1")
            self.op("ldi r25, 0")
            self.op(f"breq {done}")
            self.op("ldi r24, 0")
            self.emit(f"{done}:")
        else:  # pragma: no cover
            raise CompileError(f"unhandled unary {expr.op!r}", expr.line)

    def _binary(self, expr: Binary) -> None:
        # left -> stack, right -> r25:r24, left -> r23:r22.
        self._expression(expr.left)
        self.op("push r24")
        self.op("push r25")
        self._expression(expr.right)
        self.op("pop r23")
        self.op("pop r22")
        op = expr.op
        if op == "+":
            self.op("add r22, r24")
            self.op("adc r23, r25")
            self.op("movw r24, r22")
        elif op == "-":
            self.op("sub r22, r24")
            self.op("sbc r23, r25")
            self.op("movw r24, r22")
        elif op == "*":
            self._needs_mul16 = True
            self.op("call __mul16")
        elif op == "/":
            self._needs_div16 = True
            self.op("call __div16")
        elif op == "%":
            self._needs_div16 = True
            self.op("call __div16")
            self.op("movw r24, r18")  # remainder
        elif op == "&":
            self.op("and r24, r22")
            self.op("and r25, r23")
        elif op == "|":
            self.op("or r24, r22")
            self.op("or r25, r23")
        elif op == "^":
            self.op("eor r24, r22")
            self.op("eor r25, r23")
        elif op in ("<<", ">>"):
            self._shift(op)
        elif op in ("==", "!=", "<", "<=", ">", ">="):
            self._comparison(op)
        elif op in ("&&", "||"):
            self._logical(op)
        else:  # pragma: no cover
            raise CompileError(f"unhandled operator {op!r}", expr.line)

    def _shift(self, op: str) -> None:
        loop = self.label("shift")
        done = self.label("shiftdone")
        self.op("mov r20, r24")      # shift count (low byte)
        self.op("movw r24, r22")     # value
        self.emit(f"{loop}:")
        self.op("tst r20")
        self.op(f"breq {done}")
        if op == "<<":
            self.op("lsl r24")
            self.op("rol r25")
        else:
            self.op("lsr r25")
            self.op("ror r24")
        self.op("dec r20")
        self.op(f"rjmp {loop}")
        self.emit(f"{done}:")

    def _comparison(self, op: str) -> None:
        """left in r23:r22, right in r25:r24 -> boolean in r25:r24."""
        done = self.label("cmp")
        if op in ("==", "!=", "<", ">="):
            self.op("cp r22, r24")
            self.op("cpc r23, r25")
            branch = {"==": "breq", "!=": "brne", "<": "brlo",
                      ">=": "brsh"}[op]
        else:  # ">" and "<=": compare the other way around
            self.op("cp r24, r22")
            self.op("cpc r25, r23")
            branch = {"<=": "brsh", ">": "brlo"}[op]
        self.op("ldi r24, 1")
        self.op("ldi r25, 0")
        self.op(f"{branch} {done}")
        self.op("ldi r24, 0")
        self.emit(f"{done}:")

    def _logical(self, op: str) -> None:
        """Non-short-circuit && and || over already-evaluated operands."""
        left_bool = self.label("lbool")
        right_bool = self.label("rbool")
        # left (r23:r22) -> 0/1 in r22
        self.op("mov r0, r22")
        self.op("or r0, r23")
        self.op("ldi r22, 1")
        self.op(f"brne {left_bool}")
        self.op("ldi r22, 0")
        self.emit(f"{left_bool}:")
        # right (r25:r24) -> 0/1 in r24
        self.op("mov r0, r24")
        self.op("or r0, r25")
        self.op("ldi r24, 1")
        self.op(f"brne {right_bool}")
        self.op("ldi r24, 0")
        self.emit(f"{right_bool}:")
        self.op("and r24, r22" if op == "&&" else "or r24, r22")
        self.op("ldi r25, 0")

    # -- calls ---------------------------------------------------------------------------

    def _call(self, expr: Call) -> None:
        if expr.name in INTRINSICS:
            self._intrinsic(expr)
            return
        function = self.functions.get(expr.name)
        if function is None:
            raise CompileError(f"unknown function {expr.name!r}",
                               expr.line)
        if len(expr.args) != len(function.params):
            raise CompileError(
                f"{expr.name}() takes {len(function.params)} argument(s),"
                f" got {len(expr.args)}", expr.line)
        for argument in expr.args:
            self._expression(argument)
            self.op("push r24")
            self.op("push r25")
        for lo, hi in reversed(PARAM_REGS[:len(expr.args)]):
            self.op(f"pop r{hi}")
            self.op(f"pop r{lo}")
        self.op(f"call {expr.name}")

    def _intrinsic(self, expr: Call) -> None:
        arity = {"halt": 0, "sleep": 0, "io_read": 1, "io_write": 2,
                 "settimer": 1}[expr.name]
        if len(expr.args) != arity:
            raise CompileError(
                f"{expr.name}() takes {arity} argument(s)", expr.line)
        if expr.name == "halt":
            self.op("break")
            return
        if expr.name == "sleep":
            self.op("sleep")
            return
        if expr.name == "io_read":
            self._expression(expr.args[0])
            self.op("movw r26, r24")
            self.op("ld r24, X")
            self.op("ldi r25, 0")
            return
        if expr.name == "io_write":
            self._expression(expr.args[0])
            self.op("push r24")
            self.op("push r25")
            self._expression(expr.args[1])
            self.op("pop r27")
            self.op("pop r26")
            self.op("st X, r24")
            return
        if expr.name == "settimer":
            self._expression(expr.args[0])
            self.op(f"sts {ioports.OCR3AH}, r25")
            self.op(f"sts {ioports.OCR3AL}, r24")
            return
        raise CompileError(f"unhandled intrinsic {expr.name!r}",
                           expr.line)  # pragma: no cover

    # -- helpers emitted on demand ---------------------------------------------------------

    def _emit_mul16(self) -> None:
        self.emit("__mul16:")
        self.op("movw r20, r24")
        self.op("ldi r24, 0")
        self.op("ldi r25, 0")
        self.emit("__mul16_loop:")
        self.op("mov r18, r20")
        self.op("or r18, r21")
        self.op("breq __mul16_done")
        self.op("sbrs r20, 0")
        self.op("rjmp __mul16_skip")
        self.op("add r24, r22")
        self.op("adc r25, r23")
        self.emit("__mul16_skip:")
        self.op("lsl r22")
        self.op("rol r23")
        self.op("lsr r21")
        self.op("ror r20")
        self.op("rjmp __mul16_loop")
        self.emit("__mul16_done:")
        self.op("ret")

    def _emit_div16(self) -> None:
        """Restoring division: r23:r22 / r25:r24.

        Returns quotient in r25:r24 and remainder in r19:r18; clobbers
        r20, r21, r26.
        """
        self.emit("__div16:")
        self.op("movw r20, r24")     # divisor
        self.op("ldi r18, 0")        # remainder = 0
        self.op("ldi r19, 0")
        self.op("ldi r26, 16")       # bit counter
        self.emit("__div16_loop:")
        self.op("lsl r22")           # dividend <<= 1, MSB -> remainder
        self.op("rol r23")
        self.op("rol r18")
        self.op("rol r19")
        self.op("cp r18, r20")
        self.op("cpc r19, r21")
        self.op("brlo __div16_skip")
        self.op("sub r18, r20")
        self.op("sbc r19, r21")
        self.op("ori r22, 1")        # quotient bit
        self.emit("__div16_skip:")
        self.op("dec r26")
        self.op("brne __div16_loop")
        self.op("movw r24, r22")     # quotient
        self.op("ret")
