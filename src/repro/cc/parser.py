"""TinyC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from .astnodes import (Assign, Binary, Break, Call, Continue, Declare,
                       DoWhile, Expr, ExprStmt, For, Function, GlobalVar,
                       If, Index, Number, Param, Program, Return, Stmt,
                       Unary, Var, While)
from .lexer import CompileError, Token, tokenize

#: Compound assignment operators and their underlying binary operator.
_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "&=": "&", "|=": "|",
                 "^=": "^", "<<=": "<<", ">>=": ">>"}

#: Binary operator precedence, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise CompileError(
                f"expected {want!r}, found {token.text or 'EOF'!r}",
                token.line)
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> Program:
        program = Program()
        while self.peek().kind != "eof":
            type_token = self.expect("kw")
            if type_token.text not in ("u8", "u16", "void"):
                raise CompileError(
                    f"expected a type, found {type_token.text!r}",
                    type_token.line)
            name = self.expect("name")
            if self.peek().text == "(":
                program.functions.append(
                    self._function(type_token.text, name))
            else:
                program.globals.append(
                    self._global(type_token.text, name))
        return program

    def _global(self, type_name: str, name: Token) -> GlobalVar:
        if type_name == "void":
            raise CompileError("variables cannot be void", name.line)
        length = None
        init = None
        if self.accept("punct", "["):
            length = self.expect("num").value
            self.expect("punct", "]")
            if length <= 0:
                raise CompileError("array length must be positive",
                                   name.line)
        elif self.accept("punct", "="):
            negate = self.accept("punct", "-") is not None
            init = self.expect("num").value
            if negate:
                init = (-init) & 0xFFFF
        self.expect("punct", ";")
        return GlobalVar(type_name=type_name, name=name.text,
                         array_length=length, init=init, line=name.line)

    def _function(self, return_type: str, name: Token) -> Function:
        self.expect("punct", "(")
        params: List[Param] = []
        if not self.accept("punct", ")"):
            while True:
                ptype = self.expect("kw")
                if ptype.text not in ("u8", "u16"):
                    raise CompileError(
                        f"bad parameter type {ptype.text!r}", ptype.line)
                pname = self.expect("name")
                params.append(Param(ptype.text, pname.text))
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        if len(params) > 4:
            raise CompileError("at most 4 parameters supported",
                               name.line)
        body = self._block()
        return Function(return_type=return_type, name=name.text,
                        params=params, body=body, line=name.line)

    def _block(self) -> List[Stmt]:
        self.expect("punct", "{")
        statements: List[Stmt] = []
        while not self.accept("punct", "}"):
            statements.append(self._statement())
        return statements

    def _statement(self) -> Stmt:
        token = self.peek()
        if token.kind == "kw" and token.text in ("u8", "u16"):
            return self._declaration()
        if token.kind == "kw" and token.text == "if":
            return self._if()
        if token.kind == "kw" and token.text == "while":
            return self._while()
        if token.kind == "kw" and token.text == "for":
            return self._for()
        if token.kind == "kw" and token.text == "do":
            return self._do_while()
        if token.kind == "kw" and token.text == "break":
            self.advance()
            self.expect("punct", ";")
            return Break(line=token.line)
        if token.kind == "kw" and token.text == "continue":
            self.advance()
            self.expect("punct", ";")
            return Continue(line=token.line)
        if token.kind == "kw" and token.text == "return":
            self.advance()
            value = None
            if self.peek().text != ";":
                value = self._expression()
            self.expect("punct", ";")
            return Return(value=value, line=token.line)
        statement = self._simple_statement()
        self.expect("punct", ";")
        return statement

    def _declaration(self) -> Declare:
        type_token = self.advance()
        name = self.expect("name")
        init = None
        if self.accept("punct", "="):
            init = self._expression()
        self.expect("punct", ";")
        return Declare(type_name=type_token.text, name=name.text,
                       init=init, line=name.line)

    def _simple_statement(self) -> Stmt:
        """Assignment or expression statement (no trailing ';')."""
        start = self.pos
        token = self.peek()
        if token.kind == "name":
            name = self.advance()
            target = None
            if self.accept("punct", "["):
                index = self._expression()
                self.expect("punct", "]")
                target = Index(name.text, index, name.line)
            else:
                target = Var(name.text, name.line)
            statement = self._assignment_tail(target, name.line)
            if statement is not None:
                return statement
            self.pos = start  # it was an expression after all
        expr = self._expression()
        return ExprStmt(expr=expr, line=token.line)

    def _assignment_tail(self, target, line: int) -> Optional[Stmt]:
        """Parse ``= expr``, ``op= expr``, ``++`` or ``--`` after a
        target; None when the tokens form a plain expression."""
        if self.accept("punct", "="):
            return Assign(target=target, value=self._expression(),
                          line=line)
        for text, op in _COMPOUND_OPS.items():
            if self.accept("punct", text):
                return Assign(
                    target=target,
                    value=Binary(op=op, left=self._target_expr(target),
                                 right=self._expression(), line=line),
                    line=line)
        if self.accept("punct", "++"):
            return Assign(
                target=target,
                value=Binary(op="+", left=self._target_expr(target),
                             right=Number(1, line), line=line),
                line=line)
        if self.accept("punct", "--"):
            return Assign(
                target=target,
                value=Binary(op="-", left=self._target_expr(target),
                             right=Number(1, line), line=line),
                line=line)
        return None

    @staticmethod
    def _target_expr(target) -> Expr:
        """The target re-read as an expression (for desugaring)."""
        return target

    def _do_while(self) -> DoWhile:
        token = self.advance()
        body = self._block()
        self.expect("kw", "while")
        self.expect("punct", "(")
        condition = self._expression()
        self.expect("punct", ")")
        self.expect("punct", ";")
        return DoWhile(body=body, condition=condition, line=token.line)

    def _if(self) -> If:
        token = self.advance()
        self.expect("punct", "(")
        condition = self._expression()
        self.expect("punct", ")")
        then_body = self._block()
        else_body: List[Stmt] = []
        if self.accept("kw", "else"):
            if self.peek().text == "if":
                else_body = [self._if()]
            else:
                else_body = self._block()
        return If(condition=condition, then_body=then_body,
                  else_body=else_body, line=token.line)

    def _while(self) -> While:
        token = self.advance()
        self.expect("punct", "(")
        condition = self._expression()
        self.expect("punct", ")")
        body = self._block()
        return While(condition=condition, body=body, line=token.line)

    def _for(self) -> For:
        token = self.advance()
        self.expect("punct", "(")
        init = None
        if self.peek().text != ";":
            init = self._simple_statement()
        self.expect("punct", ";")
        condition = None
        if self.peek().text != ";":
            condition = self._expression()
        self.expect("punct", ";")
        step = None
        if self.peek().text != ")":
            step = self._simple_statement()
        self.expect("punct", ")")
        body = self._block()
        return For(init=init, condition=condition, step=step, body=body,
                   line=token.line)

    # -- expressions ---------------------------------------------------------------

    def _expression(self, level: int = 0) -> Expr:
        if level >= len(_PRECEDENCE):
            return self._unary()
        left = self._expression(level + 1)
        while True:
            token = self.peek()
            if token.kind == "punct" and token.text in _PRECEDENCE[level]:
                self.advance()
                right = self._expression(level + 1)
                left = Binary(op=token.text, left=left, right=right,
                              line=token.line)
            else:
                return left

    def _unary(self) -> Expr:
        token = self.peek()
        if token.kind == "punct" and token.text in ("-", "~", "!"):
            self.advance()
            return Unary(op=token.text, operand=self._unary(),
                         line=token.line)
        return self._primary()

    def _primary(self) -> Expr:
        token = self.advance()
        if token.kind == "num":
            return Number(value=token.value, line=token.line)
        if token.kind == "name":
            if self.accept("punct", "("):
                args: List[Expr] = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self._expression())
                        if self.accept("punct", ")"):
                            break
                        self.expect("punct", ",")
                return Call(name=token.text, args=args, line=token.line)
            if self.accept("punct", "["):
                index = self._expression()
                self.expect("punct", "]")
                return Index(name=token.text, index=index,
                             line=token.line)
            return Var(name=token.text, line=token.line)
        if token.kind == "punct" and token.text == "(":
            expr = self._expression()
            self.expect("punct", ")")
            return expr
        raise CompileError(f"unexpected {token.text or 'EOF'!r}",
                           token.line)


def parse(source: str) -> Program:
    return Parser(source).parse()
