"""TinyC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

# -- expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class Number:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Var:
    name: str
    line: int = 0


@dataclass(frozen=True)
class Index:
    """Array element: ``name[index]``."""

    name: str
    index: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Unary:
    op: str  # "-", "~", "!"
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Call:
    name: str
    args: List["Expr"]
    line: int = 0


Expr = Union[Number, Var, Index, Unary, Binary, Call]

# -- statements ---------------------------------------------------------------------


@dataclass(frozen=True)
class Declare:
    type_name: str  # "u8" | "u16"
    name: str
    init: Optional[Expr]
    line: int = 0


@dataclass(frozen=True)
class Assign:
    target: Union[Var, Index]
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class If:
    condition: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"]
    line: int = 0


@dataclass(frozen=True)
class While:
    condition: Expr
    body: List["Stmt"]
    line: int = 0


@dataclass(frozen=True)
class For:
    init: Optional["Stmt"]
    condition: Optional[Expr]
    step: Optional["Stmt"]
    body: List["Stmt"]
    line: int = 0


@dataclass(frozen=True)
class DoWhile:
    body: List["Stmt"]
    condition: Expr
    line: int = 0


@dataclass(frozen=True)
class Break:
    line: int = 0


@dataclass(frozen=True)
class Continue:
    line: int = 0


@dataclass(frozen=True)
class Return:
    value: Optional[Expr]
    line: int = 0


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr
    line: int = 0


Stmt = Union[Declare, Assign, If, While, For, DoWhile, Break, Continue,
             Return, ExprStmt]

# -- top level -----------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalVar:
    type_name: str  # "u8" | "u16"
    name: str
    array_length: Optional[int]  # None for scalars
    init: Optional[int] = None   # constant initializer (scalars only)
    line: int = 0

    @property
    def element_bytes(self) -> int:
        return 1 if self.type_name == "u8" else 2

    @property
    def size_bytes(self) -> int:
        count = self.array_length if self.array_length is not None else 1
        return count * self.element_bytes


@dataclass(frozen=True)
class Param:
    type_name: str
    name: str


@dataclass(frozen=True)
class Function:
    return_type: str  # "u8" | "u16" | "void"
    name: str
    params: List[Param]
    body: List[Stmt]
    line: int = 0


@dataclass
class Program:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
