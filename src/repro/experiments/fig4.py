"""Figure 4: code inflation of the kernel benchmark programs.

Series: native size; SenSmart rewritten body + shift table + trampoline
(stacked); t-kernel naturalized size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.inflation import InflationBreakdown, inflation_breakdown
from ..analysis.report import format_table
from ..workloads.kernelbench import KERNEL_BENCHMARKS


@dataclass
class Fig4Result:
    breakdowns: List[InflationBreakdown] = field(default_factory=list)

    @property
    def rows(self) -> List[List]:
        return [
            [b.name, b.native_bytes, b.sensmart_rewritten,
             b.sensmart_shift, b.sensmart_trampoline, b.sensmart_total,
             round(b.sensmart_ratio, 2), b.tkernel_bytes,
             round(b.tkernel_ratio, 2)]
            for b in self.breakdowns]

    def render(self) -> str:
        return format_table(
            ["program", "native", "ss rewritten", "ss shift",
             "ss trampoline", "ss total", "ss x", "t-kernel", "tk x"],
            self.rows,
            title="Figure 4: code inflation of kernel benchmarks (bytes)")

    def by_name(self, name: str) -> InflationBreakdown:
        for breakdown in self.breakdowns:
            if breakdown.name == name:
                return breakdown
        raise KeyError(name)


def run(parameters: Dict[str, dict] = None) -> Fig4Result:
    """Measure every benchmark (sizes are iteration-independent)."""
    parameters = parameters or {}
    result = Fig4Result()
    for name in sorted(KERNEL_BENCHMARKS):
        source = KERNEL_BENCHMARKS[name](**parameters.get(name, {}))
        result.breakdowns.append(inflation_breakdown(name, source))
    return result
