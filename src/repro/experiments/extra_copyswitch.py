"""Extra experiment: copy-on-switch vs SenSmart context switching.

Quantifies Section I's dismissal of the copy-on-switch strawman:
flash-swapped stacks make a context switch ~40x more expensive than
SenSmart's, collapse multitasking throughput, and wear out the swap
pages within hours at realistic switch rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.report import format_table
from ..avr.devices.extflash import PAGE_ENDURANCE
from ..baselines.copyswitch import (CONTEXT_CYCLES, CopyOnSwitchOS,
                                    switch_cost_cycles)
from ..kernel import KernelConfig, SensorNode
from ..kernel import costs

CLOCK_HZ = 7_372_800

SPINNER = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 3
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


@dataclass
class CopySwitchResult:
    sensmart_switch_cycles: int
    copyswitch_switch_cycles: int
    sensmart_total_cycles: int
    copyswitch_total_cycles: int
    copyswitch_switches: int
    lifetime_hours_at_100hz: float
    rows: List[List] = field(default_factory=list)

    def render(self) -> str:
        ratio = self.copyswitch_switch_cycles / \
            self.sensmart_switch_cycles
        micro = 1e6 / CLOCK_HZ
        rows = [
            ["context switch (cycles)", self.sensmart_switch_cycles,
             self.copyswitch_switch_cycles],
            ["context switch (us)",
             round(self.sensmart_switch_cycles * micro, 1),
             round(self.copyswitch_switch_cycles * micro, 1)],
            ["2 spinners to completion (cycles)",
             self.sensmart_total_cycles, self.copyswitch_total_cycles],
        ]
        footer = (f"\ncopy-on-switch pays {ratio:.0f}x per switch; at a "
                  f"100 Hz switch rate its swap pages wear out after "
                  f"~{self.lifetime_hours_at_100hz:.2f} hours "
                  f"({PAGE_ENDURANCE} erase cycles/page).")
        return format_table(
            ["metric", "SenSmart", "copy-on-switch"], rows,
            title="Extra: the copy-on-switch strawman (paper Section I)"
        ) + footer


def run(stack_bytes: int = 512) -> CopySwitchResult:
    # SenSmart: two CPU-bound spinners, small slices.
    config = KernelConfig(time_slice_cycles=20_000)
    node = SensorNode.from_sources(
        [("s1", SPINNER), ("s2", SPINNER)], config=config)
    node.run(max_instructions=30_000_000)
    assert node.finished

    # Copy-on-switch: the same two spinners, same slice length.
    os_model = CopyOnSwitchOS([("s1", SPINNER), ("s2", SPINNER)],
                              stack_bytes=stack_bytes,
                              slice_cycles=20_000)
    stats = os_model.run()
    per_switch = switch_cost_cycles(stack_bytes)

    # Endurance: one swap-out per switch; each page erased once per
    # swap.  At 100 switches/s the page hits its rating in:
    lifetime_hours = PAGE_ENDURANCE / 100 / 3600

    return CopySwitchResult(
        sensmart_switch_cycles=costs.FULL_SWITCH,
        copyswitch_switch_cycles=per_switch,
        sensmart_total_cycles=node.cpu.cycles,
        copyswitch_total_cycles=os_model.cpu.cycles,
        copyswitch_switches=stats.switches,
        lifetime_hours_at_100hz=lifetime_hours,
    )
