"""Extra experiment: static stack bounds vs observed runtime peaks.

The paper's motivation (Section I) is that static, worst-case stack
provisioning is wasteful — or outright impossible for recursive tasks —
while SenSmart sizes stacks dynamically.  This experiment quantifies
that claim with the new static analyzer:

* for every task of the bundled workloads, the call-graph analyzer
  computes the a-priori worst-case stack bound; the same image then
  runs to completion and the kernel's high-water mark
  (``task.max_stack_used``) gives the observed peak;
* soundness: every bound must dominate its observed peak (recursive
  tasks are *unbounded*, which dominates trivially — and is precisely
  why static provisioning cannot handle them);
* the gap between the two is the memory a static allocator would have
  wasted, aggregated into a savings figure;
* the rewriter soundness linter runs over every image and its patch-site
  coverage is reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..analysis.static import (INFINITE_DEPTH, analyze_program,
                               lint_image)
from ..kernel import KernelConfig, SensorNode
from ..workloads.bintree import feeder_source, search_task_source
from ..workloads.kernelbench import KERNEL_BENCHMARKS

#: Table I's probe program (a minimal bounded task).
_PROBE = """
main:
    ldi r16, 1
loop:
    dec r16
    brne loop
    break
"""

#: Table II's relocation pair: a deep recursive consumer plus spinners
#: that donate stack space.
def _needy(depth: int) -> str:
    return f"""
main:
    ldi r24, {depth}
    call recurse
    break
recurse:
    push r2
    push r3
    push r4
    push r5
    push r6
    push r7
    dec r24
    brne deeper
    rjmp unwind
deeper:
    call recurse
unwind:
    pop r7
    pop r6
    pop r5
    pop r4
    pop r3
    pop r2
    ret
"""


_SPINNER = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 2
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""

#: A task with a statically-reachable but never-taken error path that
#: calls a deep handler: the classic case where worst-case provisioning
#: reserves far more RAM than the program ever uses.
_ERRPATH = """
main:
    ldi r16, 8
    ldi r17, 0
loop:
    push r16
    pop r16
    cpi r17, 1
    brne cont
    call deep
cont:
    dec r16
    brne loop
    break
deep:
    push r2
    push r3
    push r4
    push r5
    push r6
    push r7
    push r8
    push r9
    push r10
    push r11
    push r12
    push r13
    call deeper
    pop r13
    pop r12
    pop r11
    pop r10
    pop r9
    pop r8
    pop r7
    pop r6
    pop r5
    pop r4
    pop r3
    pop r2
    ret
deeper:
    push r14
    push r15
    pop r15
    pop r14
    ret
"""

#: Benchmark iteration counts for the quick (CI) variant.
_QUICK_PARAMS: Dict[str, dict] = {
    "am": {"packets": 2},
    "amplitude": {"samples": 8},
    "crc": {"rounds": 2},
    "eventchain": {"rounds": 8},
    "lfsr": {"steps": 512},
    "readadc": {"samples": 8},
    "timer": {"ticks": 32},
}

WORKLOAD_NAMES = ("table1", "table2", "kernelbench", "bintree",
                  "errpath")


def _workload_sources(workload: str,
                      quick: bool) -> List[Tuple[str, str]]:
    if workload == "table1":
        return [("probe", _PROBE)]
    if workload == "table2":
        return [("spin_a", _SPINNER),
                ("needy", _needy(8 if quick else 60)),
                ("spin_b", _SPINNER)]
    if workload == "kernelbench":
        params = _QUICK_PARAMS if quick else {}
        return [(name, KERNEL_BENCHMARKS[name](**params.get(name, {})))
                for name in sorted(KERNEL_BENCHMARKS)]
    if workload == "bintree":
        if quick:
            return [("search", search_task_source(nodes=10, searches=4,
                                                  period_ticks=64)),
                    ("feeder", feeder_source(nodes_per_tree=10, trees=2,
                                             updates=8,
                                             period_ticks=64))]
        return [("search", search_task_source()),
                ("feeder", feeder_source())]
    if workload == "errpath":
        return [("errpath", _ERRPATH)]
    raise KeyError(workload)


@dataclass
class BoundRow:
    """Static bound vs observed peak for one task."""

    workload: str
    task: str
    bound: float                 # bytes; INFINITE_DEPTH when unbounded
    observed: int                # kernel high-water mark, bytes
    recursive: bool
    finished: bool               # task ran to completion (or was
                                 # terminated by the kernel, for needy)

    @property
    def holds(self) -> bool:
        return self.bound >= self.observed

    @property
    def bound_text(self) -> str:
        return "unbounded" if self.bound == INFINITE_DEPTH \
            else str(int(self.bound))

    @property
    def slack_text(self) -> str:
        if self.bound == INFINITE_DEPTH:
            return "-"
        return str(int(self.bound) - self.observed)


@dataclass
class LintRow:
    workload: str
    sites_total: int
    sites_verified: int
    violations: int
    #: Elision certificates the image carries / the independent
    #: checker re-proved (see repro.analysis.static.dataflow).
    certificates: int = 0
    certificates_verified: int = 0

    @property
    def coverage(self) -> float:
        if self.sites_total == 0:
            return 1.0
        return self.sites_verified / self.sites_total


@dataclass
class StaticResult:
    """Bound-vs-peak comparison plus lint coverage for all workloads."""

    bound_rows: List[BoundRow] = field(default_factory=list)
    lint_rows: List[LintRow] = field(default_factory=list)

    @property
    def all_bounds_hold(self) -> bool:
        return all(row.holds for row in self.bound_rows)

    @property
    def all_lint_ok(self) -> bool:
        return all(row.violations == 0 and row.coverage == 1.0
                   for row in self.lint_rows)

    @property
    def unbounded_tasks(self) -> List[str]:
        return [f"{row.workload}/{row.task}" for row in self.bound_rows
                if row.bound == INFINITE_DEPTH]

    @property
    def static_provision_bytes(self) -> int:
        """Bytes a static allocator reserves for the *bounded* tasks."""
        return sum(int(row.bound) for row in self.bound_rows
                   if row.bound != INFINITE_DEPTH)

    @property
    def observed_bytes(self) -> int:
        """Observed peaks of the same bounded tasks."""
        return sum(row.observed for row in self.bound_rows
                   if row.bound != INFINITE_DEPTH)

    @property
    def savings_bytes(self) -> int:
        return self.static_provision_bytes - self.observed_bytes

    def row_for(self, workload: str, task: str) -> BoundRow:
        for row in self.bound_rows:
            if row.workload == workload and row.task == task:
                return row
        raise KeyError((workload, task))

    def render(self) -> str:
        bounds = format_table(
            ["workload", "task", "static bound (B)", "observed peak (B)",
             "slack (B)", "recursive", "bound holds"],
            [[r.workload, r.task, r.bound_text, r.observed,
              r.slack_text, r.recursive, r.holds]
             for r in self.bound_rows],
            title="Extra: static worst-case stack bounds vs observed "
                  "runtime peaks")
        lint = format_table(
            ["workload", "patch sites", "verified", "coverage",
             "violations", "elision certs"],
            [[r.workload, r.sites_total, r.sites_verified,
              f"{100 * r.coverage:.1f}%", r.violations,
              f"{r.certificates_verified}/{r.certificates}"]
             for r in self.lint_rows],
            title="Rewriter soundness lint over the same images")
        unbounded = ", ".join(self.unbounded_tasks) or "none"
        summary = "\n".join([
            f"bounds hold for every task : {self.all_bounds_hold}",
            f"statically unbounded tasks : {unbounded} "
            f"(impossible to provision a priori)",
            f"static provisioning        : "
            f"{self.static_provision_bytes} B for the bounded tasks",
            f"observed (SenSmart demand)  : {self.observed_bytes} B",
            f"memory saved by dynamic mgmt: {self.savings_bytes} B",
        ])
        return "\n\n".join([bounds, lint, summary])


def compute_workload(workload: str,
                     quick: bool = False) -> Tuple[List[BoundRow],
                                                   LintRow]:
    """Analyze + lint + run one workload image (a runner work unit)."""
    sources = _workload_sources(workload, quick)
    node = SensorNode.from_sources(
        sources, config=KernelConfig(time_slice_cycles=20_000))
    image = node.kernel.image

    report = lint_image(image)
    lint_row = LintRow(workload=workload,
                       sites_total=report.sites_total,
                       sites_verified=report.sites_verified,
                       violations=len(report.findings),
                       certificates=report.certificates,
                       certificates_verified=report.certificates_verified)

    analyses = {task.name: analyze_program(task.natural.program)
                for task in image.tasks}

    node.run(max_instructions=100_000_000)
    rows: List[BoundRow] = []
    for task in node.kernel.tasks.values():
        analysis = analyses[task.name]
        rows.append(BoundRow(
            workload=workload, task=task.name,
            bound=analysis.bound,
            observed=task.max_stack_used,
            recursive=bool(analysis.recursion_cycles),
            finished=node.finished))
    return rows, lint_row


def run(quick: bool = False,
        workloads: Optional[Tuple[str, ...]] = None) -> StaticResult:
    result = StaticResult()
    for workload in workloads or WORKLOAD_NAMES:
        rows, lint_row = compute_workload(workload, quick=quick)
        result.bound_rows.extend(rows)
        result.lint_rows.append(lint_row)
    return result


def merge(chunks: List[Tuple[List[BoundRow], LintRow]]) -> StaticResult:
    """Merge per-workload runner units into one result."""
    result = StaticResult()
    for rows, lint_row in chunks:
        result.bound_rows.extend(rows)
        result.lint_rows.append(lint_row)
    return result
