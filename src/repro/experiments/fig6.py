"""Figure 6: PeriodicTask — execution time, CPU utilization, and Maté.

The paper runs 300 activations with computation sizes of 10,000 to
120,000 instructions.  The simulation reproduces the same sweep with
the activation count scaled down (the per-activation dynamics, where
the knee appears, do not depend on it); EXPERIMENTS.md records the
scaling.

Series:
  (a) execution time — native, t-kernel (warm-up included, the paper's
      stated reason SenSmart wins below the knee), SenSmart;
  (b) CPU utilization — native, SenSmart;
  (c) execution time — Maté, t-kernel, SenSmart (log-scale in the
      paper; the ratios carry the information).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.report import format_table
from ..baselines.mate import MateVm, periodic_task_bytecode
from ..baselines.native import run_native
from ..baselines.tkernel import TkernelRunner
from ..kernel import SensorNode
from ..workloads.periodic import (periodic_native_source,
                                  periodic_sensmart_source)

CLOCK_HZ = 7_372_800

#: Computation sizes in instructions (the paper's x-axis: 1..12 x 10k).
DEFAULT_SIZES = [10_000 * i for i in range(1, 13)]
#: Paper: 300 activations; scaled for simulation wall-clock.
DEFAULT_ACTIVATIONS = 30
#: Period chosen so the SenSmart knee lands mid-sweep as in the paper:
#: 38,000 ticks x 8 cycles = 304k cycles per period, which the
#: naturalized work loop fills at a computation size of ~60k
#: instructions while native fills only ~50% of it at 120k.
DEFAULT_PERIOD_TICKS = 38_000


@dataclass
class Fig6Point:
    compute_size: int
    native_cycles: int
    native_utilization: float
    sensmart_cycles: int
    sensmart_utilization: float
    tkernel_cycles: int       # includes warm-up (Figure 6a)
    mate_cycles: int

    def seconds(self, cycles: int) -> float:
        return cycles / CLOCK_HZ


@dataclass
class Fig6Result:
    points: List[Fig6Point] = field(default_factory=list)
    activations: int = DEFAULT_ACTIVATIONS

    @property
    def rows(self) -> List[List]:
        return [
            [p.compute_size, round(p.seconds(p.native_cycles), 3),
             round(p.seconds(p.sensmart_cycles), 3),
             round(p.seconds(p.tkernel_cycles), 3),
             round(p.seconds(p.mate_cycles), 3),
             round(100 * p.native_utilization, 1),
             round(100 * p.sensmart_utilization, 1)]
            for p in self.points]

    def render(self) -> str:
        return format_table(
            ["size (instr)", "native (s)", "sensmart (s)",
             "t-kernel (s)", "mate (s)", "native util %",
             "sensmart util %"],
            self.rows,
            title=f"Figure 6: PeriodicTask ({self.activations} "
                  f"activations, period {DEFAULT_PERIOD_TICKS} ticks)")


def compute_point(size: int,
                  activations: int = DEFAULT_ACTIVATIONS,
                  period_ticks: int = DEFAULT_PERIOD_TICKS,
                  include_mate: bool = True) -> Fig6Point:
    """One sweep point: all four systems at one computation size.

    Points are independent, which is what lets the experiment runner
    fan them out across worker processes.
    """
    native = run_native(
        periodic_native_source(size, activations, period_ticks),
        max_instructions=1_000_000_000)
    assert native.finished, f"native periodic size={size} stuck"
    native_util = (native.cycles - native.cpu.idle_cycles) \
        / native.cycles

    node = SensorNode.from_sources(
        [("periodic",
          periodic_sensmart_source(size, activations, period_ticks))])
    node.run(max_instructions=1_000_000_000)
    assert node.finished, f"sensmart periodic size={size} stuck"
    sensmart_util = node.kernel.stats.utilization(node.cpu.cycles)

    tkernel = TkernelRunner(
        periodic_sensmart_source(size, activations, period_ticks)
    ).run(max_instructions=1_000_000_000)
    assert tkernel.finished, f"t-kernel periodic size={size} stuck"

    if include_mate:
        vm = MateVm(periodic_task_bytecode(size, activations,
                                           period_ticks))
        mate_cycles = vm.run().cycles
    else:
        mate_cycles = 0

    return Fig6Point(
        compute_size=size,
        native_cycles=native.cycles,
        native_utilization=native_util,
        sensmart_cycles=node.cpu.cycles,
        sensmart_utilization=sensmart_util,
        tkernel_cycles=tkernel.total_cycles,
        mate_cycles=mate_cycles,
    )


def run(sizes: List[int] = None,
        activations: int = DEFAULT_ACTIVATIONS,
        period_ticks: int = DEFAULT_PERIOD_TICKS,
        include_mate: bool = True) -> Fig6Result:
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    result = Fig6Result(activations=activations)
    for size in sizes:
        result.points.append(compute_point(size, activations,
                                           period_ticks, include_mate))
    return result
