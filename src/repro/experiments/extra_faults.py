"""Extra experiment: survivability under deterministic fault injection.

The paper argues SenSmart keeps *multitasking* nodes healthy under
memory pressure; this campaign asks the robustness question instead:
what does it take to keep a multi-node deployment producing results
when the hardware misbehaves?  Each campaign point runs a three-node
relay network (sender -> relay -> receiver) whose nodes also carry a
compute mix (table1 / table2 / kernelbench tasks plus a periodic
sampler), then turns a fault dial:

* level 0 — no faults: the survivability baseline.
* level 1 — moderate: SRAM bit flips, a flash word flip or two, one
  crash per node, clock drift; links lose/corrupt/duplicate bytes.
* level 2 — heavy: roughly double the moderate rates.

Faults come from a :class:`~repro.faults.FaultPlan` (seeded xorshift
streams, landed as sim events), so every cell of the table reproduces
exactly from ``--seed``.  Recovery is the kernel hardening stack:
restart-with-backoff policies, the software watchdog, panic-reboot,
and injector-driven cold restarts after crashes.  The table reports
what survived: tasks finished, tasks restarted-and-finished, tasks
dead at the restart cap, nodes recovered after crashes, and bytes
delivered despite link faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..avr import ioports
from ..avr.devices.radio import RXC
from ..faults import FaultInjector, FaultPlan, XorShift32
from ..faults.plan import CRASH
from ..kernel import KernelConfig, SensorNode, TerminationReason
from ..kernel.task import TaskState
from ..net import Network
from ..workloads.periodic import periodic_sensmart_source
from .extra_static import _workload_sources

DEFAULT_SEED = 0x5EED5
MIXES = ("table1", "table2", "kernelbench")
LEVELS = (0, 1, 2)
NODE_NAMES = ("alpha", "bravo", "charlie")

#: Per-level fault dials: per-node fault counts and per-link permille.
_LEVELS: Dict[int, Dict[str, int]] = {
    0: dict(sram=0, flash=0, crashes=0, drift=0,
            loss=0, corrupt=0, dup=0),
    1: dict(sram=10, flash=2, crashes=1, drift=2,
            loss=30, corrupt=30, dup=20),
    2: dict(sram=24, flash=4, crashes=2, drift=4,
            loss=80, corrupt=80, dup=50),
}


def _sender(count: int) -> str:
    return f"""
main:
    ldi r20, {count}
    ldi r16, 0x30
send:
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    inc r16
    dec r20
    brne send
    break
"""


def _relay(count: int) -> str:
    return f"""
main:
    ldi r20, {count}
relay:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
wait_tx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    dec r20
    brne relay
    break
"""


def _receiver(count: int) -> str:
    return f"""
.bss received, {count}
main:
    ldi r20, {count}
    ldi r26, lo8(received)
    ldi r27, hi8(received)
recv:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    st X+, r16
    dec r20
    brne recv
    break
"""


def _worker(iterations: int, depth: int = 12, leaf_spin: int = 200) -> str:
    """Recursive churner: spends most of its life with a deep live
    stack (the prime SRAM-flip target), then exits cleanly — the
    natural candidate for terminated -> restarted -> finished."""
    return f"""
main:
    ldi r20, lo8({iterations})
    ldi r21, hi8({iterations})
work:
    ldi r24, {depth}
    call recurse
    subi r20, 1
    sbci r21, 0
    mov r18, r20
    or r18, r21
    brne work
    break
recurse:
    push r2
    push r3
    push r4
    dec r24
    brne deeper
    ldi r18, {leaf_spin}
leafspin:
    dec r18
    brne leafspin
    rjmp unwind
deeper:
    call recurse
unwind:
    pop r4
    pop r3
    pop r2
    ret
"""


def _campaign_config() -> KernelConfig:
    """Recovery fully armed: restarts, watchdog, panic-reboot."""
    return KernelConfig(restart_policy="restart-with-backoff",
                        restart_max=2, restart_backoff_slices=2,
                        watchdog_slices=8, panic_reboot=True)


def _node_sources(mix: str, quick: bool,
                  count: int) -> List[List[Tuple[str, str]]]:
    """Task lists for the three nodes: net role + sampler + mix slice."""
    sampler = periodic_sensmart_source(800 if quick else 1500,
                                       40 if quick else 120, 2)
    worker = _worker(150 if quick else 600)
    sources = [
        [("sender", _sender(count)), ("sampler", sampler),
         ("worker", worker)],
        [("relay", _relay(count)), ("sampler", sampler),
         ("worker", worker)],
        [("receiver", _receiver(count)), ("sampler", sampler),
         ("worker", worker)],
    ]
    for index, (name, text) in enumerate(_workload_sources(mix, quick)):
        sources[index % 3].append((name, text))
    return sources


@dataclass
class ChaosRow:
    """Survivability of one (mix, fault level) campaign point."""

    mix: str
    level: int
    tasks: int            # tasks on the final lives of the 3 nodes
    finished: int         # termination == EXIT on the final life
    restarted_ok: int     # finished with restarts_used > 0
    dead: int             # terminated (non-exit) and not brought back
    terminations: int     # non-exit termination events, all lives
    restarts: int         # restart events, all lives
    watchdog: int         # watchdog firings, all lives
    crashes: int          # injected node crashes
    recovered: int        # crashed nodes rebooted by the injector
    delivered: int        # bytes delivered across both links
    dropped: int
    corrupted: int
    duplicated: int


@dataclass
class ChaosResult:
    """The survivability sweep: mixes x fault levels."""

    seed: int
    rows: List[ChaosRow] = field(default_factory=list)

    def _level_sum(self, level: int, attr: str) -> int:
        return sum(getattr(row, attr) for row in self.rows
                   if row.level == level)

    @property
    def moderate_terminations(self) -> int:
        return self._level_sum(1, "terminations")

    @property
    def moderate_restarted_ok(self) -> int:
        return self._level_sum(1, "restarted_ok")

    @property
    def moderate_recovered(self) -> int:
        return self._level_sum(1, "recovered")

    def render(self) -> str:
        table = format_table(
            ["mix", "level", "tasks", "finished", "restarted+fin",
             "dead", "terms", "restarts", "wdog", "crashes",
             "recovered", "delivered", "dropped", "corrupt", "dup"],
            [[r.mix, r.level, r.tasks, r.finished, r.restarted_ok,
              r.dead, r.terminations, r.restarts, r.watchdog,
              r.crashes, r.recovered, r.delivered, r.dropped,
              r.corrupted, r.duplicated]
             for r in self.rows],
            title=f"Extra: survivability under injected faults "
                  f"(seed {self.seed:#x}; 3-node relay networks)")
        summary = "\n".join([
            "moderate level (1), all mixes:",
            f"  tasks terminated by faults    : "
            f"{self.moderate_terminations}",
            f"  tasks restarted then finished : "
            f"{self.moderate_restarted_ok}",
            f"  crashed nodes recovered       : "
            f"{self.moderate_recovered}",
        ])
        return "\n\n".join([table, summary])


def compute_point(mix: str, level: int, seed: int = DEFAULT_SEED,
                  quick: bool = False) -> ChaosRow:
    """Run one (mix, level) campaign cell (a runner work unit)."""
    dial = _LEVELS[level]
    count = 8 if quick else 16
    horizon = 2_500_000 if quick else 8_000_000
    max_cycles = 5_000_000 if quick else 16_000_000

    net = Network()
    for name, sources in zip(NODE_NAMES,
                             _node_sources(mix, quick, count)):
        net.add_node(name, SensorNode.from_sources(
            sources, config=_campaign_config()))
    for src, dst in zip(NODE_NAMES, NODE_NAMES[1:]):
        net.connect(src, dst, latency_cycles=1_500,
                    loss_permille=dial["loss"],
                    corrupt_permille=dial["corrupt"],
                    dup_permille=dial["dup"])

    # One plan seed per cell, derived so cells never share streams.
    plan_seed = XorShift32(seed).derive(f"{mix}/{level}").state
    plan = FaultPlan(seed=plan_seed, horizon_cycles=horizon,
                     warmup_cycles=30_000,
                     sram_flips=dial["sram"],
                     flash_flips=dial["flash"],
                     crashes=dial["crashes"],
                     drift_steps=dial["drift"])
    injector = FaultInjector(plan)
    injector.run(net, max_cycles=max_cycles, step=150_000)

    tasks = finished = restarted_ok = dead = 0
    terminations = restarts = watchdog = 0
    for node in net.nodes.values():
        for task in node.kernel.tasks.values():
            tasks += 1
            if task.termination is TerminationReason.EXIT:
                finished += 1
                if task.restarts_used:
                    restarted_ok += 1
            elif task.state is TaskState.TERMINATED:
                dead += 1
        for stats in list(node.stats_history) + [node.kernel.stats]:
            terminations += sum(
                1 for text in stats.terminations
                if not text.endswith(": exit"))
            restarts += len(stats.restarts)
            watchdog += stats.watchdog_fires
    return ChaosRow(
        mix=mix, level=level, tasks=tasks, finished=finished,
        restarted_ok=restarted_ok, dead=dead,
        terminations=terminations, restarts=restarts,
        watchdog=watchdog,
        crashes=injector.counts[CRASH],
        recovered=injector.counts["recovered"],
        delivered=sum(link.delivered for link in net.links),
        dropped=sum(link.dropped for link in net.links),
        corrupted=sum(link.corrupted for link in net.links),
        duplicated=sum(link.duplicated for link in net.links))


def run(quick: bool = False, seed: int = DEFAULT_SEED,
        mixes: Optional[Tuple[str, ...]] = None,
        levels: Optional[Tuple[int, ...]] = None) -> ChaosResult:
    result = ChaosResult(seed=seed)
    for mix in mixes or MIXES:
        for level in levels or LEVELS:
            result.rows.append(
                compute_point(mix, level, seed=seed, quick=quick))
    return result


def merge(chunks: List[ChaosRow],
          seed: int = DEFAULT_SEED) -> ChaosResult:
    """Merge per-cell runner units into one result."""
    return ChaosResult(seed=seed, rows=list(chunks))
