"""Table I: comparison of typical systems.

The literature columns are transcribed from the paper; the SenSmart
column is *verified live* against the implementation's capability flags
(:meth:`SenSmartKernel.features`) so the table cannot drift from the
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.report import format_table
from ..kernel import SensorNode

SYSTEMS = ["TinyOS/TinyThread", "Maté", "MANTIS OS", "t-kernel",
           "RETOS", "LiteOS", "SenSmart"]

#: Feature matrix exactly as printed in the paper's Table I.
PAPER_MATRIX: Dict[str, List[str]] = {
    "TinyOS Compatible":
        ["N/A", "No", "No", "Yes", "No", "No", "Yes"],
    "Preemptive Multitasking":
        ["Yes", "No", "Yes", "Partial", "Yes", "Yes", "Yes"],
    "Concurrent Applications":
        ["No", "N/A", "No", "No", "No", "No", "Yes"],
    "Interrupt-free Preemption":
        ["Yes", "N/A", "No", "Yes", "No", "No", "Yes"],
    "Memory Protection":
        ["No", "Yes", "No", "Partial", "Yes", "No", "Yes"],
    "Logical Memory Address":
        ["No", "N/A", "No", "No", "No", "No", "Yes"],
    "Physical Mem Management":
        ["Automatic", "Automatic", "Automatic", "Automatic",
         "Automatic", "Manual", "Automatic"],
    "Stack Relocation":
        ["No", "No", "No", "No", "No", "No", "Yes"],
}

#: Mapping from Table I rows to live capability flags.
_FEATURE_KEYS = {
    "Preemptive Multitasking": "preemptive_multitasking",
    "Concurrent Applications": "concurrent_applications",
    "Interrupt-free Preemption": "interrupt_free_preemption",
    "Memory Protection": "memory_protection",
    "Logical Memory Address": "logical_memory_address",
    "Stack Relocation": "stack_relocation",
}

_PROBE = """
main:
    ldi r16, 1
loop:
    dec r16
    brne loop
    break
"""


@dataclass
class Table1Result:
    rows: List[List[str]] = field(default_factory=list)
    verified: bool = False

    def render(self) -> str:
        return format_table(
            ["Feature"] + SYSTEMS, self.rows,
            title="Table I: comparison of typical systems "
                  f"(SenSmart column live-verified: {self.verified})")


def run() -> Table1Result:
    node = SensorNode.from_sources([("probe", _PROBE)])
    live = node.kernel.features()
    verified = True
    rows = []
    for feature, values in PAPER_MATRIX.items():
        key = _FEATURE_KEYS.get(feature)
        if key is not None:
            claimed = values[-1] == "Yes"
            if live.get(key) != claimed:
                verified = False
        rows.append([feature] + values)
    return Table1Result(rows=rows, verified=verified)
