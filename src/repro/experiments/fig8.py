"""Figure 8: SenSmart vs LiteOS — schedulable tasks under equal budgets.

"To perform a fair comparison, we limit the number of binary trees to
two, and instruct SenSmart to use the same amount of memory for overall
stack space as what LiteOS uses."  LiteOS reserves >2000 bytes of
static kernel data and allocates each thread a fixed worst-case stack;
SenSmart is configured with the same 2000-byte reserve so both systems
partition an identical stack budget — the difference is purely
fixed-worst-case vs versatile allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.report import format_table
from ..baselines.fixedstack import ThreadSpec, max_schedulable_threads
from ..errors import OutOfMemory
from ..kernel import KernelConfig, SensorNode
from ..workloads.bintree import feeder_source, search_task_source

DEFAULT_TREE_SIZES = [10, 20, 30, 40, 50, 60]
TREES = 2
SEARCHES = 10
FEEDER_UPDATES = 20
LITEOS_STATIC_BYTES = 2000
#: LiteOS worst-case stack per search thread: the paper measures ~180
#: bytes of peak usage; a safe static allocation adds headroom.
LITEOS_SEARCH_STACK = 220
LITEOS_FEEDER_STACK = 64
MAX_TASKS = 24


@dataclass
class Fig8Point:
    tree_nodes: int
    sensmart_tasks: int
    liteos_tasks: int


@dataclass
class Fig8Result:
    points: List[Fig8Point] = field(default_factory=list)

    @property
    def rows(self) -> List[List]:
        return [[p.tree_nodes, p.sensmart_tasks, p.liteos_tasks]
                for p in self.points]

    def render(self) -> str:
        return format_table(
            ["nodes/tree", "SenSmart max tasks", "LiteOS max tasks"],
            self.rows,
            title="Figure 8: schedulable search tasks, equal stack budget")


def _sensmart_max(tree_nodes: int, max_tasks: int) -> int:
    config = KernelConfig(time_slice_cycles=20_000,
                          kernel_data_bytes=LITEOS_STATIC_BYTES)
    best = 0
    for count in range(1, max_tasks + 1):
        sources = [("feeder", feeder_source(nodes_per_tree=tree_nodes,
                                            trees=TREES,
                                            updates=FEEDER_UPDATES))]
        for index in range(count):
            sources.append((
                f"search{index}",
                search_task_source(nodes=tree_nodes, searches=SEARCHES,
                                   seed=0x2468 + 0x1111 * index)))
        try:
            node = SensorNode.from_sources(sources, config=config)
        except OutOfMemory:
            break
        node.run(max_instructions=400_000_000)
        ok = node.finished and all(
            t.exit_reason == "exit" for t in node.kernel.tasks.values())
        if not ok:
            break
        best = count
    return best


def _liteos_max(tree_nodes: int, max_tasks: int) -> int:
    feeder = ThreadSpec(
        "feeder",
        feeder_source(nodes_per_tree=tree_nodes, trees=TREES,
                      updates=FEEDER_UPDATES),
        LITEOS_FEEDER_STACK)

    def make(index: int) -> ThreadSpec:
        return ThreadSpec(
            f"search{index}",
            search_task_source(nodes=tree_nodes, searches=SEARCHES,
                               seed=0x2468 + 0x1111 * index),
            LITEOS_SEARCH_STACK)

    return max_schedulable_threads(
        make, static_data_bytes=LITEOS_STATIC_BYTES,
        limit=max_tasks, extra_threads=[feeder],
        max_cycles=400_000_000)


def compute_point(nodes: int, max_tasks: int = MAX_TASKS) -> Fig8Point:
    """One tree size under both systems (runner-parallelizable)."""
    return Fig8Point(
        tree_nodes=nodes,
        sensmart_tasks=_sensmart_max(nodes, max_tasks),
        liteos_tasks=_liteos_max(nodes, max_tasks))


def run(tree_sizes: List[int] = None,
        max_tasks: int = MAX_TASKS) -> Fig8Result:
    tree_sizes = tree_sizes if tree_sizes is not None \
        else DEFAULT_TREE_SIZES
    return Fig8Result(points=[compute_point(nodes, max_tasks)
                              for nodes in tree_sizes])
