"""Table II: overhead of key operations, measured in cycles.

Each overhead is measured end-to-end: a straight-line micro-program
repeating the operation N times runs both natively and under SenSmart,
and the per-operation overhead is the cycle difference (with the
empty-program boot/exit baseline subtracted) divided by N.  Relocation
and context-switch costs are measured by triggering the operation on a
live kernel.

The "paper" column carries Table II's published numbers where the
available text is legible (see kernel/costs.py for the calibration
discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.report import format_table
from ..baselines.native import run_native
from ..kernel import KernelConfig, SensorNode

_EMPTY = "main:\n    break\n"

_REPS = 24


@dataclass
class Table2Result:
    rows: List[Tuple[str, float, Optional[int]]] = field(
        default_factory=list)

    def render(self) -> str:
        table_rows = [
            (operation, f"{measured:.1f}",
             paper if paper is not None else "-")
            for operation, measured, paper in self.rows]
        return format_table(
            ["Operation", "Measured (cycles)", "Paper Table II"],
            table_rows,
            title="Table II: overhead of key operations")

    def measured(self, operation: str) -> float:
        for name, value, _ in self.rows:
            if name == operation:
                return value
        raise KeyError(operation)


def _run_sensmart(source: str) -> int:
    node = SensorNode.from_sources([("probe", source)])
    node.run(max_instructions=10_000_000)
    assert node.finished
    return node.cpu.cycles


def _measure_op(body: str, setup: str = "", bss: str = "",
                reps: int = _REPS, per_rep_ops: int = 1) -> float:
    """Per-operation overhead of *body*, repeated straight-line."""
    source = f"{bss}main:\n{setup}" + body * reps + "    break\n"
    baseline_src = f"{bss}main:\n{setup}    break\n"
    native = run_native(source).cycles - run_native(baseline_src).cycles
    sensmart = _run_sensmart(source) - _run_sensmart(baseline_src)
    return (sensmart - native) / (reps * per_rep_ops)


def _measure_boot() -> float:
    node = SensorNode.from_sources([("probe", _EMPTY)])
    node.kernel.boot()
    return float(node.cpu.cycles)


def _measure_relocation() -> float:
    """Trigger one real relocation and report its charged cycles."""
    needy = """
main:
    ldi r24, 60
    call recurse
    break
recurse:
    push r2
    push r3
    push r4
    push r5
    push r6
    push r7
    dec r24
    brne deeper
    rjmp unwind
deeper:
    call recurse
unwind:
    pop r7
    pop r6
    pop r5
    pop r4
    pop r3
    pop r2
    ret
"""
    spinner = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 6
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    sources = [("spin_a", spinner), ("needy", needy)] + \
        [(f"spin_{chr(98 + i)}", spinner) for i in range(1, 7)]
    node = SensorNode.from_sources(
        sources, config=KernelConfig(time_slice_cycles=20_000))
    kernel = node.kernel
    charges = []
    original = kernel.relocator.grow_stack

    def probed(task_id, needed):
        result = original(task_id, needed)
        if result.moved:
            charges.append(result.cycles)
        return result

    kernel.relocator.grow_stack = probed
    node.run(max_instructions=30_000_000)
    return sum(charges) / len(charges) if charges else float("nan")


def _measure_switch() -> Tuple[float, float, float]:
    """(context save, context restore, full switch) measured live."""
    spinner = """
main:
    ldi r26, 0
    ldi r27, 0
    ldi r28, 1
outer:
inner:
    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""
    node = SensorNode.from_sources([("a", spinner), ("b", spinner)],
                                   config=KernelConfig(
                                       time_slice_cycles=10_000))
    kernel = node.kernel
    kernel.boot()
    before = kernel.cpu.cycles
    kernel.preempt()  # forced full switch
    full = kernel.cpu.cycles - before
    from ..kernel import costs
    return float(costs.CONTEXT_SAVE), float(costs.CONTEXT_RESTORE), \
        float(full)


def _rows_boot(reps: int) -> List[Tuple[str, float, Optional[int]]]:
    return [("System initialization", _measure_boot(), 5738)]


def _rows_mem_direct(reps: int) -> List[Tuple[str, float, Optional[int]]]:
    return [
        ("Mem direct, I/O area",
         _measure_op("    lds r16, 0x3B\n", reps=reps), 2),
        ("Mem direct, others",
         _measure_op("    lds r16, scratch\n",
                     bss=".bss scratch, 4\n", reps=reps), 28),
    ]


def _rows_mem_indirect(reps: int) -> List[Tuple[str, float,
                                                Optional[int]]]:
    # The pointer re-init between accesses (stack-frame row) defeats the
    # grouped-access optimization so that row reports the full
    # translation cost.
    return [
        ("Mem indirect, I/O area",
         _measure_op("    ld r16, X\n",
                     setup="    ldi r26, 0x3B\n    ldi r27, 0\n",
                     reps=reps), 54),
        ("Mem indirect, heap",
         _measure_op("    ld r16, X\n",
                     setup="    ldi r26, lo8(scratch)\n"
                           "    ldi r27, hi8(scratch)\n",
                     bss=".bss scratch, 4\n", reps=reps), None),
        ("Mem indirect, stack frame",
         _measure_op("    ldi r28, 0xE0\n    ldd r16, Y+1\n",
                     setup="    ldi r29, 0x10\n",
                     reps=reps), None),
        ("Mem indirect, grouped follower",
         _measure_op("    ldd r16, Y+1\n    ldd r17, Y+2\n",
                     setup="    ldi r28, 0xE0\n"
                           "    ldi r29, 0x10\n",
                     reps=reps // 2, per_rep_ops=2), None),
    ]


def _rows_stack_and_prog(reps: int) -> List[Tuple[str, float,
                                                  Optional[int]]]:
    rows: List[Tuple[str, float, Optional[int]]] = []
    rows.append(("Stack operation (push/pop)",
                 _measure_op("    push r16\n    pop r16\n",
                             reps=reps, per_rep_ops=2), None))
    # Indirect branch: LDI/LDI/IJMP blocks with per-block labels.
    blocks = "".join(
        f"    ldi r30, lo8(t2_{i})\n"
        f"    ldi r31, hi8(t2_{i})\n"
        f"    ijmp\nt2_{i}:\n"
        for i in range(reps))
    source = "main:\n" + blocks + "    break\n"
    native = run_native(source).cycles - run_native(_EMPTY).cycles
    sensmart = _run_sensmart(source) - _run_sensmart(_EMPTY)
    rows.append(("Program memory (indirect branch)",
                 (sensmart - native) / reps, 376))
    return rows


def _rows_sp(reps: int) -> List[Tuple[str, float, Optional[int]]]:
    return [
        ("Get stack pointer",
         _measure_op("    in r16, 0x3D\n", reps=reps), 45),
        ("Set stack pointer",
         _measure_op("    out 0x3D, r16\n",
                     setup="    in r16, 0x3D\n", reps=reps), 94),
    ]


def _rows_relocation(reps: int) -> List[Tuple[str, float,
                                              Optional[int]]]:
    return [("Stack relocation", _measure_relocation(), 2326)]


def _rows_switch(reps: int) -> List[Tuple[str, float, Optional[int]]]:
    save, restore, full = _measure_switch()
    return [("Context saving", save, 932),
            ("Context restoring", restore, 976),
            ("Full switching", full, 2298)]


#: Independent row groups in table order — the unit of parallelism the
#: experiment runner fans out.  Each takes *reps* and returns rows.
ROW_BUILDERS = [_rows_boot, _rows_mem_direct, _rows_mem_indirect,
                _rows_stack_and_prog, _rows_sp, _rows_relocation,
                _rows_switch]


def compute_rows(index: int,
                 reps: int = _REPS) -> List[Tuple[str, float,
                                                  Optional[int]]]:
    """Rows of one row group (see :data:`ROW_BUILDERS`)."""
    return ROW_BUILDERS[index](reps)


def run(reps: int = _REPS) -> Table2Result:
    rows: List[Tuple[str, float, Optional[int]]] = []
    for builder in ROW_BUILDERS:
        rows.extend(builder(reps))
    return Table2Result(rows=rows)
