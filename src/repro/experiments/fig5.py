"""Figure 5: execution time of the kernel benchmark programs.

Series: native; SenSmart with memory protection only; SenSmart with
memory protection + task scheduling (full); t-kernel (post-warm-up —
the paper's bars exclude the one-time rewriting delay, which Figure 6a
accounts for separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.report import format_table
from ..baselines.native import run_native
from ..baselines.tkernel import TkernelRunner
from ..kernel import KernelConfig, SensorNode
from ..workloads.kernelbench import KERNEL_BENCHMARKS

#: Iteration scaling per benchmark so each runs long enough to measure.
DEFAULT_PARAMS: Dict[str, dict] = {
    "am": {"packets": 8},
    "amplitude": {"samples": 64},
    "crc": {"rounds": 16},
    "eventchain": {"rounds": 64},
    "lfsr": {"steps": 8192},
    "readadc": {"samples": 64},
    "timer": {"ticks": 256},
}

CLOCK_HZ = 7_372_800


@dataclass
class Fig5Row:
    name: str
    native_cycles: int
    sensmart_protection_cycles: int
    sensmart_full_cycles: int
    tkernel_cycles: int

    def seconds(self, cycles: int) -> float:
        return cycles / CLOCK_HZ


@dataclass
class Fig5Result:
    measurements: List[Fig5Row] = field(default_factory=list)

    @property
    def rows(self) -> List[List]:
        return [
            [m.name, m.native_cycles, m.sensmart_protection_cycles,
             m.sensmart_full_cycles, m.tkernel_cycles,
             round(m.sensmart_full_cycles / m.native_cycles, 2),
             round(m.tkernel_cycles / m.native_cycles, 2)]
            for m in self.measurements]

    def render(self) -> str:
        return format_table(
            ["program", "native", "ss protection", "ss full",
             "t-kernel", "ss x", "tk x"],
            self.rows,
            title="Figure 5: execution time of kernel benchmarks (cycles)")

    def by_name(self, name: str) -> Fig5Row:
        for measurement in self.measurements:
            if measurement.name == name:
                return measurement
        raise KeyError(name)


def _sensmart_cycles(name: str, source: str, scheduling: bool) -> int:
    config = KernelConfig(enable_scheduling=scheduling)
    node = SensorNode.from_sources([(name, source)], config=config)
    node.run(max_instructions=100_000_000)
    assert node.finished, f"{name} did not finish under SenSmart"
    return node.cpu.cycles


def run(parameters: Dict[str, dict] = None) -> Fig5Result:
    parameters = {**DEFAULT_PARAMS, **(parameters or {})}
    result = Fig5Result()
    for name in sorted(KERNEL_BENCHMARKS):
        source = KERNEL_BENCHMARKS[name](**parameters.get(name, {}))
        native = run_native(source, max_instructions=100_000_000)
        assert native.finished
        tkernel = TkernelRunner(source).run(max_instructions=100_000_000)
        assert tkernel.finished
        result.measurements.append(Fig5Row(
            name=name,
            native_cycles=native.cycles,
            sensmart_protection_cycles=_sensmart_cycles(
                name, source, scheduling=False),
            sensmart_full_cycles=_sensmart_cycles(
                name, source, scheduling=True),
            tkernel_cycles=tkernel.exec_cycles,
        ))
    return result
