"""Extra experiment: naturalizing *compiled* code.

The paper's programs come out of nesC/avr-gcc; ours are hand-written
assembly, which understates trampoline merging (Figure 4 note in
EXPERIMENTS.md).  This experiment naturalizes TinyC-compiled versions
of the workloads and reports the merge rate and inflation decomposition
— compiled code's regular shapes merge far better, supporting the
paper's "many trampolines are similar" design argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.report import format_table
from ..toolchain.linker import link_image
from ..workloads.csources import (crc_c_source, lfsr_c_source,
                                  search_c_source)
from ..workloads.kernelbench import crc_source, lfsr_source


@dataclass
class CompiledRow:
    name: str
    native_bytes: int
    total_bytes: int
    ratio: float
    requests: int
    slots: int

    @property
    def merge_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return 1.0 - self.slots / self.requests


@dataclass
class CompiledResult:
    rows_data: List[CompiledRow] = field(default_factory=list)
    suite_requests: int = 0
    suite_slots: int = 0

    @property
    def rows(self) -> List[List]:
        return [[r.name, r.native_bytes, r.total_bytes,
                 round(r.ratio, 2), r.requests, r.slots,
                 f"{100 * r.merge_rate:.0f}%"]
                for r in self.rows_data]

    def render(self) -> str:
        suite = (f"\nlinked as one image, the compiled suite shares "
                 f"{self.suite_requests} trampoline requests across "
                 f"{self.suite_slots} slots "
                 f"({100 * (1 - self.suite_slots / self.suite_requests):.0f}%"
                 f" merged).") if self.suite_requests else ""
        return format_table(
            ["program", "native B", "naturalized B", "x", "requests",
             "slots", "merged"],
            self.rows,
            title="Extra: naturalizing compiled (TinyC) vs hand-written "
                  "code") + suite

    def by_name(self, name: str) -> CompiledRow:
        for row in self.rows_data:
            if row.name == name:
                return row
        raise KeyError(name)


def _measure(name: str, source: str) -> CompiledRow:
    image = link_image([(name, source)])
    stats = image.tasks[0].natural.stats
    return CompiledRow(name=name, native_bytes=stats.native_bytes,
                       total_bytes=stats.total_bytes,
                       ratio=stats.inflation_ratio,
                       requests=image.pool.requests,
                       slots=image.pool.count)


def run() -> CompiledResult:
    result = CompiledResult()
    programs = [
        ("crc (asm)", crc_source()),
        ("crc (compiled)", crc_c_source()),
        ("lfsr (asm)", lfsr_source()),
        ("lfsr (compiled)", lfsr_c_source()),
        ("treesearch (compiled)", search_c_source(nodes=30, searches=10)),
    ]
    for name, source in programs:
        result.rows_data.append(_measure(name, source))
    # The whole compiled suite in one image: cross-program merging.
    suite = link_image([
        ("crc", crc_c_source()),
        ("lfsr", lfsr_c_source()),
        ("search", search_c_source(nodes=30, searches=10)),
    ])
    result.suite_requests = suite.pool.requests
    result.suite_slots = suite.pool.count
    return result
