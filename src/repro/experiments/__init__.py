"""Regeneration of every table and figure in the paper's evaluation.

Each module exposes ``run(...)`` returning a result object with
``.rows`` (machine-readable) and ``.render()`` (the text table matching
the paper's rows/series), plus module-level defaults scaled to finish
on a laptop; EXPERIMENTS.md records the scale factors.
"""

from . import (extra_compiled, extra_copyswitch, extra_energy,
               extra_latency, fig4, fig5, fig6, fig7, fig8, table1,
               table2)

__all__ = ["table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8",
           "extra_compiled", "extra_copyswitch", "extra_energy",
           "extra_latency"]
