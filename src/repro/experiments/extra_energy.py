"""Extra experiment: what does SenSmart's overhead cost in energy?

Runs PeriodicTask at three computation sizes under native execution and
under SenSmart and converts the cycle accounting into milli-joules
(MICA2 current model).  The finding: the translation tax is paid on
*active* cycles, so SenSmart multiplies CPU energy by roughly its
cycle-overhead factor at every duty cycle — at low duty cycles the node
still averages only ~1.4 mA (vs 0.4 mA native) because sleep dominates,
while past the knee the average draw saturates near the 8 mA active
figure.  This is why the paper positions SenSmart "for the applications
with a CPU utilization lower than 30%, which is the common case".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.energy import EnergyModel, measure_native, \
    measure_sensmart
from ..analysis.report import format_table
from ..baselines.native import run_native
from ..kernel import SensorNode
from ..workloads.periodic import (periodic_native_source,
                                  periodic_sensmart_source)

DEFAULT_SIZES = [10_000, 60_000, 120_000]
ACTIVATIONS = 15
PERIOD_TICKS = 38_000


@dataclass
class EnergyPoint:
    compute_size: int
    native_mj: float
    sensmart_mj: float
    native_ma: float
    sensmart_ma: float

    @property
    def overhead_percent(self) -> float:
        return 100.0 * (self.sensmart_mj / self.native_mj - 1.0)


@dataclass
class EnergyResult:
    points: List[EnergyPoint] = field(default_factory=list)

    @property
    def rows(self) -> List[List]:
        return [[p.compute_size, round(p.native_mj, 3),
                 round(p.sensmart_mj, 3),
                 round(p.overhead_percent, 1),
                 round(p.native_ma, 3), round(p.sensmart_ma, 3)]
                for p in self.points]

    def render(self) -> str:
        return format_table(
            ["size (instr)", "native (mJ)", "sensmart (mJ)",
             "overhead %", "native avg mA", "sensmart avg mA"],
            self.rows,
            title="Extra: energy cost of SenSmart's overhead "
                  "(PeriodicTask, MICA2 current model)")


def run(sizes: List[int] = None,
        activations: int = ACTIVATIONS) -> EnergyResult:
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    model = EnergyModel()
    result = EnergyResult()
    for size in sizes:
        native = run_native(
            periodic_native_source(size, activations, PERIOD_TICKS),
            max_instructions=1_000_000_000)
        assert native.finished
        native_report = measure_native(native, model)

        node = SensorNode.from_sources(
            [("p", periodic_sensmart_source(size, activations,
                                            PERIOD_TICKS))])
        node.run(max_instructions=1_000_000_000)
        assert node.finished
        sensmart_report = measure_sensmart(node, model)

        result.points.append(EnergyPoint(
            compute_size=size,
            native_mj=native_report.total_mj,
            sensmart_mj=sensmart_report.total_mj,
            native_ma=native_report.average_ma(),
            sensmart_ma=sensmart_report.average_ma()))
    return result
