"""Run every experiment and collect the outputs.

``quick=True`` shrinks sweeps to smoke-test size (used by CI tests);
the defaults regenerate the full (scaled) paper evaluation.

``jobs=N`` fans the suite's independent work units — fig6/fig7/fig8
sweep points, table2 row groups, and whole single-shot experiments —
across N worker processes.  Every unit is a pure function of its
parameters, the decomposition is identical in serial and parallel
mode, and ``Pool.map`` preserves submission order, so the merged
:class:`SuiteResult` (and its rendered text) is byte-identical no
matter how many workers ran it.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from . import (extra_compiled, extra_copyswitch, extra_energy,
               extra_faults, extra_latency, extra_static, fig4, fig5,
               fig6, fig7, fig8, table1, table2)


@dataclass
class SuiteResult:
    results: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        parts: List[str] = []
        for name, result in self.results.items():
            parts.append(f"===== {name} =====")
            parts.append(result.render())
            parts.append("")
        return "\n".join(parts)


def experiment_functions(quick: bool = False) -> Dict[str, Callable]:
    """Experiment id -> zero-argument callable."""
    if quick:
        return {
            "table1": table1.run,
            "table2": lambda: table2.run(reps=8),
            "fig4": fig4.run,
            "fig5": fig5.run,
            "fig6": lambda: fig6.run(sizes=[10_000, 60_000, 120_000],
                                     activations=5),
            "fig7": lambda: fig7.run(tree_sizes=[20, 60], max_tasks=12),
            "fig8": lambda: fig8.run(tree_sizes=[20, 60], max_tasks=12),
            "copyswitch": extra_copyswitch.run,
            "latency": lambda: extra_latency.run(),
            "energy": lambda: extra_energy.run(sizes=[10_000, 60_000],
                                               activations=5),
            "compiled": extra_compiled.run,
            "static": lambda: extra_static.run(quick=True),
            "chaos": lambda: extra_faults.run(quick=True),
        }
    return {
        "table1": table1.run,
        "table2": table2.run,
        "fig4": fig4.run,
        "fig5": fig5.run,
        "fig6": fig6.run,
        "fig7": fig7.run,
        "fig8": fig8.run,
        "copyswitch": extra_copyswitch.run,
        "latency": extra_latency.run,
        "energy": extra_energy.run,
        "compiled": extra_compiled.run,
        "static": extra_static.run,
        "chaos": extra_faults.run,
    }


# -- work units ----------------------------------------------------------------
#
# A unit is ``(kind, kwargs)`` — module-level data that pickles cleanly
# into worker processes.  Unit functions must be module-level too.

_UNIT_FUNCS: Dict[str, Callable] = {
    "table1": table1.run,
    "table2_rows": table2.compute_rows,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6_point": fig6.compute_point,
    "fig7_point": fig7.compute_point,
    "fig8_point": fig8.compute_point,
    "copyswitch": extra_copyswitch.run,
    "latency": extra_latency.run,
    "energy": extra_energy.run,
    "compiled": extra_compiled.run,
    "static_workload": extra_static.compute_workload,
    "chaos_point": extra_faults.compute_point,
}

Spec = Tuple[str, dict]


def _run_unit(spec: Spec):
    kind, kwargs = spec
    return _UNIT_FUNCS[kind](**kwargs)


def _single(chunks: List):
    return chunks[0]


def _suite_plan(quick: bool) -> List[Tuple[str, List[Spec], Callable]]:
    """(experiment name, unit specs, merge(list of unit results))."""
    if quick:
        table2_reps = 8
        fig6_sizes, fig6_activations = [10_000, 60_000, 120_000], 5
        tree_sizes, max_tasks = [20, 60], 12
        energy_kwargs = {"sizes": [10_000, 60_000], "activations": 5}
    else:
        table2_reps = table2._REPS
        fig6_sizes = fig6.DEFAULT_SIZES
        fig6_activations = fig6.DEFAULT_ACTIVATIONS
        tree_sizes, max_tasks = fig7.DEFAULT_TREE_SIZES, fig7.MAX_TASKS
        energy_kwargs = {}

    def merge_fig6(points):
        return fig6.Fig6Result(points=list(points),
                               activations=fig6_activations)

    def merge_table2(chunks):
        return table2.Table2Result(
            rows=[row for chunk in chunks for row in chunk])

    return [
        ("table1", [("table1", {})], _single),
        ("table2",
         [("table2_rows", {"index": i, "reps": table2_reps})
          for i in range(len(table2.ROW_BUILDERS))],
         merge_table2),
        ("fig4", [("fig4", {})], _single),
        ("fig5", [("fig5", {})], _single),
        ("fig6",
         [("fig6_point", {"size": size,
                          "activations": fig6_activations})
          for size in fig6_sizes],
         merge_fig6),
        ("fig7",
         [("fig7_point", {"nodes": nodes, "max_tasks": max_tasks})
          for nodes in tree_sizes],
         lambda points: fig7.Fig7Result(points=list(points))),
        ("fig8",
         [("fig8_point", {"nodes": nodes, "max_tasks": max_tasks})
          for nodes in tree_sizes],
         lambda points: fig8.Fig8Result(points=list(points))),
        ("copyswitch", [("copyswitch", {})], _single),
        ("latency", [("latency", {})], _single),
        ("energy", [("energy", energy_kwargs)], _single),
        ("compiled", [("compiled", {})], _single),
        ("static",
         [("static_workload", {"workload": workload, "quick": quick})
          for workload in extra_static.WORKLOAD_NAMES],
         extra_static.merge),
        ("chaos",
         [("chaos_point", {"mix": mix, "level": level, "quick": quick})
          for mix in extra_faults.MIXES
          for level in extra_faults.LEVELS],
         extra_faults.merge),
    ]


def run_suite(quick: bool = False, only: Optional[List[str]] = None,
              jobs: int = 1) -> SuiteResult:
    """Run the suite, optionally fanning units over *jobs* processes.

    The serial path maps over the exact same unit list the parallel
    path submits, so the two produce identical results.
    """
    plan = [(name, specs, merge)
            for name, specs, merge in _suite_plan(quick)
            if not only or name in only]
    flat: List[Spec] = [spec for _, specs, _ in plan for spec in specs]
    if jobs > 1 and len(flat) > 1:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(jobs, len(flat))) as pool:
            outputs = pool.map(_run_unit, flat, chunksize=1)
    else:
        outputs = [_run_unit(spec) for spec in flat]
    suite = SuiteResult()
    cursor = 0
    for name, specs, merge in plan:
        chunk = outputs[cursor:cursor + len(specs)]
        cursor += len(specs)
        suite.results[name] = merge(chunk)
    return suite


def run_all(quick: bool = False,
            only: Optional[List[str]] = None) -> SuiteResult:
    return run_suite(quick=quick, only=only, jobs=1)
