"""Run every experiment and collect the outputs.

``quick=True`` shrinks sweeps to smoke-test size (used by CI tests);
the defaults regenerate the full (scaled) paper evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from . import (extra_compiled, extra_copyswitch, extra_energy,
               extra_latency, fig4, fig5, fig6, fig7, fig8, table1,
               table2)


@dataclass
class SuiteResult:
    results: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        parts: List[str] = []
        for name, result in self.results.items():
            parts.append(f"===== {name} =====")
            parts.append(result.render())
            parts.append("")
        return "\n".join(parts)


def experiment_functions(quick: bool = False) -> Dict[str, Callable]:
    """Experiment id -> zero-argument callable."""
    if quick:
        return {
            "table1": table1.run,
            "table2": lambda: table2.run(reps=8),
            "fig4": fig4.run,
            "fig5": fig5.run,
            "fig6": lambda: fig6.run(sizes=[10_000, 60_000, 120_000],
                                     activations=5),
            "fig7": lambda: fig7.run(tree_sizes=[20, 60], max_tasks=12),
            "fig8": lambda: fig8.run(tree_sizes=[20, 60], max_tasks=12),
            "copyswitch": extra_copyswitch.run,
            "latency": lambda: extra_latency.run(),
            "energy": lambda: extra_energy.run(sizes=[10_000, 60_000],
                                               activations=5),
            "compiled": extra_compiled.run,
        }
    return {
        "table1": table1.run,
        "table2": table2.run,
        "fig4": fig4.run,
        "fig5": fig5.run,
        "fig6": fig6.run,
        "fig7": fig7.run,
        "fig8": fig8.run,
        "copyswitch": extra_copyswitch.run,
        "latency": extra_latency.run,
        "energy": extra_energy.run,
        "compiled": extra_compiled.run,
    }


def run_all(quick: bool = False,
            only: List[str] = None) -> SuiteResult:
    functions = experiment_functions(quick=quick)
    suite = SuiteResult()
    for name, function in functions.items():
        if only and name not in only:
            continue
        suite.results[name] = function()
    return suite
