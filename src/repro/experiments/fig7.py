"""Figure 7: binary-tree search — stack versatility under SenSmart.

For each tree size, the node runs the data-feeding task (six trees)
plus as many recursive search tasks as SenSmart can accommodate; the
figure reports, per tree size:

* the maximum number of schedulable search tasks (all complete, none
  terminated for stack exhaustion);
* the average stack allocation per task (time-averaged over scheduling
  events);
* the number of stack relocations performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.report import format_table
from ..errors import OutOfMemory
from ..kernel import KernelConfig, SensorNode
from ..workloads.bintree import feeder_source, search_task_source

DEFAULT_TREE_SIZES = [10, 20, 30, 40, 50, 60]
SEARCHES = 12
FEEDER_UPDATES = 30
MAX_TASKS = 24


@dataclass
class Fig7Point:
    tree_nodes: int
    max_search_tasks: int
    avg_stack_allocation: float
    relocations: int
    terminations_at_limit: int  # at max+1 tasks (what broke the camel)


@dataclass
class Fig7Result:
    points: List[Fig7Point] = field(default_factory=list)

    @property
    def rows(self) -> List[List]:
        return [[p.tree_nodes, p.max_search_tasks,
                 round(p.avg_stack_allocation, 1), p.relocations]
                for p in self.points]

    def render(self) -> str:
        return format_table(
            ["nodes/tree", "max schedulable search tasks",
             "avg stack per task (B)", "stack relocations"],
            self.rows,
            title="Figure 7: binary-tree search under SenSmart")


def _try_configuration(tree_nodes: int, search_tasks: int,
                       ) -> Optional[Tuple[float, int, int]]:
    """Run feeder + N search tasks.

    Returns (avg stack allocation, relocations, abnormal terminations);
    None when the configuration cannot even be loaded or a task dies.
    """
    sources = [("feeder", feeder_source(nodes_per_tree=tree_nodes,
                                        trees=6,
                                        updates=FEEDER_UPDATES))]
    for index in range(search_tasks):
        sources.append((
            f"search{index}",
            search_task_source(nodes=tree_nodes, searches=SEARCHES,
                               seed=0x1357 + 0x1111 * index)))
    config = KernelConfig(time_slice_cycles=20_000)
    try:
        node = SensorNode.from_sources(sources, config=config)
    except OutOfMemory:
        return None
    kernel = node.kernel

    # Time-averaged stack allocation per task, sampled at every
    # scheduler entry while the full task population is resident (after
    # tasks exit, survivors inherit their memory and would skew the
    # average upward).
    population = len(sources)
    samples: List[float] = []
    original_tick = kernel.scheduler_tick

    def sampling_tick():
        regions = kernel.regions.regions
        if len(regions) == population:
            samples.append(sum(r.stack_size for r in regions)
                           / len(regions))
        original_tick()

    kernel.scheduler_tick = sampling_tick
    node.run(max_instructions=400_000_000)
    abnormal = [t for t in kernel.tasks.values()
                if t.exit_reason != "exit"]
    if not node.finished or abnormal:
        return None
    average = sum(samples) / len(samples) if samples else 0.0
    return average, kernel.stats.relocations, len(abnormal)


def compute_point(nodes: int, max_tasks: int = MAX_TASKS) -> Fig7Point:
    """One tree size: scan task counts upward until loading/running
    fails.  Independent per size, so the runner can parallelize."""
    best = 0
    best_metrics = (0.0, 0, 0)
    for count in range(1, max_tasks + 1):
        metrics = _try_configuration(nodes, count)
        if metrics is None:
            break
        best = count
        best_metrics = metrics
    average, relocations, _ = best_metrics
    return Fig7Point(
        tree_nodes=nodes,
        max_search_tasks=best,
        avg_stack_allocation=average,
        relocations=relocations,
        terminations_at_limit=0)


def run(tree_sizes: List[int] = None,
        max_tasks: int = MAX_TASKS) -> Fig7Result:
    tree_sizes = tree_sizes if tree_sizes is not None \
        else DEFAULT_TREE_SIZES
    return Fig7Result(points=[compute_point(nodes, max_tasks)
                              for nodes in tree_sizes])
