"""Extra experiment: preemption latency of software-trap scheduling.

Section IV-B claims preemption "does not guarantee that the preemption
occurs exactly when the time slice ends because the software traps are
triggered aperiodically.  However, the delay of the preemption [is]
small enough to be ignored for most applications ... Even with
interrupts disabled, SenSmart can still preempt the application task."

This experiment measures the distribution of (preemption time − slice
expiry time) for CPU-bound tasks with different loop-body lengths: the
latency is bounded by the gap between consecutive kernel entries, i.e.
``branch_trap_period x loop-body cycles``.  It also demonstrates the
latency is unchanged under ``CLI``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.report import format_table
from ..kernel import KernelConfig, SensorNode

CLOCK_HZ = 7_372_800


def _spinner(body_nops: int, with_cli: bool) -> str:
    """CPU-bound task whose inner loop body is 2 + body_nops instrs."""
    nops = "    nop\n" * body_nops
    cli = "    cli\n" if with_cli else ""
    return f"""
main:
{cli}    ldi r26, 0
    ldi r27, 0
    ldi r28, 3
outer:
inner:
{nops}    adiw r26, 1
    brne inner
    dec r28
    brne outer
    break
"""


@dataclass
class LatencyRow:
    label: str
    loop_body_cycles: int
    samples: int
    mean_us: float
    max_us: float
    bound_us: float  # trap period x body cycles


@dataclass
class LatencyResult:
    rows_data: List[LatencyRow] = field(default_factory=list)

    @property
    def rows(self) -> List[List]:
        return [[r.label, r.loop_body_cycles, r.samples,
                 round(r.mean_us, 1), round(r.max_us, 1),
                 round(r.bound_us, 1)]
                for r in self.rows_data]

    def render(self) -> str:
        return format_table(
            ["workload", "loop body (cycles)", "preemptions",
             "mean delay (us)", "max delay (us)",
             "inter-trap bound (us)"],
            self.rows,
            title="Extra: preemption latency of the software traps "
                  "(Section IV-B)")


def _measure(body_nops: int, with_cli: bool,
             trap_period: int) -> LatencyRow:
    config = KernelConfig(time_slice_cycles=20_000,
                          branch_trap_period=trap_period)
    source = _spinner(body_nops, with_cli)
    node = SensorNode.from_sources(
        [("a", source), ("b", source)], config=config)
    kernel = node.kernel

    delays: List[int] = []
    original = kernel.preempt

    def probed():
        task = kernel.current
        if task is not None:
            over = kernel.cpu.cycles - \
                (task.slice_start_cycle + config.time_slice_cycles)
            if over >= 0:
                delays.append(over)
        original()

    kernel.preempt = probed
    node.run(max_instructions=40_000_000)
    assert node.finished

    body_cycles = 4 + body_nops  # ADIW(2) + BRNE taken(2) + NOPs
    to_us = 1e6 / CLOCK_HZ
    # Under SenSmart the patched backward branch adds its inline
    # counter cost to every iteration; the worst-case delay is one full
    # inter-trap gap at that naturalized pace.
    from ..kernel import costs
    bound = trap_period * \
        (body_cycles + costs.BRANCH_COUNTER_INLINE) * to_us
    label = f"{body_nops}-nop body" + (" + CLI" if with_cli else "")
    mean = sum(delays) / len(delays) if delays else 0.0
    peak = max(delays) if delays else 0
    return LatencyRow(label=label, loop_body_cycles=body_cycles,
                      samples=len(delays), mean_us=mean * to_us,
                      max_us=peak * to_us, bound_us=bound)


def run(trap_period: int = 256) -> LatencyResult:
    result = LatencyResult()
    for body_nops in (0, 8, 32):
        result.rows_data.append(_measure(body_nops, False, trap_period))
    # Interrupt-free preemption: CLI changes nothing.
    result.rows_data.append(_measure(8, True, trap_period))
    return result
