"""Live over-the-air hot-patching of a running task.

The scenario: ``alpha`` runs a beacon task (periodic radio TX into a
3-node relay chain alpha -> bravo -> charlie) beside a ``worker`` task
at version 1.  An ``updater`` node streams the version-2 image over a
*corrupting* radio link as checksummed, sequence-numbered frames; the
node's reprogramming service (host-side, like
:class:`~repro.kernel.loader.DynamicLoader` itself) reassembles the
transfer, discards damaged frames, and — once every frame has arrived
intact — pauses the worker (``unload``), installs version 2 (``load``,
which compacts and physically relocates every resident region: stack
relocation exercised mid-update), and resumes.  The relay chain keeps
delivering beacons throughout; nothing else on the node stops.

Verification is differential: the patched worker's heap digest must
match a cold-booted node running version 2 from power-on, and the
relay link must show beacon arrivals both before and after the patch
cycle.

The transfer payload is the version-2 *source text* — the simulated
reprogramming service compiles on the node exactly as
``DynamicLoader.load`` does, so shipping source is the faithful
equivalent of shipping an image for this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..avr import ioports
from ..errors import KernelError
from ..fingerprint import content_key
from ..kernel import KernelConfig, SensorNode
from ..net.network import Network
from .attacks import DEFAULT_SEED, _IO_ROUTINES, attacker_src

#: Frame layout: MAGIC seq len payload... cksum.  The checksum keeps
#: bit 7 clear so a magic byte can only be a frame start (or a radio
#: corruption, which the resync scan absorbs).
FRAME_MAGIC = 0xA5
FRAME_PAYLOAD = 24
#: Sequence number of the END-of-transfer frame; its payload is
#: (frame count, whole-transfer checksum).
END_SEQ = 0x7E

#: Corruption rate (permille) on the updater -> alpha link: enough for
#: the fixed LFSR stream to damage at least one frame per session —
#: proving the reject/retransmit path — while redundant passes still
#: complete the transfer.
PATCH_CORRUPT_PERMILLE = 8

#: Cycles between host-side drains of alpha's RX queue.
DRAIN_STEP = 50_000

#: Post-patch run window: long enough for the patched worker to fill
#: its heap and for several more beacons to cross the relay chain.
POST_CYCLES = 500_000
SESSION_MAX_CYCLES = 6_000_000

BEACON_TIMER_TICKS = 12_000   # x8 prescaler = 96k cycles per beacon
WORKER_BYTES = 16

BEACON_SRC = f"""
.bss seq, 4
main:
    ldi r24, 1
    ldi r16, hi8({BEACON_TIMER_TICKS})
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8({BEACON_TIMER_TICKS})
    sts {ioports.OCR3AL}, r16
loop:
    sleep
    mov r16, r24
    call send_byte
    ldi r26, lo8(seq)
    ldi r27, hi8(seq)
    st X, r24
    subi r24, 255
    rjmp loop
{_IO_ROUTINES}
"""

RELAY_SRC = f"""
main:
loop:
    call read_byte
    call send_byte
    rjmp loop
{_IO_ROUTINES}
"""

RECEIVER_SRC = f"""
.bss count, 2
main:
    ldi r24, 0
    ldi r26, lo8(count)
    ldi r27, hi8(count)
loop:
    call read_byte
    subi r24, 255
    st X, r24
    rjmp loop
{_IO_ROUTINES}
"""


def _worker_src(fill_start: int, fill_step: int,
                timer_ticks: int = 8192) -> str:
    return f"""
.bss state, {WORKER_BYTES}
main:
    ldi r26, lo8(state)
    ldi r27, hi8(state)
    ldi r20, {WORKER_BYTES}
    ldi r16, {fill_start}
fill:
    st X+, r16
    subi r16, {(256 - fill_step) & 0xFF}
    dec r20
    brne fill
    ldi r16, hi8({timer_ticks})
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8({timer_ticks})
    sts {ioports.OCR3AL}, r16
park:
    sleep
    rjmp park
"""


WORKER_V1 = _worker_src(0xA0, 1)
WORKER_V2 = _worker_src(0x5A, 5)

WORKER_V1_PATTERN = bytes((0xA0 + i) & 0xFF for i in range(WORKER_BYTES))
WORKER_V2_PATTERN = bytes((0x5A + 5 * i) & 0xFF for i in range(WORKER_BYTES))


# -- framing -------------------------------------------------------------------------


def _cksum(seq: int, payload: bytes) -> int:
    return (seq + len(payload) + sum(payload)) & 0x7F


def make_frames(source: str) -> List[bytes]:
    """Split *source* into checksummed frames plus the END frame."""
    data = source.encode("ascii")
    frames = []
    for seq, start in enumerate(range(0, len(data), FRAME_PAYLOAD)):
        payload = data[start:start + FRAME_PAYLOAD]
        frames.append(bytes([FRAME_MAGIC, seq, len(payload)])
                      + payload + bytes([_cksum(seq, payload)]))
    end_payload = bytes([len(frames), sum(data) & 0x7F])
    frames.append(bytes([FRAME_MAGIC, END_SEQ, len(end_payload)])
                  + end_payload + bytes([_cksum(END_SEQ, end_payload)]))
    return frames


class PatchSession:
    """Host-side reassembly of a chunked OTA transfer.

    Feeds on the raw RX byte stream; resynchronizes on the frame magic
    after a damaged frame, rejects checksum failures, and deduplicates
    retransmitted sequence numbers.
    """

    def __init__(self):
        self.buffer = bytearray()
        self.frames: Dict[int, bytes] = {}
        self.expected: Optional[int] = None
        self.total_cksum: Optional[int] = None
        self.rejected = 0
        self.duplicates = 0
        self.garbage = 0

    def feed(self, data: bytes) -> None:
        self.buffer.extend(data)
        self._parse()

    def _parse(self) -> None:
        buf = self.buffer
        while buf:
            if buf[0] != FRAME_MAGIC:
                del buf[0]
                self.garbage += 1
                continue
            if len(buf) < 3:
                return  # header still in flight
            seq, length = buf[1], buf[2]
            end = 3 + length + 1
            if length > FRAME_PAYLOAD or seq > END_SEQ:
                # A corrupted header: drop the magic and resync.
                del buf[0]
                self.rejected += 1
                continue
            if len(buf) < end:
                return  # body still in flight
            payload = bytes(buf[3:3 + length])
            if buf[end - 1] != _cksum(seq, payload):
                del buf[0]
                self.rejected += 1
                continue
            del buf[:end]
            if seq == END_SEQ:
                self.expected, self.total_cksum = payload[0], payload[1]
            elif seq in self.frames:
                self.duplicates += 1
            else:
                self.frames[seq] = payload

    @property
    def complete(self) -> bool:
        if self.expected is None:
            return False
        if any(seq not in self.frames for seq in range(self.expected)):
            return False
        return sum(self.assembled) & 0x7F == self.total_cksum

    @property
    def assembled(self) -> bytes:
        return b"".join(self.frames[seq]
                        for seq in sorted(self.frames))


def _shuffled(items: List[bytes], rng) -> List[bytes]:
    out = list(items)
    for i in range(len(out) - 1, 0, -1):
        j = rng.below(i + 1)
        out[i], out[j] = out[j], out[i]
    return out


def updater_payload(source: str, passes: int, seed: int) -> bytes:
    """The full byte stream the updater clocks out: every frame,
    *passes* times over, later passes in seeded-shuffled order (the
    reassembler must not depend on arrival order)."""
    from ..faults.rng import XorShift32
    frames = make_frames(source)
    stream = bytearray()
    for run in range(passes):
        ordered = frames if run == 0 else _shuffled(
            frames, XorShift32(seed).derive(f"patch/pass/{run}"))
        for frame in ordered:
            stream.extend(frame)
    return bytes(stream)


# -- the campaign --------------------------------------------------------------------


@dataclass
class PatchReport:
    """Outcome of one live hot-patch session."""

    ok: bool
    failure: str = ""
    frames_unique: int = 0
    frames_rejected: int = 0
    frames_duplicate: int = 0
    passes: int = 0
    link_corrupted: int = 0
    patch_cycle: int = 0
    flash_words: int = 0
    ram_bytes_moved: int = 0
    beacons_before: int = 0
    beacons_after: int = 0
    worker_digest: str = ""
    cold_digest: str = ""

    @property
    def network_alive(self) -> bool:
        return self.beacons_before > 0 and self.beacons_after > 0

    @property
    def digest(self) -> str:
        return content_key(
            self.ok, self.failure, self.frames_unique,
            self.frames_rejected, self.frames_duplicate,
            self.link_corrupted, self.patch_cycle, self.flash_words,
            self.ram_bytes_moved, self.beacons_before,
            self.beacons_after, self.worker_digest, self.cold_digest)

    def render(self) -> str:
        lines = [
            f"hot-patch worker v1 -> v2 "
            f"({'ok' if self.ok else 'FAILED: ' + self.failure})",
            f"transfer: {self.frames_unique} frames x {self.passes} "
            f"passes, {self.frames_rejected} rejected "
            f"({self.link_corrupted} bytes corrupted on air), "
            f"{self.frames_duplicate} duplicates dropped",
            f"patch at cycle {self.patch_cycle}: +{self.flash_words} "
            f"flash words, {self.ram_bytes_moved} RAM bytes relocated",
            f"relay chain: {self.beacons_before} beacons before patch, "
            f"{self.beacons_after} after "
            f"({'alive' if self.network_alive else 'DEAD'})",
            f"differential digest: patched {self.worker_digest} vs "
            f"cold-boot {self.cold_digest} "
            f"({'match' if self.worker_digest == self.cold_digest else 'MISMATCH'})",
        ]
        return "\n".join(lines)


def _worker_heap(node: SensorNode, task=None) -> bytes:
    # After a hot patch the unloaded v1 task is still in the kernel's
    # task table under the same name; callers pass the live v2 task.
    task = task if task is not None else node.task_named("worker")
    region = node.kernel.regions.maybe_by_task(task.task_id)
    if region is None:
        return b""
    return bytes(node.cpu.mem.data[region.p_l:region.p_l + WORKER_BYTES])


def cold_digest(source: str = WORKER_V2, **tier) -> str:
    """Heap digest of *source* booted cold on a single-task node."""
    node = SensorNode.from_sources(
        [("worker", source)],
        **{k: v for k, v in tier.items() if v is not None})
    node.run(max_cycles=200_000)
    return content_key(_worker_heap(node))


def run_patch(quick: bool = False, seed: int = DEFAULT_SEED,
              fuse: Optional[bool] = None,
              specialize: Optional[bool] = None,
              trace: Optional[bool] = None,
              elide: Optional[bool] = None) -> PatchReport:
    """Run the live hot-patch scenario end to end."""
    tier = {k: v for k, v in dict(fuse=fuse, specialize=specialize,
                                  trace=trace, elide=elide).items()
            if v is not None}
    passes = 2 if quick else 3
    post_cycles = 300_000 if quick else POST_CYCLES

    alpha = SensorNode.from_sources(
        [("beacon", BEACON_SRC), ("worker", WORKER_V1)], **tier)
    bravo = SensorNode.from_sources([("relay", RELAY_SRC)], **tier)
    charlie = SensorNode.from_sources([("receiver", RECEIVER_SRC)],
                                      **tier)
    updater = SensorNode.from_sources(
        [("updater",
          attacker_src(updater_payload(WORKER_V2, passes, seed)))])

    net = Network()
    for name, node in (("alpha", alpha), ("bravo", bravo),
                       ("charlie", charlie), ("updater", updater)):
        net.add_node(name, node)
    net.connect("updater", "alpha", latency_cycles=1_500,
                corrupt_permille=PATCH_CORRUPT_PERMILLE)
    net.connect("alpha", "bravo", latency_cycles=2_000)
    net.connect("bravo", "charlie", latency_cycles=2_000)

    report = PatchReport(ok=False, passes=passes)
    session = PatchSession()
    horizon = 0
    while not session.complete:
        horizon += DRAIN_STEP
        if horizon > SESSION_MAX_CYCLES:
            report.failure = "transfer never completed"
            return report
        net.run(max_cycles=horizon)
        rx = alpha.radio.rx_queue
        chunk = bytes(rx)
        rx.clear()
        session.feed(chunk)

    report.frames_unique = len(session.frames)
    report.frames_rejected = session.rejected
    report.frames_duplicate = session.duplicates
    uplink = net.link_between("updater", "alpha")
    report.link_corrupted = uplink.corrupted
    patch_cycle = alpha.cpu.cycles
    report.patch_cycle = patch_cycle

    source = session.assembled.decode("ascii")
    loader = alpha.kernel.loader
    try:
        loader.unload("worker")
        load = loader.load("worker", source)
    except KernelError as error:
        report.failure = f"load rejected: {error}"
        return report
    report.flash_words = load.flash_words
    report.ram_bytes_moved = load.ram_bytes_moved

    net.run(max_cycles=patch_cycle + post_cycles)
    net.settle_inboxes()

    downlink = net.link_between("bravo", "charlie")
    report.beacons_before = sum(1 for c in downlink.arrival_cycles
                                if c <= patch_cycle)
    report.beacons_after = sum(1 for c in downlink.arrival_cycles
                               if c > patch_cycle)
    worker = load.task
    report.worker_digest = content_key(_worker_heap(alpha, worker))
    report.cold_digest = cold_digest(source, **tier)

    if not worker.alive:
        report.failure = f"patched worker died: {worker.exit_reason}"
    elif report.worker_digest != report.cold_digest:
        report.failure = "digest mismatch"
    elif not report.network_alive:
        report.failure = "relay chain stalled"
    elif report.frames_rejected == 0:
        report.failure = "corruption never exercised the reject path"
    else:
        report.ok = True
    return report
