"""Vulnerable receiver tasks and seeded malicious-payload generators.

The victims reproduce the attack surface of "Code Injection Attacks on
Harvard-Architecture Devices": fixed-size buffer copy loops fed from
the radio with an attacker-controlled length byte, an
attacker-controlled stack pointer write, and an attacker-controlled
indirect jump.  Each victim also carries a 16-byte ``status`` block it
fills with a known pattern at startup and XOR-digests back over the
radio before exiting, so a trial can distinguish a clean run from a
silent overwrite of the victim's own data.

Payload generators are pure functions of an :class:`AddressBook`
(label addresses resolved from the victim's linked image) and a
:class:`~repro.faults.XorShift32` stream, so campaigns reproduce
byte-for-byte from a seed.  This module deliberately imports no kernel
or network machinery — it only produces assembly text and payload
bytes; :mod:`.campaign` wires them to nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Callable, Dict, List, Sequence, Tuple

from ..avr import ioports
from ..avr.devices.radio import RXC

DEFAULT_SEED = 0xAD5EED

#: Two consecutive bytes only the hijack gadget transmits; seeing them
#: in the victim node's TX log proves attacker-directed execution.
MARKER = (0xEE, 0x7E)

#: Victim integrity scratch: 16 bytes filled with 0x41, 0x44, ... and
#: XOR-digested over the radio before a clean exit.
STATUS_BYTES = 16
STATUS_FILL_START = 0x41
STATUS_FILL_STEP = 3

#: The fixed-size copy target the length byte is never checked against.
BUF_BYTES = 16

#: Canary task heap pattern (3, 10, 17, ... — distinct from status).
CANARY_BYTES = 16
CANARY_FILL_START = 3
CANARY_FILL_STEP = 7
CANARY_TIMER_TICKS = 4096


def status_pattern() -> bytes:
    return bytes((STATUS_FILL_START + STATUS_FILL_STEP * i) & 0xFF
                 for i in range(STATUS_BYTES))


def status_digest() -> int:
    return reduce(lambda a, b: a ^ b, status_pattern(), 0)


def canary_pattern() -> bytes:
    return bytes((CANARY_FILL_START + CANARY_FILL_STEP * i) & 0xFF
                 for i in range(CANARY_BYTES))


# -- shared assembly fragments ------------------------------------------------------

_IO_ROUTINES = f"""
send_byte:
wait_tx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    ret
read_byte:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    ret
"""

_STATUS_ROUTINES = f"""
fill_status:
    ldi r26, lo8(status)
    ldi r27, hi8(status)
    ldi r20, {STATUS_BYTES}
    ldi r16, {STATUS_FILL_START}
fill_loop:
    st X+, r16
    subi r16, {(256 - STATUS_FILL_STEP) & 0xFF}
    dec r20
    brne fill_loop
    ret
send_digest:
    ldi r26, lo8(status)
    ldi r27, hi8(status)
    ldi r20, {STATUS_BYTES}
    ldi r16, 0
digest_loop:
    ld r17, X+
    eor r16, r17
    dec r20
    brne digest_loop
    call send_byte
    ret
"""

_GADGET = """
gadget:
    ldi r16, 0xEE
    call send_byte
    ldi r16, 0x7E
    call send_byte
    break
"""

#: The classic unchecked frame copy onto the stack: the length byte is
#: trusted, the copy starts one byte above the saved return address of
#: ``recv_frame``, so two attacker bytes redirect the native RET.
VICTIM_STACK = f"""
.bss status, {STATUS_BYTES}
main:
    call fill_status
    call recv_frame
    call send_digest
    break
recv_frame:
    call read_byte
    mov r20, r16
    in r28, 0x3D
    in r29, 0x3E
    adiw r28, 1
copy:
    call read_byte
    st Y+, r16
    dec r20
    brne copy
    ret
{_GADGET}
{_STATUS_ROUTINES}
{_IO_ROUTINES}
"""

#: Unchecked frame copy into a 16-byte heap buffer; ``status`` sits
#: directly above it, so moderate overflows corrupt the victim's own
#: data silently while large ones cross the region boundary.
VICTIM_HEAP = f"""
.bss buf, {BUF_BYTES}
.bss status, {STATUS_BYTES}
main:
    call fill_status
    call recv_frame
    call send_digest
    break
recv_frame:
    call read_byte
    mov r20, r16
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
copy:
    call read_byte
    st X+, r16
    dec r20
    brne copy
    ret
{_STATUS_ROUTINES}
{_IO_ROUTINES}
"""

#: Attacker-controlled stack pointer: two radio bytes go straight to
#: SPH/SPL (a pivot into the heap or another task's region).
VICTIM_SP = f"""
.bss status, {STATUS_BYTES}
main:
    call fill_status
    call read_byte
    mov r18, r16
    call read_byte
    out 0x3E, r18
    out 0x3D, r16
    call send_digest
    break
{_STATUS_ROUTINES}
{_IO_ROUTINES}
"""

#: Attacker-controlled indirect jump: two radio bytes load Z, then
#: IJMP.  ``resume`` is the honest continuation; ``gadget`` transmits
#: the hijack marker; ``spin`` jumps to itself forever without ever
#: taking a backward branch, starving the scheduler tick.
VICTIM_IJMP = f"""
.bss status, {STATUS_BYTES}
main:
    call fill_status
    call read_byte
    mov r31, r16
    call read_byte
    mov r30, r16
    ijmp
resume:
    call send_digest
    break
{_GADGET}
spin:
    ijmp
{_STATUS_ROUTINES}
{_IO_ROUTINES}
"""

#: The canary rides beside every victim: it fills its heap with a
#: pattern, arms a virtual timer and parks forever, keeping its region
#: alive so the end-of-trial digest can prove no foreign write landed.
CANARY = f"""
.bss pattern, {CANARY_BYTES}
main:
    ldi r26, lo8(pattern)
    ldi r27, hi8(pattern)
    ldi r20, {CANARY_BYTES}
    ldi r16, {CANARY_FILL_START}
fill:
    st X+, r16
    subi r16, {(256 - CANARY_FILL_STEP) & 0xFF}
    dec r20
    brne fill
    ldi r16, hi8({CANARY_TIMER_TICKS})
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8({CANARY_TIMER_TICKS})
    sts {ioports.OCR3AL}, r16
park:
    sleep
    rjmp park
"""

VICTIM_SOURCES: Dict[str, str] = {
    "stack": VICTIM_STACK,
    "heap": VICTIM_HEAP,
    "sp": VICTIM_SP,
    "ijmp": VICTIM_IJMP,
}


def attacker_src(payload: Sequence[int]) -> str:
    """An unrolled one-shot sender clocking *payload* out the radio."""
    lines = ["main:"]
    for index, value in enumerate(payload):
        lines += [
            f"wait{index}:",
            f"    lds r17, {ioports.UCSR0A}",
            f"    sbrs r17, {ioports.UDRE}",
            f"    rjmp wait{index}",
            f"    ldi r16, {value & 0xFF}",
            f"    sts {ioports.UDR0}, r16",
        ]
    lines.append("    break")
    return "\n".join(lines) + "\n"


# -- address book -------------------------------------------------------------------

@dataclass(frozen=True)
class AddressBook:
    """Victim-image geography a payload generator may aim at.

    ``labels`` are original (pre-naturalization) victim addresses — the
    space the trapped IJMP/ICALL translator expects; ``naturalized``
    maps the same labels into placed flash — the space a smashed native
    RET consumes.  The asymmetry is real: an attacker needs *both* maps
    to aim, which the campaign exploits deliberately.
    """

    labels: Dict[str, int]
    naturalized: Dict[str, int]
    victim_span: Tuple[int, int]     # original program [lo, hi)
    canary_entry: int                # naturalized canary entry point
    trap_region: Tuple[int, int]     # kernel trampoline flash span
    flash_end: int                   # first erased word after the image


# -- payload generators -------------------------------------------------------------

@dataclass(frozen=True)
class Trial:
    """One attack instance: which victim, what bytes, why chosen."""

    shape: str
    index: int
    payload: bytes
    note: str


GenFn = Callable[[AddressBook, "XorShift32"], Tuple[bytes, str]]


def _frame(length: int, body: Sequence[int]) -> bytes:
    """Length-prefixed frame, body padded/truncated to *length*."""
    body = list(body)[:length]
    body += [0x99 + i & 0xFF for i in range(length - len(body))]
    return bytes([length & 0xFF] + [b & 0xFF for b in body])


def _ret_frame(target: int, extra: int = 0) -> bytes:
    """A stack-smash frame: the two return-address bytes (hi first —
    the native RET pops high byte from the lower address), then
    *extra* trailing bytes marching on up the stack."""
    body = [(target >> 8) & 0xFF, target & 0xFF]
    return _frame(2 + extra, body)


def gen_heap_ovf(book: AddressBook, rng) -> Tuple[bytes, str]:
    length = 8 + rng.below(41)          # 8..48 vs a 16-byte buffer
    return (_frame(length, [0x60 + i for i in range(length)]),
            f"len={length}")


def gen_smash_ret(book: AddressBook, rng) -> Tuple[bytes, str]:
    kind = rng.below(4)
    if kind == 0:
        return _ret_frame(book.naturalized["gadget"]), "ret->gadget"
    if kind == 1:
        target = book.flash_end + rng.below(0x200)
        return _ret_frame(target), f"ret->erased {target:#06x}"
    if kind == 2:
        lo, hi = book.trap_region
        return (_ret_frame(lo + rng.below(max(hi - lo, 1))),
                "ret->trap region")
    extra = 16 + rng.below(32)
        # overwrite, then keep writing up past the region top
    return (_ret_frame(book.naturalized["gadget"], extra=extra),
            f"ret overshoot +{extra}")


def gen_ret_foreign(book: AddressBook, rng) -> Tuple[bytes, str]:
    return _ret_frame(book.canary_entry), "ret->canary code"


def gen_sp_pivot(book: AddressBook, rng) -> Tuple[bytes, str]:
    kind = rng.below(3)
    if kind == 0:
        target = 0x0100 + rng.below(0x80)       # own / foreign heap
    elif kind == 1:
        target = 0x0400 + rng.below(0x400)      # mid-space
    else:
        target = 0x1100 + rng.below(0x100)      # beyond logical space
    return (bytes([(target >> 8) & 0xFF, target & 0xFF]),
            f"sp={target:#06x}")


def gen_ijmp(book: AddressBook, rng) -> Tuple[bytes, str]:
    kind = rng.below(3)
    if kind == 0:
        target, note = book.labels["gadget"], "ijmp->gadget"
    elif kind == 1:
        target, note = book.labels["resume"], "ijmp->resume"
    else:
        lo, hi = book.victim_span
        target = hi + rng.below(0x300)
        note = f"ijmp->{target:#06x} (outside)"
    return bytes([(target >> 8) & 0xFF, target & 0xFF]), note


def gen_ijmp_spin(book: AddressBook, rng) -> Tuple[bytes, str]:
    target = book.labels["spin"]
    return (bytes([(target >> 8) & 0xFF, target & 0xFF]),
            "ijmp->self (tick starvation)")


@dataclass(frozen=True)
class AttackShape:
    """A parameterized attack family against one victim program."""

    name: str
    victim: str                        # key into VICTIM_SOURCES
    gen: GenFn
    #: Fixed payload specs always run first (the acceptance anchors);
    #: each is (payload-builder, note) taking only the address book.
    anchors: Tuple[Tuple[Callable[[AddressBook], bytes], str], ...]


SHAPES: Tuple[AttackShape, ...] = (
    AttackShape(
        "heap-ovf", "heap", gen_heap_ovf,
        anchors=(
            (lambda b: _frame(12, range(0x60, 0x6C)), "len=12 (fits)"),
            (lambda b: _frame(24, range(0x60, 0x78)),
             "len=24 (own status)"),
            (lambda b: _frame(40, range(0x60, 0x88)),
             "len=40 (past region)"),
        )),
    AttackShape(
        "smash-ret", "stack", gen_smash_ret,
        anchors=(
            (lambda b: _ret_frame(b.naturalized["gadget"]),
             "ret->gadget"),
            (lambda b: _ret_frame(b.trap_region[0]), "ret->trap region"),
            (lambda b: _ret_frame(b.flash_end + 8), "ret->erased flash"),
            (lambda b: _ret_frame(b.naturalized["gadget"], extra=40),
             "ret overshoot +40"),
        )),
    AttackShape(
        "ret-foreign", "stack", gen_ret_foreign,
        anchors=((lambda b: _ret_frame(b.canary_entry),
                  "ret->canary code"),)),
    AttackShape(
        "sp-pivot", "sp", gen_sp_pivot,
        anchors=(
            (lambda b: bytes([0x01, 0x10]), "sp->heap 0x0110"),
            (lambda b: bytes([0x11, 0x80]), "sp->0x1180 (no space)"),
        )),
    AttackShape(
        "ijmp", "ijmp", gen_ijmp,
        anchors=(
            (lambda b: bytes([(b.labels["gadget"] >> 8) & 0xFF,
                              b.labels["gadget"] & 0xFF]),
             "ijmp->gadget"),
            (lambda b: bytes([0x0F, 0x00]), "ijmp->0x0f00 (outside)"),
        )),
    AttackShape(
        "ijmp-spin", "ijmp", gen_ijmp_spin,
        anchors=((lambda b: bytes([(b.labels["spin"] >> 8) & 0xFF,
                                   b.labels["spin"] & 0xFF]),
                  "ijmp->self"),)),
)

SHAPE_NAMES: Tuple[str, ...] = tuple(shape.name for shape in SHAPES)


def shape_trials(shape: AttackShape, book: AddressBook, seed: int,
                 randoms: int) -> List[Trial]:
    """The trial list for one shape: anchors, then seeded draws.

    Every random trial derives its own stream
    (``attack/<shape>/<index>``), so adding a shape or changing trial
    counts never perturbs another shape's payload bytes.
    """
    from ..faults.rng import XorShift32
    trials: List[Trial] = []
    for build, note in shape.anchors:
        trials.append(Trial(shape.name, len(trials), build(book), note))
    for _ in range(randoms):
        index = len(trials)
        rng = XorShift32(seed).derive(f"attack/{shape.name}/{index}")
        payload, note = shape.gen(book, rng)
        trials.append(Trial(shape.name, index, payload, note))
    return trials
