"""Adversarial workloads: radio code-injection and live hot-patching.

Two campaign families stress the containment machinery the benign
workloads never touch:

* :mod:`.attacks` / :mod:`.campaign` — seeded malicious-payload
  generators against intentionally-vulnerable receiver tasks, with
  every trial classified into a containment taxonomy (what did logical
  addressing trap, what did the kernel merely terminate, what slipped
  through silently, what hijacked control).
* :mod:`.patch` — an over-the-air flash update of a *running* task
  through the radio -> :class:`~repro.kernel.loader.DynamicLoader`
  path, with the surrounding relay network kept alive mid-update.
"""

from .attacks import DEFAULT_SEED, MARKER, SHAPE_NAMES
from .campaign import OUTCOMES, InjectResult, run_inject
from .patch import PatchReport, run_patch

__all__ = [
    "DEFAULT_SEED", "MARKER", "SHAPE_NAMES", "OUTCOMES",
    "InjectResult", "run_inject", "PatchReport", "run_patch",
]
