"""Injection campaigns: run seeded attacks, classify containment.

Each trial is a fresh two-node network — ``mallory`` clocks one
malicious payload out its radio at an intentionally-vulnerable victim
task riding beside a canary task — and ends in exactly one outcome of
the containment taxonomy:

* ``TRAPPED_OOB`` — logical addressing / SP virtualization /
  indirect-branch translation rejected the attack (the paper's
  containment claim holding).
* ``TASK_TERMINATED`` — the attack redirected control, but the hijacked
  flow died on kernel ground (KERNEL_ESCAPE into the trampoline
  region, an undecodable word in erased flash) before doing harm.
* ``WATCHDOG`` — the attack starved the branch-trap scheduler tick and
  the software watchdog reclaimed the CPU.
* ``PANIC_REBOOT`` — containment failed wide enough that the node
  itself went down and cold-restarted.
* ``SILENT_CORRUPTION`` — the victim "succeeded" with corrupted data
  (wrong self-digest) or the canary's heap changed: nothing trapped,
  something is wrong.
* ``HIJACKED`` — attacker-directed execution, proven by the gadget
  marker bytes in the victim node's TX log or by the victim parked
  with its PC inside another task's program (the PC-in-foreign-region
  probe).
* ``SURVIVED`` — the victim finished with the correct digest and the
  canary intact; the attack simply failed.

Classification uses only tier-invariant facts (termination reasons,
TX logs, quiesced memory), so one seed produces a byte-identical
survivability table under every execution tier and with guard elision
on or off — pinned by tests and the CI golden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import format_table
from ..fingerprint import content_key
from ..kernel import KernelConfig, SensorNode
from ..kernel.termination import TerminationReason, classify_fault_detail
from ..net.network import Network
from .attacks import (
    CANARY, DEFAULT_SEED, MARKER, SHAPES, VICTIM_SOURCES, AddressBook,
    AttackShape, Trial, attacker_src, canary_pattern, shape_trials,
    status_digest,
)

OUTCOMES = ("TRAPPED_OOB", "TASK_TERMINATED", "WATCHDOG", "PANIC_REBOOT",
            "SILENT_CORRUPTION", "HIJACKED", "SURVIVED")

#: Outcomes where the node (not the attacker) kept control.
CONTAINED_OUTCOMES = ("TRAPPED_OOB", "TASK_TERMINATED", "WATCHDOG",
                      "PANIC_REBOOT")

#: Cycle budget per trial.  Generous: the slowest trial (watchdog
#: reclaim after tick starvation) completes well under half of it, and
#: idle nodes park at exactly this cycle, so the budget never shows up
#: in any tier-variant way.
TRIAL_CYCLES = 600_000

#: Radio link latency mallory -> target (cycles).
ATTACK_LATENCY = 1_500

#: Extra seeded trials per shape in a full (non ``--quick``) campaign.
RANDOM_TRIALS = 4


def attack_config() -> KernelConfig:
    """Victim-node config: watchdog armed tight, panics absorbed.

    ``watchdog_slices=2`` keeps the tick-starvation shape inside the
    trial budget; ``panic_reboot=True`` lets a containment breach show
    up as PANIC_REBOOT instead of crashing the campaign host.
    """
    return KernelConfig(watchdog_slices=2, panic_reboot=True)


@dataclass(frozen=True)
class TrialResult:
    """One classified attack trial (all fields tier-invariant)."""

    shape: str
    index: int
    note: str
    outcome: str
    detail: str          # victim exit reason ("" while alive)
    canary_ok: bool
    tx: Tuple[int, ...]  # victim node's radio TX log

    @property
    def key(self) -> Tuple:
        return (self.shape, self.index, self.note, self.outcome,
                self.detail, self.canary_ok, self.tx)


@dataclass
class InjectResult:
    """A full injection campaign: every trial plus the ledger totals."""

    seed: int
    quick: bool
    trials: List[TrialResult] = field(default_factory=list)
    #: Sum of kernel-level "oob" fault terminations across all trial
    #: nodes — must equal the TRAPPED_OOB row total (the survivability
    #: table cross-checked against the kernel's own containment
    #: counters, satellite 6).
    kernel_oob_faults: int = 0

    @property
    def digest(self) -> str:
        return content_key([t.key for t in self.trials])

    def count(self, outcome: str, shape: Optional[str] = None) -> int:
        return sum(1 for t in self.trials if t.outcome == outcome
                   and (shape is None or t.shape == shape))

    @property
    def shapes(self) -> List[str]:
        seen: List[str] = []
        for t in self.trials:
            if t.shape not in seen:
                seen.append(t.shape)
        return seen

    @property
    def contained(self) -> int:
        return sum(1 for t in self.trials
                   if t.outcome in CONTAINED_OUTCOMES)

    @property
    def hijacked(self) -> int:
        return self.count("HIJACKED")

    def render(self) -> str:
        headers = ["shape", "trials", "trapped", "killed", "wdog",
                   "panic", "silent", "hijack", "ok"]
        rows = []
        for shape in self.shapes:
            trials = sum(1 for t in self.trials if t.shape == shape)
            rows.append([
                shape, trials,
                self.count("TRAPPED_OOB", shape),
                self.count("TASK_TERMINATED", shape),
                self.count("WATCHDOG", shape),
                self.count("PANIC_REBOOT", shape),
                self.count("SILENT_CORRUPTION", shape),
                self.count("HIJACKED", shape),
                self.count("SURVIVED", shape),
            ])
        lines = [format_table(headers, rows)]
        trapped = self.count("TRAPPED_OOB")
        check = "ok" if self.kernel_oob_faults == trapped else "MISMATCH"
        lines.append(
            f"trials: {len(self.trials)}  contained: {self.contained}  "
            f"silent: {self.count('SILENT_CORRUPTION')}  "
            f"hijacked: {self.hijacked}  "
            f"survived: {self.count('SURVIVED')}")
        lines.append(
            f"kernel cross-check: {self.kernel_oob_faults} oob faults "
            f"vs {trapped} TRAPPED_OOB trials ({check})")
        lines.append(f"campaign digest: {self.digest}")
        return "\n".join(lines)


# -- building blocks ----------------------------------------------------------------


def build_target(victim: str, config: Optional[KernelConfig] = None,
                 **tier) -> SensorNode:
    """A victim node: the vulnerable receiver plus the canary task."""
    return SensorNode.from_sources(
        [("victim", VICTIM_SOURCES[victim]), ("canary", CANARY)],
        config=config if config is not None else attack_config(),
        **{k: v for k, v in tier.items() if v is not None})


def address_book(node: SensorNode) -> AddressBook:
    """Resolve the attacker's targeting map from a built victim node.

    Placement is deterministic, so the book computed from one throwaway
    node aims every trial of the campaign.
    """
    natural = node.task_named("victim").image.natural
    labels = dict(natural.program.symbols.labels)
    naturalized = {name: natural.shift_table.to_naturalized(addr)
                   for name, addr in labels.items()}
    origin = natural.program.origin
    return AddressBook(
        labels=labels,
        naturalized=naturalized,
        victim_span=(origin, origin + natural.program.size_words),
        canary_entry=node.task_named("canary").image.natural.entry,
        trap_region=node.kernel.image.trap_region,
        flash_end=node.kernel.image.size_words,
    )


def _has_marker(tx: Sequence[int]) -> bool:
    return any(tx[i] == MARKER[0] and tx[i + 1] == MARKER[1]
               for i in range(len(tx) - 1))


def _pc_in_foreign_program(node: SensorNode, task) -> bool:
    """The hijack probe: is the task's PC inside another task's code?"""
    pc = node.cpu.pc if node.kernel.current is task else task.context.pc
    if task.owns_code(pc):
        return False
    return any(other.image.natural.contains(pc)
               for other in node.kernel.tasks.values() if other is not task)


def classify(target: SensorNode) -> Tuple[str, str]:
    """Containment outcome of a finished trial, plus the victim's exit
    reason (tier-invariant; see module docstring for the taxonomy)."""
    victim = target.task_named("victim")
    canary = target.task_named("canary")
    tx = target.radio.transmitted
    detail = victim.exit_reason

    region = target.kernel.regions.maybe_by_task(canary.task_id)
    heap = bytes(target.cpu.mem.data[region.p_l:region.p_l
                                     + len(canary_pattern())]) \
        if region is not None else b""
    canary_ok = canary.alive and heap == canary_pattern()

    if _has_marker(tx) or (victim.alive
                           and _pc_in_foreign_program(target, victim)):
        return "HIJACKED", detail
    panics = target.kernel.stats.panics \
        + sum(s.panics for s in target.stats_history)
    if target.reboots > 0 or panics > 0:
        return "PANIC_REBOOT", detail
    clean_exit = victim.termination is TerminationReason.EXIT
    if not canary_ok or (clean_exit and tuple(tx) != (status_digest(),)):
        return "SILENT_CORRUPTION", detail
    if victim.termination is TerminationReason.WATCHDOG:
        return "WATCHDOG", detail
    if victim.termination is TerminationReason.FAULT \
            and classify_fault_detail(detail) == "oob":
        return "TRAPPED_OOB", detail
    if victim.termination is not None and not clean_exit:
        return "TASK_TERMINATED", detail
    return "SURVIVED", detail


def run_trial(shape: AttackShape, trial: Trial,
              **tier) -> Tuple[TrialResult, SensorNode]:
    """One attack delivery: mallory -> target over a lossless link."""
    target = build_target(shape.victim, **tier)
    mallory = SensorNode.from_sources(
        [("mallory", attacker_src(trial.payload))])
    net = Network()
    net.add_node("mallory", mallory)
    net.add_node("target", target)
    net.connect("mallory", "target", latency_cycles=ATTACK_LATENCY)
    net.run(max_cycles=TRIAL_CYCLES)
    net.settle_inboxes()
    outcome, detail = classify(target)
    canary = target.task_named("canary")
    region = target.kernel.regions.maybe_by_task(canary.task_id)
    heap = bytes(target.cpu.mem.data[region.p_l:region.p_l
                                     + len(canary_pattern())]) \
        if region is not None else b""
    return TrialResult(
        shape=shape.name, index=trial.index, note=trial.note,
        outcome=outcome, detail=detail,
        canary_ok=canary.alive and heap == canary_pattern(),
        tx=tuple(target.radio.transmitted)), target


def run_inject(quick: bool = False, seed: int = DEFAULT_SEED,
               shapes: Optional[Sequence[str]] = None,
               fuse: Optional[bool] = None,
               specialize: Optional[bool] = None,
               trace: Optional[bool] = None,
               elide: Optional[bool] = None) -> InjectResult:
    """Run the injection campaign and classify every trial.

    *quick* runs only the fixed anchor trials per shape; the full
    campaign adds :data:`RANDOM_TRIALS` seeded draws per shape.  The
    tier overrides apply to the victim node (the machinery under test);
    mallory always runs in the default tier — the attack bytes on the
    air are identical either way.
    """
    tier = dict(fuse=fuse, specialize=specialize, trace=trace,
                elide=elide)
    selected = [s for s in SHAPES if shapes is None or s.name in shapes]
    randoms = 0 if quick else RANDOM_TRIALS
    books: Dict[str, AddressBook] = {}
    result = InjectResult(seed=seed, quick=quick)
    for shape in selected:
        book = books.get(shape.victim)
        if book is None:
            book = books[shape.victim] = address_book(
                build_target(shape.victim, **tier))
        for trial in shape_trials(shape, book, seed, randoms):
            row, target = run_trial(shape, trial, **tier)
            result.trials.append(row)
            result.kernel_oob_faults += \
                target.kernel.stats.fault_kinds.get("oob", 0) \
                + sum(s.fault_kinds.get("oob", 0)
                      for s in target.stats_history)
    return result
