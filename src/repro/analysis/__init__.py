"""Measurement and reporting helpers for the experiments."""

from .inflation import inflation_breakdown
from .report import format_table

__all__ = ["inflation_breakdown", "format_table"]
