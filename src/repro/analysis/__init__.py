"""Measurement and reporting helpers for the experiments."""

from .inflation import inflation_breakdown
from .report import format_table
from .static import (analyze_program, build_cfg, lint_image,
                     lint_sources)

__all__ = ["inflation_breakdown", "format_table",
           "analyze_program", "build_cfg", "lint_image", "lint_sources"]
