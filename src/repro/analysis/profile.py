"""Flat execution profiles (the paper measures with Avrora; this is the
equivalent facility for the simulator).

Per-PC hit counts (from :meth:`AvrCpu.enable_profiling`) are folded per
symbol — each label owns the addresses up to the next label — giving a
function-level profile; a kernel-side trap histogram shows where
naturalized programs spend their OS time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .report import format_table


@dataclass
class SymbolProfile:
    symbol: str
    address: int
    executions: int
    share: float


@dataclass
class FlatProfile:
    total_executions: int
    symbols: List[SymbolProfile] = field(default_factory=list)

    def render(self, top: int = 10) -> str:
        rows = [[s.symbol, f"{s.address:#06x}", s.executions,
                 f"{100 * s.share:.1f}%"]
                for s in self.symbols[:top]]
        return format_table(
            ["symbol", "address", "instructions", "share"], rows,
            title=f"flat profile ({self.total_executions} instructions)")

    def share_of(self, symbol: str) -> float:
        for entry in self.symbols:
            if entry.symbol == symbol:
                return entry.share
        return 0.0


def flat_profile(counts: List[int],
                 labels: Dict[str, int],
                 origin: int = 0,
                 limit: Optional[int] = None) -> FlatProfile:
    """Fold per-PC counts into per-symbol totals.

    *labels* maps symbol name -> word address (an ``AsmProgram.labels``
    dict, shifted to the load address if needed).  Addresses before the
    first label fold into ``<pre>``; trampoline hits are outside the
    counts array's meaningful range for naturalized programs and are
    reported by the kernel's trap histogram instead.
    """
    total = sum(counts)
    ordered: List[Tuple[int, str]] = sorted(
        (address, name) for name, address in labels.items())
    per_symbol: Dict[str, int] = {}
    sym_addr: Dict[str, int] = {}
    boundaries = ordered + [(limit if limit is not None else len(counts),
                             None)]
    # Anything before the first label:
    if ordered and ordered[0][0] > origin:
        pre = sum(counts[origin:ordered[0][0]])
        if pre:
            per_symbol["<pre>"] = pre
            sym_addr["<pre>"] = origin
    for (address, name), (next_address, _) in zip(boundaries,
                                                  boundaries[1:]):
        if name is None:
            break
        hits = sum(counts[address:next_address])
        if hits:
            per_symbol[name] = per_symbol.get(name, 0) + hits
            sym_addr.setdefault(name, address)
    symbols = [SymbolProfile(symbol=name, address=sym_addr[name],
                             executions=hits,
                             share=hits / total if total else 0.0)
               for name, hits in per_symbol.items()]
    symbols.sort(key=lambda s: -s.executions)
    return FlatProfile(total_executions=total, symbols=symbols)


def trap_histogram(kernel) -> str:
    """Render the kernel's per-kind trap counts."""
    counts = getattr(kernel.stats, "trap_counts", {})
    total = sum(counts.values()) or 1
    rows = [[kind.value, count, f"{100 * count / total:.1f}%"]
            for kind, count in
            sorted(counts.items(), key=lambda item: -item[1])]
    return format_table(["trap kind", "count", "share"], rows,
                        title="kernel trap histogram")
