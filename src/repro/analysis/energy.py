"""Energy model for MICA2-class nodes.

Sensornet OS overhead ultimately matters as *energy*: the paper argues
unpredictable latencies "make network level activity unreliable and
energy-costly" (Section I).  This model converts a run's cycle
accounting into milli-joules using the MICA2's published current draws
(ATmega128L + CC1000 at 3 V), so experiments can report OS overhead in
battery terms.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Current draws (mA at *voltage*) for the node's power states."""

    active_ma: float = 8.0       # MCU running
    idle_ma: float = 0.02        # power-save sleep, timer running
    radio_tx_ma: float = 27.0    # CC1000 transmitting (adds to active)
    adc_ma: float = 1.0          # ADC converting (adds to active)
    voltage: float = 3.0
    clock_hz: int = 7_372_800

    def _mj(self, milliamps: float, cycles: int) -> float:
        seconds = cycles / self.clock_hz
        return milliamps * self.voltage * seconds  # mA*V*s = mJ

    def report(self, total_cycles: int, idle_cycles: int = 0,
               radio_cycles: int = 0,
               adc_cycles: int = 0) -> "EnergyReport":
        active_cycles = total_cycles - idle_cycles
        return EnergyReport(
            model=self,
            total_cycles=total_cycles,
            idle_cycles=idle_cycles,
            cpu_mj=self._mj(self.active_ma, active_cycles),
            sleep_mj=self._mj(self.idle_ma, idle_cycles),
            radio_mj=self._mj(self.radio_tx_ma, radio_cycles),
            adc_mj=self._mj(self.adc_ma, adc_cycles),
        )


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run."""

    model: EnergyModel
    total_cycles: int
    idle_cycles: int
    cpu_mj: float
    sleep_mj: float
    radio_mj: float
    adc_mj: float

    @property
    def total_mj(self) -> float:
        return self.cpu_mj + self.sleep_mj + self.radio_mj + self.adc_mj

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.model.clock_hz

    def average_ma(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.total_mj / self.model.voltage / self.seconds


def measure_sensmart(node, model: EnergyModel = None) -> EnergyReport:
    """Energy report for a finished :class:`SensorNode` run."""
    model = model if model is not None else EnergyModel()
    radio = node.devices.get("radio")
    adc = node.devices.get("adc")
    # tx_seq counts every byte ever clocked out, even ones the bounded
    # TX log has since evicted.
    radio_cycles = radio.tx_seq * radio.byte_cycles \
        if radio is not None else 0
    adc_cycles = adc.samples_taken * adc.conversion_cycles \
        if adc is not None else 0
    return model.report(total_cycles=node.cpu.cycles,
                        idle_cycles=node.kernel.stats.idle_cycles,
                        radio_cycles=radio_cycles,
                        adc_cycles=adc_cycles)


def measure_native(result, model: EnergyModel = None) -> EnergyReport:
    """Energy report for a :class:`NativeResult`."""
    model = model if model is not None else EnergyModel()
    radio = result.devices.get("radio")
    adc = result.devices.get("adc")
    radio_cycles = radio.tx_seq * radio.byte_cycles \
        if radio is not None else 0
    adc_cycles = adc.samples_taken * adc.conversion_cycles \
        if adc is not None else 0
    return model.report(total_cycles=result.cycles,
                        idle_cycles=result.cpu.idle_cycles,
                        radio_cycles=radio_cycles,
                        adc_cycles=adc_cycles)
