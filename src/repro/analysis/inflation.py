"""Code-size decomposition helpers (Figure 4)."""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.tkernel.model import tkernel_inflation_bytes
from ..rewriter.rewriter import Rewriter
from ..toolchain.linker import link_image


@dataclass(frozen=True)
class InflationBreakdown:
    """One program's code-size accounting across systems."""

    name: str
    native_bytes: int
    sensmart_rewritten: int   # naturalized body (same instruction count)
    sensmart_shift: int       # shift-table flash cost
    sensmart_trampoline: int  # merged trampoline slots
    tkernel_bytes: int        # per-site inline expansion model

    @property
    def sensmart_total(self) -> int:
        return (self.sensmart_rewritten + self.sensmart_shift
                + self.sensmart_trampoline)

    @property
    def sensmart_ratio(self) -> float:
        return self.sensmart_total / self.native_bytes

    @property
    def tkernel_ratio(self) -> float:
        return self.tkernel_bytes / self.native_bytes


def inflation_breakdown(name: str, source: str,
                        rewriter: Rewriter = None) -> InflationBreakdown:
    """Measure all Figure 4 series for one program."""
    image = link_image([(name, source)], rewriter=rewriter)
    stats = image.tasks[0].natural.stats
    tkernel = tkernel_inflation_bytes(source)
    return InflationBreakdown(
        name=name,
        native_bytes=stats.native_bytes,
        sensmart_rewritten=stats.rewritten_bytes,
        sensmart_shift=stats.shift_table_bytes,
        sensmart_trampoline=stats.trampoline_bytes,
        tkernel_bytes=tkernel["naturalized_bytes"],
    )
