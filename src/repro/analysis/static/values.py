"""Abstract values for the dataflow engine (paper Section IV-A's
"whole-program characteristics", taken further).

The domain has four components per abstract state:

* **register bytes** — each of r0..r31 is an :class:`Interval` over
  [0, 255], one of the symbolic markers :data:`SPL_BYTE` /
  :data:`SPH_BYTE` (the task's *logical* stack-pointer halves as read
  via ``IN rd, SPL/SPH``), or ⊤ (``None``);
* **register pairs** — 16-bit facts over even register pairs kept
  precisely across ``MOVW``/``ADIW``/``SBIW``/``LPM`` chains.  A
  :class:`Word` is either absolute (``base="abs"``) or *region
  relative* (``base="sp"``: logical stack pointer plus an offset
  interval — the ``Y = task_stack_base + [0, k]`` shape);
* **stack depth** — an :class:`Interval` of bytes pushed since task
  entry (⊤ once the program writes SP directly);
* **SREG flags** — the individually known-constant flags, everything
  else unknown.

Byte facts and pair facts are kept mutually consistent: writing a byte
kills the covering pair, writing a pair re-derives the bytes.  All
operations are total — anything the transfer functions cannot model
precisely degrades to ⊤, never raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

BYTE_MAX = 0xFF
WORD_MAX = 0xFFFF
#: Widest representable SP-relative offset (offsets may go negative
#: when code addresses below the live stack top).
OFF_MIN, OFF_MAX = -WORD_MAX, WORD_MAX

#: Marker bytes: the register holds the low/high half of the *current*
#: logical stack pointer.  Invalidated by anything that moves SP.
SPL_BYTE = "spl"
SPH_BYTE = "sph"

#: Serialized spelling of ⊤ (see ``to_obj``/``from_obj``).
_TOP = "T"


@dataclass(frozen=True)
class Interval:
    """A non-empty inclusive integer interval."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def contains(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, new: "Interval", lo_cap: int,
              hi_cap: int) -> "Interval":
        """Classic interval widening: a bound that grew jumps to the
        domain extreme, so loops converge in O(1) iterations."""
        lo = self.lo if new.lo >= self.lo else lo_cap
        hi = self.hi if new.hi <= self.hi else hi_cap
        return Interval(lo, hi)

    def add(self, k: int, lo_cap: int = 0,
            hi_cap: int = WORD_MAX) -> Optional["Interval"]:
        """Shift by *k*; ``None`` (⊤) when the result could leave
        [lo_cap, hi_cap] — modular wraparound loses the interval."""
        lo, hi = self.lo + k, self.hi + k
        if lo < lo_cap or hi > hi_cap:
            return None
        return Interval(lo, hi)


#: A byte fact: interval, SP-half marker, or ⊤.
ByteValue = Union[Interval, str, None]

TOP_BYTE: ByteValue = None
BYTE_FULL = Interval(0, BYTE_MAX)


@dataclass(frozen=True)
class Word:
    """A 16-bit fact: ``abs`` interval or SP-relative offset interval."""

    base: str  # "abs" | "sp"
    iv: Interval

    def add(self, k: int) -> Optional["Word"]:
        if self.base == "abs":
            iv = self.iv.add(k, 0, WORD_MAX)
        else:
            iv = self.iv.add(k, OFF_MIN, OFF_MAX)
        return Word(self.base, iv) if iv is not None else None

    def join(self, other: Optional["Word"]) -> Optional["Word"]:
        if other is None or other.base != self.base:
            return None
        return Word(self.base, self.iv.join(other.iv))


def join_bytes(a: ByteValue, b: ByteValue) -> ByteValue:
    if a is None or b is None:
        return None
    if isinstance(a, str) or isinstance(b, str):
        return a if a == b else None
    return a.join(b)


def leq_byte(a: ByteValue, b: ByteValue) -> bool:
    """a ⊑ b."""
    if b is None:
        return True
    if a is None:
        return False
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    return b.contains(a)


def leq_word(a: Optional[Word], b: Optional[Word]) -> bool:
    if b is None:
        return True
    if a is None or a.base != b.base:
        return False
    return b.iv.contains(a.iv)


def leq_depth(a: Optional[Interval], b: Optional[Interval]) -> bool:
    if b is None:
        return True
    if a is None:
        return False
    return b.contains(a)


class AbsState:
    """One abstract machine state (mutable; copy before transfer)."""

    __slots__ = ("regs", "pairs", "depth", "flags")

    def __init__(self, regs: Optional[List[ByteValue]] = None,
                 pairs: Optional[Dict[int, Word]] = None,
                 depth: Optional[Interval] = Interval(0, 0),
                 flags: Optional[Dict[int, int]] = None):
        self.regs: List[ByteValue] = list(regs) if regs is not None \
            else [TOP_BYTE] * 32
        self.pairs: Dict[int, Word] = dict(pairs) if pairs else {}
        self.depth: Optional[Interval] = depth
        self.flags: Dict[int, int] = dict(flags) if flags else {}

    @classmethod
    def top(cls, depth: Optional[Interval] = None) -> "AbsState":
        """All-⊤ registers (the task-entry state: nothing is assumed
        about boot register contents)."""
        return cls(depth=depth)

    def copy(self) -> "AbsState":
        return AbsState(self.regs, self.pairs, self.depth, self.flags)

    def __eq__(self, other) -> bool:
        return isinstance(other, AbsState) and \
            self.regs == other.regs and self.pairs == other.pairs and \
            self.depth == other.depth and self.flags == other.flags

    def __hash__(self):  # pragma: no cover - states are not dict keys
        raise TypeError("AbsState is unhashable")

    # -- byte / pair consistency ---------------------------------------------

    def set_byte(self, reg: int, value: ByteValue) -> None:
        """Write one register byte, killing any covering pair fact."""
        self.regs[reg] = value
        self.pairs.pop(reg & ~1, None)

    def get_word(self, base: int) -> Optional[Word]:
        """16-bit fact for the even pair at *base*: the tracked pair
        fact if any, else a sound hull derived from the byte facts."""
        fact = self.pairs.get(base)
        if fact is not None:
            return fact
        lo, hi = self.regs[base], self.regs[base + 1]
        if lo == SPL_BYTE and hi == SPH_BYTE:
            return Word("sp", Interval(0, 0))
        if isinstance(lo, Interval) and isinstance(hi, Interval):
            return Word("abs", Interval((hi.lo << 8) + lo.lo,
                                        (hi.hi << 8) + lo.hi))
        return None

    def set_word(self, base: int, word: Optional[Word]) -> None:
        """Write a pair fact and re-derive consistent byte facts."""
        if word is None:
            self.regs[base] = self.regs[base + 1] = TOP_BYTE
            self.pairs.pop(base, None)
            return
        self.pairs[base] = word
        if word.base == "abs":
            if (word.iv.lo >> 8) == (word.iv.hi >> 8):
                self.regs[base] = Interval(word.iv.lo & 0xFF,
                                           word.iv.hi & 0xFF)
                self.regs[base + 1] = Interval(word.iv.hi >> 8,
                                               word.iv.hi >> 8)
            else:
                self.regs[base] = self.regs[base + 1] = TOP_BYTE
        elif word.iv == Interval(0, 0):
            self.regs[base] = SPL_BYTE
            self.regs[base + 1] = SPH_BYTE
        else:
            self.regs[base] = self.regs[base + 1] = TOP_BYTE

    # -- stack-pointer motion --------------------------------------------------

    def shift_sp(self, delta: int) -> None:
        """SP moved by *-delta* bytes (``delta=+1`` for a PUSH): every
        SP-relative offset shifts, and raw SPL/SPH marker bytes go
        stale (they hold the pre-move value)."""
        for base, word in list(self.pairs.items()):
            if word.base == "sp":
                shifted = word.add(delta)
                if shifted is None:
                    del self.pairs[base]
                    self.regs[base] = self.regs[base + 1] = TOP_BYTE
                else:
                    self.pairs[base] = shifted
                    if self.regs[base] == SPL_BYTE:
                        self.regs[base] = self.regs[base + 1] = TOP_BYTE
        for reg in range(32):
            if self.regs[reg] in (SPL_BYTE, SPH_BYTE) and \
                    (reg & ~1) not in self.pairs:
                self.regs[reg] = TOP_BYTE

    def drop_sp_facts(self) -> None:
        """SP changed by an unknown amount (direct SP write, or a call
        whose net stack effect is not tracked here)."""
        for base, word in list(self.pairs.items()):
            if word.base == "sp":
                del self.pairs[base]
                self.regs[base] = self.regs[base + 1] = TOP_BYTE
        for reg in range(32):
            if self.regs[reg] in (SPL_BYTE, SPH_BYTE):
                self.regs[reg] = TOP_BYTE

    # -- lattice operations -----------------------------------------------------

    def join(self, other: "AbsState") -> "AbsState":
        regs = [join_bytes(a, b) for a, b in zip(self.regs, other.regs)]
        pairs: Dict[int, Word] = {}
        for base, word in self.pairs.items():
            joined = word.join(other.get_word(base))
            if joined is not None:
                pairs[base] = joined
        for base, word in other.pairs.items():
            if base not in pairs:
                joined = word.join(self.get_word(base))
                if joined is not None:
                    pairs[base] = joined
        depth = self.depth.join(other.depth) \
            if self.depth is not None and other.depth is not None else None
        flags = {bit: v for bit, v in self.flags.items()
                 if other.flags.get(bit) == v}
        return AbsState(regs, pairs, depth, flags)

    def widen(self, new: "AbsState") -> "AbsState":
        """Widen ``self`` (the old state) against *new* at a loop head."""
        regs: List[ByteValue] = []
        for a, b in zip(self.regs, new.regs):
            if isinstance(a, Interval) and isinstance(b, Interval):
                regs.append(a.widen(b, 0, BYTE_MAX))
            else:
                regs.append(a if a == b else None)
        pairs: Dict[int, Word] = {}
        for base, word in self.pairs.items():
            other = new.get_word(base)
            if other is not None and other.base == word.base:
                lo_cap, hi_cap = (0, WORD_MAX) if word.base == "abs" \
                    else (OFF_MIN, OFF_MAX)
                pairs[base] = Word(word.base,
                                   word.iv.widen(other.iv, lo_cap, hi_cap))
        if self.depth is not None and new.depth is not None:
            depth: Optional[Interval] = self.depth.widen(
                new.depth, 0, WORD_MAX)
        else:
            depth = None
        flags = {bit: v for bit, v in self.flags.items()
                 if new.flags.get(bit) == v}
        return AbsState(regs, pairs, depth, flags)

    def leq(self, other: "AbsState") -> bool:
        """self ⊑ other — every concrete state in self is in other."""
        if not all(leq_byte(a, b) for a, b in zip(self.regs, other.regs)):
            return False
        for base in other.pairs:
            if not leq_word(self.get_word(base), other.get_word(base)):
                return False
        if not leq_depth(self.depth, other.depth):
            return False
        return all(self.flags.get(bit) == v
                   for bit, v in other.flags.items())

    # -- serialization (certificates are plain JSON data) -----------------------

    def to_obj(self) -> dict:
        def byte_obj(value: ByteValue):
            if value is None:
                return _TOP
            if isinstance(value, str):
                return value
            return [value.lo, value.hi]

        return {
            "r": [byte_obj(value) for value in self.regs],
            "p": {str(base): [word.base, word.iv.lo, word.iv.hi]
                  for base, word in sorted(self.pairs.items())},
            "d": _TOP if self.depth is None
            else [self.depth.lo, self.depth.hi],
            "f": {str(bit): v for bit, v in sorted(self.flags.items())},
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "AbsState":
        def byte_val(value) -> ByteValue:
            if value == _TOP:
                return None
            if isinstance(value, str):
                if value not in (SPL_BYTE, SPH_BYTE):
                    raise ValueError(f"bad byte marker {value!r}")
                return value
            return Interval(int(value[0]), int(value[1]))

        regs = [byte_val(value) for value in obj["r"]]
        if len(regs) != 32:
            raise ValueError("state must carry 32 register facts")
        pairs = {}
        for base, (tag, lo, hi) in obj.get("p", {}).items():
            if tag not in ("abs", "sp"):
                raise ValueError(f"bad word base {tag!r}")
            pairs[int(base)] = Word(tag, Interval(int(lo), int(hi)))
        depth = None if obj.get("d") == _TOP \
            else Interval(int(obj["d"][0]), int(obj["d"][1]))
        flags = {int(bit): int(v) for bit, v in obj.get("f", {}).items()}
        return cls(regs, pairs, depth, flags)
