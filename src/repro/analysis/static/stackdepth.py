"""Worst-case stack-depth bounds from the call graph.

The paper's premise is that a-priori worst-case stack sizing is
impractical — tasks must be provisioned for a depth they almost never
reach, and recursion cannot be bounded at all.  This pass computes that
static bound so the experiments can quantify exactly how much memory
SenSmart's dynamic stack management saves over static provisioning.

Per function (call-graph node): an intraprocedural fixpoint over the
CFG propagates the stack depth at each block entry (``max`` over
predecessors), accumulating PUSH/POP/CALL frame effects.  A loop whose
body has a net-positive stack effect diverges and is reported as
unbounded.  Interprocedurally, a memoized DFS combines function bounds
(``depth at call site + callee bound``); recursion cycles make every
function on the cycle — and its callers — unbounded.

Depth units are bytes, measured exactly as the kernel's high-water mark
(:attr:`Task.max_stack_used`): PUSH adds 1, CALL/RCALL/ICALL add 2 for
the return address, POP/RET remove the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..report import format_table
from .cfg import ControlFlowGraph, build_cfg

#: Bound value for unbounded (recursive or diverging) stack growth.
INFINITE_DEPTH = float("inf")


@dataclass(frozen=True)
class FunctionStackSummary:
    """Stack facts for one call-graph node."""

    entry: int
    name: str
    local_peak: int        # bytes, callees excluded
    bound: float           # bytes, callees included; inf when unbounded
    recursive: bool
    calls: Tuple[Tuple[int, int, int], ...]  # (site, depth at call, callee)


@dataclass
class StackAnalysis:
    """Whole-task result of the stack-depth analysis."""

    name: str
    entry: int
    bound: float           # worst-case bytes from the task entry
    functions: Dict[int, FunctionStackSummary] = field(default_factory=dict)
    recursion_cycles: List[Tuple[int, ...]] = field(default_factory=list)
    diagnostics: List[str] = field(default_factory=list)

    @property
    def bounded(self) -> bool:
        return self.bound != INFINITE_DEPTH

    def describe_bound(self) -> str:
        if self.bounded:
            return str(int(self.bound))
        if self.recursion_cycles:
            return "unbounded (recursion)"
        return "unbounded (diverging loop)"

    def function_by_name(self, name: str) -> FunctionStackSummary:
        for summary in self.functions.values():
            if summary.name == name:
                return summary
        raise KeyError(name)

    def render(self) -> str:
        rows = []
        for entry in sorted(self.functions):
            summary = self.functions[entry]
            bound = str(int(summary.bound)) \
                if summary.bound != INFINITE_DEPTH else "inf"
            rows.append([summary.name, f"{entry:#06x}",
                         summary.local_peak, bound,
                         "yes" if summary.recursive else "no"])
        return format_table(
            ["function", "entry", "local peak", "bound", "recursive"],
            rows,
            title=f"static stack bounds for {self.name!r}: "
                  f"{self.describe_bound()} bytes")


def _function_name(entry: int, labels: Dict[str, int]) -> str:
    for name, address in labels.items():
        if address == entry:
            return name
    return f"fn_{entry:#06x}"


def _local_analysis(cfg: ControlFlowGraph, entry: int,
                    diagnostics: List[str],
                    name: str) -> Tuple[int, List[Tuple[int, int, int]],
                                        bool]:
    """(local peak, call list, diverges) for the function at *entry*."""
    if entry not in cfg.nodes:
        diagnostics.append(
            f"{name}: entry {entry:#06x} is not executable code")
        return 0, [], False
    entry_depth: Dict[int, int] = {entry: 0}
    updates: Dict[int, int] = {}
    limit = len(cfg.nodes) + 4
    peak = 0
    calls: Dict[Tuple[int, int], int] = {}  # (site, callee) -> max depth
    underflow_reported = False
    work = [entry]
    while work:
        start = work.pop()
        node = cfg.nodes[start]
        depth = entry_depth[start]
        call_sites = {}
        for site, callee in node.calls:
            call_sites.setdefault(site, []).append(callee)
        for ins in node.block.instructions:
            mnemonic = ins.mnemonic
            if mnemonic == "PUSH":
                depth += 1
                peak = max(peak, depth)
            elif mnemonic == "POP":
                depth -= 1
                if depth < 0 and not underflow_reported:
                    diagnostics.append(
                        f"{name}: POP at {ins.address:#06x} pops below "
                        f"the frame on some path")
                    underflow_reported = True
                    depth = 0
            elif mnemonic in ("CALL", "RCALL", "ICALL"):
                peak = max(peak, depth + 2)
                for callee in call_sites.get(ins.address, ()):
                    key = (ins.address, callee)
                    calls[key] = max(calls.get(key, 0), depth + 2)
        for successor in node.successors:
            known = entry_depth.get(successor)
            if known is None or depth > known:
                entry_depth[successor] = depth
                updates[successor] = updates.get(successor, 0) + 1
                if updates[successor] > limit:
                    diagnostics.append(
                        f"{name}: stack depth grows without bound around "
                        f"the loop entering {successor:#06x}")
                    return peak, [(site, d, callee) for (site, callee), d
                                  in sorted(calls.items())], True
                work.append(successor)
    return peak, [(site, depth, callee) for (site, callee), depth
                  in sorted(calls.items())], False


def analyze_program(program,
                    cfg: Optional[ControlFlowGraph] = None,
                    ) -> StackAnalysis:
    """Analyze a compiled :class:`~repro.toolchain.program.Program`."""
    labels = dict(program.symbols.labels)
    if cfg is None:
        cfg = build_cfg(program.items, program.entry, labels)
    analysis = StackAnalysis(name=program.name, entry=program.entry,
                             bound=0.0)
    if cfg.unresolved_indirect:
        sites = ", ".join(f"{a:#06x}" for a in cfg.unresolved_indirect)
        analysis.diagnostics.append(
            f"indirect branches at {sites} resolved conservatively to "
            f"every label")

    locals_: Dict[int, Tuple[int, List[Tuple[int, int, int]], bool]] = {}
    entries = sorted(cfg.function_entries())
    for entry in entries:
        name = _function_name(entry, labels)
        locals_[entry] = _local_analysis(cfg, entry, analysis.diagnostics,
                                         name)

    # Interprocedural bound: memoized DFS with cycle detection.
    WHITE, GREY, DONE = 0, 1, 2
    color: Dict[int, int] = {entry: WHITE for entry in entries}
    bounds: Dict[int, float] = {}
    recursive: Set[int] = set()
    stack: List[int] = []

    def visit(entry: int) -> float:
        if color.get(entry, WHITE) == DONE:
            return bounds[entry]
        if color.get(entry) == GREY:
            cycle = tuple(stack[stack.index(entry):])
            if cycle not in analysis.recursion_cycles:
                analysis.recursion_cycles.append(cycle)
            recursive.update(cycle)
            return INFINITE_DEPTH
        color[entry] = GREY
        stack.append(entry)
        local_peak, calls, diverges = locals_.get(entry, (0, [], False))
        bound: float = float(local_peak)
        if diverges:
            bound = INFINITE_DEPTH
        for _site, depth_at_call, callee in calls:
            callee_bound = visit(callee)
            bound = max(bound, depth_at_call + callee_bound)
        stack.pop()
        color[entry] = DONE
        bounds[entry] = bound
        return bound

    for entry in entries:
        visit(entry)
    # A function on a recursion cycle is unbounded even if the DFS
    # memoized a finite partial bound before the cycle closed.
    for entry in entries:
        if entry in recursive:
            bounds[entry] = INFINITE_DEPTH

    def lift(entry: int) -> float:
        """Re-evaluate with recursion-poisoned callees."""
        local_peak, calls, diverges = locals_.get(entry, (0, [], False))
        if diverges or entry in recursive:
            return INFINITE_DEPTH
        bound: float = float(local_peak)
        for _site, depth_at_call, callee in calls:
            bound = max(bound, depth_at_call + bounds[callee])
        return bound

    # One propagation sweep in reverse topological order (entries whose
    # callees are already final) — iterate to a fixpoint for safety.
    for _ in range(len(entries) + 1):
        changed = False
        for entry in entries:
            lifted = lift(entry)
            if lifted != bounds[entry]:
                bounds[entry] = lifted
                changed = True
        if not changed:
            break

    for entry in entries:
        local_peak, calls, _diverges = locals_.get(entry, (0, [], False))
        analysis.functions[entry] = FunctionStackSummary(
            entry=entry, name=_function_name(entry, labels),
            local_peak=local_peak, bound=bounds[entry],
            recursive=entry in recursive, calls=tuple(calls))
    analysis.bound = bounds.get(program.entry, 0.0)
    return analysis
