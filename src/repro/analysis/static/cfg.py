"""Control-flow and call-graph construction over decoded programs.

Builds on the rewriter's basic blocks (:mod:`repro.rewriter.blocks`) but
adds the edges the rewriter never needed: branch targets, fall-throughs,
skip shadows, call edges, and a conservative resolution of indirect
control flow.  ``IJMP``/``ICALL`` targets are resolved from

1. a block-local ``LDI r30/r31`` constant pair reaching the site, else
2. the dataflow engine (:mod:`.dataflow`): the interprocedural Z fact
   at the site, when it narrows to a small set of code addresses, else
3. the program-wide *address pool*: every ``LDI`` lo8/hi8 pair loading
   the Z registers anywhere, plus every ``.dw`` data word whose value is
   an instruction address (function-pointer tables), else
4. every label in the symbol list (fully conservative fallback).

The pool / label fallbacks additionally drop *data-only* labels —
``.dw`` table entries never named by direct control flow — at sites
that cannot be reading a table (no ``LPM`` in their block): those
entries are already consumed as function-pointer tables by the
dispatch sites proper, and keeping them everywhere only inflates the
candidate sets (and with them the worst-case stack bounds).

The same builder works on a naturalized program's item list: patched
sites are 32-bit ``JMP``\\ s whose trampoline targets fall outside the
body and are recorded as *external* edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...avr.instruction import DataWord, Instruction
from ...avr.isa import Kind
from ...rewriter.blocks import BasicBlock, build_blocks

#: Mnemonics that never fall through to the next instruction.
_NO_FALLTHROUGH = frozenset({"RJMP", "JMP", "IJMP", "RET", "RETI", "BREAK"})


@dataclass
class CfgNode:
    """One basic block plus its outgoing edges."""

    block: BasicBlock
    successors: Tuple[int, ...] = ()      # start addresses of successors
    calls: Tuple[Tuple[int, int], ...] = ()  # (call-site address, callee)
    external: Tuple[int, ...] = ()        # targets outside the item list
    indirect_site: Optional[int] = None   # IJMP/ICALL address, if any

    @property
    def start(self) -> int:
        return self.block.start


@dataclass
class ControlFlowGraph:
    """CFG + call edges for one program's item list."""

    entry: int
    nodes: Dict[int, CfgNode] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)
    #: IJMP/ICALL sites whose targets fell back to the all-labels set.
    unresolved_indirect: List[int] = field(default_factory=list)

    @property
    def instructions(self) -> Dict[int, Instruction]:
        table: Dict[int, Instruction] = {}
        for node in self.nodes.values():
            for instruction in node.block.instructions:
                table[instruction.address] = instruction
        return table

    def node_containing(self, address: int) -> Optional[CfgNode]:
        for node in self.nodes.values():
            if node.block.start <= address < node.block.end:
                return node
        return None

    def reachable_blocks(self, start: int) -> Set[int]:
        """Block starts reachable from *start* along successor edges
        (call edges are stepped over, not entered)."""
        seen: Set[int] = set()
        work = [start]
        while work:
            current = work.pop()
            if current in seen or current not in self.nodes:
                continue
            seen.add(current)
            work.extend(self.nodes[current].successors)
        return seen

    def function_entries(self) -> Set[int]:
        """The program entry plus every (direct or resolved indirect)
        call target."""
        entries = {self.entry}
        for node in self.nodes.values():
            entries.update(callee for _, callee in node.calls)
        return entries

    def call_edges(self, entry: int) -> List[Tuple[int, int]]:
        """(site, callee) pairs inside the function rooted at *entry*."""
        edges: List[Tuple[int, int]] = []
        for start in sorted(self.reachable_blocks(entry)):
            edges.extend(self.nodes[start].calls)
        return edges


def _split_blocks(blocks: List[BasicBlock],
                  extra_leaders: Set[int]) -> List[BasicBlock]:
    """Split blocks at *extra_leaders* (skip-shadow targets are leaders
    for CFG purposes even though the rewriter's grouping pass does not
    need the cut)."""
    result: List[BasicBlock] = []
    for block in blocks:
        current = BasicBlock(start=block.start)
        result.append(current)
        for instruction in block.instructions:
            if instruction.address in extra_leaders and \
                    current.instructions:
                current = BasicBlock(start=instruction.address)
                result.append(current)
            current.instructions.append(instruction)
    return [block for block in result if block.instructions]


def _address_pool(items: Sequence, addresses: Set[int]) -> Set[int]:
    """Program-wide indirect-target candidates: LDI-loaded Z constants
    and ``.dw`` words that name instruction addresses."""
    pool: Set[int] = set()
    lo: Optional[int] = None
    hi: Optional[int] = None
    for item in items:
        if isinstance(item, DataWord):
            if item.value in addresses:
                pool.add(item.value)
            continue
        if item.mnemonic == "LDI" and item.operands[0] in (30, 31):
            if item.operands[0] == 30:
                lo = item.operands[1]
            else:
                hi = item.operands[1]
            if lo is not None and hi is not None:
                candidate = lo | (hi << 8)
                if candidate in addresses:
                    pool.add(candidate)
    return pool


def _local_z_values(block: BasicBlock) -> Dict[int, Optional[int]]:
    """Map each instruction address in *block* to the statically known
    Z value reaching it, when an LDI pair fully determines it."""
    from ...rewriter.grouping import _writes_register
    known: Dict[int, Optional[int]] = {}
    lo: Optional[int] = None
    hi: Optional[int] = None
    for instruction in block.instructions:
        value = lo | (hi << 8) if lo is not None and hi is not None \
            else None
        known[instruction.address] = value
        if instruction.mnemonic == "LDI" and \
                instruction.operands[0] in (30, 31):
            if instruction.operands[0] == 30:
                lo = instruction.operands[1]
            else:
                hi = instruction.operands[1]
        elif _writes_register(instruction, 30):
            lo = hi = None
    return known


def build_cfg(items: Sequence, entry: int,
              labels: Optional[Dict[str, int]] = None,
              dataflow: bool = True) -> ControlFlowGraph:
    """Build the CFG for an item list (compiled or naturalized).

    With ``dataflow=True`` (the default) and at least one indirect site
    that the block-local heuristic left ambiguous, the abstract
    interpreter runs once and its narrowed target sets replace the
    pool / all-labels candidates wherever they are strictly better.
    """
    labels = labels or {}
    cfg = _build(items, entry, labels, {})
    if not dataflow or not _has_ambiguous_indirect(cfg):
        return cfg
    from .dataflow import resolve_indirect_targets
    narrowed = resolve_indirect_targets(items, entry, labels)
    if not narrowed:
        return cfg
    return _build(items, entry, labels, narrowed)


def _has_ambiguous_indirect(cfg: ControlFlowGraph) -> bool:
    for node in cfg.nodes.values():
        if node.indirect_site is None:
            continue
        if node.indirect_site in cfg.unresolved_indirect:
            return True
        last = node.block.instructions[-1]
        count = len(node.calls) if last.mnemonic == "ICALL" \
            else len(node.successors)
        if count > 1:
            return True
    return False


def _build(items: Sequence, entry: int, labels: Dict[str, int],
           indirect_targets: Dict[int, Tuple[int, ...]]) \
        -> ControlFlowGraph:
    instructions = [item for item in items if isinstance(item, Instruction)]
    by_address = {ins.address: ins for ins in instructions}
    addresses = set(by_address)

    blocks = build_blocks(items)
    # Skip shadows: the instruction *after* the skipped one is a CFG
    # leader (it may sit mid-block in the rewriter's partition).
    skip_targets: Set[int] = set()
    for ins in instructions:
        if ins.kind & Kind.SKIP:
            shadow = by_address.get(ins.next_address)
            if shadow is not None and shadow.next_address in addresses:
                skip_targets.add(shadow.next_address)
    pool = _address_pool(items, addresses)
    all_labels = {address for address in labels.values()
                  if address in addresses}
    # Data-only labels: function-pointer-table entries (``.dw`` words
    # naming code) never reached by direct control flow.  They stay
    # candidates at table-reading sites (any block with an LPM) but are
    # dropped from the pool / all-labels fallback everywhere else.
    dw_targets = {item.value for item in items
                  if isinstance(item, DataWord) and item.value in addresses}
    direct_targets: Set[int] = set()
    for ins in instructions:
        if ins.mnemonic in ("RJMP", "JMP", "BRBS", "BRBC",
                            "CALL", "RCALL"):
            direct_targets.add(ins.branch_target())
    data_only = dw_targets - direct_targets - {entry}
    # Indirect-branch candidates and skip shadows must start blocks, and
    # an ICALL must *end* one so the edge builder sees it last (the
    # rewriter's partition never needed those cuts: ICALL falls through).
    icall_splits = {ins.next_address for ins in instructions
                    if ins.mnemonic == "ICALL"
                    and ins.next_address in addresses}
    narrowed_leaders = {target for targets in indirect_targets.values()
                        for target in targets if target in addresses}
    starts = {block.start for block in blocks}
    blocks = _split_blocks(
        blocks, (skip_targets | pool | all_labels | icall_splits |
                 narrowed_leaders) - starts)

    cfg = ControlFlowGraph(entry=entry, labels=dict(labels))
    for block in blocks:
        node = CfgNode(block=block)
        cfg.nodes[block.start] = node
        last = block.instructions[-1]
        mnemonic = last.mnemonic
        successors: List[int] = []
        calls: List[Tuple[int, int]] = []
        external: List[int] = []
        fallthrough = last.next_address \
            if last.next_address in addresses else None

        def to(target: int) -> None:
            (successors if target in addresses else external).append(target)

        if mnemonic in ("RET", "RETI", "BREAK"):
            pass
        elif mnemonic in ("RJMP", "JMP"):
            to(last.branch_target())
        elif mnemonic in ("BRBS", "BRBC"):
            to(last.branch_target())
            if fallthrough is not None:
                successors.append(fallthrough)
        elif mnemonic in ("CALL", "RCALL"):
            target = last.branch_target()
            if target in addresses:
                calls.append((last.address, target))
            else:
                external.append(target)
            if fallthrough is not None:
                successors.append(fallthrough)
        elif mnemonic in ("IJMP", "ICALL"):
            node.indirect_site = last.address
            local = _local_z_values(block).get(last.address)
            narrowed = indirect_targets.get(last.address)
            if local is not None and local in addresses:
                candidates: Set[int] = {local}
            elif narrowed:
                candidates = set(narrowed)
            else:
                if pool:
                    candidates = set(pool)
                else:
                    candidates = set(all_labels)
                    cfg.unresolved_indirect.append(last.address)
                # A block with no LPM cannot be dispatching through a
                # ``.dw`` table, so table-only entries are noise here.
                reads_table = any(ins.mnemonic == "LPM"
                                  for ins in block.instructions)
                if not reads_table and candidates - data_only:
                    candidates -= data_only
            if mnemonic == "IJMP":
                successors.extend(sorted(candidates))
            else:
                calls.extend((last.address, target)
                             for target in sorted(candidates))
                if fallthrough is not None:
                    successors.append(fallthrough)
        elif last.kind & Kind.SKIP:
            if fallthrough is not None:
                successors.append(fallthrough)
                shadow = by_address[fallthrough]
                if shadow.next_address in addresses:
                    successors.append(shadow.next_address)
        elif fallthrough is not None:
            successors.append(fallthrough)

        node.successors = tuple(dict.fromkeys(successors))
        node.calls = tuple(calls)
        node.external = tuple(external)
    return cfg
