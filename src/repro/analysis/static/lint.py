"""Rewriter soundness linter.

Re-derives the naturalized layout from the original program, then
re-disassembles the naturalized image and proves, word by word, the
invariants the kernel's safety story rests on:

1. **site coverage** — every instruction ``classify()`` flags is, in
   the image, a 32-bit ``JMP`` into the trampoline region, landing on
   the slot the rewriter recorded for it (same :class:`PatchKind`);
2. **no untrapped danger** — no *other* instruction in the body can
   touch data memory, the stack pointer, the Timer3 block, program
   memory, or control flow the kernel must mediate (the check uses its
   own dangerous-instruction predicate, deliberately independent of
   ``classify()``);
3. **shift-table integrity** — entries strictly monotonic, exactly one
   per inflated (1-word) site, none spurious;
4. **trampoline containment** — every site target is a placed slot in
   ``[trap_lo, trap_hi)``;
5. **skip alignment** — a conditional skip's shadow ends on an
   instruction boundary of the *naturalized* body (an inflated
   successor is skipped whole, never re-entered mid-``JMP``);
6. **certificate validity** — every :class:`ElisionCertificate` the
   image carries is re-proved by the independent checker
   (:func:`repro.analysis.static.dataflow.verify_certificate`), which
   re-derives inductiveness, the site fact and the claim from the
   image alone.  A site the JIT tiers would run guard-free must carry
   a proof this checker accepts, or the link aborts.

Violations carry the naturalized site address and the expected
:class:`PatchKind`, so a corrupted image fails with a diagnostic that
names the exact site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...avr import ioports
from ...avr.encoding import EncodingError, decode, encode
from ...avr.instruction import DataWord, Instruction
from ...avr.isa import IO_SPL, IO_SPH, Format, Kind
from ...rewriter.classify import PatchKind, classify
from ..report import format_table

#: Mnemonics that read or write data memory / the stack (independent of
#: classify(): the linter's own list, kept deliberately separate so a
#: classifier bug cannot hide from its own checker).
_MEMORY = frozenset({"LD", "ST", "LDD", "STD", "LDS", "STS",
                     "PUSH", "POP"})
#: Control flow and CPU control the kernel must mediate.
_CONTROL = frozenset({"CALL", "RCALL", "IJMP", "ICALL", "LPM",
                      "SLEEP", "BREAK"})


@dataclass(frozen=True)
class LintFinding:
    """One invariant violation."""

    check: str                     # short check id, e.g. "site-not-jmp"
    program: str                   # task name
    address: int                   # naturalized word address (-1: global)
    kind: Optional[PatchKind]      # expected patch kind, when applicable
    message: str

    def render(self) -> str:
        where = f"{self.address:#06x}" if self.address >= 0 else "-"
        kind = self.kind.value if self.kind is not None else "-"
        return (f"[{self.check}] {self.program} @ {where} "
                f"(kind {kind}): {self.message}")


@dataclass
class LintReport:
    """Aggregated result of linting one target image."""

    findings: List[LintFinding] = field(default_factory=list)
    programs: List[str] = field(default_factory=list)
    sites_total: int = 0
    sites_verified: int = 0
    shift_entries: int = 0
    instructions_scanned: int = 0
    trampolines: int = 0
    certificates: int = 0
    certificates_verified: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def coverage(self) -> float:
        if self.sites_total == 0:
            return 1.0
        return self.sites_verified / self.sites_total

    def findings_for(self, check: str) -> List[LintFinding]:
        return [finding for finding in self.findings
                if finding.check == check]

    def render(self) -> str:
        lines = [
            f"soundness lint: {len(self.programs)} program(s) "
            f"({', '.join(self.programs)})",
            f"  patch sites     : {self.sites_verified}/{self.sites_total} "
            f"verified ({100 * self.coverage:.1f}% coverage)",
            f"  shift entries   : {self.shift_entries}",
            f"  instructions    : {self.instructions_scanned} scanned",
            f"  trampolines     : {self.trampolines} placed slots",
            f"  certificates    : {self.certificates_verified}/"
            f"{self.certificates} elision proofs verified",
        ]
        if self.ok:
            lines.append("  verdict         : OK — image is sound")
        else:
            lines.append(f"  verdict         : {len(self.findings)} "
                         f"violation(s)")
            lines.extend("    " + finding.render()
                         for finding in self.findings)
        return "\n".join(lines)


def _static_data_address(ins: Instruction) -> Optional[int]:
    """The linter's own static-address extraction (see module doc)."""
    mnemonic = ins.mnemonic
    if mnemonic in ("LDS", "STS"):
        return ins.operands[1]
    if mnemonic == "IN":
        return ioports.io_to_data(ins.operands[1])
    if mnemonic == "OUT":
        return ioports.io_to_data(ins.operands[0])
    if mnemonic in ("SBI", "CBI", "SBIC", "SBIS"):
        return ioports.io_to_data(ins.operands[0])
    return None


def _untrapped_check(ins: Instruction, body: Tuple[int, int],
                     ) -> Optional[Tuple[str, str]]:
    """(check id, message) when a non-site instruction is dangerous."""
    mnemonic = ins.mnemonic
    if mnemonic in _MEMORY:
        return ("untrapped-memory",
                f"{mnemonic} reaches data memory without a trampoline")
    if mnemonic in ("IN", "OUT"):
        io_address = ins.operands[1] if mnemonic == "IN" else \
            ins.operands[0]
        if io_address in (IO_SPL, IO_SPH):
            return ("untrapped-stack-pointer",
                    f"{mnemonic} touches the stack pointer natively")
    address = _static_data_address(ins)
    if address is not None and address in ioports.TIMER3_ADDRESSES:
        return ("untrapped-timer3",
                f"{mnemonic} reaches reserved Timer3 register "
                f"{address:#06x}")
    if mnemonic in _CONTROL:
        return ("untrapped-control",
                f"{mnemonic} transfers control without kernel mediation")
    fmt = ins.opspec.fmt
    if fmt in (Format.REL12, Format.BRANCH, Format.JMPCALL):
        target = ins.branch_target()
        if target <= ins.address:
            return ("untrapped-backward-branch",
                    f"backward {mnemonic} to {target:#06x} bypasses the "
                    f"scheduler trap")
        lo, hi = body
        if not lo <= target < hi:
            return ("branch-escape",
                    f"{mnemonic} targets {target:#06x} outside the "
                    f"program body [{lo:#06x}, {hi:#06x})")
    return None


def _lint_task(task, pool, trap_region: Tuple[int, int],
               report: LintReport, classify_fn) -> None:
    natural = task.natural
    program = natural.program
    words = natural.words
    base = natural.base
    name = task.name
    slot_by_address = pool.by_address()
    trap_lo, trap_hi = trap_region

    def finding(check: str, address: int, kind: Optional[PatchKind],
                message: str) -> None:
        report.findings.append(LintFinding(
            check=check, program=name, address=address, kind=kind,
            message=message))

    # -- independent layout re-derivation -----------------------------------
    cursor = base
    flagged: List[Tuple[Instruction, int, PatchKind]] = []
    plain: List[Tuple[Instruction, int]] = []  # (original, nat address)
    nat_size: Dict[int, int] = {}              # nat address -> words
    boundaries: List[int] = []
    for item in program.items:
        boundaries.append(cursor)
        if isinstance(item, DataWord):
            nat_size[cursor] = 1
            cursor += 1
            continue
        kind = classify_fn(item)
        if kind is not PatchKind.NONE:
            flagged.append((item, cursor, kind))
            nat_size[cursor] = 2
            cursor += 2
        else:
            plain.append((item, cursor))
            nat_size[cursor] = item.words
            cursor += item.words
    body_end = cursor
    if body_end != natural.end:
        finding("layout-size", -1, None,
                f"re-derived body ends at {body_end:#06x} but the image "
                f"records {natural.end:#06x}")
    boundary_set = set(boundaries)

    # -- 1. + 4. every flagged site is a trampoline JMP ----------------------
    report.sites_total += len(flagged)
    for original, nat_address, kind in flagged:
        offset = nat_address - base
        site = natural.sites.get(nat_address)
        if site is None:
            finding("site-missing", nat_address, kind,
                    f"{original.mnemonic} at original "
                    f"{original.address:#06x} is flagged but the image "
                    f"records no patch site")
            continue
        if site.kind is not kind:
            finding("site-kind-mismatch", nat_address, kind,
                    f"image records {site.kind.value}")
            continue
        if offset + 1 >= len(words):
            finding("site-truncated", nat_address, kind,
                    "32-bit JMP runs past the end of the body")
            continue
        try:
            decoded = decode(words[offset], words[offset + 1], nat_address)
        except EncodingError:
            finding("site-not-jmp", nat_address, kind,
                    f"site words {words[offset]:#06x} "
                    f"{words[offset + 1]:#06x} do not decode")
            continue
        if decoded.mnemonic != "JMP" or decoded.words != 2:
            finding("site-not-jmp", nat_address, kind,
                    f"site holds {decoded.mnemonic}, not a trampoline JMP")
            continue
        target = decoded.operands[0]
        if not trap_lo <= target < trap_hi:
            finding("site-target-outside", nat_address, kind,
                    f"JMP target {target:#06x} is outside the trampoline "
                    f"region [{trap_lo:#06x}, {trap_hi:#06x})")
            continue
        slot = slot_by_address.get(target)
        if slot is None:
            finding("site-target-misaligned", nat_address, kind,
                    f"JMP target {target:#06x} is not a slot start")
            continue
        if slot.kind is not kind:
            finding("site-wrong-trampoline", nat_address, kind,
                    f"trampoline at {target:#06x} handles {slot.kind.value}")
            continue
        report.sites_verified += 1
    extra_sites = set(natural.sites) - {address for _, address, _ in flagged}
    for nat_address in sorted(extra_sites):
        finding("site-extra", nat_address, natural.sites[nat_address].kind,
                "image records a patch site the classifier does not flag")

    # -- 2. untrapped-danger scan over the re-disassembled body --------------
    body = (base, body_end)
    for original, nat_address, in plain:
        offset = nat_address - base
        report.instructions_scanned += 1
        try:
            second = words[offset + 1] if offset + 1 < len(words) else None
            decoded = decode(words[offset], second, nat_address)
        except EncodingError:
            finding("body-not-decodable", nat_address, None,
                    f"word {words[offset]:#06x} at an instruction "
                    f"position does not decode")
            continue
        if list(encode(decoded)) != \
                words[offset:offset + decoded.words]:
            finding("body-encoding-mismatch", nat_address, None,
                    "decoded instruction does not re-encode to the image "
                    "words")
        danger = _untrapped_check(decoded, body)
        if danger is not None:
            check, message = danger
            finding(check, nat_address, None, message)
        # -- 5. skip shadows end on a naturalized boundary -------------------
        if decoded.kind & Kind.SKIP:
            shadow = nat_address + decoded.words
            landing = shadow + nat_size.get(shadow, 1)
            if shadow in nat_size and landing not in boundary_set and \
                    landing != body_end:
                finding("skip-misaligned", nat_address, None,
                        f"skip shadow lands at {landing:#06x}, not an "
                        f"instruction boundary")

    # -- 3. shift-table integrity --------------------------------------------
    entries = natural.shift_table.entries
    report.shift_entries += len(entries)
    if any(b <= a for a, b in zip(entries, entries[1:])):
        finding("shift-nonmonotonic", -1, None,
                "shift-table entries are not strictly increasing")
    inflated = {original.address for original, _, _ in flagged
                if original.words == 1}
    for missing in sorted(inflated - set(entries)):
        finding("shift-missing-entry", missing, None,
                f"inflated site at original {missing:#06x} has no "
                f"shift-table entry")
    for spurious in sorted(set(entries) - inflated):
        finding("shift-extra-entry", spurious, None,
                f"shift-table entry {spurious:#06x} does not match an "
                f"inflated site")


def _lint_certificates(image, report: LintReport) -> None:
    """Check 6: re-prove every elision certificate the image carries.

    The checker is deliberately independent of the engine that emitted
    the certificates — it re-derives inductiveness and the claim from
    the image words and the carried invariants alone, so a tampered
    (or stale, or wrong-geometry) proof fails here and the finding
    aborts the link before any guard-free code can run.
    """
    from .dataflow import image_certificates, verify_certificate
    certs = image_certificates(image)
    for task in image.tasks:
        for nat_address in sorted(certs.get(task.name, {})):
            cert = certs[task.name][nat_address]
            report.certificates += 1
            site = task.natural.sites.get(nat_address)
            if site is None or site.kind.name != cert.kind or \
                    site.original.address != cert.site:
                report.findings.append(LintFinding(
                    check="certificate", program=task.name,
                    address=nat_address,
                    kind=site.kind if site is not None else None,
                    message=f"certificate for original site "
                            f"{cert.site:#06x} ({cert.kind}) does not "
                            f"match the recorded patch site"))
                continue
            errors = verify_certificate(task.natural.program, cert)
            if errors:
                for message in errors:
                    report.findings.append(LintFinding(
                        check="certificate", program=task.name,
                        address=nat_address, kind=site.kind,
                        message=message))
                continue
            report.certificates_verified += 1


def lint_image(image, classify_fn=None) -> LintReport:
    """Lint every task of a linked :class:`TargetImage`."""
    classify_fn = classify_fn if classify_fn is not None else classify
    report = LintReport()
    report.trampolines = image.pool.count
    for task in image.tasks:
        report.programs.append(task.name)
        _lint_task(task, image.pool, image.trap_region, report,
                   classify_fn)
    _lint_certificates(image, report)
    return report


def lint_sources(sources: Sequence[Tuple[str, str]],
                 rewriter=None) -> LintReport:
    """Link ``(name, assembly)`` pairs and lint the resulting image."""
    from ...toolchain.linker import link_image
    return lint_image(link_image(sources, rewriter=rewriter))


def coverage_table(reports: Dict[str, LintReport]) -> str:
    """Render a per-image coverage summary (used by the experiment)."""
    rows = []
    for name, report in reports.items():
        rows.append([name, report.sites_total, report.sites_verified,
                     f"{100 * report.coverage:.1f}%",
                     len(report.findings)])
    return format_table(
        ["image", "patch sites", "verified", "coverage", "violations"],
        rows, title="rewriter soundness lint")
