"""SREG liveness over the basic-block CFG.

A classic backward dataflow pass, specialized to the eight AVR status
flags: for every basic block, which SREG bits may still be read before
being overwritten (*live-out*), and which bits the block itself needs on
entry (*live-in*).

Two consumers:

* the trace compiler (:mod:`repro.avr.trace`) uses the per-mnemonic
  read/write masks — :func:`sreg_effects` — plus its own tiny fixpoint
  over the handful of blocks in a trace to elide flag computation that
  no successor inside the trace (and no trace exit) can observe;
* static analysis / tests use :func:`sreg_liveness` over a whole
  program's :class:`~.cfg.ControlFlowGraph`, e.g. to report how much of
  a workload's flag traffic is dead.

Everything unknown is conservative: an unrecognized mnemonic *reads*
all eight flags and writes none, calls and external/indirect edges leak
all flags, so a bit reported dead is provably dead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .cfg import CfgNode, ControlFlowGraph

# SREG flag masks, identical to repro.avr.cpu's.
C, Z, N, V, S, H, T, I = (1 << b for b in range(8))
ALL_FLAGS = 0xFF
_ARITH = C | Z | N | V | S | H
_LOGIC = Z | N | V | S
_SHIFT = C | Z | N | V | S

#: SREG I/O address (``OUT 0x3F``/``IN r, 0x3F`` move the whole register).
_SREG_IO = 0x3F

#: mnemonic -> (reads, writes); mnemonics absent here are conservative.
_EFFECTS: Dict[str, Tuple[int, int]] = {
    "ADD": (0, _ARITH), "ADC": (C, _ARITH),
    "SUB": (0, _ARITH), "SUBI": (0, _ARITH),
    "CP": (0, _ARITH), "CPI": (0, _ARITH), "NEG": (0, _ARITH),
    "SBC": (C | Z, _ARITH), "SBCI": (C | Z, _ARITH),
    "CPC": (C | Z, _ARITH),
    "AND": (0, _LOGIC), "ANDI": (0, _LOGIC),
    "OR": (0, _LOGIC), "ORI": (0, _LOGIC), "EOR": (0, _LOGIC),
    "INC": (0, _LOGIC), "DEC": (0, _LOGIC),
    "COM": (0, _SHIFT), "LSR": (0, _SHIFT), "ASR": (0, _SHIFT),
    "ROR": (C, _SHIFT),
    "ADIW": (0, _SHIFT), "SBIW": (0, _SHIFT),
    "MUL": (0, C | Z), "MULS": (0, C | Z), "MULSU": (0, C | Z),
    "FMUL": (0, C | Z), "FMULS": (0, C | Z), "FMULSU": (0, C | Z),
    "BST": (0, T), "BLD": (T, 0),
    "RETI": (0, I),
    "CPSE": (0, 0), "SBRC": (0, 0), "SBRS": (0, 0),
    "SBIC": (0, 0), "SBIS": (0, 0), "SBI": (0, 0), "CBI": (0, 0),
    "MOV": (0, 0), "MOVW": (0, 0), "LDI": (0, 0), "SWAP": (0, 0),
    "LD": (0, 0), "ST": (0, 0), "LDD": (0, 0), "STD": (0, 0),
    "LDS": (0, 0), "STS": (0, 0), "LPM": (0, 0),
    "PUSH": (0, 0), "POP": (0, 0),
    "NOP": (0, 0), "WDR": (0, 0), "SLEEP": (0, 0), "BREAK": (0, 0),
    "RJMP": (0, 0), "JMP": (0, 0), "IJMP": (0, 0),
}

#: Control transfers whose continuation is outside the local analysis
#: (the callee / caller / unknown code may read anything).
_LEAKS_ALL = frozenset({"CALL", "RCALL", "ICALL", "RET", "RETI"})


def sreg_effects(mnemonic: str, operands: Tuple = ()) -> Tuple[int, int]:
    """``(reads, writes)`` SREG bit masks for one instruction.

    Conservative: unknown mnemonics read every flag and write none, so
    liveness computed from these masks can only over-approximate.
    """
    if mnemonic in ("BSET", "BCLR"):
        return 0, 1 << operands[0]
    if mnemonic in ("BRBS", "BRBC"):
        return 1 << operands[0], 0
    if mnemonic == "OUT" and operands and operands[0] == _SREG_IO:
        return 0, ALL_FLAGS
    if mnemonic == "IN" and len(operands) > 1 and operands[1] == _SREG_IO:
        return ALL_FLAGS, 0
    if mnemonic in _LEAKS_ALL:
        return ALL_FLAGS, 0
    effects = _EFFECTS.get(mnemonic)
    if effects is None:
        return ALL_FLAGS, 0
    return effects


def block_transfer(node: CfgNode, live_out: int) -> int:
    """Live-in bits of *node* given its *live_out* bits: one backward
    walk applying ``live = (live & ~writes) | reads`` per instruction."""
    live = live_out
    for instruction in reversed(node.block.instructions):
        reads, writes = sreg_effects(instruction.mnemonic,
                                     instruction.operands)
        live = (live & ~writes) | reads
    return live


@dataclass
class SregLiveness:
    """Per-block SREG liveness of one program."""

    live_in: Dict[int, int] = field(default_factory=dict)
    live_out: Dict[int, int] = field(default_factory=dict)

    def dead_writes(self, cfg: ControlFlowGraph) -> Dict[int, int]:
        """Per-block mask of flag bits the block architecturally writes
        but nothing downstream can read (upper bound on elision)."""
        dead: Dict[int, int] = {}
        for start, node in cfg.nodes.items():
            written = 0
            for instruction in node.block.instructions:
                _, writes = sreg_effects(instruction.mnemonic,
                                         instruction.operands)
                written |= writes
            dead[start] = written & ~self.live_out[start] \
                & ~block_transfer(node, 0)
        return dead


def sreg_liveness(cfg: ControlFlowGraph,
                  exit_live: int = ALL_FLAGS) -> SregLiveness:
    """Per-block SREG live-in/live-out fixpoint over *cfg*.

    *exit_live* is the mask assumed live at every edge leaving the
    analyzed program (RET/BREAK/external/indirect targets); the default
    assumes the outside world may read everything.
    """
    result = SregLiveness()
    nodes = cfg.nodes
    for start in nodes:
        result.live_in[start] = 0
        result.live_out[start] = 0
    changed = True
    while changed:
        changed = False
        for start, node in nodes.items():
            out = 0
            last = node.block.instructions[-1].mnemonic
            if node.external or node.indirect_site is not None or \
                    node.calls or last in ("RET", "RETI", "BREAK",
                                           "SLEEP"):
                out = exit_live
            for successor in node.successors:
                if successor in nodes:
                    out |= result.live_in[successor]
                else:
                    out = exit_live
            new_in = block_transfer(node, out)
            if out != result.live_out[start] or \
                    new_in != result.live_in[start]:
                result.live_out[start] = out
                result.live_in[start] = new_in
                changed = True
    return result
