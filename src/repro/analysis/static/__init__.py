"""Static firmware analysis: CFG/call-graph, stack bounds, soundness lint.

Three cooperating passes over compiled (and naturalized) programs:

* :mod:`.cfg` — basic-block control-flow graph and call graph, with
  conservative resolution of ``IJMP``/``ICALL`` targets;
* :mod:`.stackdepth` — worst-case stack-depth bounds per function and
  per task, with recursion-cycle detection;
* :mod:`.dataflow` / :mod:`.values` — forward abstract interpretation
  (constants, intervals, region-relative pointers) that narrows
  indirect targets and emits machine-checkable elision certificates;
* :mod:`.lint` — the rewriter soundness linter: re-disassembles a
  naturalized image and proves every patch site is covered and no
  un-trapped instruction can reach OS-reserved state, and
  independently re-verifies every elision certificate.
"""

from .cfg import ControlFlowGraph, build_cfg
from .dataflow import (DataflowAnalysis, ElisionCertificate,
                       analyze_image, image_certificates,
                       program_certificates, resolve_indirect_targets,
                       validated_elisions, verify_certificate)
from .lint import LintFinding, LintReport, lint_image, lint_sources
from .liveness import (ALL_FLAGS, SregLiveness, block_transfer,
                       sreg_effects, sreg_liveness)
from .stackdepth import INFINITE_DEPTH, StackAnalysis, analyze_program
from .values import AbsState, Interval, Word

__all__ = [
    "ControlFlowGraph", "build_cfg",
    "INFINITE_DEPTH", "StackAnalysis", "analyze_program",
    "DataflowAnalysis", "ElisionCertificate", "analyze_image",
    "image_certificates", "program_certificates",
    "resolve_indirect_targets", "validated_elisions",
    "verify_certificate",
    "AbsState", "Interval", "Word",
    "LintFinding", "LintReport", "lint_image", "lint_sources",
    "ALL_FLAGS", "SregLiveness", "block_transfer",
    "sreg_effects", "sreg_liveness",
]
