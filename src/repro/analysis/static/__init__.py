"""Static firmware analysis: CFG/call-graph, stack bounds, soundness lint.

Three cooperating passes over compiled (and naturalized) programs:

* :mod:`.cfg` — basic-block control-flow graph and call graph, with
  conservative resolution of ``IJMP``/``ICALL`` targets;
* :mod:`.stackdepth` — worst-case stack-depth bounds per function and
  per task, with recursion-cycle detection;
* :mod:`.lint` — the rewriter soundness linter: re-disassembles a
  naturalized image and proves every patch site is covered and no
  un-trapped instruction can reach OS-reserved state.
"""

from .cfg import ControlFlowGraph, build_cfg
from .lint import LintFinding, LintReport, lint_image, lint_sources
from .liveness import (ALL_FLAGS, SregLiveness, block_transfer,
                       sreg_effects, sreg_liveness)
from .stackdepth import INFINITE_DEPTH, StackAnalysis, analyze_program

__all__ = [
    "ControlFlowGraph", "build_cfg",
    "INFINITE_DEPTH", "StackAnalysis", "analyze_program",
    "LintFinding", "LintReport", "lint_image", "lint_sources",
    "ALL_FLAGS", "SregLiveness", "block_transfer",
    "sreg_effects", "sreg_liveness",
]
