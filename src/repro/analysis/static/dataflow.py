"""Forward abstract interpretation over the basic-block CFG.

The engine propagates the :mod:`values` domain — byte intervals,
16-bit pair facts (absolute and SP-relative), a stack-depth interval
and known-constant SREG flags — through every reachable block,
interprocedurally, with widening at re-visited joins.  Three consumers
sit on top of the fixpoint:

1. **CFG tightening** (:func:`resolve_indirect_targets`): an
   ``IJMP``/``ICALL`` whose Z fact is a small absolute interval gets
   exactly those targets instead of the pool / all-labels fallback;
2. **elision certificates** (:func:`program_certificates`): for each
   patched memory site the engine can prove in-region for every
   reachable state, a machine-checkable :class:`ElisionCertificate`
   carrying the claim, the site fact and the full fixpoint annotation
   (per-block invariants) as the proof;
3. **independent verification** (:func:`verify_certificate`): the lint
   side re-derives each proof from the image alone — one transfer pass
   checks the carried invariants are *inductive* (entry condition,
   every block's outflow contained in its successors' invariants) and
   that the site fact they imply entails the claim.  A tampered
   certificate breaks inductiveness or the claim and is rejected with
   a precise finding; the producer's fixpoint is never trusted.

Soundness note: the engine never assumes boot register contents (task
entry is all-⊤), never assumes an ABI (call clobbers are the callee
closure's syntactic may-write set), and treats everything it cannot
model as ⊤.  Claims are stated in *logical* addresses and stack depth,
both invariant under region relocation, so a proof survives every
``region_epoch`` — the JIT tiers keep their task/epoch guards and drop
only the logical range checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...avr import ioports
from ...avr.instruction import DataWord, Instruction
from ...avr.isa import (FLAG_C, FLAG_Z, IO_SPH, IO_SPL, IO_SREG,
                        PTR_BASE, Format)
from .cfg import ControlFlowGraph, build_cfg
from .liveness import sreg_effects
from .values import (AbsState, Interval, Word, BYTE_MAX, WORD_MAX,
                     SPL_BYTE, SPH_BYTE, TOP_BYTE, leq_depth, leq_word)

#: Logical data-memory geometry (matches ``KernelConfig`` defaults; a
#: certificate records the geometry it was proved against and consumers
#: ignore it under any other geometry).
RAM_START = ioports.RAM_START
MEMORY_SIZE = ioports.DATA_SIZE

#: Joins at one block before widening kicks in.
WIDEN_AFTER = 3
#: Hard per-block visit cap (drops to ⊤ — a total-analysis backstop).
VISIT_CAP = 60
#: Widest Z interval an indirect site may resolve through.
NARROW_MAX = 8

#: Patched-site kinds the engine states facts for.
_SITE_KINDS = {"LD": "MEM_INDIRECT", "ST": "MEM_INDIRECT",
               "LDD": "MEM_INDIRECT", "STD": "MEM_INDIRECT",
               "POP": "STACK_POP"}

_ALL_REGS_MASK = (1 << 32) - 1


def _flash_bytes(items: Sequence) -> Dict[int, int]:
    """Byte-addressed flash contents of the ``.dw``/``.db`` data words
    (the only flash an ``LPM`` chain meaningfully reads)."""
    flash: Dict[int, int] = {}
    for item in items:
        if isinstance(item, DataWord):
            flash[2 * item.address] = item.value & 0xFF
            flash[2 * item.address + 1] = (item.value >> 8) & 0xFF
    return flash


def _written_regs(ins: Instruction) -> Tuple[int, ...]:
    """Registers *ins* may write (the syntactic clobber set)."""
    mnemonic, ops = ins.mnemonic, ins.operands
    fmt = ins.opspec.fmt
    if fmt is Format.R2:
        if mnemonic in ("CP", "CPC", "CPSE"):
            return ()
        return (ops[0],)
    if fmt is Format.MUL:
        return (0, 1)
    if fmt is Format.MOVW:
        return (ops[0], ops[0] + 1)
    if fmt is Format.RD:
        return (ops[0],)
    if fmt is Format.IMM8:
        return () if mnemonic == "CPI" else (ops[0],)
    if fmt is Format.ADIW:
        return (ops[0], ops[0] + 1)
    if fmt is Format.LDST_PTR:
        base = PTR_BASE[ops[1].strip("+-")]
        regs = (base, base + 1) if ops[1] != ops[1].strip("+-") else ()
        return regs + ((ops[0],) if mnemonic == "LD" else ())
    if fmt is Format.LDST_DISP:
        return (ops[0],) if mnemonic == "LDD" else ()
    if fmt is Format.LDST_DIRECT:
        return (ops[0],) if mnemonic == "LDS" else ()
    if fmt is Format.PUSHPOP:
        return (ops[0],) if mnemonic == "POP" else ()
    if fmt is Format.LPM:
        return (ops[0],) + ((30, 31) if ops[1] == "Z+" else ())
    if fmt is Format.IO:
        return (ops[0],) if mnemonic == "IN" else ()
    if fmt is Format.TFLAG:
        return (ops[0],) if mnemonic == "BLD" else ()
    return ()


def _sub_interval(iv: Interval, k: int) -> Optional[Interval]:
    """(x - k) mod 256 as an interval, when the wrap is uniform."""
    lo, hi = iv.lo - k, iv.hi - k
    if lo >= 0:
        return Interval(lo, hi)
    if hi < 0:
        return Interval(lo + 256, hi + 256)
    return None


def transfer(state: AbsState, ins: Instruction,
             flash: Dict[int, int]) -> None:
    """Apply one instruction's register/depth/flag effect in place.

    Control flow (branches, calls, skips) is the engine's concern; this
    covers data effects only, and is shared verbatim by the fixpoint
    and the certificate checker so both mean the same thing by a state.
    """
    mnemonic, ops = ins.mnemonic, ins.operands
    # Flags first: drop everything the instruction may write, then add
    # back the few facts modelled precisely below.
    _, writes = sreg_effects(mnemonic, ops)
    if writes:
        for bit in range(8):
            if writes & (1 << bit):
                state.flags.pop(bit, None)

    if mnemonic == "LDI":
        state.set_byte(ops[0], Interval(ops[1], ops[1]))
    elif mnemonic == "MOV":
        state.set_byte(ops[0], state.regs[ops[1]])
    elif mnemonic == "MOVW":
        word = state.get_word(ops[1])
        if word is not None:
            state.set_word(ops[0], word)
        else:
            state.set_byte(ops[0], state.regs[ops[1]])
            state.set_byte(ops[0] + 1, state.regs[ops[1] + 1])
    elif mnemonic == "EOR" and ops[0] == ops[1]:
        state.set_byte(ops[0], Interval(0, 0))
        state.flags[FLAG_Z] = 1
    elif mnemonic == "ADD":
        a, b = state.regs[ops[0]], state.regs[ops[1]]
        if isinstance(a, Interval) and isinstance(b, Interval) \
                and a.hi + b.hi <= BYTE_MAX:
            result: Optional[Interval] = Interval(a.lo + b.lo, a.hi + b.hi)
        else:
            result = None
        state.set_byte(ops[0], result)
    elif mnemonic == "SUB":
        a, b = state.regs[ops[0]], state.regs[ops[1]]
        if isinstance(a, Interval) and isinstance(b, Interval) \
                and a.lo - b.hi >= 0:
            result = Interval(a.lo - b.hi, a.hi - b.lo)
        else:
            result = None
        state.set_byte(ops[0], result)
    elif mnemonic in ("AND", "OR"):
        state.set_byte(ops[0], None)
    elif mnemonic in ("ADC", "SBC", "EOR", "COM", "NEG", "SWAP",
                      "ASR", "ROR", "BLD"):
        state.set_byte(ops[0], None)
    elif mnemonic == "LSR":
        a = state.regs[ops[0]]
        state.set_byte(ops[0], Interval(a.lo >> 1, a.hi >> 1)
                       if isinstance(a, Interval) else None)
    elif mnemonic in ("INC", "DEC"):
        a = state.regs[ops[0]]
        delta = 1 if mnemonic == "INC" else -1
        result = a.add(delta, 0, BYTE_MAX) \
            if isinstance(a, Interval) else None
        state.set_byte(ops[0], result)
        if result is not None:
            if result.is_const:
                state.flags[FLAG_Z] = 1 if result.lo == 0 else 0
            elif result.lo > 0:
                state.flags[FLAG_Z] = 0
    elif mnemonic == "CPI":
        a, k = state.regs[ops[0]], ops[1]
        if isinstance(a, Interval):
            if a.is_const:
                state.flags[FLAG_Z] = 1 if a.lo == k else 0
                state.flags[FLAG_C] = 1 if a.lo < k else 0
            elif not (a.lo <= k <= a.hi):
                state.flags[FLAG_Z] = 0
    elif mnemonic == "CP":
        a, b = state.regs[ops[0]], state.regs[ops[1]]
        if isinstance(a, Interval) and isinstance(b, Interval) \
                and a.is_const and b.is_const:
            state.flags[FLAG_Z] = 1 if a.lo == b.lo else 0
            state.flags[FLAG_C] = 1 if a.lo < b.lo else 0
    elif mnemonic == "SUBI":
        a = state.regs[ops[0]]
        result = _sub_interval(a, ops[1]) \
            if isinstance(a, Interval) else None
        state.set_byte(ops[0], result)
        if result is not None and result.is_const:
            state.flags[FLAG_Z] = 1 if result.lo == 0 else 0
    elif mnemonic == "SBCI":
        state.set_byte(ops[0], None)
    elif mnemonic == "ANDI":
        a = state.regs[ops[0]]
        hi = min(a.hi, ops[1]) if isinstance(a, Interval) else ops[1]
        state.set_byte(ops[0], Interval(0, hi))
    elif mnemonic == "ORI":
        a = state.regs[ops[0]]
        lo = max(a.lo, ops[1]) if isinstance(a, Interval) else ops[1]
        state.set_byte(ops[0], Interval(lo, BYTE_MAX))
    elif mnemonic in ("ADIW", "SBIW"):
        word = state.get_word(ops[0])
        k = ops[1] if mnemonic == "ADIW" else -ops[1]
        state.set_word(ops[0], word.add(k) if word is not None else None)
    elif mnemonic == "MUL":
        state.set_byte(0, None)
        state.set_byte(1, None)
    elif mnemonic in ("LD", "ST"):
        mode = ops[1]
        base = PTR_BASE[mode.strip("+-")]
        if mode.startswith("-"):
            word = state.get_word(base)
            state.set_word(base, word.add(-1) if word is not None else None)
        if mnemonic == "LD":
            state.set_byte(ops[0], None)
        if mode.endswith("+"):
            word = state.get_word(base)
            state.set_word(base, word.add(1) if word is not None else None)
    elif mnemonic == "LDD":
        state.set_byte(ops[0], None)
    elif mnemonic in ("STD", "STS", "OUT"):
        if mnemonic == "OUT":
            if ops[0] in (IO_SPL, IO_SPH):
                state.depth = None
                state.drop_sp_facts()
            elif ops[0] == IO_SREG:
                state.flags.clear()
    elif mnemonic == "LDS":
        state.set_byte(ops[0], None)
    elif mnemonic == "LPM":
        dest, mode = ops
        word = state.get_word(30)
        if mode != "LEGACY" or dest == 0:
            if word is not None and word.base == "abs" \
                    and word.iv.is_const and word.iv.lo in flash:
                value = flash[word.iv.lo]
                state.set_byte(dest, Interval(value, value))
            else:
                state.set_byte(dest, None)
        if mode == "Z+":
            word = state.get_word(30)
            state.set_word(30, word.add(1) if word is not None else None)
    elif mnemonic == "IN":
        if ops[1] == IO_SPL:
            state.set_byte(ops[0], SPL_BYTE)
        elif ops[1] == IO_SPH:
            state.set_byte(ops[0], SPH_BYTE)
        else:
            state.set_byte(ops[0], None)
    elif mnemonic == "PUSH":
        state.depth = state.depth.add(1, 0, WORD_MAX) \
            if state.depth is not None else None
        state.shift_sp(1)
    elif mnemonic == "POP":
        state.set_byte(ops[0], None)
        if state.depth is not None:
            state.depth = Interval(max(0, state.depth.lo - 1),
                                   max(0, state.depth.hi - 1))
        state.shift_sp(-1)
    elif mnemonic == "BSET":
        state.flags[ops[0]] = 1
    elif mnemonic == "BCLR":
        state.flags[ops[0]] = 0
    # Everything else (branches, calls, NOP, SLEEP, WDR, BREAK, BST,
    # CBI/SBI, SBIC/SBIS, SBRC/SBRS) has no register/depth effect here.


def _access_fact(state: AbsState,
                 ins: Instruction) -> Tuple[Optional[Word],
                                            Optional[Interval]]:
    """(effective data address, stack depth) just before *ins* runs."""
    mnemonic, ops = ins.mnemonic, ins.operands
    if mnemonic == "POP":
        return None, state.depth
    if mnemonic in ("LD", "ST"):
        mode = ops[1]
        word = state.get_word(PTR_BASE[mode.strip("+-")])
        if mode.startswith("-") and word is not None:
            word = word.add(-1)
        return word, state.depth
    # LDD / STD: (reg, ptr, q)
    word = state.get_word(PTR_BASE[ops[1]])
    if word is not None:
        word = word.add(ops[2])
    return word, state.depth


@dataclass
class SiteFact:
    """Joined abstract facts observed at one patched site."""

    kind: str
    access: Optional[Word] = None
    depth: Optional[Interval] = None
    visits: int = 0

    def absorb(self, access: Optional[Word],
               depth: Optional[Interval]) -> None:
        if self.visits == 0:
            self.access, self.depth = access, depth
        else:
            self.access = self.access.join(access) \
                if self.access is not None else None
            self.depth = self.depth.join(depth) \
                if self.depth is not None and depth is not None else None
        self.visits += 1


@dataclass
class _Flows:
    """Outcome of walking one block from one entry state."""

    succs: List[Tuple[Tuple[int, int], AbsState]] = field(
        default_factory=list)
    calls: List[Tuple[int, AbsState]] = field(default_factory=list)
    ret_state: Optional[AbsState] = None
    #: Callee whose exit depth the fallthrough flow is still waiting on.
    pending: Optional[Tuple[int, ...]] = None


class DataflowAnalysis:
    """The whole-program abstract interpreter (one program's items)."""

    def __init__(self, items: Sequence, entry: int,
                 labels: Optional[Dict[str, int]] = None):
        self.items = list(items)
        self.entry = entry
        self.labels = dict(labels or {})
        self.cfg: ControlFlowGraph = build_cfg(
            self.items, entry, self.labels, dataflow=False)
        self.instructions = {
            item.address: item for item in self.items
            if isinstance(item, Instruction)}
        self.addresses = set(self.instructions)
        self.flash = _flash_bytes(self.items)
        #: Conservative candidate targets per indirect site.
        self.base_targets: Dict[int, Tuple[int, ...]] = {}
        for node in self.cfg.nodes.values():
            site = node.indirect_site
            if site is None:
                continue
            last = node.block.instructions[-1]
            if last.mnemonic == "IJMP":
                self.base_targets[site] = tuple(node.successors)
            else:
                self.base_targets[site] = tuple(
                    callee for _, callee in node.calls)
        self.clobbers = self._clobber_masks()
        #: (function entry, block start) -> entry invariant.
        self.invariants: Dict[Tuple[int, int], AbsState] = {}
        self.site_facts: Dict[int, SiteFact] = {}
        #: Indirect sites whose final target set beats the candidates.
        self.indirect_targets: Dict[int, Tuple[int, ...]] = {}
        self._ran = False

    # -- call-clobber summaries ---------------------------------------------------

    def _clobber_masks(self) -> Dict[int, int]:
        """May-write register mask per function entry, closed over the
        (conservative) call graph; recursion converges by union."""
        local: Dict[int, Tuple[int, Set[int]]] = {}
        for fn in self.cfg.function_entries():
            mask, callees = 0, set()
            for start in self.cfg.reachable_blocks(fn):
                node = self.cfg.nodes[start]
                for ins in node.block.instructions:
                    for reg in _written_regs(ins):
                        mask |= 1 << reg
                callees.update(callee for _, callee in node.calls)
            local[fn] = (mask, callees)
        masks = {fn: mask for fn, (mask, _) in local.items()}
        changed = True
        while changed:
            changed = False
            for fn, (_, callees) in local.items():
                merged = masks[fn]
                for callee in callees:
                    merged |= masks.get(callee, _ALL_REGS_MASK)
                if merged != masks[fn]:
                    masks[fn] = merged
                    changed = True
        return masks

    # -- shared block walk --------------------------------------------------------

    def _narrow_indirect(self, node, state: AbsState) \
            -> Tuple[Tuple[int, ...], bool]:
        """Targets of *node*'s indirect terminator under *state*."""
        candidates = self.base_targets.get(node.indirect_site, ())
        word = state.get_word(30)
        if word is not None and word.base == "abs" \
                and word.iv.width < NARROW_MAX:
            targets = tuple(sorted(
                address for address in range(word.iv.lo, word.iv.hi + 1)
                if address in self.addresses))
            if targets and all(t in self.cfg.nodes for t in targets):
                return targets, True
        return candidates, False

    def _post_call(self, state: AbsState, callees: Sequence[int],
                   exit_depth) -> Tuple[Optional[AbsState],
                                        Optional[Tuple[int, ...]]]:
        """Caller state after a call returns, or (None, pending) while
        no callee exit is known yet.  *exit_depth* maps a callee entry
        to "missing" / None (⊤) / an Interval."""
        depths = []
        returning = False
        for callee in callees:
            exit_iv = exit_depth(callee)
            if exit_iv == "missing":
                continue
            returning = True
            if exit_iv is None:
                depths = None
                break
            depths.append(Interval(max(0, exit_iv.lo - 2),
                                   max(0, exit_iv.hi - 2)))
        if not returning:
            return None, tuple(callees)
        post = state.copy()
        mask = 0
        for callee in callees:
            mask |= self.clobbers.get(callee, _ALL_REGS_MASK)
        for reg in range(32):
            if mask & (1 << reg):
                post.set_byte(reg, TOP_BYTE)
        post.drop_sp_facts()
        post.flags.clear()
        if depths is None:
            post.depth = None
        else:
            post.depth = depths[0]
            for iv in depths[1:]:
                post.depth = post.depth.join(iv)
        return post, None

    def _block_flows(self, fn: int, node, entry_state: AbsState,
                     exit_depth, on_ins=None) -> _Flows:
        """Walk one block: apply transfers, then compute the out-flows
        the terminator induces.  Used identically by the fixpoint and
        the certificate checker (``exit_depth`` differs)."""
        state = entry_state.copy()
        flows = _Flows()
        for ins in node.block.instructions:
            if on_ins is not None:
                on_ins(ins, state)
            transfer(state, ins, self.flash)
        last = node.block.instructions[-1]
        mnemonic = last.mnemonic
        if mnemonic in ("RET", "RETI"):
            flows.ret_state = state
            return flows
        if mnemonic == "IJMP":
            targets, _ = self._narrow_indirect(node, state)
            for target in targets:
                flows.succs.append(((fn, target), state))
            return flows
        if mnemonic in ("CALL", "RCALL", "ICALL"):
            if mnemonic == "ICALL":
                callees, _ = self._narrow_indirect(node, state)
            else:
                callees = tuple(callee for _, callee in node.calls)
            entry = state.copy()
            entry.shift_sp(2)
            entry.depth = entry.depth.add(2, 0, WORD_MAX) \
                if entry.depth is not None else None
            for callee in callees:
                if callee in self.cfg.nodes:
                    flows.calls.append((callee, entry))
            fallthrough = node.successors
            if callees:
                post, pending = self._post_call(state, callees, exit_depth)
            else:  # call outside the item list: assume nothing
                post, pending = AbsState.top(depth=None), None
            if post is not None:
                for succ in fallthrough:
                    flows.succs.append(((fn, succ), post))
            else:
                flows.pending = pending
            return flows
        if mnemonic in ("BRBS", "BRBC"):
            taken = last.branch_target()
            fallthrough = last.next_address
            known = state.flags.get(last.operands[0])
            for succ in node.successors:
                if known is not None:
                    branch = (known == 1) if mnemonic == "BRBS" \
                        else (known == 0)
                    if branch and succ == fallthrough and succ != taken:
                        continue
                    if not branch and succ == taken and \
                            succ != fallthrough:
                        continue
                flows.succs.append(((fn, succ), state))
            return flows
        for succ in node.successors:
            flows.succs.append(((fn, succ), state))
        return flows

    # -- the fixpoint -------------------------------------------------------------

    def run(self) -> "DataflowAnalysis":
        if self._ran:
            return self
        self._ran = True
        if self.entry not in self.cfg.nodes:
            return self
        inv = self.invariants
        visits: Dict[Tuple[int, int], int] = {}
        queued: Set[Tuple[int, int]] = set()
        work = deque()
        #: Caller blocks to requeue when a function's invariants move
        #: (their fallthrough depth depends on the callee's RET depth).
        ret_deps: Dict[int, Set[Tuple[int, int]]] = {}

        def exit_depth_of(callee: int):
            # Derived from the *current* invariants — the same
            # definition the checker uses, so at the fixpoint both
            # compute identical post-call states.
            return self._checked_exit_depth(inv, callee)

        def push(key: Tuple[int, int], state: AbsState) -> None:
            old = inv.get(key)
            if old is None:
                new = state.copy()
            else:
                new = old.join(state)
                count = visits.get(key, 0)
                if count >= VISIT_CAP:
                    new = AbsState.top(depth=None)
                elif count >= WIDEN_AFTER:
                    new = old.widen(new)
                if new == old:
                    return
            inv[key] = new
            visits[key] = visits.get(key, 0) + 1
            if key not in queued:
                queued.add(key)
                work.append(key)
            # A moved invariant can move the function's RET depth.
            for dep in ret_deps.get(key[0], ()):
                if dep not in queued and dep in inv:
                    queued.add(dep)
                    work.append(dep)

        push((self.entry, self.entry), AbsState.top(Interval(0, 0)))
        while work:
            key = work.popleft()
            queued.discard(key)
            fn, start = key
            node = self.cfg.nodes.get(start)
            if node is None:
                continue
            flows = self._block_flows(fn, node, inv[key], exit_depth_of)
            # Register return dependencies *before* pushing the callee
            # entries, so the callee's very first invariant already
            # requeues this block for its fallthrough flow.
            for callee, _ in flows.calls:
                ret_deps.setdefault(callee, set()).add(key)
            for callee in flows.pending or ():
                ret_deps.setdefault(callee, set()).add(key)
            for target, state in flows.succs:
                push(target, state)
            for callee, state in flows.calls:
                push((callee, callee), state)

        self._collect_facts()
        return self

    def _collect_facts(self) -> None:
        """One pass over the stable invariants: joined per-site facts
        plus the final narrowed indirect-target sets."""
        final_targets: Dict[int, Set[int]] = {}
        narrowed_sites: Set[int] = set()

        def exit_depth_of(callee: int):
            return self._checked_exit_depth(self.invariants, callee)

        for (fn, start), state in self.invariants.items():
            node = self.cfg.nodes[start]

            def on_ins(ins, st):
                kind = _SITE_KINDS.get(ins.mnemonic)
                if kind is not None:
                    access, depth = _access_fact(st, ins)
                    fact = self.site_facts.setdefault(
                        ins.address, SiteFact(kind=kind))
                    fact.absorb(access, depth)

            self._block_flows(fn, node, state, exit_depth_of,
                              on_ins=on_ins)
            site = node.indirect_site
            if site is not None:
                walk = state.copy()
                for ins in node.block.instructions[:-1]:
                    transfer(walk, ins, self.flash)
                targets, narrowed = self._narrow_indirect(node, walk)
                final_targets.setdefault(site, set()).update(targets)
                if narrowed:
                    narrowed_sites.add(site)
        for site, targets in final_targets.items():
            if site in narrowed_sites and \
                    set(self.base_targets.get(site, ())) != targets:
                self.indirect_targets[site] = tuple(sorted(targets))

    def _checked_exit_depth(self, inv: Dict[Tuple[int, int], AbsState],
                            callee: int):
        found = False
        joined: Optional[Interval] = None
        for (fn, start), state in inv.items():
            if fn != callee:
                continue
            node = self.cfg.nodes.get(start)
            if node is None or \
                    node.block.instructions[-1].mnemonic not in \
                    ("RET", "RETI"):
                continue
            walk = state.copy()
            for ins in node.block.instructions:
                transfer(walk, ins, self.flash)
            found = True
            if walk.depth is None:
                return None
            joined = walk.depth if joined is None \
                else joined.join(walk.depth)
        return joined if found else "missing"


def resolve_indirect_targets(items: Sequence, entry: int,
                             labels: Optional[Dict[str, int]] = None) \
        -> Dict[int, Tuple[int, ...]]:
    """Dataflow-narrowed targets for indirect sites (cfg consumer)."""
    return DataflowAnalysis(items, entry, labels).run().indirect_targets


# -- elision claims and certificates ---------------------------------------------

#: Claim names, by site kind they may attach to.
CLAIM_KINDS = {"heap": "MEM_INDIRECT", "stack": "MEM_INDIRECT",
               "pop": "STACK_POP"}


def _claim_for(fact: SiteFact, heap_high: int,
               memory_size: int) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """The strongest provable claim at a site, with its proof steps."""
    if fact.visits == 0:
        return None
    if fact.kind == "STACK_POP":
        if fact.depth is not None and fact.depth.lo >= 1:
            return "pop", (
                f"stack depth in [{fact.depth.lo}, {fact.depth.hi}] at "
                f"the POP for every reachable state",
                "depth >= 1: the pop cannot underflow, so "
                "sp+1 < p_u holds at any region placement")
        return None
    access = fact.access
    if access is None:
        return None
    if access.base == "abs":
        if RAM_START <= access.iv.lo and access.iv.hi < heap_high:
            return "heap", (
                f"effective address in [{access.iv.lo:#06x}, "
                f"{access.iv.hi:#06x}] for every reachable state",
                f"contained in the logical heap [{RAM_START:#06x}, "
                f"{heap_high:#06x}): the heap arm is always taken and "
                "p_l <= p_l + (addr - ram_start) < p_h by layout")
        return None
    # SP-relative: address = logical SP + offset.
    if fact.depth is None:
        return None
    off, depth = access.iv, fact.depth
    if off.lo >= 1 and off.hi <= depth.lo and \
            depth.hi - off.lo <= memory_size - 1 - heap_high:
        return "stack", (
            f"address = SP + [{off.lo}, {off.hi}] with stack depth in "
            f"[{depth.lo}, {depth.hi}]",
            "1 <= offset <= depth: the access stays inside the live "
            "stack, which every region placement keeps inside "
            "[p_h, p_u)")
    return None


@dataclass
class ElisionCertificate:
    """A machine-checkable proof that one patched site is in-region.

    ``invariants`` is the full fixpoint annotation — per (function,
    block) abstract states — and is the *entire* proof: the checker
    re-derives everything else (inductiveness, the site fact, the
    claim) from the image and these states alone.
    """

    program: str
    site: int                  # original (pre-naturalization) address
    nat_site: int              # naturalized site address (-1 = unmapped)
    kind: str                  # PatchKind name the claim attaches to
    claim: str                 # "heap" | "stack" | "pop"
    geometry: Tuple[int, int, int]  # (ram_start, heap_high, memory_size)
    fact: dict                 # serialized site fact
    steps: Tuple[str, ...]     # human-readable proof narration
    invariants: dict           # {fn: {block: serialized AbsState}}

    def to_obj(self) -> dict:
        return {"program": self.program, "site": self.site,
                "nat_site": self.nat_site, "kind": self.kind,
                "claim": self.claim, "geometry": list(self.geometry),
                "fact": self.fact, "steps": list(self.steps),
                "invariants": self.invariants}

    @classmethod
    def from_obj(cls, obj: dict) -> "ElisionCertificate":
        return cls(program=obj["program"], site=int(obj["site"]),
                   nat_site=int(obj["nat_site"]), kind=obj["kind"],
                   claim=obj["claim"],
                   geometry=tuple(int(g) for g in obj["geometry"]),
                   fact=obj["fact"], steps=tuple(obj["steps"]),
                   invariants=obj["invariants"])


def _serialize_fact(fact: SiteFact) -> dict:
    return {
        "kind": fact.kind,
        "access": None if fact.access is None
        else [fact.access.base, fact.access.iv.lo, fact.access.iv.hi],
        "depth": None if fact.depth is None
        else [fact.depth.lo, fact.depth.hi],
    }


def _parse_fact_obj(obj: dict) -> Tuple[Optional[Word],
                                        Optional[Interval]]:
    access = obj.get("access")
    word = None if access is None else \
        Word(access[0], Interval(int(access[1]), int(access[2])))
    depth = obj.get("depth")
    iv = None if depth is None else Interval(int(depth[0]),
                                             int(depth[1]))
    return word, iv


def program_certificates(program) -> Dict[int, ElisionCertificate]:
    """Run the engine over *program* and emit a certificate for every
    site whose in-region proof went through.  Keyed by original site
    address; ``nat_site`` is filled in by the image layer."""
    analysis = DataflowAnalysis(program.items, program.entry,
                                program.symbols.labels).run()
    heap_high = RAM_START + program.symbols.heap_size
    inv_obj: Dict[str, Dict[str, dict]] = {}
    for (fn, start), state in sorted(analysis.invariants.items()):
        inv_obj.setdefault(str(fn), {})[str(start)] = state.to_obj()
    certs: Dict[int, ElisionCertificate] = {}
    for address in sorted(analysis.site_facts):
        fact = analysis.site_facts[address]
        claim = _claim_for(fact, heap_high, MEMORY_SIZE)
        if claim is None:
            continue
        name, steps = claim
        certs[address] = ElisionCertificate(
            program=program.name, site=address, nat_site=-1,
            kind=fact.kind, claim=name,
            geometry=(RAM_START, heap_high, MEMORY_SIZE),
            fact=_serialize_fact(fact), steps=steps,
            invariants=inv_obj)
    return certs


def verify_certificate(program, cert: ElisionCertificate) -> List[str]:
    """Independently re-derive *cert*'s proof from *program* alone.

    Checks, in order: geometry against the image's symbol list, the
    site's existence and kind, the entry condition, inductiveness of
    every carried invariant (one transfer pass — the producer's
    fixpoint is not trusted), and finally that the invariants imply the
    carried site fact and the site fact entails the claim.  Returns a
    list of precise error strings (empty = valid).
    """
    errors: List[str] = []
    heap_high = RAM_START + program.symbols.heap_size
    if tuple(cert.geometry) != (RAM_START, heap_high, MEMORY_SIZE):
        return [f"geometry {tuple(cert.geometry)} does not match the "
                f"image ({RAM_START}, {heap_high}, {MEMORY_SIZE})"]
    if cert.claim not in CLAIM_KINDS:
        return [f"unknown claim {cert.claim!r}"]
    if CLAIM_KINDS[cert.claim] != cert.kind:
        return [f"claim {cert.claim!r} cannot attach to a "
                f"{cert.kind} site"]
    analysis = DataflowAnalysis(program.items, program.entry,
                                program.symbols.labels)
    site_ins = analysis.instructions.get(cert.site)
    if site_ins is None or _SITE_KINDS.get(site_ins.mnemonic) != cert.kind:
        return [f"site {cert.site:#06x} is not a {cert.kind} "
                f"instruction in this image"]
    # Parse the carried fixpoint annotation.
    inv: Dict[Tuple[int, int], AbsState] = {}
    try:
        for fn, blocks in cert.invariants.items():
            for start, obj in blocks.items():
                key = (int(fn), int(start))
                if key[1] not in analysis.cfg.nodes:
                    errors.append(
                        f"invariant names unknown block {key[1]:#06x}")
                    continue
                inv[key] = AbsState.from_obj(obj)
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        return [f"malformed invariant: {exc}"]
    if errors:
        return errors
    entry_key = (program.entry, program.entry)
    if entry_key not in inv:
        return [f"no invariant at the program entry "
                f"{program.entry:#06x}"]
    if not AbsState.top(Interval(0, 0)).leq(inv[entry_key]):
        errors.append("entry invariant does not cover the boot state "
                      "(all-unknown registers, depth 0)")

    def exit_depth_of(callee: int):
        return analysis._checked_exit_depth(inv, callee)

    # Inductiveness: one transfer pass over every carried invariant.
    for key in sorted(inv):
        fn, start = key
        node = analysis.cfg.nodes[start]
        flows = analysis._block_flows(fn, node, inv[key], exit_depth_of)
        for target, state in flows.succs:
            if target not in inv:
                errors.append(
                    f"block {start:#06x} flows to {target[1]:#06x} "
                    f"(fn {target[0]:#06x}) which carries no invariant")
            elif not state.leq(inv[target]):
                errors.append(
                    f"not inductive: out-state of block {start:#06x} "
                    f"exceeds the invariant at {target[1]:#06x}")
        for callee, state in flows.calls:
            target = (callee, callee)
            if target not in inv:
                errors.append(
                    f"call at block {start:#06x} reaches "
                    f"{callee:#06x} which carries no invariant")
            elif not state.leq(inv[target]):
                errors.append(
                    f"not inductive: call-entry state from block "
                    f"{start:#06x} exceeds the invariant at "
                    f"{callee:#06x}")
    if errors:
        return errors
    # Re-derive the site fact from the invariants alone.
    derived = SiteFact(kind=cert.kind)
    for (fn, start), state in inv.items():
        node = analysis.cfg.nodes[start]
        if not (node.block.start <= cert.site < node.block.end):
            continue
        walk = state.copy()
        for ins in node.block.instructions:
            if ins.address == cert.site:
                access, depth = _access_fact(walk, ins)
                derived.absorb(access, depth)
            transfer(walk, ins, analysis.flash)
    if derived.visits == 0:
        return [f"site {cert.site:#06x} is unreachable under the "
                f"carried invariants (nothing to prove)"]
    try:
        claimed_access, claimed_depth = _parse_fact_obj(cert.fact)
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        return [f"malformed site fact: {exc}"]
    if claimed_access is not None and \
            not leq_word(derived.access, claimed_access):
        errors.append("derived access fact exceeds the one the "
                      "certificate claims")
    if claimed_depth is not None and \
            not leq_depth(derived.depth, claimed_depth):
        errors.append("derived depth fact exceeds the one the "
                      "certificate claims")
    checked = SiteFact(kind=cert.kind, access=claimed_access,
                       depth=claimed_depth, visits=1)
    result = _claim_for(checked, heap_high, MEMORY_SIZE)
    if result is None or result[0] != cert.claim:
        errors.append(
            f"claim {cert.claim!r} does not follow from the site fact "
            f"{cert.fact!r} at geometry {tuple(cert.geometry)}")
    return errors


# -- image-level integration ------------------------------------------------------

def image_certificates(image) -> Dict[str, Dict[int, ElisionCertificate]]:
    """Certificates for every task of *image*, keyed by task name then
    naturalized site address.  Memoized on the image object (images are
    immutable once linked)."""
    cached = getattr(image, "_elision_certs", None)
    if cached is not None:
        return cached
    certs: Dict[str, Dict[int, ElisionCertificate]] = {}
    for task in image.tasks:
        natural = task.natural
        nat_by_original = {
            site.original.address: nat_address
            for nat_address, site in natural.sites.items()}
        per_task: Dict[int, ElisionCertificate] = {}
        for original, cert in \
                program_certificates(natural.program).items():
            nat_address = nat_by_original.get(original)
            if nat_address is None:
                continue
            cert.nat_site = nat_address
            per_task[nat_address] = cert
        certs[task.name] = per_task
    image._elision_certs = certs
    return certs


def validated_elisions(image, config) -> Dict[int, str]:
    """``{naturalized site: claim}`` for every certificate that passes
    the independent checker *and* matches the node's geometry — the
    only table the JIT tiers may elide from."""
    key = (config.ram_start, config.memory_size)
    cache = getattr(image, "_validated_elisions", None)
    if cache is None:
        cache = image._validated_elisions = {}
    if key in cache:
        return cache[key]
    table: Dict[int, str] = {}
    for task in image.tasks:
        heap_high = config.ram_start + task.heap_size
        for nat_address, cert in \
                image_certificates(image).get(task.name, {}).items():
            if tuple(cert.geometry) != (config.ram_start, heap_high,
                                        config.memory_size):
                continue
            site = task.natural.sites.get(nat_address)
            if site is None or site.kind.name != cert.kind or \
                    site.original.address != cert.site:
                continue
            if verify_certificate(task.natural.program, cert):
                continue
            table[nat_address] = cert.claim
    cache[key] = table
    return table


def analyze_image(image) -> List[dict]:
    """Per-task dataflow summary rows (the ``sensmart analyze`` data).

    Counts patched sites, indirect-control resolution quality, and the
    provably-safe (certificate-carrying) sites by claim.
    """
    rows: List[dict] = []
    certs = image_certificates(image)
    for task in image.tasks:
        program = task.natural.program
        analysis = DataflowAnalysis(program.items, program.entry,
                                    program.symbols.labels).run()
        indirect = len(analysis.base_targets)
        unresolved = len(analysis.cfg.unresolved_indirect)
        narrowed = len(analysis.indirect_targets)
        resolved_after = len(set(analysis.cfg.unresolved_indirect)
                             - set(analysis.indirect_targets))
        per_claim = {"heap": 0, "stack": 0, "pop": 0}
        for cert in certs.get(task.name, {}).values():
            per_claim[cert.claim] += 1
        rows.append({
            "program": task.name,
            "sites": len(task.natural.sites),
            "indirect_sites": indirect,
            "dataflow_narrowed": narrowed,
            "unresolved_indirect": resolved_after,
            "certificates": dict(per_claim),
            "certificates_total": sum(per_claim.values()),
        })
    return rows
