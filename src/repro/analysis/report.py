"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width text table (the experiments' output format)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_format_cell(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
