"""Multi-node composition: links and lockstep network simulation."""

from .network import Link, Network

__all__ = ["Link", "Network"]
