"""Event-driven multi-node co-simulation over SensorNode radios.

The paper's setting is *networked* sensor applications; this module
wires several :class:`~repro.kernel.SensorNode` instances together
through lossy, delayed byte links — one node's TX log feeds another's
RX queue.

Timing model.  Every node's CPU is a :class:`~repro.sim.SimClock`; all
clocks share one epoch (cycle 0 = network start), so cycle counts are
directly comparable across nodes.  A byte transmitted at cycle ``T``
over a link with latency ``L`` arrives at exactly ``T + L`` — the ferry
buffers the byte in the *receiver's* arrival inbox and schedules a
drain event at that due cycle, so arrival lands with cycle precision no
matter how coarsely the nodes are interleaved, and a byte is never
delivered early.

Arrival order is canonical: the inbox is a min-heap keyed by
``(due_cycle, link order, byte index, copy)``, so two bytes landing at
the same cycle from different links always enter the RX queue in link
registration order — independent of *when* the ferry happened to see
them.  That invariance is what lets the fleet sharding layer
(:mod:`repro.fleet`) split a network across worker processes and still
produce bit-identical results for every shard count.

Scheduling is conservative event-driven co-simulation: each step picks
the node that is furthest behind in simulated time — a lazy min-heap
keyed by node cycle count, so a pick is O(log N) instead of the old
O(N) scan — and runs it to its *horizon* — the earliest cycle at which
any other node could still affect it.  A sender that is idle (sleeping
or kernel-parked) cannot transmit before its own next event, so the
horizon over a link is ``earliest-possible-TX + latency``; idle-heavy
topologies therefore advance in strides of whole sleep periods instead
of fixed quanta, and sleeping nodes skip time instead of spinning.
After a node runs, only *its* outbound links are ferried — the other
nodes' TX logs cannot have changed.

For sharded co-simulation the same loop honors per-node *external
bounds* (:attr:`Network.ext_bounds`): a shard worker caps each of its
nodes at the earliest cycle a remote shard could still influence it and
parks the node there until the next cross-shard bulletin raises the
bound.

The pre-heap O(N)-scan scheduler survives as :meth:`Network.run_scan`
and the pre-refactor fixed-quantum scheduler as
:meth:`Network.run_lockstep` — both are correctness/wall-clock
baselines for tests and ``benchmarks/bench_network.py`` (delivery is
inbox-scheduled in all modes, so the baselines are merely slower, not
differently-timed).

Loss is deterministic, driven by a per-link LFSR, so network runs
reproduce exactly.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ReproError
from ..kernel.node import SensorNode
from ..sim.events import INFINITY

DEFAULT_QUANTUM_CYCLES = 10_000

#: Sentinel distinguishing "not passed" from any user value for the
#: deprecated ``until_all_finished`` parameter.
_UNSET = object()


@dataclass
class Link:
    """A unidirectional byte link between two nodes' radios.

    Besides deterministic loss, a link can corrupt bytes (one bit
    XORed per hit) and duplicate bytes (delivered twice at the same
    arrival cycle).  Each fault kind draws from its *own* 16-bit LFSR
    stream, so enabling corruption or duplication never perturbs which
    bytes the loss stream drops — campaigns can dial one knob at a
    time.  Truncated packets need no separate stream in a byte-link
    model: a run of tail bytes eaten by the loss stream *is* a
    truncation.

    Loss decisions are taken per byte, in ferry order — the order the
    sender clocked the bytes out — identically under the event-driven
    and lockstep schedulers (pinned by a regression test).

    ``order`` is the link's tie-break rank for same-cycle arrivals at a
    shared receiver; :meth:`Network.add_link` assigns registration
    order, and the fleet layer assigns global topology order so the
    rank survives partitioning.
    """

    source: str
    destination: str
    latency_cycles: int = 2_000
    loss_permille: int = 0      # deterministic loss rate, 0..1000
    corrupt_permille: int = 0   # deterministic bit-flip rate, 0..1000
    dup_permille: int = 0       # deterministic duplication rate, 0..1000
    order: Optional[int] = None  # same-cycle arrival tie-break rank
    _tx_cursor: int = 0
    _lfsr: int = 0xB5AD         # loss stream
    _corrupt_lfsr: int = 0x9C41  # corruption stream (independent)
    _dup_lfsr: int = 0x5ED1      # duplication stream (independent)
    delivered: int = 0
    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    #: Ferry-order index (0-based, counting every byte the sender
    #: clocked out on this link) of each dropped byte.
    drop_positions: List[int] = field(default_factory=list)
    _byte_index: int = 0
    #: Bytes the sender's bounded TX ring evicted before the ferry
    #: read them (stays 0 as long as ferrying keeps up with the ring).
    log_missed: int = 0
    #: Receiver-clock cycle at which each delivered byte arrived
    #: (always the sender's TX cycle plus ``latency_cycles``).
    arrival_cycles: List[int] = field(default_factory=list)

    @staticmethod
    def _step_lfsr(state: int) -> int:
        bit = ((state >> 0) ^ (state >> 2) ^ (state >> 3)
               ^ (state >> 5)) & 1
        return ((state >> 1) | (bit << 15)) & 0xFFFF

    def _lose(self) -> bool:
        if self.loss_permille <= 0:
            return False
        self._lfsr = self._step_lfsr(self._lfsr)
        return (self._lfsr % 1000) < self.loss_permille

    def _corrupt(self, value: int) -> int:
        """One deterministic bit flip when the corruption stream hits."""
        if self.corrupt_permille <= 0:
            return value
        self._corrupt_lfsr = self._step_lfsr(self._corrupt_lfsr)
        if (self._corrupt_lfsr % 1000) >= self.corrupt_permille:
            return value
        self._corrupt_lfsr = self._step_lfsr(self._corrupt_lfsr)
        self.corrupted += 1
        return value ^ (1 << (self._corrupt_lfsr % 8))

    def _duplicate(self) -> bool:
        if self.dup_permille <= 0:
            return False
        self._dup_lfsr = self._step_lfsr(self._dup_lfsr)
        if (self._dup_lfsr % 1000) >= self.dup_permille:
            return False
        self.duplicated += 1
        return True


class _Inbox:
    """Canonically ordered pending arrivals for one receiver node.

    Entries are ``(due, link_order, byte_index, copy, value, link)``;
    the first four fields are unique per entry, so heap order never
    compares ``value`` or ``link``.  ``armed`` tracks due cycles that
    already have a drain event scheduled on the receiver's queue.
    """

    __slots__ = ("heap", "armed")

    def __init__(self):
        self.heap: List[Tuple] = []
        self.armed: Set[int] = set()


class Network:
    """Co-simulates several nodes and ferries radio bytes cycle-exactly.

    ``quantum_cycles`` only parameterizes the legacy
    :meth:`run_lockstep` baseline; the event-driven :meth:`run` derives
    its strides from link latencies and node event queues.
    """

    def __init__(self, quantum_cycles: int = DEFAULT_QUANTUM_CYCLES):
        self.quantum_cycles = quantum_cycles
        self.nodes: Dict[str, SensorNode] = {}
        self.links: List[Link] = []
        self._link_index: Dict[Tuple[str, str], Link] = {}
        self._inbound: Dict[str, List[Link]] = {}
        self._outbound: Dict[str, List[Link]] = {}
        self._names: Dict[int, str] = {}  # id(node) -> name, O(1) reverse
        self._inboxes: Dict[str, _Inbox] = {}
        #: Per-node conservative caps set by a fleet shard worker: the
        #: earliest cycle a *remote* shard could still influence the
        #: node.  A bounded node parks at its cap instead of running to
        #: ``max_cycles``; raising the cap (next bulletin round) lets
        #: the next :meth:`run` call continue it.  Empty outside fleet
        #: use.
        self.ext_bounds: Dict[str, int] = {}

    # -- topology ---------------------------------------------------------------

    def add_node(self, name: str, node: SensorNode) -> SensorNode:
        if name in self.nodes:
            raise ReproError(f"duplicate node name {name!r}")
        self.nodes[name] = node
        self._names[id(node)] = name
        node.net_name = name  # stamped for O(1) reverse lookup/debugging
        return node

    def add_link(self, link: Link) -> Link:
        """Register *link*, maintaining the (source, destination) index."""
        for name in (link.source, link.destination):
            if name not in self.nodes:
                raise ReproError(f"unknown node {name!r}")
        if link.latency_cycles < 0:
            raise ReproError(
                f"negative link latency {link.latency_cycles} on "
                f"{link.source!r} -> {link.destination!r}")
        key = (link.source, link.destination)
        if key in self._link_index:
            raise ReproError(
                f"duplicate link {link.source!r} -> {link.destination!r}")
        if link.order is None:
            link.order = len(self.links)
        self.links.append(link)
        self._link_index[key] = link
        self._inbound.setdefault(link.destination, []).append(link)
        self._outbound.setdefault(link.source, []).append(link)
        return link

    def connect(self, source: str, destination: str,
                latency_cycles: int = 2_000,
                loss_permille: int = 0,
                corrupt_permille: int = 0,
                dup_permille: int = 0,
                bidirectional: bool = False) -> None:
        self.add_link(Link(source=source, destination=destination,
                           latency_cycles=latency_cycles,
                           loss_permille=loss_permille,
                           corrupt_permille=corrupt_permille,
                           dup_permille=dup_permille))
        if bidirectional:
            self.add_link(Link(source=destination, destination=source,
                               latency_cycles=latency_cycles,
                               loss_permille=loss_permille,
                               corrupt_permille=corrupt_permille,
                               dup_permille=dup_permille))

    # -- execution -----------------------------------------------------------------

    def run(self, max_cycles: int = 100_000_000,
            until_all_finished=_UNSET) -> None:
        """Event-driven co-simulation: always advance the lagging node.

        The unfinished nodes sit in a lazy min-heap keyed by cycle
        count.  Each iteration pops the lagging node, runs it to the
        earliest cycle at which any inbound sender could still reach it
        (its horizon, capped by :attr:`ext_bounds` when a fleet shard
        set one), ferries the links *it* feeds, and pushes it back.
        Because the popped node trails every sender, its horizon always
        lies ahead of it, so every iteration makes progress until all
        nodes finish, park at an external bound, or exhaust
        *max_cycles*.

        .. deprecated:: PR9
           *until_all_finished* never had an effect here (both settings
           stop at the same point); passing it now raises a
           :class:`DeprecationWarning`.  :meth:`run_lockstep` still
           honors its own flag.
        """
        if until_all_finished is not _UNSET:
            warnings.warn(
                "Network.run(until_all_finished=...) is deprecated and "
                "ignored: run() always stops once every node is "
                "finished, parked, or at max_cycles",
                DeprecationWarning, stacklevel=2)
        self._ferry()
        bounds = self.ext_bounds
        heap: List[Tuple[int, int, str]] = []
        for index, (name, node) in enumerate(self.nodes.items()):
            if not node.finished:
                heap.append((node.cpu.cycles, index, name))
        heapq.heapify(heap)
        while heap:
            cycles0, index, name = heapq.heappop(heap)
            node = self.nodes[name]
            if node.finished:
                continue
            actual = node.cpu.cycles
            limit = min(max_cycles, bounds.get(name, max_cycles))
            if actual >= limit:
                continue  # parked at an external bound (or budget)
            if actual != cycles0:  # stale entry (drift, reboot): rekey
                heapq.heappush(heap, (actual, index, name))
                continue
            horizon = self._horizon(name, node, limit)
            if horizon <= actual:
                # An inbound sender pinned at an external bound (or
                # behind us and parked) caps our horizon at or before
                # our own cycle: we cannot safely advance.  Park; the
                # next bulletin round raises the bound.  The *globally*
                # lagging node never lands here (every sender is at or
                # ahead of it and latencies are >= 1), so rounds always
                # progress.  Without external bounds the legacy floor
                # keeps zero-latency topologies live.
                if bounds:
                    continue
                horizon = actual + 1
            node.run(max_cycles=horizon)
            if node.cpu.cycles <= actual and not node.finished:
                raise ReproError(
                    "network made no progress (node stuck at cycle "
                    f"{actual})")
            self._ferry_from(name)
            if not node.finished:
                heapq.heappush(heap, (node.cpu.cycles, index, name))

    def _horizon(self, name: str, node: SensorNode, limit: int) -> int:
        """Earliest cycle another node could still influence *node*.

        In-flight bytes are already drain events on the node's own
        queue, so only *future* transmissions matter: a sender cannot
        put a byte on the air before it next executes an instruction,
        which for an idle (sleeping/parked) sender is its own next
        event.  Remote shards are accounted separately through *limit*
        (= ``min(max_cycles, ext_bounds[name])``).
        """
        horizon = limit
        for link in self._inbound.get(name, ()):
            src = self.nodes[link.source]
            tx = self._earliest_tx(src)
            if tx == INFINITY:
                continue
            horizon = min(horizon, int(tx) + link.latency_cycles)
        return horizon

    @staticmethod
    def _earliest_tx(src: SensorNode) -> float:
        if src.finished:
            return INFINITY
        cpu = src.cpu
        if cpu.sleeping:
            return max(cpu.cycles, cpu.events.next_due)
        return cpu.cycles

    def _name_of(self, node: SensorNode) -> str:
        try:
            return self._names[id(node)]
        except KeyError:
            raise ReproError("node not registered") from None

    def run_scan(self, max_cycles: int = 100_000_000) -> None:
        """Pre-heap reference scheduler: O(N) lagging-node scan.

        Kept as the correctness baseline the heap-based :meth:`run` is
        differentially tested against (and for A/B benchmarking).
        Ignores :attr:`ext_bounds`.
        """
        while True:
            self._ferry()
            lagging: Optional[SensorNode] = None
            for node in self.nodes.values():
                if node.finished or node.cpu.cycles >= max_cycles:
                    continue
                if lagging is None or node.cpu.cycles < lagging.cpu.cycles:
                    lagging = node
            if lagging is None:
                return
            name = self._name_of(lagging)
            before = lagging.cpu.cycles
            horizon = max(self._horizon(name, lagging, max_cycles),
                          before + 1)
            lagging.run(max_cycles=horizon)
            if lagging.cpu.cycles <= before and not lagging.finished:
                raise ReproError(
                    "network made no progress (node stuck at cycle "
                    f"{before})")

    def run_lockstep(self, max_cycles: int = 100_000_000,
                     until_all_finished: bool = True) -> None:
        """Fixed-quantum lockstep baseline (pre-refactor scheduler).

        Advances every node ``quantum_cycles`` per pass and ferries
        between passes.  Byte arrivals are still inbox-scheduled on the
        receivers' queues, so delivery is never early — but an idle
        node is visited once per quantum, which is exactly the overhead
        the event-driven :meth:`run` eliminates.  Unlike :meth:`run`,
        the *until_all_finished* flag is honored here: ``False`` stops
        as soon as a pass makes no progress even if nodes are alive.
        """
        while True:
            active = [n for n in self.nodes.values() if not n.finished]
            if until_all_finished and not active:
                return
            if all(n.finished or n.cpu.cycles >= max_cycles
                   for n in self.nodes.values()):
                return  # everyone is done or out of budget
            progressed = False
            for node in self.nodes.values():
                if node.finished or node.cpu.cycles >= max_cycles:
                    continue
                target = min(node.cpu.cycles + self.quantum_cycles,
                             max_cycles)
                before = node.cpu.cycles
                node.run(max_cycles=target)
                if node.cpu.cycles > before or node.finished:
                    progressed = True
            self._ferry()
            if not progressed:
                return  # everyone is stuck (e.g. waiting on RX forever)

    # -- ferrying -------------------------------------------------------------------

    def _ferry(self) -> None:
        """Ferry freshly transmitted bytes on every link."""
        for link in self.links:
            self._ferry_link(link)

    def _ferry_from(self, name: str) -> None:
        """Ferry only the links *name* feeds (its TX log just changed)."""
        for link in self._outbound.get(name, ()):
            self._ferry_link(link)

    def _ferry_link(self, link: Link) -> None:
        radio = self.nodes[link.source].radio
        fresh, missed = radio.tx_since(link._tx_cursor)
        link.log_missed += missed
        link._tx_cursor = radio.tx_seq
        if fresh:
            self.ferry_entries(link, fresh)

    def ferry_entries(self, link: Link,
                      fresh: List[Tuple[int, int, int]]) -> None:
        """Run *fresh* ``(seq, value, tx_cycle)`` entries through
        *link*'s loss/corruption/duplication streams and buffer the
        survivors in the receiver's arrival inbox.

        This is the single delivery path for local links *and* for
        cross-shard links (where the fleet worker owning the receiver
        feeds entries shipped over a bulletin); per-byte stream draws
        happen in ferry order either way, so fault decisions are
        independent of partitioning.
        """
        for _, value, tx_cycle in fresh:
            index = link._byte_index
            link._byte_index += 1
            if link._lose():
                link.dropped += 1
                link.drop_positions.append(index)
                continue
            value = link._corrupt(value)
            copies = 2 if link._duplicate() else 1
            due = tx_cycle + link.latency_cycles
            for copy in range(copies):
                self._push_arrival(link, due, index, copy, value)

    def _push_arrival(self, link: Link, due: int, index: int,
                      copy: int, value: int) -> None:
        name = link.destination
        inbox = self._inboxes.get(name)
        if inbox is None:
            inbox = self._inboxes[name] = _Inbox()
        heapq.heappush(inbox.heap, (due, link.order, index, copy,
                                    value, link))
        if due not in inbox.armed:
            inbox.armed.add(due)
            self.nodes[name].cpu.events.schedule(
                due, lambda name=name, due=due: self._drain(name, due))

    def _drain(self, name: str, due: int) -> None:
        """Deliver every buffered arrival due by *due*, in canonical
        ``(due, link order, byte index)`` order."""
        inbox = self._inboxes[name]
        inbox.armed.discard(due)
        heap = inbox.heap
        radio = self.nodes[name].radio
        while heap and heap[0][0] <= due:
            entry_due, _, _, _, value, link = heapq.heappop(heap)
            radio.rx_queue.append(value)
            link.delivered += 1
            link.arrival_cycles.append(entry_due)

    def settle_inboxes(self) -> None:
        """Deliver every still-buffered arrival, in canonical order.

        Call once at end of simulation, before reading final state.
        A node that halts stops running its event queue, so a byte
        ferried near (or after) the halt may sit in the inbox with its
        drain event never firing — and *whether* it was still in
        flight at the halt depends on how coarsely the scheduler
        interleaved sender and receiver, which the fleet layer varies
        with shard count.  Physically the radio latches bytes whether
        or not the CPU still executes, so the deterministic rule is:
        every byte ferried by end of simulation lands in the RX queue,
        in ``(due, link order, byte index)`` order.  That makes final
        delivery counts and RX residue a pure function of the (shard-
        invariant) execution, not of scheduler interleaving.
        """
        for name, inbox in self._inboxes.items():
            heap = inbox.heap
            if not heap:
                continue
            radio = self.nodes[name].radio
            while heap:
                entry_due, _, _, _, value, link = heapq.heappop(heap)
                radio.rx_queue.append(value)
                link.delivered += 1
                link.arrival_cycles.append(entry_due)
            inbox.armed.clear()

    def reset_node_io(self, name: str) -> None:
        """Forget in-flight traffic after *name* cold-restarts.

        A reboot replaces the node's CPU — its event queue (with any
        armed drain events) and radio TX log die with it.  Pending
        inbox arrivals are therefore lost (exactly as scheduled
        deliveries died pre-inbox), and every link sourced at the node
        rewinds its TX cursor because the fresh radio restarts from
        sequence 0.
        """
        inbox = self._inboxes.get(name)
        if inbox is not None:
            inbox.heap.clear()
            inbox.armed.clear()
        for link in self._outbound.get(name, ()):
            link._tx_cursor = 0

    # -- inspection ------------------------------------------------------------------

    def link_between(self, source: str,
                     destination: str) -> Optional[Link]:
        return self._link_index.get((source, destination))

    def stats(self) -> List[Tuple[str, str, int, int]]:
        return [(link.source, link.destination, link.delivered,
                 link.dropped) for link in self.links]
