"""Event-driven multi-node co-simulation over SensorNode radios.

The paper's setting is *networked* sensor applications; this module
wires several :class:`~repro.kernel.SensorNode` instances together
through lossy, delayed byte links — one node's TX log feeds another's
RX queue.

Timing model.  Every node's CPU is a :class:`~repro.sim.SimClock`; all
clocks share one epoch (cycle 0 = network start), so cycle counts are
directly comparable across nodes.  A byte transmitted at cycle ``T``
over a link with latency ``L`` arrives at exactly ``T + L`` — the ferry
schedules a delivery event on the *receiver's* event queue at that due
cycle, so arrival lands with cycle precision no matter how coarsely the
nodes are interleaved, and a byte is never delivered early.

Scheduling is conservative event-driven co-simulation: each step picks
the node that is furthest behind in simulated time and runs it to its
*horizon* — the earliest cycle at which any other node could still
affect it.  A sender that is idle (sleeping or kernel-parked) cannot
transmit before its own next event, so the horizon over a link is
``earliest-possible-TX + latency``; idle-heavy topologies therefore
advance in strides of whole sleep periods instead of fixed quanta, and
sleeping nodes skip time instead of spinning.

The pre-refactor fixed-quantum scheduler survives as
:meth:`Network.run_lockstep` — it is the wall-clock baseline that
``benchmarks/bench_network.py`` measures the event-driven core against
(delivery is event-scheduled in both modes, so lockstep is merely
slower, not differently-timed on the TX side).

Loss is deterministic, driven by a per-link LFSR, so network runs
reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..kernel.node import SensorNode
from ..sim.events import INFINITY

DEFAULT_QUANTUM_CYCLES = 10_000


@dataclass
class Link:
    """A unidirectional byte link between two nodes' radios.

    Besides deterministic loss, a link can corrupt bytes (one bit
    XORed per hit) and duplicate bytes (delivered twice at the same
    arrival cycle).  Each fault kind draws from its *own* 16-bit LFSR
    stream, so enabling corruption or duplication never perturbs which
    bytes the loss stream drops — campaigns can dial one knob at a
    time.  Truncated packets need no separate stream in a byte-link
    model: a run of tail bytes eaten by the loss stream *is* a
    truncation.

    Loss decisions are taken per byte, in ferry order — the order the
    sender clocked the bytes out — identically under the event-driven
    and lockstep schedulers (pinned by a regression test).
    """

    source: str
    destination: str
    latency_cycles: int = 2_000
    loss_permille: int = 0      # deterministic loss rate, 0..1000
    corrupt_permille: int = 0   # deterministic bit-flip rate, 0..1000
    dup_permille: int = 0       # deterministic duplication rate, 0..1000
    _tx_cursor: int = 0
    _lfsr: int = 0xB5AD         # loss stream
    _corrupt_lfsr: int = 0x9C41  # corruption stream (independent)
    _dup_lfsr: int = 0x5ED1      # duplication stream (independent)
    delivered: int = 0
    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    #: Ferry-order index (0-based, counting every byte the sender
    #: clocked out on this link) of each dropped byte.
    drop_positions: List[int] = field(default_factory=list)
    _byte_index: int = 0
    #: Bytes the sender's bounded TX ring evicted before the ferry
    #: read them (stays 0 as long as ferrying keeps up with the ring).
    log_missed: int = 0
    #: Receiver-clock cycle at which each delivered byte arrived
    #: (always the sender's TX cycle plus ``latency_cycles``).
    arrival_cycles: List[int] = field(default_factory=list)

    @staticmethod
    def _step_lfsr(state: int) -> int:
        bit = ((state >> 0) ^ (state >> 2) ^ (state >> 3)
               ^ (state >> 5)) & 1
        return ((state >> 1) | (bit << 15)) & 0xFFFF

    def _lose(self) -> bool:
        if self.loss_permille <= 0:
            return False
        self._lfsr = self._step_lfsr(self._lfsr)
        return (self._lfsr % 1000) < self.loss_permille

    def _corrupt(self, value: int) -> int:
        """One deterministic bit flip when the corruption stream hits."""
        if self.corrupt_permille <= 0:
            return value
        self._corrupt_lfsr = self._step_lfsr(self._corrupt_lfsr)
        if (self._corrupt_lfsr % 1000) >= self.corrupt_permille:
            return value
        self._corrupt_lfsr = self._step_lfsr(self._corrupt_lfsr)
        self.corrupted += 1
        return value ^ (1 << (self._corrupt_lfsr % 8))

    def _duplicate(self) -> bool:
        if self.dup_permille <= 0:
            return False
        self._dup_lfsr = self._step_lfsr(self._dup_lfsr)
        if (self._dup_lfsr % 1000) >= self.dup_permille:
            return False
        self.duplicated += 1
        return True


class Network:
    """Co-simulates several nodes and ferries radio bytes cycle-exactly.

    ``quantum_cycles`` only parameterizes the legacy
    :meth:`run_lockstep` baseline; the event-driven :meth:`run` derives
    its strides from link latencies and node event queues.
    """

    def __init__(self, quantum_cycles: int = DEFAULT_QUANTUM_CYCLES):
        self.quantum_cycles = quantum_cycles
        self.nodes: Dict[str, SensorNode] = {}
        self.links: List[Link] = []
        self._link_index: Dict[Tuple[str, str], Link] = {}
        self._inbound: Dict[str, List[Link]] = {}

    # -- topology ---------------------------------------------------------------

    def add_node(self, name: str, node: SensorNode) -> SensorNode:
        if name in self.nodes:
            raise ReproError(f"duplicate node name {name!r}")
        self.nodes[name] = node
        return node

    def add_link(self, link: Link) -> Link:
        """Register *link*, maintaining the (source, destination) index."""
        for name in (link.source, link.destination):
            if name not in self.nodes:
                raise ReproError(f"unknown node {name!r}")
        key = (link.source, link.destination)
        if key in self._link_index:
            raise ReproError(
                f"duplicate link {link.source!r} -> {link.destination!r}")
        self.links.append(link)
        self._link_index[key] = link
        self._inbound.setdefault(link.destination, []).append(link)
        return link

    def connect(self, source: str, destination: str,
                latency_cycles: int = 2_000,
                loss_permille: int = 0,
                corrupt_permille: int = 0,
                dup_permille: int = 0,
                bidirectional: bool = False) -> None:
        self.add_link(Link(source=source, destination=destination,
                           latency_cycles=latency_cycles,
                           loss_permille=loss_permille,
                           corrupt_permille=corrupt_permille,
                           dup_permille=dup_permille))
        if bidirectional:
            self.add_link(Link(source=destination, destination=source,
                               latency_cycles=latency_cycles,
                               loss_permille=loss_permille,
                               corrupt_permille=corrupt_permille,
                               dup_permille=dup_permille))

    # -- execution -----------------------------------------------------------------

    def run(self, max_cycles: int = 100_000_000,
            until_all_finished: bool = True) -> None:
        """Event-driven co-simulation: always advance the lagging node.

        Each iteration ferries freshly transmitted bytes (as delivery
        events on the receivers' queues), picks the unfinished node with
        the lowest cycle count, and runs it to the earliest cycle at
        which any inbound sender could still reach it.  Because the
        chosen node trails every sender, that horizon always lies ahead
        of it, so every iteration makes progress until all nodes finish
        or exhaust *max_cycles*.  (*until_all_finished* is accepted for
        API compatibility; both settings stop at that same point.)
        """
        del until_all_finished
        while True:
            self._ferry()
            lagging: Optional[SensorNode] = None
            for node in self.nodes.values():
                if node.finished or node.cpu.cycles >= max_cycles:
                    continue
                if lagging is None or node.cpu.cycles < lagging.cpu.cycles:
                    lagging = node
            if lagging is None:
                return
            horizon = self._horizon(lagging, max_cycles)
            before = lagging.cpu.cycles
            lagging.run(max_cycles=horizon)
            if lagging.cpu.cycles <= before and not lagging.finished:
                raise ReproError(
                    "network made no progress (node stuck at cycle "
                    f"{before})")

    def _horizon(self, node: SensorNode, max_cycles: int) -> int:
        """Earliest cycle another node could still influence *node*.

        In-flight bytes are already events on the node's own queue, so
        only *future* transmissions matter: a sender cannot put a byte
        on the air before it next executes an instruction, which for an
        idle (sleeping/parked) sender is its own next event.
        """
        name = self._name_of(node)
        horizon = max_cycles
        for link in self._inbound.get(name, ()):
            src = self.nodes[link.source]
            tx = self._earliest_tx(src)
            if tx is INFINITY or tx == INFINITY:
                continue
            horizon = min(horizon, int(tx) + link.latency_cycles)
        return max(horizon, node.cpu.cycles + 1)

    @staticmethod
    def _earliest_tx(src: SensorNode) -> float:
        if src.finished:
            return INFINITY
        cpu = src.cpu
        if cpu.sleeping:
            return max(cpu.cycles, cpu.events.next_due)
        return cpu.cycles

    def _name_of(self, node: SensorNode) -> str:
        for name, candidate in self.nodes.items():
            if candidate is node:
                return name
        raise ReproError("node not registered")  # pragma: no cover

    def run_lockstep(self, max_cycles: int = 100_000_000,
                     until_all_finished: bool = True) -> None:
        """Fixed-quantum lockstep baseline (pre-refactor scheduler).

        Advances every node ``quantum_cycles`` per pass and ferries
        between passes.  Byte arrivals are still event-scheduled on the
        receivers' queues, so delivery is never early — but an idle
        node is visited once per quantum, which is exactly the overhead
        the event-driven :meth:`run` eliminates.
        """
        while True:
            active = [n for n in self.nodes.values() if not n.finished]
            if until_all_finished and not active:
                return
            if all(n.finished or n.cpu.cycles >= max_cycles
                   for n in self.nodes.values()):
                return  # everyone is done or out of budget
            progressed = False
            for node in self.nodes.values():
                if node.finished or node.cpu.cycles >= max_cycles:
                    continue
                target = min(node.cpu.cycles + self.quantum_cycles,
                             max_cycles)
                before = node.cpu.cycles
                node.run(max_cycles=target)
                if node.cpu.cycles > before or node.finished:
                    progressed = True
            self._ferry()
            if not progressed:
                return  # everyone is stuck (e.g. waiting on RX forever)

    def _ferry(self) -> None:
        """Schedule delivery events for newly transmitted bytes.

        Arrival is computed from the *sender's* TX cycle: a byte
        transmitted at ``T`` arrives at ``T + latency`` on the
        receiver's clock (same epoch), delivered by an event on the
        receiver's queue — never early, exact to the cycle.
        """
        for link in self.links:
            src = self.nodes[link.source]
            dst = self.nodes[link.destination]
            radio = src.radio
            fresh, missed = radio.tx_since(link._tx_cursor)
            link.log_missed += missed
            link._tx_cursor = radio.tx_seq
            if not fresh:
                continue
            for _, value, tx_cycle in fresh:
                index = link._byte_index
                link._byte_index += 1
                if link._lose():
                    link.dropped += 1
                    link.drop_positions.append(index)
                    continue
                value = link._corrupt(value)
                copies = 2 if link._duplicate() else 1
                due = tx_cycle + link.latency_cycles
                for _copy in range(copies):
                    dst.cpu.events.schedule(
                        due,
                        lambda link=link, dst=dst, value=value, due=due:
                            self._deliver(link, dst, value, due))

    def _deliver(self, link: Link, dst: SensorNode, value: int,
                 due: int) -> None:
        dst.radio.rx_queue.append(value)
        link.delivered += 1
        link.arrival_cycles.append(due)

    # -- inspection ------------------------------------------------------------------

    def link_between(self, source: str,
                     destination: str) -> Optional[Link]:
        return self._link_index.get((source, destination))

    def stats(self) -> List[Tuple[str, str, int, int]]:
        return [(link.source, link.destination, link.delivered,
                 link.dropped) for link in self.links]
