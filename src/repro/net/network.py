"""A small network simulator over SensorNode radios.

The paper's setting is *networked* sensor applications; this module
lets several :class:`~repro.kernel.SensorNode` instances run in
lockstep with their radios wired through lossy, delayed byte links —
one node's TX log feeds another's RX queue.

Timing model: nodes advance in fixed quanta of simulated cycles; bytes
transmitted during a quantum arrive at the receiver after the link
latency (rounded up to the next quantum boundary).  Loss is
deterministic, driven by a per-link LFSR, so network runs reproduce
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..kernel.node import SensorNode

DEFAULT_QUANTUM_CYCLES = 10_000


@dataclass
class _PendingByte:
    value: int
    due_cycle: int  # receiver-local cycle when it arrives


@dataclass
class Link:
    """A unidirectional byte link between two nodes' radios."""

    source: str
    destination: str
    latency_cycles: int = 2_000
    loss_permille: int = 0  # deterministic loss rate, 0..1000
    _tx_cursor: int = 0
    _lfsr: int = 0xB5AD
    in_flight: List[_PendingByte] = field(default_factory=list)
    delivered: int = 0
    dropped: int = 0

    def _lose(self) -> bool:
        if self.loss_permille <= 0:
            return False
        lfsr = self._lfsr
        bit = ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1
        self._lfsr = ((lfsr >> 1) | (bit << 15)) & 0xFFFF
        return (self._lfsr % 1000) < self.loss_permille


class Network:
    """Runs several nodes in lockstep and ferries radio bytes."""

    def __init__(self, quantum_cycles: int = DEFAULT_QUANTUM_CYCLES):
        self.quantum_cycles = quantum_cycles
        self.nodes: Dict[str, SensorNode] = {}
        self.links: List[Link] = []

    # -- topology ---------------------------------------------------------------

    def add_node(self, name: str, node: SensorNode) -> SensorNode:
        if name in self.nodes:
            raise ReproError(f"duplicate node name {name!r}")
        self.nodes[name] = node
        return node

    def connect(self, source: str, destination: str,
                latency_cycles: int = 2_000,
                loss_permille: int = 0,
                bidirectional: bool = False) -> None:
        for name in (source, destination):
            if name not in self.nodes:
                raise ReproError(f"unknown node {name!r}")
        self.links.append(Link(source=source, destination=destination,
                               latency_cycles=latency_cycles,
                               loss_permille=loss_permille))
        if bidirectional:
            self.links.append(Link(source=destination, destination=source,
                                   latency_cycles=latency_cycles,
                                   loss_permille=loss_permille))

    # -- execution -----------------------------------------------------------------

    def run(self, max_cycles: int = 100_000_000,
            until_all_finished: bool = True) -> None:
        """Advance all nodes in lockstep until done or out of budget."""
        while True:
            active = [n for n in self.nodes.values() if not n.finished]
            if until_all_finished and not active:
                return
            if all(n.finished or n.cpu.cycles >= max_cycles
                   for n in self.nodes.values()):
                return  # everyone is done or out of budget
            progressed = False
            for node in self.nodes.values():
                if node.finished or node.cpu.cycles >= max_cycles:
                    continue
                target = min(node.cpu.cycles + self.quantum_cycles,
                             max_cycles)
                before = node.cpu.cycles
                node.run(max_cycles=target)
                if node.cpu.cycles > before or node.finished:
                    progressed = True
            self._ferry()
            if not progressed:
                return  # everyone is stuck (e.g. waiting on RX forever)

    def _ferry(self) -> None:
        """Move newly transmitted bytes onto links; deliver due bytes."""
        for link in self.links:
            src = self.nodes[link.source]
            dst = self.nodes[link.destination]
            fresh = src.radio.transmitted[link._tx_cursor:]
            link._tx_cursor = len(src.radio.transmitted)
            for value in fresh:
                if link._lose():
                    link.dropped += 1
                    continue
                link.in_flight.append(_PendingByte(
                    value=value,
                    due_cycle=dst.cpu.cycles + link.latency_cycles))
            still: List[_PendingByte] = []
            for pending in link.in_flight:
                if pending.due_cycle <= dst.cpu.cycles + \
                        self.quantum_cycles:
                    dst.radio.deliver(bytes([pending.value]))
                    link.delivered += 1
                else:
                    still.append(pending)
            link.in_flight = still

    # -- inspection ------------------------------------------------------------------

    def link_between(self, source: str,
                     destination: str) -> Optional[Link]:
        for link in self.links:
            if link.source == source and link.destination == destination:
                return link
        return None

    def stats(self) -> List[Tuple[str, str, int, int]]:
        return [(link.source, link.destination, link.delivered,
                 link.dropped) for link in self.links]
