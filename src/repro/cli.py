"""``sensmart`` command line.

Subcommands::

    sensmart exp [table1|table2|fig4|fig5|fig6|fig7|fig8|all] [--quick]
    sensmart chaos [--seed S] [--quick]  # fault-injection campaign
    sensmart attack [--family F] [--quick]  # adversarial campaigns
    sensmart run FILE [FILE ...]       # run programs under SenSmart
    sensmart rewrite FILE              # show a naturalized listing
    sensmart asm FILE                  # assemble + disassemble a file
    sensmart lint [FILE ...]           # soundness-lint + stack bounds
    sensmart analyze [FILE ...]        # dataflow + elision certificates
    sensmart serve                     # content-addressed build service
    sensmart submit FILE [FILE ...]    # submit programs to a server
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis.profile import flat_profile, trap_histogram
from .avr.disassembler import disassemble
from .baselines.native import run_native
from .cc import compile_c_to_asm
from .experiments.runner import experiment_functions, run_suite
from .kernel import SensorNode
from .toolchain import compile_source, link_image


def _read_program(path: Path) -> str:
    """Read a program file; ``.c``/``.tc`` sources are compiled first."""
    text = path.read_text()
    if path.suffix in (".c", ".tc"):
        return compile_c_to_asm(text)
    return text


def _cmd_exp(args: argparse.Namespace) -> int:
    names = None if args.which in ("all", None) else [args.which]
    suite = run_suite(quick=args.quick, only=names, jobs=args.jobs)
    print(suite.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .experiments import extra_faults
    seed = args.seed if args.seed is not None \
        else extra_faults.DEFAULT_SEED
    result = extra_faults.run(quick=args.quick, seed=seed)
    if args.json:
        from .pipeline.report import CHAOS_SCHEMA, chaos_report_dict
        print(json.dumps({"schema": CHAOS_SCHEMA,
                          "chaos": chaos_report_dict(result)},
                         indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .adversary import DEFAULT_SEED, run_inject, run_patch
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    inject = patch = None
    ok = True
    if args.family in ("inject", "all"):
        inject = run_inject(quick=args.quick, seed=seed)
        ok = ok and inject.kernel_oob_faults == \
            inject.count("TRAPPED_OOB")
    if args.family in ("patch", "all"):
        patch = run_patch(quick=args.quick, seed=seed)
        ok = ok and patch.ok
    if args.json:
        from .pipeline.report import ATTACK_SCHEMA, attack_report_dict
        report = attack_report_dict(inject=inject, patch=patch)
        report["schema"] = ATTACK_SCHEMA
        report["seed"] = seed
        report["quick"] = args.quick
        report["ok"] = ok
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if ok else 1
    sections = []
    if inject is not None:
        sections.append("--- injection campaign "
                        f"(seed {seed:#x}) ---\n" + inject.render())
    if patch is not None:
        sections.append("--- hot-patch session "
                        f"(seed {seed:#x}) ---\n" + patch.render())
    print("\n\n".join(sections))
    return 0 if ok else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .faults.plan import FaultPlan
    from .fleet import FleetSim, build_spec, grid, random_geometric
    from .pipeline.report import FLEET_SCHEMA, fleet_report_dict
    if args.quick:
        # Pinned smoke scenario (CI diffs it against
        # tests/golden/fleet_quick.txt): 4x4 grid flood, 2 shards.
        args.topology, args.rows, args.cols = "grid", 4, 4
        args.workload, args.count = "flood", 6
        args.max_cycles = 3_000_000
        if args.shards is None:
            args.shards = 2
    if args.shards is None:
        args.shards = 1
    if args.topology == "grid":
        topo = grid(args.rows, args.cols,
                    latency_cycles=args.latency,
                    loss_permille=args.loss,
                    corrupt_permille=args.corrupt,
                    dup_permille=args.dup, seed=args.seed)
    else:
        topo = random_geometric(args.nodes,
                                radius_permille=args.radius,
                                latency_cycles=args.latency,
                                loss_permille=args.loss,
                                corrupt_permille=args.corrupt,
                                dup_permille=args.dup, seed=args.seed)
    plan = None
    if args.sram_flips or args.flash_flips or args.drift_steps:
        plan = FaultPlan(seed=args.seed,
                         horizon_cycles=args.fault_horizon,
                         warmup_cycles=args.fault_warmup,
                         sram_flips=args.sram_flips,
                         flash_flips=args.flash_flips,
                         drift_steps=args.drift_steps)
    spec = build_spec(topo, args.workload, count=args.count,
                      seed=args.seed, max_cycles=args.max_cycles,
                      fault_plan=plan)
    result = FleetSim(spec, shards=args.shards,
                      prime=not args.no_prime).run()
    if args.json:
        print(json.dumps(
            {"schema": FLEET_SCHEMA,
             "fleet": fleet_report_dict(result, timing=args.timing)},
            indent=2, sort_keys=True))
    else:
        print(result.render(timing=args.timing))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    sources = []
    for path_text in args.files:
        path = Path(path_text)
        sources.append((path.stem, _read_program(path)))
    node = SensorNode.from_sources(sources)
    node.run(max_instructions=args.max_instructions)
    if args.json:
        from .pipeline.report import RUN_SCHEMA, jit_stats_dict, \
            run_report_dict
        report = {"schema": RUN_SCHEMA, "run": run_report_dict(node)}
        if args.stats:
            from .pipeline.report import containment_dict
            report["jit"] = jit_stats_dict(node)
            report["containment"] = containment_dict(node.kernel.stats)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if node.finished else 1
    kernel = node.kernel
    print(f"finished: {node.finished}  cycles: {node.cpu.cycles}  "
          f"instructions: {node.cpu.instret}")
    for task in kernel.tasks.values():
        print(f"  task {task.task_id} {task.name!r}: "
              f"{task.state.value} ({task.exit_reason or 'running'}), "
              f"cycles used {task.cycles_used}")
    stats = kernel.stats
    print(f"  switches: {stats.context_switches}  relocations: "
          f"{stats.relocations}  idle: {stats.idle_cycles}")
    if node.radio.transmitted:
        print(f"  radio transmitted {len(node.radio.transmitted)} bytes")
    if args.stats:
        _print_jit_stats(node)
    return 0 if node.finished else 1


def _print_jit_stats(node) -> None:
    """The ``sensmart run --stats`` report: superblock-cache traffic,
    trap-specializer activity, and trace-compiler activity."""
    kernel = node.kernel
    cache = node.cpu._block_cache
    if cache is not None:
        print(f"  block cache: {cache.hits} hits, {cache.misses} misses,"
              f" {len(cache.compile_counts)} distinct compiles")
        multi = {key: count for key, count
                 in cache.compile_counts.items() if count > 1}
        if multi:
            print(f"    recompiled variants: {len(multi)}")
    specializer = kernel.specializer
    if specializer is not None:
        s = specializer.stats
        print(f"  specializer: {s.compiled} compiled, {s.deopts} deopts,"
              f" {s.declined} declined")
    tracer = kernel.tracer
    if tracer is not None:
        t = tracer.stats
        print(f"  tracer: {t.compiled} compiled, {t.declined} declined,"
              f" {t.cache_hits} cache hits, {t.store_hits} store hits,"
              f" {t.store_misses} store misses")
    counts = kernel.stats.trap_counts
    if counts:
        tally = ", ".join(f"{kind.name}={count}"
                          for kind, count in sorted(
                              counts.items(), key=lambda kv: kv[0].name))
        print(f"  traps: {tally}")
    stats = kernel.stats
    if stats.termination_counts:
        tally = ", ".join(f"{reason}={count}" for reason, count
                          in sorted(stats.termination_counts.items()))
        print(f"  terminations: {tally}")
    if stats.fault_kinds:
        tally = ", ".join(f"{kind}={count}" for kind, count
                          in sorted(stats.fault_kinds.items()))
        print(f"  fault kinds: {tally}")


def _cmd_rewrite(args: argparse.Namespace) -> int:
    path = Path(args.file)
    image = link_image([(path.stem, _read_program(path))])
    if args.hex:
        from .toolchain.ihex import image_to_ihex
        Path(args.hex).write_text(image_to_ihex(image))
        print(f"; wrote Intel HEX image to {args.hex}")
    natural = image.tasks[0].natural
    stats = natural.stats
    print(f"; naturalized {path.stem}: base {natural.base:#06x}, "
          f"entry {natural.entry:#06x}")
    print(f"; native {stats.native_bytes} B -> rewritten "
          f"{stats.rewritten_bytes} B + shift {stats.shift_table_bytes} B "
          f"+ trampolines {stats.trampoline_bytes} B "
          f"(x{stats.inflation_ratio:.2f})")
    for line in disassemble(natural.words, natural.base):
        marker = "  <- patched" if any(
            line.startswith(f"{address:#06x}")
            for address in natural.sites) else ""
        print(line + marker)
    print(f"; {image.pool.count} trampolines "
          f"({image.pool.requests} requests before merging)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.static import analyze_program, lint_image
    from .experiments.extra_static import WORKLOAD_NAMES, \
        _workload_sources

    targets = []
    if args.files:
        sources = [(Path(f).stem, _read_program(Path(f)))
                   for f in args.files]
        targets.append(("cli", sources))
    if args.workloads or not args.files:
        targets.extend((name, _workload_sources(name, quick=True))
                       for name in WORKLOAD_NAMES)

    failures = 0
    results = []
    for label, sources in targets:
        image = link_image(sources)
        report = lint_image(image)
        if not report.ok:
            failures += 1
        if args.json:
            from .pipeline.report import lint_report_dict, \
                stack_bounds_dict
            entry = {"label": label, "lint": lint_report_dict(report)}
            if args.bounds:
                entry["stack"] = stack_bounds_dict(image)
            results.append(entry)
            continue
        print(f"--- {label} ---")
        print(report.render())
        if args.bounds:
            for task in image.tasks:
                analysis = analyze_program(task.natural.program)
                print(analysis.render())
        print()
    if args.json:
        from .pipeline.report import LINT_SCHEMA
        print(json.dumps({"schema": LINT_SCHEMA, "ok": not failures,
                          "targets": results},
                         indent=2, sort_keys=True))
    return 1 if failures else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.report import format_table
    from .analysis.static import analyze_image
    from .experiments.extra_static import WORKLOAD_NAMES, \
        _workload_sources

    targets = []
    if args.files:
        sources = [(Path(f).stem, _read_program(Path(f)))
                   for f in args.files]
        targets.append(("cli", sources))
    if args.workloads or not args.files:
        targets.extend((name, _workload_sources(name, quick=True))
                       for name in WORKLOAD_NAMES)

    results = []
    for label, sources in targets:
        image = link_image(sources)
        if args.json:
            from .pipeline.report import analyze_report_dict
            results.append({"label": label,
                            "analysis": analyze_report_dict(image)})
            continue
        rows = []
        for row in analyze_image(image):
            certs = row["certificates"]
            rows.append([row["program"], row["sites"],
                         row["indirect_sites"],
                         row["dataflow_narrowed"],
                         row["unresolved_indirect"], certs["heap"],
                         certs["stack"], certs["pop"],
                         row["certificates_total"]])
        print(format_table(
            ["program", "sites", "indirect", "narrowed", "unresolved",
             "heap", "stack", "pop", "certified"],
            rows, title=f"dataflow analysis: {label}"))
        print()
    if args.json:
        from .pipeline.report import ANALYZE_SCHEMA
        print(json.dumps({"schema": ANALYZE_SCHEMA,
                          "targets": results},
                         indent=2, sort_keys=True))
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    path = Path(args.file)
    program = compile_source(_read_program(path), name=path.stem)
    print(f"; {path.stem}: {program.size_bytes} bytes, "
          f"heap {program.symbols.heap_size} bytes, "
          f"entry {program.entry:#06x}")
    for line in disassemble(program.words, program.origin):
        print(line)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    path = Path(args.file)
    source = _read_program(path)
    program = compile_source(source, name=path.stem)

    # Native flat profile.
    from .avr.cpu import AvrCpu
    from .avr.devices import Adc, Leds, Radio, Timer0, Timer3
    from .avr.memory import Flash
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    for device in (Timer0(), Timer3(), Adc(), Radio(), Leds()):
        cpu.attach_device(device)
    cpu.enable_profiling()
    cpu.pc = program.entry
    cpu.run(max_instructions=args.max_instructions)
    profile = flat_profile(cpu.profile, program.symbols.labels)
    print(profile.render(top=args.top))

    # SenSmart trap histogram for the same program.
    node = SensorNode.from_sources([(path.stem, source)])
    node.run(max_instructions=args.max_instructions)
    print()
    print(trap_histogram(node.kernel))
    overhead = node.cpu.cycles / cpu.cycles if cpu.cycles else 0
    print(f"\nnative {cpu.cycles} cycles; SenSmart {node.cpu.cycles} "
          f"cycles (x{overhead:.2f})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .avr.cpu import AvrCpu
    from .avr.devices import Adc, Leds, Radio, Timer0, Timer3
    from .avr.encoding import decode
    from .avr.memory import Flash
    from .avr.disassembler import format_instruction
    path = Path(args.file)
    program = compile_source(_read_program(path), name=path.stem)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash)
    for device in (Timer0(), Timer3(), Adc(), Radio(), Leds()):
        cpu.attach_device(device)
    cpu.pc = program.entry
    addr_to_label = {a: n for n, a in program.symbols.labels.items()}
    for _step in range(args.limit):
        if cpu.halted:
            break
        pc = cpu.pc
        label = addr_to_label.get(pc)
        if label:
            print(f"{label}:")
        word = flash.word(pc)
        second = flash.word(pc + 1) if pc + 1 < flash.size_words else None
        instruction = decode(word, second, pc)
        before = cpu.cycles
        cpu.step()
        print(f"  {pc:#06x}: {format_instruction(instruction):28s} "
              f"; +{cpu.cycles - before} cyc, sreg={cpu.sreg:#04x}, "
              f"sp={cpu.sp:#06x}")
    print(f"({cpu.instret} instructions, {cpu.cycles} cycles"
          f"{', halted' if cpu.halted else ''})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import run_server

    def announce(server):
        print(f"sensmart serve listening on "
              f"{server.host}:{server.port}", flush=True)

    try:
        run_server(host=args.host, port=args.port,
                   store_path=args.store, jobs=args.jobs,
                   announce=announce)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeClient
    if not args.files and not args.stats and not args.shutdown:
        print("nothing to do: give program files, --stats or "
              "--shutdown", file=sys.stderr)
        return 2
    code = 0
    with ServeClient(args.host, args.port,
                     timeout=args.timeout) as client:
        if args.files:
            programs = []
            for path_text in args.files:
                path = Path(path_text)
                programs.append({"name": path.stem,
                                 "source": _read_program(path)})
            options = {"max_instructions": args.max_instructions}
            response = client.submit(programs, options=options,
                                     ident="cli")
            print(json.dumps(response, indent=2, sort_keys=True))
            if not response.get("ok"):
                code = 1
        if args.stats:
            print(json.dumps(client.stats(), indent=2,
                             sort_keys=True))
        if args.shutdown:
            client.shutdown()
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sensmart",
        description="SenSmart reproduction: simulate, rewrite, evaluate.")
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("exp", help="regenerate paper tables/figures")
    exp.add_argument("which", nargs="?", default="all",
                     choices=sorted(experiment_functions()) + ["all"])
    exp.add_argument("--quick", action="store_true",
                     help="smoke-test sized sweeps")
    exp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="fan independent sweep points over N worker "
                          "processes (output is identical to -j1)")
    exp.set_defaults(func=_cmd_exp)

    chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection survivability "
                      "campaign (seed-reproducible)")
    chaos.add_argument("--seed", type=lambda s: int(s, 0),
                       default=None, metavar="S",
                       help="campaign seed (default: the pinned "
                            "DEFAULT_SEED; same seed => byte-identical "
                            "report)")
    chaos.add_argument("--quick", action="store_true",
                       help="smoke-test sized campaign")
    chaos.add_argument("--json", action="store_true",
                       help="emit the sensmart-chaos/1 JSON report "
                            "instead of text")
    chaos.set_defaults(func=_cmd_chaos)

    attack = sub.add_parser(
        "attack", help="adversarial campaigns: radio code-injection "
                       "attacks and live over-the-air hot-patching "
                       "(seed-reproducible, tier-invariant)")
    attack.add_argument("--family", choices=["inject", "patch", "all"],
                        default="all",
                        help="inject = malicious-payload containment "
                             "campaign; patch = OTA hot-patch of a "
                             "running task")
    attack.add_argument("--seed", type=lambda s: int(s, 0),
                        default=None, metavar="S",
                        help="campaign seed (default: the pinned "
                             "DEFAULT_SEED; same seed => byte-identical "
                             "report)")
    attack.add_argument("--quick", action="store_true",
                        help="anchor trials / fewer patch passes only")
    attack.add_argument("--json", action="store_true",
                        help="emit the sensmart-attack/1 JSON report "
                             "instead of text")
    attack.set_defaults(func=_cmd_attack)

    fleet = sub.add_parser(
        "fleet", help="sharded multi-node fleet co-simulation "
                      "(digest is shard-count invariant)")
    fleet.add_argument("--topology", choices=["grid", "rgg"],
                       default="grid")
    fleet.add_argument("--rows", type=int, default=4,
                       help="grid rows")
    fleet.add_argument("--cols", type=int, default=4,
                       help="grid columns")
    fleet.add_argument("--nodes", type=int, default=24,
                       help="rgg node count")
    fleet.add_argument("--radius", type=int, default=350,
                       metavar="PERMILLE",
                       help="rgg connect radius, 1/1000ths of the "
                            "unit square")
    fleet.add_argument("--workload",
                       choices=["flood", "relay", "attack"],
                       default="flood")
    fleet.add_argument("--count", type=int, default=8, metavar="K",
                       help="bytes injected by the source")
    fleet.add_argument("--latency", type=int, default=2_000,
                       metavar="CYCLES", help="link latency (>= 1)")
    fleet.add_argument("--loss", type=int, default=0,
                       metavar="PERMILLE")
    fleet.add_argument("--corrupt", type=int, default=0,
                       metavar="PERMILLE")
    fleet.add_argument("--dup", type=int, default=0,
                       metavar="PERMILLE")
    fleet.add_argument("--shards", type=int, default=None, metavar="N",
                       help="worker processes (default 1; >1 forks)")
    fleet.add_argument("--seed", type=lambda s: int(s, 0),
                       default=0xF1EE7, metavar="S")
    fleet.add_argument("--max-cycles", type=int, default=50_000_000)
    fleet.add_argument("--sram-flips", type=int, default=0,
                       help="per-node SRAM bit flips (FaultPlan)")
    fleet.add_argument("--flash-flips", type=int, default=0,
                       help="per-node flash bit flips (FaultPlan)")
    fleet.add_argument("--drift-steps", type=int, default=0,
                       help="per-node clock-drift events (FaultPlan)")
    fleet.add_argument("--fault-warmup", type=int, default=4_000)
    fleet.add_argument("--fault-horizon", type=int, default=40_000)
    fleet.add_argument("--quick", action="store_true",
                       help="pinned 16-node smoke scenario (golden)")
    fleet.add_argument("--no-prime", action="store_true",
                       help="skip the pre-fork JIT priming pass")
    fleet.add_argument("--timing", action="store_true",
                       help="append host-dependent timing lines")
    fleet.add_argument("--json", action="store_true",
                       help="emit the sensmart-fleet/1 JSON report")
    fleet.set_defaults(func=_cmd_fleet)

    run = sub.add_parser("run", help="run programs under SenSmart")
    run.add_argument("files", nargs="+")
    run.add_argument("--stats", action="store_true",
                     help="report block-cache / specializer / tracer "
                          "statistics after the run")
    run.add_argument("--max-instructions", type=int,
                     default=100_000_000)
    run.add_argument("--json", action="store_true",
                     help="emit the sensmart-run/1 JSON report "
                          "instead of text")
    run.set_defaults(func=_cmd_run)

    rewrite = sub.add_parser("rewrite",
                             help="show the naturalized binary")
    rewrite.add_argument("file")
    rewrite.add_argument("--hex", metavar="OUT",
                         help="also write the image as Intel HEX")
    rewrite.set_defaults(func=_cmd_rewrite)

    asm = sub.add_parser("asm", help="assemble and list a program")
    asm.add_argument("file")
    asm.set_defaults(func=_cmd_asm)

    lint = sub.add_parser(
        "lint", help="verify rewriter soundness of naturalized images")
    lint.add_argument("files", nargs="*",
                      help="programs to link into one image and lint "
                           "(default: the bundled workloads)")
    lint.add_argument("--workloads", action="store_true",
                      help="also lint every bundled workload image")
    lint.add_argument("--bounds", action="store_true",
                      help="print per-task static stack bounds")
    lint.add_argument("--json", action="store_true",
                      help="emit the sensmart-lint/1 JSON report "
                           "instead of text")
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze", help="dataflow analysis: indirect-target "
                        "resolution and elision certificates")
    analyze.add_argument("files", nargs="*",
                         help="programs to link into one image and "
                              "analyze (default: the bundled "
                              "workloads)")
    analyze.add_argument("--workloads", action="store_true",
                         help="also analyze every bundled workload "
                              "image")
    analyze.add_argument("--json", action="store_true",
                         help="emit the sensmart-analyze/1 JSON "
                              "report instead of text")
    analyze.set_defaults(func=_cmd_analyze)

    serve = sub.add_parser(
        "serve", help="serve the content-addressed build pipeline "
                      "over NDJSON/TCP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7737,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="on-disk artifact store directory "
                            "(default: memory only)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="parallel build workers (N>1 uses fork "
                            "worker processes where available)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit programs to a running serve instance")
    submit.add_argument("files", nargs="*",
                        help="programs to link into one image and "
                             "simulate")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7737)
    submit.add_argument("--max-instructions", type=int,
                        default=20_000_000)
    submit.add_argument("--timeout", type=float, default=120.0)
    submit.add_argument("--stats", action="store_true",
                        help="also fetch server statistics")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the server to stop after replying")
    submit.set_defaults(func=_cmd_submit)

    profile = sub.add_parser(
        "profile", help="flat profile (native) + trap histogram")
    profile.add_argument("file")
    profile.add_argument("--top", type=int, default=10)
    profile.add_argument("--max-instructions", type=int,
                         default=20_000_000)
    profile.set_defaults(func=_cmd_profile)

    trace = sub.add_parser(
        "trace", help="print the first N executed instructions")
    trace.add_argument("file")
    trace.add_argument("--limit", type=int, default=64)
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
