"""Naturalized-program container and rewrite statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from ..avr.instruction import DataWord, Instruction
from .classify import PatchKind
from .shift_table import ShiftTable

if TYPE_CHECKING:  # avoid a circular import with the toolchain package
    from ..toolchain.program import Program


@dataclass(frozen=True)
class Site:
    """One patched site in the naturalized code."""

    address: int          # naturalized word address of the JMP
    kind: PatchKind
    pool_index: int       # trampoline slot in the pool
    original: Instruction  # the instruction this site replaces
    params: Tuple         # decoded parameters handlers dispatch on

    @property
    def resume_address(self) -> int:
        """Naturalized address of the instruction after this site."""
        return self.address + 2


@dataclass
class RewriteStats:
    """Code-size decomposition used by Figure 4."""

    native_bytes: int = 0        # original program size
    rewritten_bytes: int = 0     # naturalized body (same instr count)
    shift_table_bytes: int = 0   # shift table flash cost
    trampoline_bytes: int = 0    # trampolines newly allocated for this
                                 # program (merged ones count once)
    patched_sites: int = 0
    grouped_sites: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.rewritten_bytes + self.shift_table_bytes
                + self.trampoline_bytes)

    @property
    def inflation_ratio(self) -> float:
        """total size relative to native size (1.0 = no inflation)."""
        if self.native_bytes == 0:
            return 1.0
        return self.total_bytes / self.native_bytes


@dataclass
class NaturalizedProgram:
    """The rewriter's output for one application program.

    The body occupies naturalized flash words ``[base, base+size_words)``;
    the original program's addresses live in the same range (shifted by
    the shift table), preserving the paper's approximate linearity.
    """

    name: str
    base: int
    program: "Program"  # the original, compiled at ``base``
    items: List[Union[Instruction, DataWord]] = field(default_factory=list)
    words: List[int] = field(default_factory=list)
    shift_table: ShiftTable = field(default_factory=ShiftTable)
    sites: Dict[int, Site] = field(default_factory=dict)  # by nat address
    stats: RewriteStats = field(default_factory=RewriteStats)
    #: fixups: (word offset into ``words``, pool index) for JMP targets.
    unresolved: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def size_words(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return 2 * len(self.words)

    @property
    def end(self) -> int:
        return self.base + self.size_words

    @property
    def entry(self) -> int:
        """Naturalized entry point."""
        return self.shift_table.to_naturalized(self.program.entry)

    @property
    def heap_size(self) -> int:
        return self.program.symbols.heap_size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def resolve(self, pool) -> None:
        """Fill in trampoline JMP targets once the pool is placed."""
        from ..avr.encoding import encode
        from ..avr.instruction import Instruction as Ins
        for offset, pool_index in self.unresolved:
            target = pool.address_of(pool_index)
            word1, word2 = encode(Ins("JMP", (target,)))
            self.words[offset] = word1
            self.words[offset + 1] = word2
        self.unresolved = []
