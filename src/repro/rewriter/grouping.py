"""Grouped memory-access optimization (paper Section IV-C2).

"In most sensornet applications, 2 or 4 memory access instructions are
often performed together using the same indirect address registers to
fetch or store word or double-word data.  Thus the binary rewriter can
identify the instructions as a grouped memory access and only translate
the address once."

Within a basic block, a run of pointer-indirect accesses through the
same base register — with no intervening write to that register and no
pointer post-increment/pre-decrement crossing a word boundary group —
shares one address translation: the first access (the *leader*) pays the
full translation cost, followers pay a small incremental cost.

The pass returns the set of follower site addresses; the rewriter embeds
the flag in each site's trampoline parameters so the kernel's cost model
can charge accordingly.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..avr.instruction import Instruction
from ..avr.isa import PTR_BASE
from .blocks import BasicBlock

#: Maximum accesses sharing one translation (word/double-word data).
MAX_GROUP = 4


def _pointer_base(instruction: Instruction) -> Optional[int]:
    """Base register of a pointer-indirect access, else None."""
    m = instruction.mnemonic
    if m in ("LD", "ST"):
        return PTR_BASE[instruction.operands[1]]
    if m in ("LDD", "STD"):
        return PTR_BASE[instruction.operands[1]]
    return None


def _mutates_pointer(instruction: Instruction) -> bool:
    """True when an LD/ST mode changes the pointer register itself."""
    if instruction.mnemonic in ("LD", "ST"):
        mode = instruction.operands[1]
        return "+" in mode or mode.startswith("-")
    return False


def _writes_register(instruction: Instruction, register: int) -> bool:
    """Conservative: does *instruction* write *register* or its pair?"""
    m = instruction.mnemonic
    ops = instruction.operands
    pair = (register, register + 1)
    if m in ("LDI", "LDS", "POP", "IN", "COM", "NEG", "SWAP", "INC",
             "ASR", "LSR", "ROR", "DEC", "SUBI", "SBCI", "ANDI", "ORI",
             "LD", "LDD", "BLD", "LPM"):
        return ops and ops[0] in pair
    if m in ("ADD", "ADC", "SUB", "SBC", "AND", "OR", "EOR", "MOV"):
        return ops[0] in pair
    if m == "MOVW":
        return ops[0] in pair or ops[0] + 1 in pair
    if m in ("ADIW", "SBIW"):
        return ops[0] in pair
    if m == "MUL":
        return register <= 1
    return False


def find_grouped_followers(blocks: List[BasicBlock]) -> Set[int]:
    """Site addresses whose translation is shared with a group leader."""
    followers: Set[int] = set()
    for block in blocks:
        active_base: Optional[int] = None
        group_len = 0
        for instruction in block.instructions:
            base = _pointer_base(instruction)
            if base is not None:
                displaced_only = instruction.mnemonic in ("LDD", "STD")
                same_group = (base == active_base and
                              group_len < MAX_GROUP and displaced_only)
                if same_group:
                    followers.add(instruction.address)
                    group_len += 1
                else:
                    # Start a new group.  Post-inc/pre-dec accesses can
                    # lead a group but their pointer mutation ends it.
                    active_base = None if _mutates_pointer(instruction) \
                        else base
                    group_len = 1
                # A displaced access never mutates the pointer; modes
                # with side effects invalidate the cached translation.
                if _mutates_pointer(instruction):
                    active_base = None
                continue
            if active_base is not None and \
                    _writes_register(instruction, active_base):
                active_base = None
                group_len = 0
        # Block boundary always ends the group (handled by loop scope).
    return followers
