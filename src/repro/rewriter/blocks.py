"""Basic-block construction over a decoded program.

The rewriter uses basic blocks for the grouped-memory-access
optimization (paper Section IV-C2): "basic block information can be used
by the rewriter to ensure correctness" when translating an address once
for several accesses through the same pointer register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..avr.instruction import DataWord, Instruction
from ..avr.isa import Format, Kind


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int  # word address of the first instruction
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Word address one past the last instruction."""
        if not self.instructions:
            return self.start
        return self.instructions[-1].next_address


def _leaders(instructions: List[Instruction]) -> Set[int]:
    """Word addresses that start a basic block."""
    if not instructions:
        return set()
    leaders = {instructions[0].address}
    addresses = {ins.address for ins in instructions}
    for ins in instructions:
        kind = ins.kind
        if kind & Kind.BRANCH:
            # The fall-through (if any) starts a block, and so does a
            # statically-known target.
            if ins.mnemonic not in ("RET", "RETI", "IJMP", "ICALL",
                                    "JMP", "RJMP"):
                leaders.add(ins.next_address)
            if ins.mnemonic in ("CALL", "RCALL"):
                leaders.add(ins.next_address)
            fmt = ins.opspec.fmt
            if fmt in (Format.REL12, Format.BRANCH, Format.JMPCALL):
                target = ins.branch_target()
                if target in addresses:
                    leaders.add(target)
        elif kind & Kind.SKIP:
            # Both the skipped instruction and its successor are
            # potential entry points.
            leaders.add(ins.next_address)
    return leaders & addresses | {instructions[0].address}


def build_blocks(items) -> List[BasicBlock]:
    """Partition a program's instructions into basic blocks.

    *items* is the program's item list; data words end the current block
    (execution never falls through data in well-formed programs).
    """
    instructions = [item for item in items if isinstance(item, Instruction)]
    leaders = _leaders(instructions)
    blocks: List[BasicBlock] = []
    current: BasicBlock = None
    previous_ended = True
    for item in items:
        if isinstance(item, DataWord):
            current = None
            previous_ended = True
            continue
        starts_new = item.address in leaders or previous_ended
        if starts_new or current is None:
            current = BasicBlock(start=item.address)
            blocks.append(current)
        current.instructions.append(item)
        kind = item.kind
        previous_ended = bool(kind & Kind.BRANCH) and \
            item.mnemonic in ("RET", "RETI", "RJMP", "JMP", "IJMP")
        # A skip also ends the block conservatively: the next instruction
        # may or may not execute.
        if kind & Kind.SKIP:
            previous_ended = True
    return blocks
