"""The shift table: mapping original to naturalized program addresses.

SenSmart keeps the naturalized program *approximately linear* with the
original: each patched 16-bit instruction inflates to a 32-bit ``JMP``,
and a sorted array of the inflated sites' original addresses suffices to
map any original instruction address to its naturalized location (paper
Section IV-C2).  Runtime lookups (indirect branches, LPM) binary-search
this array; everything statically resolvable is fixed up on the base
station.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import List


@dataclass
class ShiftTable:
    """Sorted original word addresses of 16->32 bit inflated sites.

    For an original address ``a`` (of an instruction start), the
    naturalized address is ``a + (#entries strictly below a)`` — every
    earlier inflated site pushed the code one word down.
    """

    base: int = 0  # original == naturalized program base address
    entries: List[int] = field(default_factory=list)

    def add(self, original_address: int) -> None:
        insort(self.entries, original_address)

    def to_naturalized(self, original_address: int) -> int:
        """Map an original instruction address into the naturalized image."""
        return original_address + bisect_right(
            self.entries, original_address - 1)

    def to_original(self, naturalized_address: int) -> int:
        """Inverse mapping, used by diagnostics and tests.

        Walks the entries (each entry *e* occupies naturalized range
        ``[nat(e), nat(e)+2)``); linear in the number of preceding
        entries but only used off the hot path.
        """
        shift = 0
        for entry in self.entries:
            nat = entry + shift
            if naturalized_address <= nat:
                break
            if naturalized_address == nat + 1:
                # Inside the second word of an inflated site.
                return entry
            shift += 1
        return naturalized_address - shift

    @property
    def size_bytes(self) -> int:
        """Flash cost: one 2-byte word address per entry."""
        return 2 * len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
