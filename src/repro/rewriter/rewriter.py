"""The binary rewriter: compiled program -> naturalized program.

Implements the base-station half of SenSmart (paper Section IV-A):

1. classify every instruction (:mod:`.classify`);
2. compute the naturalized layout — each patched 16-bit instruction
   inflates to a 32-bit ``JMP``, recorded in the shift table;
3. fix up every un-patched direct branch for the shifted layout;
4. replace each patched site with a ``JMP`` into a (merged) trampoline.

The rewriting preserves the paper's *approximate linearity*: instruction
count in the body is unchanged, and original addresses map to
naturalized ones through the shift table alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set, Tuple

from ..avr.encoding import encode
from ..avr.instruction import DataWord, Instruction
from ..avr.isa import Format
from ..errors import RewriteError

if TYPE_CHECKING:  # avoid a circular import with the toolchain package
    from ..toolchain.program import Program
from .blocks import build_blocks
from .classify import PatchKind, classify
from .grouping import find_grouped_followers
from .naturalized import NaturalizedProgram, RewriteStats, Site
from .shift_table import ShiftTable
from .trampoline import TrampolinePool


class Rewriter:
    """Configurable binary rewriter.

    *enable_grouping* toggles the grouped-memory-access optimization
    (Section IV-C2); disabling it is used by the ablation benchmarks.
    *classify_fn* overrides which sites get patched — the t-kernel
    baseline uses a lighter classification (writes only, asymmetric
    protection) through the same machinery.
    """

    def __init__(self, enable_grouping: bool = True, classify_fn=None):
        self.enable_grouping = enable_grouping
        self.classify = classify_fn if classify_fn is not None else classify

    # -- sizing (used by the linker before bases are known) ------------------

    def measure_words(self, program: "Program") -> int:
        """Naturalized body size in words (classification is
        placement-independent)."""
        total = 0
        for item in program.items:
            if isinstance(item, Instruction) and \
                    self.classify(item) is not PatchKind.NONE:
                total += 2
            else:
                total += item.words
        return total

    # -- the rewrite proper ----------------------------------------------------

    def rewrite(self, program: "Program",
                pool: TrampolinePool) -> NaturalizedProgram:
        """Naturalize *program* (compiled at its final base) into *pool*.

        The returned program still has unresolved trampoline ``JMP``
        targets; call :meth:`NaturalizedProgram.resolve` after the pool
        has been placed.
        """
        base = program.origin
        grouped = self._grouped_sites(program)
        mapping, shift_table = self._layout(program, base)

        natural = NaturalizedProgram(
            name=program.name, base=base, program=program,
            shift_table=shift_table)
        stats = natural.stats
        stats.native_bytes = program.size_bytes
        trampoline_bytes_before = pool.size_bytes
        pool_indices_before = pool.count

        for item in program.items:
            nat_address = mapping[item.address]
            if isinstance(item, DataWord):
                natural.items.append(DataWord(item.value, nat_address))
                natural.words.append(item.value & 0xFFFF)
                continue
            kind = self.classify(item)
            if kind is PatchKind.NONE:
                fixed = self._fixup(item, nat_address, mapping)
                natural.items.append(fixed)
                natural.words.extend(encode(fixed))
                continue
            params = self._params(item, kind, mapping,
                                  grouped=item.address in grouped)
            pool_index = pool.request(kind, params)
            site = Site(address=nat_address, kind=kind,
                        pool_index=pool_index, original=item, params=params)
            natural.sites[nat_address] = site
            placeholder = Instruction("JMP", (0,), nat_address)
            natural.items.append(placeholder)
            word_offset = nat_address - base
            natural.unresolved.append((word_offset, pool_index))
            natural.words.extend(encode(placeholder))
            stats.patched_sites += 1
            if item.address in grouped:
                stats.grouped_sites += 1

        stats.rewritten_bytes = 2 * len(natural.words)
        stats.shift_table_bytes = shift_table.size_bytes
        stats.trampoline_bytes = pool.size_bytes - trampoline_bytes_before
        if pool.count == pool_indices_before and stats.patched_sites:
            stats.trampoline_bytes = 0  # everything merged with earlier work
        return natural

    # -- helpers ---------------------------------------------------------------

    def _grouped_sites(self, program: "Program") -> Set[int]:
        if not self.enable_grouping:
            return set()
        return find_grouped_followers(build_blocks(program.items))

    def _layout(self, program: "Program",
                base: int) -> Tuple[Dict[int, int], ShiftTable]:
        """Original address -> naturalized address, plus the shift table."""
        mapping: Dict[int, int] = {}
        shift_table = ShiftTable(base=base)
        cursor = base
        for item in program.items:
            mapping[item.address] = cursor
            if isinstance(item, Instruction) and \
                    self.classify(item) is not PatchKind.NONE:
                if item.words == 1:
                    shift_table.add(item.address)
                cursor += 2
            else:
                cursor += item.words
        return mapping, shift_table

    @staticmethod
    def _fixup(item: Instruction, nat_address: int,
               mapping: Dict[int, int]) -> Instruction:
        """Re-target an unpatched direct branch for the shifted layout."""
        fmt = item.opspec.fmt
        if fmt in (Format.REL12, Format.BRANCH):
            target = item.branch_target()
            nat_target = mapping.get(target)
            if nat_target is None:
                raise RewriteError(
                    f"{item} targets {target:#06x}, outside the program")
            words = item.words
            offset = nat_target - (nat_address + words)
            bits = 12 if fmt is Format.REL12 else 7
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if not lo <= offset <= hi:
                raise RewriteError(
                    f"inflation pushed branch at {item.address:#06x} out of "
                    f"range (offset {offset}); restructure the code")
            if fmt is Format.REL12:
                return Instruction(item.mnemonic, (offset,), nat_address)
            return Instruction(item.mnemonic, (item.operands[0], offset),
                               nat_address)
        if fmt is Format.JMPCALL:
            target = item.operands[0]
            nat_target = mapping.get(target)
            if nat_target is None:
                raise RewriteError(
                    f"{item} targets {target:#06x}, outside the program")
            return Instruction(item.mnemonic, (nat_target,), nat_address)
        return Instruction(item.mnemonic, item.operands, nat_address)

    @staticmethod
    def _params(item: Instruction, kind: PatchKind,
                mapping: Dict[int, int], grouped: bool) -> Tuple:
        """Build the trampoline parameter tuple for a patched site."""
        m, ops = item.mnemonic, item.operands
        if kind is PatchKind.MEM_INDIRECT:
            if m in ("LD", "ST"):
                return (m, ops[0], ops[1], grouped)
            return (m, ops[0], (ops[1], ops[2]), grouped)
        if kind is PatchKind.MEM_DIRECT:
            return (m, ops[0], ops[1])
        if kind in (PatchKind.STACK_PUSH, PatchKind.STACK_POP):
            return (ops[0],)
        if kind is PatchKind.SP_READ:
            return (ops[0], "SPL" if ops[1] == 0x3D else "SPH")
        if kind is PatchKind.SP_WRITE:
            return (ops[1], "SPL" if ops[0] == 0x3D else "SPH")
        if kind is PatchKind.BRANCH_BACKWARD:
            nat_target = mapping[item.branch_target()]
            if m in ("RJMP", "JMP"):
                return (None, None, nat_target)
            branch_if_set = m == "BRBS"
            return (ops[0], branch_if_set, nat_target)
        if kind is PatchKind.CALL_DIRECT:
            nat_target = mapping.get(item.branch_target())
            if nat_target is None:
                raise RewriteError(
                    f"{item} calls outside the program; inter-program "
                    f"calls are not allowed under memory isolation")
            return (nat_target,)
        if kind in (PatchKind.INDIRECT_JUMP, PatchKind.INDIRECT_CALL,
                    PatchKind.SLEEP, PatchKind.TASK_EXIT):
            return ()
        if kind is PatchKind.PROG_MEM:
            return (ops[0], ops[1])
        if kind is PatchKind.TIMER3_IO:
            return (m, ops)
        raise RewriteError(f"unhandled patch kind {kind}")
