"""Instruction classification: what must be patched, and why.

Implements the paper's Section IV-A taxonomy:

* instructions affecting CPU control flow (backward branches so the OS
  "frequently takes over CPU", plus ``SLEEP``-style CPU control);
* direct and indirect memory accesses and stack-pointer operations,
  patched to cooperate with memory management;
* accesses to OS-reserved resources (the Timer3 register block).

``RET``/``RETI`` execute natively: they only shrink the stack and their
popped return addresses are already naturalized program addresses pushed
by (patched) calls.  ``IN``/``OUT`` to ordinary I/O registers likewise
run natively — the I/O area is identity-mapped and shared (Figure 2).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..avr import ioports
from ..avr.instruction import Instruction
from ..avr.isa import IO_SPL, IO_SPH
from ..errors import RewriteError

#: Extended-addressing instructions (EIND/RAMPZ-relative control flow and
#: program-memory reads beyond 128 KB).  The shift-table translation and
#: the trampoline families only model 16-bit program addresses, so these
#: must never slip through as silently-native instructions — the rewriter
#: rejects the program instead.
UNSUPPORTED_EXTENDED = frozenset({"EIJMP", "EICALL", "ELPM"})


class PatchKind(enum.Enum):
    """Why a site is patched; selects the trampoline family."""

    NONE = "none"
    MEM_INDIRECT = "mem-indirect"     # LD/ST/LDD/STD via pointer register
    MEM_DIRECT = "mem-direct"         # LDS/STS with a static address
    STACK_PUSH = "stack-push"         # PUSH
    STACK_POP = "stack-pop"           # POP
    SP_READ = "sp-read"               # IN Rd, SPL/SPH
    SP_WRITE = "sp-write"             # OUT SPL/SPH, Rr
    BRANCH_BACKWARD = "branch-back"   # backward RJMP/JMP/BRxx
    CALL_DIRECT = "call-direct"       # CALL/RCALL (stack check + push)
    INDIRECT_JUMP = "indirect-jump"   # IJMP (shift-table lookup)
    INDIRECT_CALL = "indirect-call"   # ICALL
    PROG_MEM = "prog-mem"             # LPM (program-memory data access)
    SLEEP = "sleep"                   # SLEEP (yield to kernel)
    TASK_EXIT = "task-exit"           # BREAK (terminate task)
    TIMER3_IO = "timer3-io"           # access to the reserved Timer3 block


def _static_data_address(instruction: Instruction) -> Optional[int]:
    """Data-space address accessed, when statically known."""
    m = instruction.mnemonic
    if m in ("LDS", "STS"):
        return instruction.operands[1]
    if m == "IN":
        return ioports.io_to_data(instruction.operands[1])
    if m == "OUT":
        return ioports.io_to_data(instruction.operands[0])
    if m in ("SBI", "CBI", "SBIC", "SBIS"):
        return ioports.io_to_data(instruction.operands[0])
    return None


def classify(instruction: Instruction) -> PatchKind:
    """Return the patch kind for *instruction* (NONE if it runs natively).

    Raises :class:`~repro.errors.RewriteError` for instructions the
    trampoline families cannot represent soundly (extended-indirect
    addressing, or a conditional *skip* over an OS-reserved register —
    a skip's two resume points do not fit a single-``JMP`` patch).
    """
    m = instruction.mnemonic

    if m in UNSUPPORTED_EXTENDED:
        raise RewriteError(
            f"unsupported extended-indirect instruction {m} at "
            f"{instruction.address:#06x}: EIND/RAMPZ addressing is not "
            f"modeled by the shift-table translation")

    # OS-reserved resource accesses take precedence over other rules.
    static_address = _static_data_address(instruction)
    if static_address is not None and \
            static_address in ioports.TIMER3_ADDRESSES:
        if m in ("SBIC", "SBIS"):
            raise RewriteError(
                f"cannot patch skip instruction {m} over reserved Timer3 "
                f"register {static_address:#06x} at "
                f"{instruction.address:#06x}: a skip has two resume "
                f"points and no sound single-JMP trampoline")
        return PatchKind.TIMER3_IO

    if m in ("LD", "ST", "LDD", "STD"):
        return PatchKind.MEM_INDIRECT
    if m in ("LDS", "STS"):
        return PatchKind.MEM_DIRECT
    if m == "PUSH":
        return PatchKind.STACK_PUSH
    if m == "POP":
        return PatchKind.STACK_POP
    if m == "IN" and instruction.operands[1] in (IO_SPL, IO_SPH):
        return PatchKind.SP_READ
    if m == "OUT" and instruction.operands[0] in (IO_SPL, IO_SPH):
        return PatchKind.SP_WRITE
    if m in ("CALL", "RCALL"):
        return PatchKind.CALL_DIRECT
    if m == "IJMP":
        return PatchKind.INDIRECT_JUMP
    if m == "ICALL":
        return PatchKind.INDIRECT_CALL
    if m == "LPM":
        return PatchKind.PROG_MEM
    if m == "SLEEP":
        return PatchKind.SLEEP
    if m == "BREAK":
        return PatchKind.TASK_EXIT
    if m in ("RJMP", "JMP", "BRBS", "BRBC") and \
            instruction.is_backward_branch():
        return PatchKind.BRANCH_BACKWARD
    return PatchKind.NONE


def needs_patch(instruction: Instruction) -> bool:
    return classify(instruction) is not PatchKind.NONE
