"""Base-station binary rewriter — SenSmart's binary-translation half.

The rewriter turns a compiled :class:`~repro.toolchain.program.Program`
into a *naturalized* program (paper Section IV-A): every instruction that
affects control flow, touches data memory, mutates the stack pointer, or
reaches an OS-reserved resource is replaced in place by a single
``JMP`` into a trampoline appended after the application code.
"""

from .classify import PatchKind, classify
from .naturalized import NaturalizedProgram, RewriteStats
from .rewriter import Rewriter
from .shift_table import ShiftTable
from .trampoline import Trampoline, TrampolinePool

__all__ = [
    "PatchKind", "classify",
    "NaturalizedProgram", "RewriteStats",
    "Rewriter",
    "ShiftTable",
    "Trampoline", "TrampolinePool",
]
