"""Trampolines: the re-written logic appended after application code.

Each patched site becomes a single ``JMP`` whose target is a trampoline
slot in a region appended after the program (paper Section IV-A).
Identical trampolines are merged — "since many trampolines are similar,
they can be merged to save space (even if they belong to different
application programs)".

In this reproduction a trampoline's *semantics* execute in the kernel
runtime (see DESIGN.md: kernel internals are charged, not simulated
instruction-by-instruction), but its *flash footprint* is modeled from
the AVR code sequence the operation requires, so Figure 4's code-size
decomposition stays meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .classify import PatchKind

#: Modeled flash size (16-bit words) of each trampoline body.  A
#: SenSmart trampoline is a short *stub*: stage the site's operands
#: (register index, pointer/displacement, target) and tail-jump into
#: the shared kernel helper that does the translation/check — the
#: helper itself is kernel code, already accounted in the kernel's <6%
#: program-memory footprint (paper Section V-A), not in application
#: inflation.  This is what keeps SenSmart's Figure 4 inflation "within
#: 200%" despite patching every memory access.
TRAMPOLINE_SIZE_WORDS: Dict[PatchKind, int] = {
    PatchKind.MEM_INDIRECT: 3,    # stage reg/mode, JMP mem helper
    PatchKind.MEM_DIRECT: 3,      # stage 16-bit address, JMP helper
    PatchKind.STACK_PUSH: 2,
    PatchKind.STACK_POP: 2,
    PatchKind.SP_READ: 2,
    PatchKind.SP_WRITE: 2,
    PatchKind.BRANCH_BACKWARD: 4,  # inline counter + conditional + JMP
    PatchKind.CALL_DIRECT: 3,
    PatchKind.INDIRECT_JUMP: 2,
    PatchKind.INDIRECT_CALL: 2,
    PatchKind.PROG_MEM: 2,
    PatchKind.SLEEP: 1,
    PatchKind.TASK_EXIT: 1,
    PatchKind.TIMER3_IO: 2,
}


@dataclass(frozen=True)
class Trampoline:
    """One merged trampoline slot.

    ``key`` fully determines behaviour; two sites whose keys are equal
    share a slot.  ``params`` is the decoded form handlers dispatch on.
    """

    kind: PatchKind
    params: Tuple
    address: int = -1  # flash word address once placed

    @property
    def key(self) -> Tuple:
        return (self.kind, self.params)

    @property
    def size_words(self) -> int:
        return TRAMPOLINE_SIZE_WORDS[self.kind]

    @property
    def size_bytes(self) -> int:
        return 2 * self.size_words


class TrampolinePool:
    """Collects trampolines across programs, merging identical ones.

    Two-phase: during rewriting, sites ``request`` trampolines and get a
    pool index; after all programs are rewritten the linker calls
    ``place`` to assign flash addresses, and sites resolve their ``JMP``
    targets through :meth:`address_of`.
    """

    def __init__(self, merge: bool = True):
        self.merge = merge
        self._by_key: Dict[Tuple, int] = {}
        self._trampolines: List[Trampoline] = []
        self._addresses: Optional[List[int]] = None
        self.requests = 0  # total site requests, pre-merge

    def request(self, kind: PatchKind, params: Tuple) -> int:
        """Return the pool index for a (kind, params) trampoline."""
        self.requests += 1
        key = (kind, params)
        if self.merge and key in self._by_key:
            return self._by_key[key]
        index = len(self._trampolines)
        self._trampolines.append(Trampoline(kind, params))
        if self.merge:
            self._by_key[key] = index
        return index

    def place(self, base_address: int) -> int:
        """Assign consecutive flash addresses from *base_address*.

        Returns the first word address after the region.
        """
        self._addresses = []
        cursor = base_address
        placed = []
        for trampoline in self._trampolines:
            self._addresses.append(cursor)
            placed.append(Trampoline(trampoline.kind, trampoline.params,
                                     cursor))
            cursor += trampoline.size_words
        self._trampolines = placed
        return cursor

    def address_of(self, index: int) -> int:
        if self._addresses is None:
            raise RuntimeError("trampoline pool not placed yet")
        return self._addresses[index]

    @property
    def trampolines(self) -> List[Trampoline]:
        return list(self._trampolines)

    @property
    def count(self) -> int:
        return len(self._trampolines)

    @property
    def size_words(self) -> int:
        return sum(t.size_words for t in self._trampolines)

    @property
    def size_bytes(self) -> int:
        return 2 * self.size_words

    def by_address(self) -> Dict[int, Trampoline]:
        """Map flash word address -> trampoline (after placement)."""
        if self._addresses is None:
            raise RuntimeError("trampoline pool not placed yet")
        return {t.address: t for t in self._trampolines}
