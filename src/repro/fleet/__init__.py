"""Fleet-scale sharded co-simulation (see INTERNALS.md §14).

Public surface: topology generators (:func:`grid`,
:func:`random_geometric`, :func:`partition`), workload assignment
(:func:`build_programs`), and the conservative sharded coordinator
(:class:`FleetSim` over a :class:`FleetSpec`).
"""

from .sim import (DEFAULT_MAX_CYCLES, FleetResult, FleetSim, FleetSpec,
                  build_spec, prime_caches)
from .topology import (LinkSpec, NodeSpec, Topology, grid, partition,
                       random_geometric)
from .workload import build_programs

__all__ = [
    "DEFAULT_MAX_CYCLES", "FleetResult", "FleetSim", "FleetSpec",
    "LinkSpec", "NodeSpec", "Topology", "build_programs", "build_spec",
    "grid", "partition", "prime_caches", "random_geometric",
]
