"""Seeded fleet topology generators: grid and random-geometric.

A topology is pure data — ordered :class:`NodeSpec` / :class:`LinkSpec`
lists plus adjacency helpers — picklable so the fleet coordinator can
ship it to shard workers.  Link indices are *global* topology order;
the network layer uses them as the same-cycle arrival tie-break rank,
which is what keeps delivery order independent of how the node set is
partitioned across shards.

All placement is derived from the topology seed through labeled
:class:`~repro.faults.rng.XorShift32` streams, so a (kind, params,
seed) triple names exactly one topology on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..faults.rng import XorShift32

#: Fixed-point denominator for random-geometric coordinates: positions
#: are integer 1/65536ths of the unit square, so distance checks are
#: exact integer math (no float-platform drift).
COORD_SCALE = 1 << 16


@dataclass(frozen=True)
class NodeSpec:
    """One node: a stable name and a placement (grid cell or scaled
    unit-square coordinates)."""
    name: str
    position: Tuple[int, int]


@dataclass(frozen=True)
class LinkSpec:
    """One unidirectional link; *index* is the global tie-break rank."""
    index: int
    source: str
    destination: str
    latency_cycles: int
    loss_permille: int = 0
    corrupt_permille: int = 0
    dup_permille: int = 0


@dataclass
class Topology:
    kind: str
    seed: int
    nodes: List[NodeSpec]
    links: List[LinkSpec]
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def names(self) -> List[str]:
        return [spec.name for spec in self.nodes]

    def neighbors(self, name: str) -> List[str]:
        """Destinations of the links sourced at *name*, in link order."""
        return [link.destination for link in self.links
                if link.source == name]

    def inbound_degree(self, name: str) -> int:
        return sum(1 for link in self.links if link.destination == name)

    def bfs_order(self, root: str) -> Dict[str, int]:
        """Hop distance from *root* over directed links (BFS)."""
        adjacency: Dict[str, List[str]] = {}
        for link in self.links:
            adjacency.setdefault(link.source, []).append(link.destination)
        depth = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[str] = []
            for name in frontier:
                for peer in adjacency.get(name, ()):
                    if peer not in depth:
                        depth[peer] = depth[name] + 1
                        nxt.append(peer)
            frontier = nxt
        return depth

    def bfs_path(self, source: str, sink: str) -> List[str]:
        """One shortest path source→sink (first-discovered, hence
        deterministic for a fixed link order)."""
        adjacency: Dict[str, List[str]] = {}
        for link in self.links:
            adjacency.setdefault(link.source, []).append(link.destination)
        parent: Dict[str, Optional[str]] = {source: None}
        frontier = [source]
        while frontier and sink not in parent:
            nxt: List[str] = []
            for name in frontier:
                for peer in adjacency.get(name, ()):
                    if peer not in parent:
                        parent[peer] = name
                        nxt.append(peer)
            frontier = nxt
        if sink not in parent:
            raise ReproError(f"no path {source!r} -> {sink!r}")
        path = [sink]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        path.reverse()
        return path


def _node_name(index: int) -> str:
    return f"n{index:03d}"


def grid(rows: int, cols: int, latency_cycles: int = 2_000,
         loss_permille: int = 0, corrupt_permille: int = 0,
         dup_permille: int = 0, seed: int = 0) -> Topology:
    """A rows×cols 4-neighbor grid with bidirectional links.

    Node ``n{r*cols+c}`` sits at cell ``(r, c)``; links are emitted in
    row-major node order, east pair before south pair, so the global
    link indices are a pure function of the dimensions.
    """
    if rows < 1 or cols < 1:
        raise ReproError("grid dimensions must be >= 1")
    nodes = [NodeSpec(_node_name(r * cols + c), (r, c))
             for r in range(rows) for c in range(cols)]
    links: List[LinkSpec] = []

    def _pair(a: int, b: int) -> None:
        for src, dst in ((a, b), (b, a)):
            links.append(LinkSpec(
                index=len(links), source=_node_name(src),
                destination=_node_name(dst),
                latency_cycles=latency_cycles,
                loss_permille=loss_permille,
                corrupt_permille=corrupt_permille,
                dup_permille=dup_permille))

    for r in range(rows):
        for c in range(cols):
            here = r * cols + c
            if c + 1 < cols:
                _pair(here, here + 1)
            if r + 1 < rows:
                _pair(here, here + cols)
    return Topology(kind="grid", seed=seed, nodes=nodes, links=links,
                    params={"rows": rows, "cols": cols,
                            "latency_cycles": latency_cycles})


def random_geometric(count: int, radius_permille: int = 350,
                     latency_cycles: int = 2_000,
                     loss_permille: int = 0, corrupt_permille: int = 0,
                     dup_permille: int = 0,
                     seed: int = 0xF1EE7) -> Topology:
    """*count* nodes placed uniformly in the unit square; nodes within
    ``radius_permille/1000`` of each other get a bidirectional link.

    Placement draws from ``XorShift32(seed).derive("fleet/rgg/place")``
    in fixed-point (so the topology is platform-exact).  If the radius
    graph is disconnected, consecutive components (by lowest member
    index) are bridged deterministically so every workload terminates.
    """
    if count < 1:
        raise ReproError("node count must be >= 1")
    rng = XorShift32(seed).derive("fleet/rgg/place")
    positions = [(rng.below(COORD_SCALE), rng.below(COORD_SCALE))
                 for _ in range(count)]
    nodes = [NodeSpec(_node_name(i), positions[i]) for i in range(count)]
    radius_sq = (radius_permille * COORD_SCALE // 1000) ** 2
    links: List[LinkSpec] = []

    def _pair(a: int, b: int) -> None:
        for src, dst in ((a, b), (b, a)):
            links.append(LinkSpec(
                index=len(links), source=_node_name(src),
                destination=_node_name(dst),
                latency_cycles=latency_cycles,
                loss_permille=loss_permille,
                corrupt_permille=corrupt_permille,
                dup_permille=dup_permille))

    parent = list(range(count))

    def _find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(count):
        xi, yi = positions[i]
        for j in range(i + 1, count):
            xj, yj = positions[j]
            if (xi - xj) ** 2 + (yi - yj) ** 2 <= radius_sq:
                _pair(i, j)
                parent[_find(i)] = _find(j)

    # Deterministic connectivity fallback: bridge component anchors
    # (lowest node index per component) in ascending order.
    anchors: Dict[int, int] = {}
    for i in range(count):
        root = _find(i)
        if root not in anchors:
            anchors[root] = i
    chain = sorted(anchors.values())
    for a, b in zip(chain, chain[1:]):
        _pair(a, b)
    return Topology(kind="rgg", seed=seed, nodes=nodes, links=links,
                    params={"count": count,
                            "radius_permille": radius_permille,
                            "latency_cycles": latency_cycles})


def partition(topology: Topology, shards: int) -> List[List[str]]:
    """Split the node list into *shards* contiguous, near-equal blocks.

    Contiguous blocks keep grid partitions spatially coherent (few
    cross-shard links) and make the partition a pure function of
    (topology, shards).  Every shard gets at least one node; *shards*
    is clamped to the node count.
    """
    if shards < 1:
        raise ReproError("shard count must be >= 1")
    names = topology.names
    shards = min(shards, len(names))
    base, extra = divmod(len(names), shards)
    blocks: List[List[str]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append(names[start:start + size])
        start += size
    return blocks
