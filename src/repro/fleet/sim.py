"""Fleet coordinator: conservative sharded parallel co-simulation.

:class:`FleetSim` partitions a :class:`FleetSpec` across worker
processes (contiguous node blocks, see
:func:`repro.fleet.topology.partition`) and drives them in bulletin
rounds:

1. every shard receives, for each of its inbound cross-shard links,
   the peer source's conservative **earliest-TX bound** plus any fresh
   ``(seq, value, tx_cycle)`` TX-ring entries;
2. the shard feeds the entries through the link's fault streams into
   the canonical arrival inbox, caps each boundary node at
   ``min over inbound cross links (bound + latency)``, and runs the
   ordinary lagging-node algorithm locally up to those caps;
3. it replies with its own outbound bounds/entries, and the
   coordinator routes bulletins for the next round.

Because a bound is conservative (a source cannot transmit earlier than
its current cycle, or its next event when idle) and link latencies are
>= 1 cycle, the globally lagging node can always advance — rounds make
progress until every node halts or exhausts the cycle budget — and no
byte is ever delivered to a node that already simulated past its
arrival cycle.  Delivery order, fault-stream draws, and node-local
execution are all independent of the partition, so the fleet digest is
bit-identical for every ``--shards`` value (1-shard runs in-process
through the very same :class:`~repro.fleet.shard.ShardRuntime`).

Workers are **pre-forked warm**: before forking, the coordinator runs
a priming pass — one scratch node per distinct program image (keyed by
flash fingerprint), fed a few radio bytes so receive paths get hot —
which populates the process-wide superblock cache the forked children
inherit copy-on-write; N identical nodes across all shards then
compile each hot block exactly once, in one process.

Timing: the container running the benchmark may have a single CPU, so
besides wall-clock the result reports per-process CPU seconds and a
``critical_path_s`` = coordinator CPU + the slowest shard's CPU — the
wall-clock a machine with >= ``shards`` idle cores would see.  The
nodes/sec scaling metric is defined on the critical path and labeled
as such in reports.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..faults.plan import FaultPlan
from ..fingerprint import content_key
from ..kernel.node import SensorNode
from .shard import InPayload, ShardRuntime, worker_main
from .topology import Topology, partition
from .workload import ProgramMap, build_programs

DEFAULT_MAX_CYCLES = 50_000_000
PRIME_CYCLES = 500_000


@dataclass
class FleetSpec:
    """Everything a shard worker needs to rebuild its partition."""
    topology: Topology
    programs: ProgramMap
    roles: Dict[str, str]
    workload: str
    count: int
    seed: int
    max_cycles: int = DEFAULT_MAX_CYCLES
    fault_plan: Optional[FaultPlan] = None

    @property
    def label(self) -> str:
        t = self.topology
        shape = "x".join(str(t.params[k]) for k in ("rows", "cols")
                         if k in t.params) or str(t.params.get("count"))
        return f"{t.kind}-{shape}-{self.workload}"


def build_spec(topology: Topology, workload: str = "flood",
               count: int = 8, seed: int = 0xF1EE7,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               fault_plan: Optional[FaultPlan] = None) -> FleetSpec:
    programs, roles = build_programs(topology, workload, count=count)
    return FleetSpec(topology=topology, programs=programs, roles=roles,
                     workload=workload, count=count, seed=seed,
                     max_cycles=max_cycles, fault_plan=fault_plan)


@dataclass
class FleetResult:
    label: str
    nodes: int
    links: int
    cross_links: int
    shards: int
    rounds: int
    finished_nodes: int
    max_node_cycles: int
    total_instret: int
    delivered: int
    dropped: int
    corrupted: int
    duplicated: int
    cross_bytes: int
    digest: str
    node_summaries: Dict[str, dict] = field(default_factory=dict)
    link_rows: List[Tuple[int, ...]] = field(default_factory=list)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    primed_images: int = 0
    compiled_per_shard: List[int] = field(default_factory=list)
    busy_s: List[float] = field(default_factory=list)
    coordinator_cpu_s: float = 0.0
    critical_path_s: float = 0.0
    wall_s: float = 0.0
    prime_s: float = 0.0

    @property
    def nodes_per_sec(self) -> float:
        """Fleet size over critical-path CPU seconds (the wall-clock a
        host with >= shards idle cores would see)."""
        if self.critical_path_s <= 0:
            return 0.0
        return self.nodes / self.critical_path_s

    def render(self, timing: bool = False) -> str:
        """Deterministic human-readable summary (timing lines opt-in,
        so golden files stay byte-stable)."""
        lines = [
            f"fleet {self.label}: {self.nodes} nodes, {self.links} links "
            f"({self.cross_links} cross-shard), {self.shards} shard(s)",
            f"  rounds {self.rounds}, finished {self.finished_nodes}/"
            f"{self.nodes}, max cycle {self.max_node_cycles}, "
            f"instret {self.total_instret}",
            f"  bytes: delivered {self.delivered}, dropped "
            f"{self.dropped}, corrupted {self.corrupted}, duplicated "
            f"{self.duplicated}, cross-shard ferried {self.cross_bytes}",
            f"  primed images {self.primed_images}, compiled blocks "
            f"per shard {self.compiled_per_shard}",
            f"  digest {self.digest}",
        ]
        if self.fault_counts:
            counts = ", ".join(f"{k}={v}" for k, v in
                               sorted(self.fault_counts.items()))
            lines.insert(3, f"  faults: {counts}")
        if timing:
            busy = ", ".join(f"{b:.3f}" for b in self.busy_s)
            lines.append(
                f"  timing: wall {self.wall_s:.3f}s, coordinator cpu "
                f"{self.coordinator_cpu_s:.3f}s, shard cpu [{busy}]s, "
                f"critical path {self.critical_path_s:.3f}s, "
                f"{self.nodes_per_sec:.1f} nodes/s")
        return "\n".join(lines)


def prime_caches(spec: FleetSpec,
                 prime_cycles: int = PRIME_CYCLES) -> Tuple[int, float]:
    """Warm the process-wide JIT caches before forking workers.

    Builds scratch nodes per *distinct flash image* in the fleet
    (deduped first by source tuple, then by flash fingerprint) and runs
    each image twice: once with an empty RX queue and once fed the
    workload's byte count over the radio.  The two passes matter
    because the specializer keys compiled variants on observed device
    state — ``UCSR0A`` reads differ between "bytes pending" (RXC set)
    and "idle" — so a single pass would leave one variant to compile
    per worker after the fork.  Returns (primed image count, CPU
    seconds spent priming).
    """
    t0 = time.process_time()
    seen_sources = set()
    seen_images = set()
    payload = bytes((0x30 + i) & 0xFF for i in range(spec.count))
    for name in spec.topology.names:
        sources = spec.programs[name]
        if sources in seen_sources:
            continue
        seen_sources.add(sources)
        probe = SensorNode.from_sources(
            list(sources), adc_seed=derive_scratch_seed(spec.seed))
        fingerprint = probe.cpu.flash.fingerprint()
        if fingerprint in seen_images:
            continue
        seen_images.add(fingerprint)
        probe.run(max_cycles=min(prime_cycles, 120_000))
        # Feed in two chunks with a bounded run between, so the scratch
        # node also visits the "drained mid-stream, spinning on an
        # empty queue" states a real relay sees between hops — and run
        # in horizon-sized slices: the network scheduler interrupts
        # nodes at link-latency horizons, which creates superblock
        # entry points mid-loop that an uninterrupted run never forms.
        fed = SensorNode.from_sources(
            list(sources), adc_seed=derive_scratch_seed(spec.seed))
        half = max(1, len(payload) // 2)
        fed.radio.deliver(payload[:half])
        slice_cycles = max(1, min(
            (ls.latency_cycles for ls in spec.topology.links),
            default=2_000))
        budget = min(prime_cycles, 120_000)
        while not fed.finished and fed.cpu.cycles < budget:
            fed.run(max_cycles=fed.cpu.cycles + slice_cycles)
        if not fed.finished:
            fed.radio.deliver(payload[half:])
            while not fed.finished and fed.cpu.cycles < prime_cycles:
                fed.run(max_cycles=fed.cpu.cycles + slice_cycles)
    return len(seen_images), time.process_time() - t0


def derive_scratch_seed(seed: int) -> int:
    from .shard import derive_adc_seed
    return derive_adc_seed(seed, "__prime__")


class FleetSim:
    """Drive a :class:`FleetSpec` across *shards* worker processes."""

    def __init__(self, spec: FleetSpec, shards: int = 1,
                 prime: bool = True):
        if shards < 1:
            raise ReproError("shard count must be >= 1")
        for ls in spec.topology.links:
            if ls.latency_cycles < 1:
                raise ReproError(
                    f"cross-process conservative sync needs link latency "
                    f">= 1 cycle; link #{ls.index} "
                    f"{ls.source!r} -> {ls.destination!r} has "
                    f"{ls.latency_cycles} (zero-lookahead links would "
                    f"deadlock the bulletin protocol)")
        self.spec = spec
        self.blocks = partition(spec.topology, shards)
        self.shards = len(self.blocks)
        self.prime = prime
        shard_of: Dict[str, int] = {}
        for index, block in enumerate(self.blocks):
            for name in block:
                shard_of[name] = index
        self.shard_of = shard_of
        #: Cross-shard links, routing table: index -> (src shard, dst shard)
        self.cross: Dict[int, Tuple[int, int]] = {}
        for ls in spec.topology.links:
            src, dst = shard_of[ls.source], shard_of[ls.destination]
            if src != dst:
                self.cross[ls.index] = (src, dst)

    # -- driving ------------------------------------------------------------

    def run(self) -> FleetResult:
        wall0 = time.perf_counter()
        primed, prime_s = (0, 0.0)
        if self.prime:
            primed, prime_s = prime_caches(self.spec)
        cpu0 = time.process_time()
        if self.shards == 1:
            rounds, finals = self._run_inprocess()
            local_busy = finals[0]["busy_s"]
        else:
            rounds, finals = self._run_forked()
            local_busy = 0.0
        coordinator_cpu = time.process_time() - cpu0 - local_busy
        wall_s = time.perf_counter() - wall0
        return self._assemble(rounds, finals, primed=primed,
                              prime_s=prime_s,
                              coordinator_cpu=coordinator_cpu,
                              wall_s=wall_s)

    def _run_inprocess(self) -> Tuple[int, List[dict]]:
        runtime = ShardRuntime(self.spec, self.blocks[0], 0)
        max_cycles = self.spec.max_cycles
        rounds = 0
        while True:
            progressed, rebooted = runtime.advance(max_cycles)
            rounds += 1
            states = runtime.states()
            if all(finished or cycles >= max_cycles
                   for cycles, finished in states.values()):
                break
            if not progressed and not rebooted:
                raise ReproError("fleet made no progress "
                                 f"(round {rounds})")
        return rounds, [runtime.finalize()]

    def _run_forked(self) -> Tuple[int, List[dict]]:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        pipes = []
        workers = []
        try:
            for index, block in enumerate(self.blocks):
                parent_conn, child_conn = ctx.Pipe()
                worker = ctx.Process(
                    target=worker_main,
                    args=(child_conn, self.spec, block, index),
                    daemon=True)
                worker.start()
                child_conn.close()
                pipes.append(parent_conn)
                workers.append(worker)
            return self._round_loop(pipes)
        finally:
            for conn in pipes:
                conn.close()
            for worker in workers:
                worker.join(timeout=30)
                if worker.is_alive():
                    worker.terminate()
                    worker.join(timeout=10)

    def _recv(self, conn):
        reply = conn.recv()
        if reply[0] == "error":
            raise ReproError(f"fleet worker failed:\n{reply[1]}")
        return reply

    def _round_loop(self, pipes) -> Tuple[int, List[dict]]:
        max_cycles = self.spec.max_cycles
        # Round 0: every inbound cross link starts at bound 0 (all
        # nodes boot at cycle 0) with no traffic yet.
        inbound: List[Dict[int, InPayload]] = [
            {index: (0, [], 0)
             for index, (_, dst) in self.cross.items() if dst == shard}
            for shard in range(self.shards)]
        rounds = 0
        while True:
            for shard, conn in enumerate(pipes):
                conn.send(("round", inbound[shard], max_cycles))
            replies = [self._recv(conn) for conn in pipes]
            rounds += 1
            nxt: List[Dict[int, InPayload]] = [
                {} for _ in range(self.shards)]
            shipped = 0
            any_progress = False
            all_done = True
            for shard, reply in enumerate(replies):
                _, outbound, states, progressed, rebooted, _ = reply
                any_progress = any_progress or progressed or rebooted
                for index, payload in outbound.items():
                    nxt[self.cross[index][1]][index] = payload
                    shipped += len(payload[1])
                for cycles, finished in states.values():
                    if not (finished or cycles >= max_cycles):
                        all_done = False
            if all_done:
                break
            if not any_progress and shipped == 0:
                raise ReproError(
                    f"fleet made no progress (round {rounds}; "
                    "conservative bounds stopped advancing)")
            inbound = nxt
        # The last round's collected outbound never went through a
        # "round" message — ship it with the finish so end-of-sim
        # in-flight bytes reach their destination inboxes (a 1-shard
        # run ferries them locally; the settle pass then delivers the
        # same residue either way).
        finals = []
        for shard, conn in enumerate(pipes):
            conn.send(("finish", nxt[shard]))
        for conn in pipes:
            finals.append(self._recv(conn)[1])
        return rounds, finals

    # -- assembly -----------------------------------------------------------

    def _assemble(self, rounds: int, finals: List[dict], *,
                  primed: int, prime_s: float, coordinator_cpu: float,
                  wall_s: float) -> FleetResult:
        node_summaries: Dict[str, dict] = {}
        link_rows: List[Tuple[int, ...]] = []
        fault_counts: Dict[str, int] = {}
        cross_bytes = 0
        for final in sorted(finals, key=lambda f: f["shard"]):
            node_summaries.update(final["nodes"])
            link_rows.extend(final["links"])
            for key, value in final["fault_counts"].items():
                fault_counts[key] = fault_counts.get(key, 0) + value
        link_rows.sort()
        names = self.spec.topology.names
        digest = content_key(
            [(name, node_summaries[name]["digest"]) for name in names],
            link_rows)
        # Bytes that crossed a process boundary: per shipped entry the
        # receiver either dropped it or delivered 1–2 copies, so
        # entries = dropped + delivered - duplicated.
        cross_indices = set(self.cross)
        for row in link_rows:
            if row[0] in cross_indices:
                cross_bytes += row[1] + row[2] - row[4]
        busy = [final["busy_s"]
                for final in sorted(finals, key=lambda f: f["shard"])]
        critical = coordinator_cpu + prime_s + (max(busy) if busy else 0.0)
        return FleetResult(
            label=self.spec.label,
            nodes=len(names),
            links=len(self.spec.topology.links),
            cross_links=len(self.cross),
            shards=self.shards,
            rounds=rounds,
            finished_nodes=sum(
                1 for s in node_summaries.values() if s["finished"]),
            max_node_cycles=max(
                s["cycles"] for s in node_summaries.values()),
            total_instret=sum(
                s["instret"] for s in node_summaries.values()),
            delivered=sum(row[1] for row in link_rows),
            dropped=sum(row[2] for row in link_rows),
            corrupted=sum(row[3] for row in link_rows),
            duplicated=sum(row[4] for row in link_rows),
            cross_bytes=cross_bytes,
            digest=digest,
            node_summaries=node_summaries,
            link_rows=link_rows,
            fault_counts=fault_counts,
            primed_images=primed,
            compiled_per_shard=[
                final["compiled_blocks"]
                for final in sorted(finals, key=lambda f: f["shard"])],
            busy_s=busy,
            coordinator_cpu_s=max(coordinator_cpu, 0.0),
            critical_path_s=max(critical, 1e-9),
            wall_s=wall_s,
            prime_s=prime_s,
        )
