"""Multi-hop fleet workloads: flood dissemination and relay routing.

Both workloads are built from the same three AVR program shapes the
network tests pin down (busy-wait on ``UCSR0A`` status bits, byte I/O
through ``UDR0``), assigned per node from the topology:

``flood``
    The source clocks out *count* bytes; **every** other node runs a
    relay that forwards the first *count* bytes it hears, then halts.
    On a connected topology with lossless links each node therefore
    receives at least *count* bytes (each neighbor is a source or a
    relay), so the whole fleet terminates — no node spins to the cycle
    budget.

``relay``
    A single multi-hop route: the source sends *count* bytes down the
    first BFS shortest path to the sink (the hop-farthest node), path
    interior nodes relay, the sink stores the payload in ``.bss``, and
    every off-path node runs a bounded ALU workload so shards always
    have local compute to overlap with the route's I/O.

``attack``
    The relay route carrying adversarial traffic: the source is
    ``mallory``, sending a length-prefixed frame whose length byte
    claims *count* payload bytes, and the sink runs the intentionally
    vulnerable unchecked heap-copy receiver from
    :mod:`repro.adversary.attacks`.  With *count* beyond the 16-byte
    buffer the copy crosses the sink task's region boundary and the
    kernel traps it (an ``oob`` fault termination on the sink) — the
    containment outcome, like everything else in the node digests,
    must be bit-identical across shard counts.

Busy-wait receive loops are deliberate here: a spinning node's
earliest-possible-TX equals its current cycle, so the conservative
cross-shard lookahead in :mod:`repro.fleet.sim` never needs to reason
about transitively-woken sleepers (see INTERNALS.md §14).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..avr import ioports
from ..avr.devices.radio import RXC
from ..errors import ReproError
from .topology import Topology

#: name -> ordered (task-name, source) tuples, ready for
#: ``SensorNode.from_sources``.
ProgramMap = Dict[str, Tuple[Tuple[str, str], ...]]


def sender_src(count: int, start: int = 0x30) -> str:
    return f"""
main:
    ldi r20, {count}
    ldi r16, {start}
send:
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    inc r16
    dec r20
    brne send
    break
"""


def relay_src(count: int) -> str:
    return f"""
main:
    ldi r20, {count}
relay:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
wait_tx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    dec r20
    brne relay
    break
"""


def receiver_src(count: int) -> str:
    return f"""
.bss received, {count}
main:
    ldi r20, {count}
    ldi r26, lo8(received)
    ldi r27, hi8(received)
recv:
wait_rx:
    lds r17, {ioports.UCSR0A}
    sbrs r17, {RXC}
    rjmp wait_rx
    lds r16, {ioports.UDR0}
    st X+, r16
    dec r20
    brne recv
    break
"""


def mallory_src(count: int, start: int = 0x30) -> str:
    """The attack source: a length byte claiming *count*, then *count*
    pattern bytes — the classic unchecked-copy overflow frame."""
    return f"""
main:
    ldi r16, {count}
    ldi r20, {count}
wait_len:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_len
    sts {ioports.UDR0}, r16
    ldi r16, {start}
send:
wait_tx:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp wait_tx
    sts {ioports.UDR0}, r16
    inc r16
    dec r20
    brne send
    break
"""


def compute_src(outer: int = 4, inner: int = 200) -> str:
    """A bounded nested accumulate loop — pure local compute."""
    if not (1 <= outer <= 255 and 1 <= inner <= 255):
        raise ReproError("compute loop bounds must be in 1..255")
    return f"""
main:
    ldi r21, {outer}
    ldi r24, 0
outer:
    ldi r20, {inner}
inner:
    add r24, r20
    eor r24, r21
    dec r20
    brne inner
    dec r21
    brne outer
    break
"""


def source_of(topology: Topology) -> str:
    """The flood/route source: the first node of the topology."""
    return topology.nodes[0].name


def sink_of(topology: Topology) -> str:
    """The hop-farthest node from the source (first-found at the
    maximum BFS depth — deterministic for a fixed link order)."""
    root = source_of(topology)
    depth = topology.bfs_order(root)
    if len(depth) != len(topology.nodes):
        missing = sorted(set(topology.names) - set(depth))
        raise ReproError(
            f"topology is not connected from {root!r}: "
            f"unreachable {missing[:4]}...")
    best = root
    for name in topology.names:
        if depth[name] > depth[best]:
            best = name
    return best


def build_programs(topology: Topology, workload: str,
                   count: int = 8,
                   compute_outer: int = 4) -> Tuple[
                       ProgramMap, Dict[str, str]]:
    """Assign a program to every node; returns (programs, roles)."""
    if count < 1 or count > 200:
        raise ReproError("byte count must be in 1..200")
    source = source_of(topology)
    roles: Dict[str, str] = {}
    programs: ProgramMap = {}
    if workload == "flood":
        for name in topology.names:
            if name == source:
                roles[name] = "source"
                programs[name] = (("sender", sender_src(count)),)
            else:
                roles[name] = "relay"
                programs[name] = (("relay", relay_src(count)),)
    elif workload == "relay":
        sink = sink_of(topology)
        path = topology.bfs_path(source, sink)
        on_path = set(path)
        for name in topology.names:
            if name == source:
                roles[name] = "source"
                programs[name] = (("sender", sender_src(count)),)
            elif name == sink:
                roles[name] = "sink"
                programs[name] = (("receiver", receiver_src(count)),)
            elif name in on_path:
                roles[name] = "relay"
                programs[name] = (("relay", relay_src(count)),)
            else:
                roles[name] = "compute"
                programs[name] = (
                    ("compute", compute_src(outer=compute_outer)),)
    elif workload == "attack":
        from ..adversary.attacks import VICTIM_HEAP
        sink = sink_of(topology)
        path = topology.bfs_path(source, sink)
        on_path = set(path)
        # The frame on the air is length byte + count payload bytes.
        frame = count + 1
        for name in topology.names:
            if name == source:
                roles[name] = "mallory"
                programs[name] = (("mallory", mallory_src(count)),)
            elif name == sink:
                roles[name] = "victim"
                programs[name] = (("victim", VICTIM_HEAP),)
            elif name in on_path:
                roles[name] = "relay"
                programs[name] = (("relay", relay_src(frame)),)
            else:
                roles[name] = "compute"
                programs[name] = (
                    ("compute", compute_src(outer=compute_outer)),)
    else:
        raise ReproError(f"unknown workload {workload!r} "
                         "(expected 'flood', 'relay' or 'attack')")
    return programs, roles
