"""One shard of a fleet: a partition of nodes plus its boundary links.

A :class:`ShardRuntime` wraps a plain :class:`~repro.net.Network` over
the shard's local nodes and handles the two halves of the conservative
cross-shard protocol:

* **inbound** — for every cross-shard link whose *destination* is
  local, the shard owns the :class:`~repro.net.network.Link` object
  (so the loss/corruption/duplication LFSR streams are consumed by
  exactly one process, in global byte order) and feeds bulletin
  entries through the network's canonical arrival inbox;
* **outbound** — for every cross-shard link whose *source* is local,
  the shard keeps a TX-ring cursor and ships fresh
  ``(seq, value, tx_cycle)`` entries plus the source's conservative
  earliest-TX bound in its bulletin.

The same class backs both the in-process 1-shard path and the forked
worker processes (:func:`worker_main`), so every shard count executes
the same code.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Tuple

from ..avr.cpu import _GLOBAL_BLOCK_CACHE
from ..faults.inject import FaultInjector
from ..faults.rng import XorShift32
from ..fingerprint import content_key
from ..kernel.node import SensorNode
from ..net.network import Link, Network
from ..sim.events import INFINITY

#: One shipped TX-ring entry: (sequence, value, tx_cycle).
Entry = Tuple[int, int, int]
#: Inbound bulletin per cross link: (earliest_tx bound or None for
#: "source finished, never again", fresh entries, ring-missed count).
InPayload = Tuple[Optional[int], List[Entry], int]


def derive_adc_seed(fleet_seed: int, name: str) -> int:
    """Per-node ADC LFSR seed from the fleet seed (16-bit, nonzero)."""
    state = XorShift32(fleet_seed).derive(f"fleet/adc/{name}").next()
    return (state & 0xFFFF) or 0xACE1


def node_digest(name: str, node: SensorNode) -> str:
    """Content key over the node's complete architectural final state.

    Everything execution can influence is in here — registers, SREG,
    PC, SP, cycle and instruction counts, the full SRAM image, the
    radio TX sequence and undrained RX queue, context switches, and
    reboot count — so two runs agree on the digest only if the node's
    history was bit-identical.
    """
    cpu = node.cpu
    return content_key(
        name, cpu.cycles, cpu.instret, cpu.pc, cpu.sp, cpu.sreg,
        bool(cpu.halted), bytes(cpu.r), bytes(cpu.mem.data),
        node.radio.tx_seq, bytes(node.radio.rx_queue),
        node.kernel.stats.context_switches, node.reboots)


def link_stats_row(index: int, link: Link) -> Tuple[int, ...]:
    return (index, link.delivered, link.dropped, link.corrupted,
            link.duplicated, link.log_missed)


def _compiled_blocks() -> int:
    return sum(_GLOBAL_BLOCK_CACHE.compile_counts.values())


class ShardRuntime:
    """Local simulation state for one shard of a :class:`FleetSpec`."""

    def __init__(self, spec, names: List[str], shard_index: int):
        self.spec = spec
        self.names = list(names)
        self.shard_index = shard_index
        local = set(self.names)
        self.net = Network()
        for name in self.names:
            self.net.add_node(name, SensorNode.from_sources(
                list(spec.programs[name]),
                adc_seed=derive_adc_seed(spec.seed, name)))
        #: global link index -> Link, for links fully inside the shard
        self.local_links: Dict[int, Link] = {}
        #: global link index -> Link owned here (destination local)
        self.inbound_cross: Dict[int, Link] = {}
        #: global link index -> (LinkSpec, tx cursor) (source local)
        self.outbound_cross: Dict[int, List] = {}
        for ls in spec.topology.links:
            src_local = ls.source in local
            dst_local = ls.destination in local
            link = Link(source=ls.source, destination=ls.destination,
                        latency_cycles=ls.latency_cycles,
                        loss_permille=ls.loss_permille,
                        corrupt_permille=ls.corrupt_permille,
                        dup_permille=ls.dup_permille, order=ls.index)
            if src_local and dst_local:
                self.local_links[ls.index] = self.net.add_link(link)
            elif dst_local:
                self.inbound_cross[ls.index] = link
            elif src_local:
                self.outbound_cross[ls.index] = [ls, 0]
        self.injector: Optional[FaultInjector] = None
        if spec.fault_plan is not None:
            self.injector = FaultInjector(spec.fault_plan)
            self.injector.attach_network(self.net)
        self._reboots_seen = {name: 0 for name in self.names}
        self._compiled_at_start = _compiled_blocks()
        self._busy_s = 0.0

    # -- round protocol -----------------------------------------------------

    def apply_inbound(self, inbound: Dict[int, InPayload]) -> int:
        """Feed bulletin traffic and recompute external bounds.

        Returns how many bytes were ferried in.  A node's bound is the
        min over its inbound cross links of (peer earliest-TX bound +
        link latency); links whose source has finished forever
        (``None`` bound) impose no constraint.
        """
        ferried = 0
        bounds: Dict[str, float] = {}
        for index, (tx_bound, entries, missed) in sorted(inbound.items()):
            link = self.inbound_cross[index]
            link.log_missed += missed
            if entries:
                ferried += len(entries)
                self.net.ferry_entries(link, entries)
            bound = INFINITY if tx_bound is None \
                else tx_bound + link.latency_cycles
            name = link.destination
            bounds[name] = min(bounds.get(name, INFINITY), bound)
        self.net.ext_bounds = {
            name: int(bound) for name, bound in bounds.items()
            if bound != INFINITY}
        return ferried

    def advance(self, max_cycles: int) -> Tuple[bool, int]:
        """Run every local node to its bound/budget; service faults.

        Returns (progressed, rebooted): whether any node advanced its
        cycle counter, and how many crashed nodes came back (a reboot
        rewinds this shard's outbound cross cursors for the fresh
        radio, mirroring what :meth:`Network.reset_node_io` does for
        local links).
        """
        before = [self.net.nodes[name].cpu.cycles for name in self.names]
        t0 = time.process_time()
        self.net.run(max_cycles=max_cycles)
        rebooted = 0
        if self.injector is not None:
            rebooted = self.injector.service()
            if rebooted:
                for name in self.names:
                    node = self.net.nodes[name]
                    if node.reboots > self._reboots_seen[name]:
                        self._reboots_seen[name] = node.reboots
                        for pair in self.outbound_cross.values():
                            if pair[0].source == name:
                                pair[1] = 0
        self._busy_s += time.process_time() - t0
        after = [self.net.nodes[name].cpu.cycles for name in self.names]
        return after != before, rebooted

    def collect_outbound(self) -> Dict[int, InPayload]:
        """Fresh TX entries + earliest-TX bound per outbound cross link."""
        out: Dict[int, InPayload] = {}
        for index, pair in self.outbound_cross.items():
            ls, cursor = pair
            node = self.net.nodes[ls.source]
            radio = node.radio
            fresh, missed = radio.tx_since(cursor)
            pair[1] = radio.tx_seq
            tx = Network._earliest_tx(node)
            bound = None if tx == INFINITY else int(tx)
            out[index] = (bound, fresh, missed)
        return out

    def states(self) -> Dict[str, Tuple[int, bool]]:
        return {name: (self.net.nodes[name].cpu.cycles,
                       self.net.nodes[name].finished)
                for name in self.names}

    # -- final accounting ---------------------------------------------------

    def finalize(self, flush: Optional[Dict[int, InPayload]] = None) -> dict:
        """Summarize the shard's final state.

        *flush* carries the coordinator's last collected outbound
        bulletins — traffic that was still in flight when every node
        reached its end state.  It is ferried (but no longer run), and
        then the network settles every residual inbox arrival in
        canonical order: a byte that raced a receiver's halt lands in
        the RX queue wherever the partition cut fell, so delivery
        counts and RX residue are functions of execution alone.
        """
        if flush:
            self.apply_inbound(flush)
        self.net.settle_inboxes()
        nodes = {}
        for name in self.names:
            node = self.net.nodes[name]
            nodes[name] = {
                "digest": node_digest(name, node),
                "cycles": node.cpu.cycles,
                "instret": node.cpu.instret,
                "finished": node.finished,
                "reboots": node.reboots,
            }
        links = [link_stats_row(index, link)
                 for index, link in sorted(self.local_links.items())]
        links += [link_stats_row(index, link)
                  for index, link in sorted(self.inbound_cross.items())]
        fault_counts = dict(self.injector.counts) \
            if self.injector is not None else {}
        return {
            "shard": self.shard_index,
            "nodes": nodes,
            "links": links,
            "busy_s": self._busy_s,
            "compiled_blocks": _compiled_blocks() - self._compiled_at_start,
            "fault_counts": fault_counts,
        }


def worker_main(conn, spec, names: List[str], shard_index: int) -> None:
    """Entry point of a forked shard worker.

    Speaks a tiny tuple protocol over *conn*:

    * recv ``("round", inbound, max_cycles)`` → apply bulletin, advance,
      reply ``("ok", outbound, states, progressed, rebooted, ferried)``
    * recv ``("finish", flush)`` → ferry the last in-flight bulletins,
      settle residual inboxes, reply ``("final", summary)`` and exit
    Any exception is reported as ``("error", traceback_text)``.
    """
    try:
        runtime = ShardRuntime(spec, names, shard_index)
        while True:
            message = conn.recv()
            if message[0] == "round":
                _, inbound, max_cycles = message
                ferried = runtime.apply_inbound(inbound)
                progressed, rebooted = runtime.advance(max_cycles)
                conn.send(("ok", runtime.collect_outbound(),
                           runtime.states(), progressed, rebooted,
                           ferried))
            elif message[0] == "finish":
                flush = message[1] if len(message) > 1 else None
                conn.send(("final", runtime.finalize(flush)))
                return
            else:
                raise ValueError(f"unknown message {message[0]!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
