"""Content fingerprints: the one blake2b helper for every cache key.

Three subsystems key caches by content — the flash image fingerprint
behind the cross-CPU :class:`~repro.avr.cpu.SuperblockCache`, the
persistent :class:`~repro.avr.trace.TraceStore` filenames, and the
build pipeline's per-stage artifact keys.  They all hash here, so a key
is stable across refactors exactly when this module is stable (the
pinned digests in ``tests/test_fingerprint.py`` enforce that), and a
deliberate format change is one :data:`KEY_VERSION` bump away from
invalidating every store at once.

Two entry points:

* :func:`blake2b_hex` — hash raw bytes (the flash image payload).
* :func:`content_key` — hash structured Python data (tuples of sources,
  option mappings, stage names).  Values are serialized with an
  unambiguous type-tagged, length-prefixed encoding, so ``("ab",)`` and
  ``("a", "b")`` cannot collide and dict key order never matters.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

#: Bump to invalidate every content-keyed store after an encoding or
#: semantics change.  Mixed into :func:`content_key`, not
#: :func:`blake2b_hex` (raw-bytes hashes carry their own meaning).
KEY_VERSION = 1

#: Default digest size, hex-encoded to 32 characters — short enough for
#: filenames, long enough that collisions are never a practical concern.
DIGEST_SIZE = 16


def blake2b_hex(payload: bytes, digest_size: int = DIGEST_SIZE) -> str:
    """Hex blake2b digest of raw *payload* bytes."""
    return hashlib.blake2b(payload, digest_size=digest_size).hexdigest()


def _encode(value) -> Iterator[bytes]:
    """Type-tagged canonical encoding of *value* (generator of chunks).

    Supported: None, bool, int, float, str, bytes/bytearray, and
    list/tuple/dict/set compositions thereof.  Every atom is prefixed
    with a one-byte tag and its length, every container with its item
    count, so distinct structures always produce distinct byte streams.
    """
    if value is None:
        yield b"N"
    elif value is True:
        yield b"T"
    elif value is False:
        yield b"F"
    elif isinstance(value, int):
        body = str(value).encode()
        yield b"i%d:" % len(body)
        yield body
    elif isinstance(value, float):
        body = repr(value).encode()
        yield b"f%d:" % len(body)
        yield body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        yield b"s%d:" % len(body)
        yield body
    elif isinstance(value, (bytes, bytearray)):
        yield b"b%d:" % len(value)
        yield bytes(value)
    elif isinstance(value, (list, tuple)):
        yield b"l%d:" % len(value)
        for item in value:
            yield from _encode(item)
    elif isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        yield b"d%d:" % len(items)
        for key, item in items:
            yield from _encode(key)
            yield from _encode(item)
    elif isinstance(value, (set, frozenset)):
        encoded = sorted(b"".join(_encode(item)) for item in value)
        yield b"e%d:" % len(encoded)
        for chunk in encoded:
            yield chunk
    else:
        raise TypeError(
            f"content_key cannot canonicalize {type(value).__name__!r}")


def content_key(*parts, digest_size: int = DIGEST_SIZE) -> str:
    """Hex blake2b digest of the canonical encoding of *parts*."""
    digest = hashlib.blake2b(digest_size=digest_size)
    digest.update(b"v%d;" % KEY_VERSION)
    for part in parts:
        for chunk in _encode(part):
            digest.update(chunk)
    return digest.hexdigest()
