"""Seeded xorshift PRNG for fault planning.

A tiny, dependency-free generator with the same design constraints as
the radio LFSRs in ``repro.net``: pure integer state, identical on
every platform and Python version, zero reliance on the ``random``
module's global state.  Distinct streams (one per node, one per fault
kind) are derived by mixing strings into the seed, so adding a fault
kind never perturbs another kind's draws.
"""

from __future__ import annotations

_MASK = 0xFFFFFFFF


class XorShift32:
    """Marsaglia xorshift32: 2**32-1 period, never yields 0 state."""

    __slots__ = ("state",)

    def __init__(self, seed: int):
        self.state = (seed & _MASK) or 0x9E3779B9

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & _MASK
        x ^= x >> 17
        x ^= (x << 5) & _MASK
        self.state = x
        return x

    def below(self, bound: int) -> int:
        """Uniform-ish draw in ``[0, bound)`` (bound >= 1)."""
        return self.next() % bound

    def chance(self, permille: int) -> bool:
        """True with probability ``permille / 1000``."""
        return (self.next() % 1000) < permille

    def derive(self, label: str) -> "XorShift32":
        """A child stream keyed by *label*, independent of this one."""
        state = self.state
        for char in label:
            state = ((state * 0x01000193) ^ ord(char)) & _MASK
        child = XorShift32(state or 0x9E3779B9)
        child.next()  # decorrelate from the raw mix
        return child
