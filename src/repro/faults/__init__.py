"""Deterministic fault injection and survivability measurement.

Everything in this package is seed-reproducible: fault times and
targets come from :class:`~.rng.XorShift32` streams derived from a
:class:`~.plan.FaultPlan` seed — never from wall-clock time or the
``random`` module — and faults land as events on the per-node sim
event queues (``repro.sim``), so an identical seed replays an
identical campaign byte for byte.  With no plan attached, nothing is
scheduled and execution is bit-identical to a fault-free build
(enforced by ``tests/test_faults.py``).
"""

from .inject import FaultInjector
from .plan import FaultAction, FaultPlan
from .rng import XorShift32

__all__ = ["FaultAction", "FaultInjector", "FaultPlan", "XorShift32"]
