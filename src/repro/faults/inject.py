"""FaultInjector: lands planned faults as sim events on live nodes.

The injector binds a :class:`~.plan.FaultPlan` to one or more
:class:`~repro.kernel.SensorNode` instances.  Each planned action is
armed as an event on the node's own sim event queue, so it strikes at
a deterministic cycle boundary — the same boundary in stepwise, fused
and specialized execution modes.  Fault *targets* (which region, which
flash word, which bit) are drawn at fire time from the plan's per-node
target stream, because they must reflect machine state at the moment
of impact (regions move, tasks die).

Injected SRAM flips bump the owning task's ``region_epoch`` via
``SenSmartKernel._on_region_change`` — specialized trap code guards on
that epoch, so a flip landing under a specialized superblock forces a
deopt back to generic dispatch instead of running stale assumptions.
Flash flips go through ``Flash.load``, which fires the burn listeners
and drops decoded thunks/fused blocks covering the changed word.

Crashes halt the CPU; :meth:`FaultInjector.service` reboots crashed
nodes (cold restart, persisted network time), resets the TX cursors of
links sourced at the rebooted node (its radio log restarts from
sequence 0), and re-arms the node's remaining future faults on the
fresh event queue.  Actions whose time passed while the node was dark
are recorded as missed, not replayed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .plan import (CRASH, DRIFT, FLASH_FLIP, SRAM_FLIP, FaultAction,
                   FaultPlan)
from .rng import XorShift32


class _Binding:
    """One node's live fault state."""

    __slots__ = ("name", "node", "rng", "actions", "fired")

    def __init__(self, name: str, node, rng: XorShift32,
                 actions: List[FaultAction]):
        self.name = name
        self.node = node
        self.rng = rng
        self.actions = actions
        self.fired = [False] * len(actions)


class FaultInjector:
    """Executes a :class:`FaultPlan` against attached nodes."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._bindings: Dict[str, _Binding] = {}
        self._network = None
        #: Human-readable fault log, in firing order.
        self.records: List[str] = []
        self.counts: Dict[str, int] = {
            SRAM_FLIP: 0, FLASH_FLIP: 0, CRASH: 0, DRIFT: 0,
            "load-flip": 0, "recovered": 0, "missed": 0,
        }

    # -- wiring -----------------------------------------------------------------

    def attach(self, name: str, node) -> None:
        """Bind *node* under *name*: load-time flips now, events armed."""
        if name in self._bindings:
            raise ValueError(f"node {name!r} already attached")
        binding = _Binding(name, node, self.plan.targets_rng(name),
                           self.plan.schedule_for(name))
        self._bindings[name] = binding
        if self.plan.targets(name):
            for _ in range(self.plan.flash_flips_at_load):
                self._flip_flash(binding, at_load=True)
        for index in range(len(binding.actions)):
            self._arm(binding, index)

    def attach_network(self, network) -> None:
        """Attach every node of *network* and remember its links."""
        self._network = network
        for name, node in network.nodes.items():
            self.attach(name, node)

    def _arm(self, binding: _Binding, index: int) -> None:
        action = binding.actions[index]
        binding.node.cpu.events.schedule(
            action.cycle,
            lambda binding=binding, index=index:
                self._fire(binding, index))

    # -- firing -----------------------------------------------------------------

    def _fire(self, binding: _Binding, index: int) -> None:
        if binding.fired[index]:
            return
        binding.fired[index] = True
        action = binding.actions[index]
        self.counts[action.kind] += 1
        if action.kind == SRAM_FLIP:
            self._flip_sram(binding)
        elif action.kind == FLASH_FLIP:
            self._flip_flash(binding)
        elif action.kind == CRASH:
            self._crash(binding)
        elif action.kind == DRIFT:
            self._drift(binding)

    def _record(self, binding: _Binding, text: str) -> None:
        self.records.append(
            f"{binding.node.cpu.cycles:>12} {binding.name:<8} {text}")

    def _flip_sram(self, binding: _Binding) -> None:
        kernel = binding.node.kernel
        regions = [r for r in kernel.regions.regions
                   if r.task_id in kernel.tasks
                   and kernel.tasks[r.task_id].alive]
        if not regions:
            self._record(binding, "sram-flip: no live region")
            return
        # Prefer regions with live stack bytes: SRAM cells that are
        # *read back* (return addresses, spilled registers) are the
        # ones whose flips the soft-error literature cares about; a
        # flip in an idle spin loop's empty region perturbs nothing.
        deep = [r for r in regions
                if kernel._sp_of(r.task_id) + 1 < r.p_u]
        pool = deep or regions
        region = pool[binding.rng.below(len(pool))]
        # Half the flips land in the live stack, the other half
        # anywhere in the region (heap, dead stack).
        sp = kernel._sp_of(region.task_id)
        stack_lo, stack_hi = sp + 1, region.p_u
        if binding.rng.below(2) == 0 and stack_lo < stack_hi:
            address = stack_lo + binding.rng.below(stack_hi - stack_lo)
        else:
            address = region.p_l + binding.rng.below(region.size)
        bit = binding.rng.below(8)
        kernel.cpu.mem.data[address] ^= 1 << bit
        # The flip is an *external* write into guarded memory: retire
        # any specialized code whose baked-in assumptions may now lie.
        kernel._on_region_change(region.task_id)
        self._record(binding,
                     f"sram-flip  @{address:#06x} bit {bit} "
                     f"(task {region.task_id})")

    def _flip_flash(self, binding: _Binding, at_load: bool = False) -> None:
        kernel = binding.node.kernel
        tasks = [t for t in kernel.tasks.values() if t.alive]
        if not tasks:
            self._record(binding, "flash-flip: no live task")
            return
        task = tasks[binding.rng.below(len(tasks))]
        program = task.image.natural
        address = program.base + binding.rng.below(len(program.words))
        bit = binding.rng.below(16)
        word = kernel.cpu.flash.word(address)
        kernel.cpu.flash.load(address, [word ^ (1 << bit)])
        if at_load:
            self.counts["load-flip"] += 1
        self._record(binding,
                     f"flash-flip @{address:#06x} bit {bit:>2} "
                     f"({'load' if at_load else 'run'}, "
                     f"task {task.task_id})")

    def _crash(self, binding: _Binding) -> None:
        binding.node.crash()
        self._record(binding, "crash")

    def _drift(self, binding: _Binding) -> None:
        binding.node.cpu.cycles += self.plan.drift_cycles
        self._record(binding, f"drift      +{self.plan.drift_cycles}")

    # -- test hooks: pin a single fault at an exact cycle -----------------------

    def schedule(self, name: str, kind: str, cycle: int) -> None:
        """Arm one extra *kind* fault on *name* at *cycle* (for tests)."""
        binding = self._bindings[name]
        binding.actions.append(FaultAction(cycle=cycle, kind=kind))
        binding.fired.append(False)
        self._arm(binding, len(binding.actions) - 1)

    def schedule_sram_flip(self, name: str, cycle: int) -> None:
        self.schedule(name, SRAM_FLIP, cycle)

    def schedule_flash_flip(self, name: str, cycle: int) -> None:
        self.schedule(name, FLASH_FLIP, cycle)

    def schedule_crash(self, name: str, cycle: int) -> None:
        self.schedule(name, CRASH, cycle)

    # -- recovery ----------------------------------------------------------------

    def service(self) -> int:
        """Reboot crashed nodes; returns how many came back.

        A reboot replaces the node's CPU (and thus its event queue and
        radio TX log), so the injector re-arms the node's remaining
        future faults on the fresh queue and asks the network to forget
        the node's in-flight traffic (pending inbox arrivals die with
        the old event queue; TX cursors rewind for the fresh radio).
        Faults whose time passed while the node was dark are counted as
        missed.
        """
        recovered = 0
        for binding in self._bindings.values():
            if not binding.node.crashed:
                continue
            binding.node.reboot()
            recovered += 1
            self.counts["recovered"] += 1
            self._record(binding, "reboot")
            if self._network is not None:
                self._network.reset_node_io(binding.name)
            now = binding.node.cpu.cycles
            for index, action in enumerate(binding.actions):
                if binding.fired[index]:
                    continue
                if action.cycle < now:
                    binding.fired[index] = True
                    self.counts["missed"] += 1
                    self._record(
                        binding, f"{action.kind}: missed while down")
                else:
                    self._arm(binding, index)
        return recovered

    # -- drivers ------------------------------------------------------------------

    def run(self, network, max_cycles: int = 20_000_000,
            step: int = 200_000) -> None:
        """Drive *network* to *max_cycles*, rebooting crashed nodes.

        ``network.run`` stops visiting a crashed (halted) node, so the
        co-simulation is advanced in bounded chunks with a
        :meth:`service` pass between chunks — a crashed node is dark
        for at most one chunk before its reboot."""
        if self._network is None:
            self.attach_network(network)
        target = min(step, max_cycles)
        while True:
            network.run(max_cycles=target)
            rebooted = self.service()
            if not rebooted:
                if target >= max_cycles:
                    return
                if all(node.finished
                       for node in network.nodes.values()):
                    return
            target = min(target + step, max_cycles)

    def run_node(self, name: str,
                 max_cycles: Optional[int] = None) -> None:
        """Single-node driver: run, reboot on crash, run on."""
        node = self._bindings[name].node
        while True:
            node.run(max_cycles=max_cycles)
            if not self.service():
                return
            if max_cycles is not None and node.cpu.cycles >= max_cycles:
                return
