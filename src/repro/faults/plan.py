"""FaultPlan: what goes wrong, where, and when — decided up front.

A plan turns ``(seed, horizon, per-kind counts)`` into a per-node list
of :class:`FaultAction` timestamps.  Times are drawn from an
:class:`~.rng.XorShift32` stream derived from the seed and the node
name, so every node's schedule is independent and the whole campaign
replays exactly from the seed.  *What* each fault hits (which region,
which flash word, which bit) is drawn at fire time from a second
per-node stream — targets must reflect the machine state at the moment
of impact (regions move), and a dedicated stream keeps those draws
deterministic regardless of how the times interleave.

The plan only *describes* faults; :class:`~.inject.FaultInjector`
schedules them on the nodes' sim event queues and executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .rng import XorShift32

#: Fault kinds a plan can schedule.
SRAM_FLIP = "sram-flip"
FLASH_FLIP = "flash-flip"
CRASH = "crash"
DRIFT = "drift"

KINDS = (SRAM_FLIP, FLASH_FLIP, CRASH, DRIFT)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault on one node."""

    cycle: int
    kind: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultAction {self.kind}@{self.cycle}>"


@dataclass
class FaultPlan:
    """Seeded description of a fault campaign.

    Counts are *per node*; every fault time is drawn uniformly in
    ``[warmup_cycles, horizon_cycles)``.  ``flash_flips_at_load`` are
    applied immediately when the injector attaches (image corruption
    that shipped with the load), before the node executes anything.
    """

    seed: int
    horizon_cycles: int
    warmup_cycles: int = 100_000
    sram_flips: int = 0
    flash_flips: int = 0
    flash_flips_at_load: int = 0
    crashes: int = 0
    #: Oscillator drift: every drift event jumps the node's clock
    #: forward by ``drift_cycles`` (modelling accumulated skew against
    #: the network epoch).
    drift_steps: int = 0
    drift_cycles: int = 64
    #: Restrict faults to these node names (empty = every attached node).
    only_nodes: List[str] = field(default_factory=list)

    def targets(self, name: str) -> bool:
        return not self.only_nodes or name in self.only_nodes

    def times_rng(self, name: str) -> XorShift32:
        return XorShift32(self.seed).derive(f"times/{name}")

    def targets_rng(self, name: str) -> XorShift32:
        return XorShift32(self.seed).derive(f"targets/{name}")

    def schedule_for(self, name: str) -> List[FaultAction]:
        """The node's fault timeline, sorted by cycle."""
        if not self.targets(name):
            return []
        rng = self.times_rng(name)
        span = max(1, self.horizon_cycles - self.warmup_cycles)
        actions: List[FaultAction] = []
        for kind, count in ((SRAM_FLIP, self.sram_flips),
                            (FLASH_FLIP, self.flash_flips),
                            (CRASH, self.crashes),
                            (DRIFT, self.drift_steps)):
            for _ in range(count):
                cycle = self.warmup_cycles + rng.below(span)
                actions.append(FaultAction(cycle=cycle, kind=kind))
        actions.sort(key=lambda action: (action.cycle, action.kind))
        return actions
