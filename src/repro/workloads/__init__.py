"""The paper's benchmark programs, written in AVR assembly.

* :mod:`.kernelbench` — the seven kernel benchmarks used in Section V-C
  (am, amplitude, crc, eventchain, lfsr, readadc, timer), originally
  from the t-kernel evaluation.
* :mod:`.periodic` — the PeriodicTask program of Section V-C.
* :mod:`.bintree` — the sense-and-send binary-tree workload of
  Section V-D.
"""

from .bintree import feeder_source, search_task_source
from .kernelbench import KERNEL_BENCHMARKS, kernel_benchmark_source
from .periodic import periodic_native_source, periodic_sensmart_source

__all__ = [
    "KERNEL_BENCHMARKS", "kernel_benchmark_source",
    "periodic_native_source", "periodic_sensmart_source",
    "feeder_source", "search_task_source",
]
