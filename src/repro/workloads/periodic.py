"""PeriodicTask: periodic events triggering computational tasks.

"We use a PeriodicTask program to emulate the common operating pattern
of sensornet applications — periodic events triggering computational
tasks.  The computational tasks in PeriodicTask can be configured to a
desirable computation size (number of instructions)" (paper Section
V-C, Figure 6).

Two variants share the same computation core:

* the SenSmart variant arms the kernel's virtual per-task timer and
  uses ``SLEEP`` (trapped) to wait out each period;
* the native variant programs the real Timer3 compare interrupt and
  sleeps on the hardware, re-arming the absolute compare point each
  round — which is also how it degrades when computation overruns the
  period, the effect behind the knee in Figure 6(a).
"""

from __future__ import annotations

from ..avr import ioports
from .asmlib import arm_virtual_timer, compute_block_mem

DEFAULT_PERIOD_TICKS = 2048  # 2048 ticks * prescaler 8 = ~2.2 ms


def periodic_sensmart_source(compute_instructions: int,
                             activations: int,
                             period_ticks: int = DEFAULT_PERIOD_TICKS,
                             ) -> str:
    """PeriodicTask for SenSmart: virtual timer + trapped SLEEP."""
    return f"""
; periodic task: {activations} activations of ~{compute_instructions} instr
.bss done, 2
.bss work_scratch, 2
main:
{arm_virtual_timer(period_ticks)}
    ldi r20, lo8({activations})
    ldi r21, hi8({activations})
act_loop:
    sleep
{compute_block_mem(compute_instructions, "work")}
    lds r16, done
    inc r16
    sts done, r16
    subi r20, 1
    sbci r21, 0
    mov r18, r20
    or r18, r21
    brne act_loop
    break
"""


def periodic_native_source(compute_instructions: int,
                           activations: int,
                           period_ticks: int = DEFAULT_PERIOD_TICKS,
                           ) -> str:
    """PeriodicTask on bare metal: Timer3 compare interrupt + SLEEP."""
    return f"""
; native periodic task: Timer3 compare IRQ wakes SLEEP
.org {ioports.VECT_TIMER3_COMPA}
    jmp isr

.org 0x40
.bss done, 2
.bss next_cmp, 2
.bss work_scratch, 2
main:
    ; next compare point = now + period
    lds r16, {ioports.TCNT3L}
    lds r17, {ioports.TCNT3H}
    subi r16, lo8(-{period_ticks})
    sbci r17, hi8(-{period_ticks})
    sts next_cmp, r16
    sts next_cmp + 1, r17
    sts {ioports.OCR3AH}, r17
    sts {ioports.OCR3AL}, r16
    ldi r16, 1
    sts {ioports.TCCR3B}, r16      ; enable compare interrupt
    sei
    ldi r20, lo8({activations})
    ldi r21, hi8({activations})
act_loop:
    sleep
    ; re-arm: next_cmp += period
    lds r16, next_cmp
    lds r17, next_cmp + 1
    subi r16, lo8(-{period_ticks})
    sbci r17, hi8(-{period_ticks})
    sts next_cmp, r16
    sts next_cmp + 1, r17
    sts {ioports.OCR3AH}, r17
    sts {ioports.OCR3AL}, r16
    ldi r16, 1
    sts {ioports.TCCR3B}, r16
{compute_block_mem(compute_instructions, "work")}
    lds r16, done
    inc r16
    sts done, r16
    subi r20, 1
    sbci r21, 0
    mov r18, r20
    or r18, r21
    brne act_loop
    break

isr:
    reti
"""
