"""Dynamic-allocation emulation module (paper Section III-A).

SenSmart assumes "the application code does not use dynamic memory
allocation. ... For those applications that do, it is not difficult to
add a specific allocation module, which claims a chunk of memory and
re-allocates parts of it upon requests, to emulate the dynamic memory
function.  Some versions of TinyOS already contain such a module."

This is that module: an assembly library a program pastes in.  It
claims a ``.bss`` pool at compile time and serves requests from it with
a bump allocator plus a reset, which is exactly the TinyOS
``StackAlloc``-style discipline (allocate during a transaction, free
everything at once).

ABI (call-clobbered: r18-r21):

* ``alloc_init``  — reset the pool (also frees everything).
* ``alloc``       — in: r17:r16 = size; out: r25:r24 = block address,
  or 0 when the pool is exhausted.
* ``alloc_mark``  — out: r25:r24 = current watermark (opaque).
* ``alloc_release`` — in: r17:r16 = watermark; frees everything
  allocated after the matching ``alloc_mark``.
"""

from __future__ import annotations


def allocator_library(pool_name: str = "alloc_pool",
                      pool_bytes: int = 256) -> str:
    """The library text: ``.bss`` reservations plus the four routines.

    Paste at the end of a program (routines are ``CALL``-ed).  The pool
    pointer lives in the first two pool bytes; blocks start after it.
    """
    if pool_bytes < 8:
        raise ValueError("pool must be at least 8 bytes")
    return f"""
; ---- dynamic-allocation emulation module (Section III-A) ----
.bss {pool_name}, {pool_bytes}
.equ ALLOC_POOL = {pool_name}
.equ ALLOC_START = {pool_name} + 2
.equ ALLOC_END = {pool_name} + {pool_bytes}

alloc_init:
    ldi r18, lo8(ALLOC_START)
    sts ALLOC_POOL, r18
    ldi r18, hi8(ALLOC_START)
    sts ALLOC_POOL + 1, r18
    ret

alloc:
    ; r25:r24 = current break
    lds r24, ALLOC_POOL
    lds r25, ALLOC_POOL + 1
    ; r19:r18 = break + size
    movw r18, r24
    add r18, r16
    adc r19, r17
    ; exhausted when new break > ALLOC_END
    ldi r20, lo8(ALLOC_END)
    ldi r21, hi8(ALLOC_END)
    cp  r20, r18
    cpc r21, r19
    brsh alloc_ok
    ldi r24, 0              ; NULL
    ldi r25, 0
    ret
alloc_ok:
    sts ALLOC_POOL, r18
    sts ALLOC_POOL + 1, r19
    ret

alloc_mark:
    lds r24, ALLOC_POOL
    lds r25, ALLOC_POOL + 1
    ret

alloc_release:
    sts ALLOC_POOL, r16
    sts ALLOC_POOL + 1, r17
    ret
; ---- end allocation module ----
"""
