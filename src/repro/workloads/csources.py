"""Benchmark workloads written in TinyC (compiled, not hand-written).

The paper's programs come out of a compiler, whose regular code shapes
are what make SenSmart's trampoline merging effective.  These TinyC
versions of the kernel benchmarks let experiments measure naturalization
on *compiled* code: larger images, conventional register usage,
stack-frame locals, and recurring instruction patterns.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..cc import compile_c_to_asm

CRC_C = """
u8 buf[32];
u16 result;

u16 crc16(u8 count, u16 rounds) {
    u16 crc;
    u16 r;
    u8 i;
    u8 bit;
    for (r = 0; r < rounds; r = r + 1) {
        crc = 0xFFFF;
        for (i = 0; i < count; i = i + 1) {
            crc = crc ^ (buf[i] << 8);
            for (bit = 0; bit < 8; bit = bit + 1) {
                if (crc & 0x8000) {
                    crc = (crc << 1) ^ 0x1021;
                } else {
                    crc = crc << 1;
                }
            }
        }
    }
    return crc;
}

void main() {
    u8 i;
    u8 value;
    value = 0xA5;
    for (i = 0; i < 32; i = i + 1) {
        buf[i] = value;
        value = value - 0x33;
    }
    result = crc16(32, %(rounds)d);
    halt();
}
"""

LFSR_C = """
u16 out;

void main() {
    u16 lfsr;
    u16 i;
    lfsr = 0xACE1;
    for (i = 0; i < %(steps)d; i = i + 1) {
        if (lfsr & 1) {
            lfsr = (lfsr >> 1) ^ 0xB400;
        } else {
            lfsr = lfsr >> 1;
        }
    }
    out = lfsr;
    halt();
}
"""

SEARCH_C = """
// Binary-tree build + recursive search, the Figure 7 workload in C.
u16 keys[%(nodes)d];
u16 lefts[%(nodes)d];
u16 rights[%(nodes)d];
u16 count;
u16 root;
u16 hits;
u16 lfsr;

u16 rand16() {
    if (lfsr & 1) { lfsr = (lfsr >> 1) ^ 0xB400; }
    else { lfsr = lfsr >> 1; }
    return lfsr;
}

void insert(u16 key) {
    u16 node;
    u16 slot;
    node = count;
    keys[node] = key;
    lefts[node] = 0xFFFF;
    rights[node] = 0xFFFF;
    count = count + 1;
    if (node == 0) { root = 0; return; }
    slot = root;
    while (1) {
        if (key < keys[slot]) {
            if (lefts[slot] == 0xFFFF) { lefts[slot] = node; return; }
            slot = lefts[slot];
        } else {
            if (rights[slot] == 0xFFFF) { rights[slot] = node; return; }
            slot = rights[slot];
        }
    }
}

void search(u16 node, u16 key) {
    if (node == 0xFFFF) { return; }
    if (keys[node] == key) { hits = hits + 1; return; }
    if (key < keys[node]) { search(lefts[node], key); }
    else { search(rights[node], key); }
}

void main() {
    u16 i;
    lfsr = 0xACE1;
    for (i = 0; i < %(nodes)d; i = i + 1) { insert(rand16()); }
    for (i = 0; i < %(searches)d; i = i + 1) { search(root, rand16()); }
    halt();
}
"""


def crc_c_source(rounds: int = 4) -> str:
    return compile_c_to_asm(CRC_C % {"rounds": rounds})


def lfsr_c_source(steps: int = 4096) -> str:
    return compile_c_to_asm(LFSR_C % {"steps": steps})


def search_c_source(nodes: int = 40, searches: int = 30) -> str:
    return compile_c_to_asm(SEARCH_C % {"nodes": nodes,
                                        "searches": searches})


#: Compiled workloads by name (for experiments over compiled code).
C_WORKLOADS: Dict[str, Callable[..., str]] = {
    "crc_c": crc_c_source,
    "lfsr_c": lfsr_c_source,
    "search_c": search_c_source,
}
