"""The seven kernel benchmark programs (paper Section V-C, Figure 4/5).

These cover "typical operations in sensornet applications" and are the
programs the t-kernel evaluation introduced: active-message assembly
(``am``), ADC amplitude tracking (``amplitude``), CRC-16 (``crc``),
event-handler dispatch chains (``eventchain``), pseudo-random generation
(``lfsr``), raw ADC sampling (``readadc``) and timer polling
(``timer``).  Every program is a generator function parameterized by an
iteration count so execution length can be scaled, and each leaves a
verifiable result in its heap so tests can check end-to-end correctness
both natively and under SenSmart.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..avr import ioports
from .asmlib import adc_sample, lfsr_step, radio_send_byte

PAYLOAD_LENGTH = 29
AM_HEADER = 7  # dest(2) + type(1) + group(1) + length(1) + crc slot(2)


def am_source(packets: int = 4) -> str:
    """Assemble and transmit TinyOS-style active-message packets.

    Builds a 36-byte packet in the heap (header + 29-byte payload),
    computes an additive checksum, and clocks it out through the radio
    data register with ready-flag polling.
    """
    total = AM_HEADER + PAYLOAD_LENGTH
    return f"""
; am: active-message assembly and transmission
.equ PACKETS = {packets}
.bss pkt, {total}
.bss sent, 2
main:
    ldi r20, PACKETS
    ldi r22, 0              ; sequence number
packet_loop:
    ; --- header ---
    ldi r26, lo8(pkt)
    ldi r27, hi8(pkt)
    ldi r16, 0xFF           ; dest = broadcast
    st X+, r16
    st X+, r16
    ldi r16, 0x06           ; AM type
    st X+, r16
    ldi r16, 0x7D           ; group
    st X+, r16
    ldi r16, {PAYLOAD_LENGTH}
    st X+, r16
    ldi r16, 0
    st X+, r16              ; checksum slot (lo)
    st X+, r16              ; checksum slot (hi)
    ; --- payload ---
    ldi r17, {PAYLOAD_LENGTH}
    mov r16, r22
payload_loop:
    st X+, r16
    inc r16
    dec r17
    brne payload_loop
    ; --- checksum over payload ---
    ldi r26, lo8(pkt + {AM_HEADER})
    ldi r27, hi8(pkt + {AM_HEADER})
    ldi r17, {PAYLOAD_LENGTH}
    ldi r24, 0
    ldi r25, 0
sum_loop:
    ld r16, X+
    add r24, r16
    ldi r16, 0
    adc r25, r16
    dec r17
    brne sum_loop
    sts pkt + 5, r24
    sts pkt + 6, r25
    ; --- transmit ---
    ldi r26, lo8(pkt)
    ldi r27, hi8(pkt)
    ldi r17, {total}
send_loop:
    ld r18, X+
{radio_send_byte("r18", "tx")}
    dec r17
    brne send_loop
    lds r16, sent
    inc r16
    sts sent, r16
    inc r22
    dec r20
    brne packet_loop
    break
"""


def amplitude_source(samples: int = 16) -> str:
    """Sample the ADC and compute the signal amplitude (max - min)."""
    return f"""
; amplitude: ADC amplitude tracking
.equ SAMPLES = {samples}
.bss amp, 2
main:
    ldi r20, SAMPLES
    ldi r24, 0xFF           ; min = 0x03FF
    ldi r25, 0x03
    ldi r26, 0              ; max = 0
    ldi r27, 0
sample_loop:
{adc_sample("conv")}
    ; min = min(min, sample r19:r18)
    cp  r18, r24
    cpc r19, r25
    brsh not_smaller
    mov r24, r18
    mov r25, r19
not_smaller:
    ; max = max(max, sample)
    cp  r26, r18
    cpc r27, r19
    brsh not_larger
    mov r26, r18
    mov r27, r19
not_larger:
    dec r20
    brne sample_loop
    sub r26, r24
    sbc r27, r25
    sts amp, r26
    sts amp + 1, r27
    break
"""


def crc_source(rounds: int = 4) -> str:
    """CRC-16-CCITT over a 32-byte buffer, bitwise."""
    return f"""
; crc: CRC-16-CCITT of a 32-byte buffer
.equ ROUNDS = {rounds}
.bss buf, 32
.bss result, 2
main:
    ; fill the buffer with a recognizable pattern
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ldi r16, 32
    ldi r17, 0xA5
fill:
    st X+, r17
    subi r17, 0x33
    dec r16
    brne fill
    ldi r20, ROUNDS
crc_round:
    ldi r24, 0xFF           ; crc = 0xFFFF
    ldi r25, 0xFF
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ldi r16, 32
byte_loop:
    ld r18, X+
    eor r25, r18            ; crc ^= byte << 8
    ldi r17, 8
bit_loop:
    lsl r24
    rol r25                 ; C = old bit 15
    brcc no_poly
    ldi r19, 0x21           ; crc ^= 0x1021
    eor r24, r19
    ldi r19, 0x10
    eor r25, r19
no_poly:
    dec r17
    brne bit_loop
    dec r16
    brne byte_loop
    dec r20
    brne crc_round
    sts result, r24
    sts result + 1, r25
    break
"""


def eventchain_source(rounds: int = 8) -> str:
    """Event-driven dispatch: handlers invoked through function pointers.

    Handler addresses live in a flash table (read via LPM) and are
    invoked with ICALL — the split-transaction pattern event-driven
    sensornet code uses, and the stress case for indirect-branch
    translation.
    """
    return f"""
; eventchain: function-pointer event dispatch
.equ ROUNDS = {rounds}
.bss counters, 4
main:
    ldi r20, ROUNDS
round_loop:
    ldi r21, 4              ; four events per round
    ldi r30, lo8(handlers * 2)
    ldi r31, hi8(handlers * 2)
event_loop:
    lpm r24, Z+             ; handler address (word), little-endian
    lpm r25, Z+
    push r30                ; dispatcher state survives the call
    push r31
    push r21
    movw r30, r24
    icall
    pop r21
    pop r31
    pop r30
    dec r21
    brne event_loop
    dec r20
    brne round_loop
    break

; Handlers do a realistic slice of work (checksum-style folding over
; their counter) so dispatch cost amortizes as in event-driven code.
ev_sense:
    lds r16, counters + 0
    inc r16
    sts counters + 0, r16
    ldi r17, 60
ev_sense_work:
    lsl r16
    adc r16, r17
    dec r17
    brne ev_sense_work
    ret
ev_filter:
    lds r16, counters + 1
    subi r16, 0xFF          ; += 1
    sts counters + 1, r16
    ldi r17, 60
ev_filter_work:
    eor r16, r17
    swap r16
    dec r17
    brne ev_filter_work
    ret
ev_route:
    lds r16, counters + 2
    inc r16
    sts counters + 2, r16
    ldi r17, 60
ev_route_work:
    add r16, r17
    ror r16
    dec r17
    brne ev_route_work
    ret
ev_send:
    lds r16, counters + 3
    inc r16
    sts counters + 3, r16
    ldi r17, 60
ev_send_work:
    sub r16, r17
    com r16
    dec r17
    brne ev_send_work
    ret

handlers:
    .dw ev_sense, ev_filter, ev_route, ev_send
"""


def lfsr_source(steps: int = 4096) -> str:
    """Iterate a 16-bit Galois LFSR (the PRNG motes actually use)."""
    return f"""
; lfsr: 16-bit Galois LFSR iterations
.equ STEPS = {steps}
.bss out, 2
main:
    ldi r24, 0xE1           ; seed 0xACE1
    ldi r25, 0xAC
    ldi r26, lo8(STEPS)
    ldi r27, hi8(STEPS)
step_loop:
{lfsr_step("s")}
    sbiw r26, 1
    brne step_loop
    sts out, r24
    sts out + 1, r25
    break
"""


def readadc_source(samples: int = 16) -> str:
    """Raw ADC sampling into a heap ring buffer."""
    return f"""
; readadc: ADC sampling loop
.equ SAMPLES = {samples}
.bss ring, 16
.bss taken, 2
main:
    ldi r20, SAMPLES
    ldi r26, lo8(ring)
    ldi r27, hi8(ring)
    ldi r21, 16             ; ring slots before wrap
read_loop:
{adc_sample("conv")}
    st X+, r18
    dec r21
    brne no_wrap
    ldi r26, lo8(ring)
    ldi r27, hi8(ring)
    ldi r21, 16
no_wrap:
    lds r16, taken
    inc r16
    sts taken, r16
    dec r20
    brne read_loop
    break
"""


def timer_source(ticks: int = 64) -> str:
    """Poll Timer0 until a number of ticks elapse, counting transitions."""
    return f"""
; timer: Timer0 tick counting by polling
.equ TICKS = {ticks}
.bss elapsed, 2
main:
    ldi r24, 0              ; ticks counted
    ldi r25, 0
    in r16, {ioports.data_to_io(ioports.TCNT0)}     ; previous TCNT0
poll:
    in r17, {ioports.data_to_io(ioports.TCNT0)}
    cp r17, r16
    breq poll
    mov r16, r17
    adiw r24, 1
    ldi r18, lo8(TICKS)
    ldi r19, hi8(TICKS)
    cp  r24, r18
    cpc r25, r19
    brlo poll
    sts elapsed, r24
    sts elapsed + 1, r25
    break
"""


#: Benchmark registry: name -> source generator (default parameters
#: give comparable native run lengths).
KERNEL_BENCHMARKS: Dict[str, Callable[..., str]] = {
    "am": am_source,
    "amplitude": amplitude_source,
    "crc": crc_source,
    "eventchain": eventchain_source,
    "lfsr": lfsr_source,
    "readadc": readadc_source,
    "timer": timer_source,
}


def kernel_benchmark_source(name: str, **parameters) -> str:
    """Source of one kernel benchmark with the given parameters."""
    return KERNEL_BENCHMARKS[name](**parameters)
