"""Sense-and-send binary-tree workload (paper Section V-D, Figures 7-8).

"The data feeding task periodically stores randomly generated incoming
data onto the heap to form six binary trees, and then the processing
tasks are activated to recursively search randomly selected binary
trees. ... Each level of recursion adds 15 bytes to the stack."

SenSmart isolates task memory, so in this reproduction each search task
keeps its own tree of the incoming data (each processing task maintains
its private view of the feed), while the feeder task owns the full
six-tree store; the heap/stack pressure mechanics the figures measure —
heap growing with tree size, recursion depth growing with tree height,
per-level cost of 15 bytes — are preserved exactly.

Tree node layout (6 bytes): ``key(2) | left(2) | right(2)``; null
pointers are 0.  Keys come from the shared 16-bit Galois LFSR, so
shapes and heights vary with the data sequence as in the paper.

Memory maps (``meta`` block): ``count(2) | root(2) | hits(2)``.
"""

from __future__ import annotations

from .asmlib import arm_virtual_timer, lfsr_step

NODE_BYTES = 6

#: Registers pushed by each recursion level.  Together with the 2-byte
#: return address this makes 15 bytes per level, the paper's figure.
_FRAME_REGS = (2, 3, 4, 5, 6, 7, 8, 9, 10, 22, 23, 30, 31)


def _push_frame() -> str:
    return "".join(f"    push r{reg}\n" for reg in _FRAME_REGS)


def _pop_frame() -> str:
    return "".join(f"    pop r{reg}\n" for reg in reversed(_FRAME_REGS))


def _insert_routine() -> str:
    """Iterative BST insert with a 16-bit node counter.

    In: key in r17:r16.  Uses the ``tree`` array as a bump allocator;
    ``meta+0/1`` node count, ``meta+2/3`` root pointer.  Clobbers
    r0-r5, r18/r19, r22/r23, X, Z.
    """
    return f"""
insert:
    ; node_address = tree + count * {NODE_BYTES}  (16-bit count)
    lds r18, meta
    lds r19, meta + 1
    movw r26, r18           ; X = count
    add r26, r26
    adc r27, r27            ; X = count * 2
    movw r4, r26
    add r26, r26
    adc r27, r27            ; X = count * 4
    add r26, r4
    adc r27, r5             ; X = count * 6
    ldi r22, lo8(tree)
    ldi r23, hi8(tree)
    add r26, r22
    adc r27, r23
    movw r2, r26            ; r3:r2 = new node address
    ; write the node: key, left = 0, right = 0
    st X+, r16
    st X+, r17
    ldi r22, 0
    st X+, r22
    st X+, r22
    st X+, r22
    st X+, r22
    ; count += 1
    subi r18, 0xFF          ; 16-bit increment
    sbci r19, 0xFF
    sts meta, r18
    sts meta + 1, r19
    ; first node becomes the root
    mov r22, r18
    subi r22, 1
    or r22, r19
    brne walk_from_root
    sts meta + 2, r2
    sts meta + 3, r3
    ret
walk_from_root:
    lds r30, meta + 2
    lds r31, meta + 3
walk:
    ldd r22, Z+0            ; node key
    ldd r23, Z+1
    cp  r16, r22
    cpc r17, r23
    brlo go_left
    ldd r18, Z+4            ; right child
    ldd r19, Z+5
    mov r22, r18
    or  r22, r19
    breq hang_right
    movw r30, r18
    rjmp walk
go_left:
    ldd r18, Z+2            ; left child
    ldd r19, Z+3
    mov r22, r18
    or  r22, r19
    breq hang_left
    movw r30, r18
    rjmp walk
hang_right:
    std Z+4, r2
    std Z+5, r3
    ret
hang_left:
    std Z+2, r2
    std Z+3, r3
    ret
"""


def _search_routine() -> str:
    """Recursive BST search: Z = node (0 ends), key in r17:r16.

    Each level pushes 13 registers + the 2-byte return address =
    15 bytes.  Hits increment ``meta + 4``.
    """
    return f"""
search:
{_push_frame()}
    mov r22, r30
    or  r22, r31
    breq search_done        ; null: key absent at this depth
    ldd r22, Z+0
    ldd r23, Z+1
    cp  r16, r22
    cpc r17, r23
    breq search_hit
    brlo search_left
    ldd r2, Z+4             ; descend right
    ldd r3, Z+5
    movw r30, r2
    call search
    rjmp search_done
search_left:
    ldd r2, Z+2             ; descend left
    ldd r3, Z+3
    movw r30, r2
    call search
    rjmp search_done
search_hit:
    lds r22, meta + 4
    inc r22
    sts meta + 4, r22
search_done:
{_pop_frame()}
    ret
"""


def search_task_source(nodes: int = 40, searches: int = 50,
                       period_ticks: int = 1024,
                       seed: int = 0xACE1) -> str:
    """A processing task: build a random tree, then periodically search.

    *nodes* is the tree size (heap = ``6 * nodes + 6`` bytes); random
    search keys drive recursion to the tree height each round.
    """
    if not 1 <= nodes <= 250:
        raise ValueError("nodes must be in 1..250")
    return f"""
; search task: {nodes}-node tree, {searches} periodic searches
.bss tree, {NODE_BYTES * nodes}
.bss meta, 6                 ; count(2) root(2) hits(2)
main:
    ldi r24, lo8({seed})
    ldi r25, hi8({seed})
    ldi r20, {nodes}
build_loop:
{lfsr_step("b1")}
{lfsr_step("b2")}
    movw r16, r24
    call insert
    dec r20
    brne build_loop
{arm_virtual_timer(period_ticks)}
    ldi r20, lo8({searches})
    ldi r21, hi8({searches})
search_round:
    sleep
{lfsr_step("s1")}
    movw r16, r24
    lds r30, meta + 2
    lds r31, meta + 3
    call search
    subi r20, 1
    sbci r21, 0
    mov r18, r20
    or r18, r21
    brne search_round
    break

{_insert_routine()}
{_search_routine()}
"""


def feeder_source(nodes_per_tree: int = 40, trees: int = 6,
                  updates: int = 100, period_ticks: int = 512,
                  seed: int = 0xBEEF) -> str:
    """The data-feeding task: fills *trees* stores, then updates keys.

    Its heap is the dominant consumer (``6 * trees * nodes`` bytes) and
    grows with the x-axis of Figure 7; its stack stays tiny (iterative
    inserts only), making it the natural stack donor.
    """
    total_nodes = nodes_per_tree * trees
    if not 1 <= nodes_per_tree <= 250:
        raise ValueError("nodes_per_tree must be in 1..250")
    if not 1 <= trees <= 8:
        raise ValueError("trees must be in 1..8")
    return f"""
; feeder: {trees} trees x {nodes_per_tree} nodes, {updates} updates
.bss tree, {NODE_BYTES * total_nodes}
.bss meta, 6
main:
    ldi r24, lo8({seed})
    ldi r25, hi8({seed})
    ldi r20, lo8({total_nodes})
    ldi r21, hi8({total_nodes})
fill_loop:
{lfsr_step("f1")}
{lfsr_step("f2")}
    movw r16, r24
    call insert
    subi r20, 1
    sbci r21, 0
    mov r18, r20
    or r18, r21
    brne fill_loop
{arm_virtual_timer(period_ticks)}
    ldi r20, lo8({updates})
    ldi r21, hi8({updates})
update_round:
    sleep
    ; overwrite a pseudo-random node's key in place (fresh sensor data)
{lfsr_step("u1")}
    mov r18, r24            ; tree index = r24 mod trees
mod_tree:
    cpi r18, {trees}
    brlo tree_ok
    subi r18, {trees}
    rjmp mod_tree
tree_ok:
    mov r19, r25            ; node index = r25 mod nodes_per_tree
mod_idx:
    cpi r19, {nodes_per_tree}
    brlo idx_ok
    subi r19, {nodes_per_tree}
    rjmp mod_idx
idx_ok:
    ; X = tree + (tree_index * nodes_per_tree + node_index) * 6
    ldi r22, {nodes_per_tree}
    mul r18, r22
    movw r26, r0
    add r26, r19
    ldi r22, 0
    adc r27, r22
    movw r2, r26
    add r26, r26
    adc r27, r27
    add r26, r26
    adc r27, r27            ; index * 4
    add r26, r2
    adc r27, r3
    add r26, r2
    adc r27, r3             ; index * 6
    ldi r22, lo8(tree)
    ldi r23, hi8(tree)
    add r26, r22
    adc r27, r23
    st X+, r24
    st X, r25
    subi r20, 1
    sbci r21, 0
    mov r18, r20
    or r18, r21
    brne update_round
    break

{_insert_routine()}
"""
