"""Shared assembly fragments for the workload programs."""

from __future__ import annotations

from ..avr import ioports


def compute_block(instructions: int, label: str = "work") -> str:
    """Emit a loop executing approximately *instructions* instructions.

    The loop body is ``SBIW; BRNE`` (2 instructions per iteration, 4
    cycles), using r24:r25 as the counter.  Sizes above 2 * 0xFFFF use
    an outer loop on r23.
    """
    if instructions < 2:
        return "    nop\n" * max(instructions, 0)
    iterations = instructions // 2
    if iterations <= 0xFFFF:
        return f"""
    ldi r24, lo8({iterations})
    ldi r25, hi8({iterations})
{label}_loop:
    sbiw r24, 1
    brne {label}_loop
"""
    outer = (iterations + 0xFFFF) // 0x10000
    inner = iterations // outer
    return f"""
    ldi r23, {outer}
{label}_outer:
    ldi r24, lo8({inner})
    ldi r25, hi8({inner})
{label}_loop:
    sbiw r24, 1
    brne {label}_loop
    dec r23
    brne {label}_outer
"""


def compute_block_mem(instructions: int, label: str = "work",
                      scratch: str = "work_scratch") -> str:
    """A computation loop that also touches the heap each iteration.

    Nine instructions per iteration — one ``LDD`` plus arithmetic —
    matching the instruction mix of real signal-processing code, where
    memory-translation overhead dominates a naturalized build.  The
    program must reserve ``.bss <scratch>, 2`` and may not use Y or
    r16/r17/r24/r25 across the block.
    """
    iterations = max(instructions // 9, 1)
    if iterations > 0xFFFF:
        raise ValueError("computation size too large for one block")
    return f"""
    ldi r28, lo8({scratch})
    ldi r29, hi8({scratch})
    ldi r24, lo8({iterations})
    ldi r25, hi8({iterations})
{label}_loop:
    ldd r16, Y+0
    eor r16, r24
    add r16, r25
    swap r16
    inc r16
    lsr r16
    mov r17, r16
    sbiw r24, 1
    brne {label}_loop
"""


def radio_send_byte(data_reg: str, label: str) -> str:
    """Poll the radio-ready flag, then transmit one byte."""
    return f"""
{label}_wait:
    lds r19, {ioports.UCSR0A}
    sbrs r19, {ioports.UDRE}
    rjmp {label}_wait
    sts {ioports.UDR0}, {data_reg}
"""


def adc_sample(label: str) -> str:
    """Start an ADC conversion, busy-wait, leave the 10-bit result in
    r18 (low) / r19 (high)."""
    return f"""
    ldi r18, {1 << ioports.ADSC}
    sts {ioports.ADCSRA}, r18
{label}_poll:
    lds r18, {ioports.ADCSRA}
    sbrc r18, {ioports.ADSC}
    rjmp {label}_poll
    lds r18, {ioports.ADCL}
    lds r19, {ioports.ADCH}
"""


def lfsr_step(label: str) -> str:
    """16-bit Galois LFSR step on r25:r24, clobbers r18."""
    return f"""
    lsr r25
    ror r24
    brcc {label}_noxor
    ldi r18, 0xB4
    eor r25, r18
{label}_noxor:
"""


def arm_virtual_timer(period_ticks: int) -> str:
    """Arm the per-task periodic timer (SenSmart virtual-Timer3 ABI).

    Write OCR3AH then OCR3AL; the low-byte write arms a periodic timer
    with the given 16-bit tick period (prescaler 8).
    """
    return f"""
    ldi r16, hi8({period_ticks})
    sts {ioports.OCR3AH}, r16
    ldi r16, lo8({period_ticks})
    sts {ioports.OCR3AL}, r16
"""
