"""Event-driven simulation core: the event queue and the clock.

Every source of simulated time in the repository — device completions,
timer compare matches, kernel virtual-timer fires, and cross-node radio
byte arrivals — is an :class:`Event` on an :class:`EventQueue`.  The
queue is a binary heap of ``(due_cycle, seq, callback)`` entries; ``seq``
breaks ties so same-cycle events fire in scheduling order, which keeps
multi-event runs deterministic.

The queue deliberately exposes ``next_due`` as a *plain attribute*
rather than a method: the CPU's dispatch loops (and the superblock
fuser's self-looping blocks) read it once per block, and an attribute
load is the cheapest thing Python can do.  ``schedule``, ``cancel`` and
``run_due`` keep it tight.

Cancellation is lazy: a cancelled event stays in the heap with its
callback cleared and is skipped when popped.  Re-arming patterns
(Timer3's compare match, the kernel's periodic virtual timers) cancel
and re-schedule freely without heap surgery.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

INFINITY = float("inf")


class Event:
    """One scheduled callback.  ``cancel()`` makes it a no-op."""

    __slots__ = ("due_cycle", "seq", "callback")

    def __init__(self, due_cycle: int, seq: int,
                 callback: Optional[Callable[[], None]]):
        self.due_cycle = due_cycle
        self.seq = seq
        self.callback = callback

    def __lt__(self, other: "Event") -> bool:
        if self.due_cycle != other.due_cycle:
            return self.due_cycle < other.due_cycle
        return self.seq < other.seq

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<Event due={self.due_cycle} seq={self.seq} {state}>"


class EventQueue:
    """Min-heap of events ordered by ``(due_cycle, seq)``.

    ``next_due`` is always the due cycle of the earliest live event
    (``inf`` when empty); run loops compare the clock against it and
    call :meth:`run_due` only when something is actually due.
    """

    __slots__ = ("_heap", "_seq", "next_due")

    def __init__(self):
        self._heap: List[Event] = []
        self._seq = 0
        self.next_due = INFINITY

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, due_cycle: int,
                 callback: Callable[[], None]) -> Event:
        """Arm *callback* to fire once the clock reaches *due_cycle*."""
        self._seq += 1
        event = Event(due_cycle, self._seq, callback)
        heapq.heappush(self._heap, event)
        if due_cycle < self.next_due:
            self.next_due = due_cycle
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Disarm *event* (tolerates None and double-cancel)."""
        if event is None:
            return
        event.callback = None
        self._settle()

    def _settle(self) -> None:
        """Drop cancelled events off the heap top; refresh ``next_due``."""
        heap = self._heap
        while heap and heap[0].callback is None:
            heapq.heappop(heap)
        self.next_due = heap[0].due_cycle if heap else INFINITY

    def run_due(self, now: int) -> int:
        """Fire every live event with ``due_cycle <= now``; return count.

        Callbacks may schedule new events (including ones due
        immediately, which fire in the same call) and cancel pending
        ones.  Events fire in ``(due_cycle, seq)`` order.
        """
        heap = self._heap
        fired = 0
        while heap and heap[0].due_cycle <= now:
            event = heapq.heappop(heap)
            callback = event.callback
            if callback is not None:
                event.callback = None
                callback()
                fired += 1
        self.next_due = heap[0].due_cycle if heap else INFINITY
        return fired


class SimClock:
    """A monotone cycle counter paired with an :class:`EventQueue`.

    The single source of simulated time for anything that executes:
    :class:`~repro.avr.cpu.AvrCpu` *is a* SimClock (it inherits the
    ``cycles`` counter its compiled closures increment directly), and
    the network co-simulator coordinates nodes purely through their
    clocks.  ``skip_to`` is the idle fast-path: jump the counter without
    executing anything, then fire whatever came due.
    """

    def __init__(self):
        self.cycles = 0
        self.idle_cycles = 0  # cycles skipped without executing
        self.events = EventQueue()

    def skip_to(self, cycle: int) -> None:
        """Advance idle time to *cycle* and fire events that came due."""
        if cycle > self.cycles:
            self.idle_cycles += cycle - self.cycles
            self.cycles = cycle
        self.events.run_due(self.cycles)
