"""Event-driven simulation core shared by CPU, devices, kernel, net."""

from .events import INFINITY, Event, EventQueue, SimClock

__all__ = ["INFINITY", "Event", "EventQueue", "SimClock"]
