"""The Maté-like interpreter.

Charges realistic MCU cycle counts per bytecode operation, which is all
Figure 6(c) needs: interpretation-based execution pays one-to-two orders
of magnitude over native for computation-heavy work, while I/O-bound
work hides the overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...errors import SimulationError
from .bytecode import DISPATCH_CYCLES, OP_CYCLES, Op, Program,\
    assemble_bytecode

#: Clock tick length in MCU cycles (matches the kernel's Timer3 setup).
TICK_CYCLES = 8


@dataclass
class VmStats:
    cycles: int = 0
    idle_cycles: int = 0
    ops_executed: int = 0

    @property
    def busy_cycles(self) -> int:
        return self.cycles - self.idle_cycles

    def utilization(self) -> float:
        return self.busy_cycles / self.cycles if self.cycles else 0.0


class MateVm:
    """A single execution context with a periodic clock."""

    def __init__(self, program: Program, heap_slots: int = 16,
                 adc_seed: int = 0xACE1):
        self.program = program.instructions
        self.heap: List[int] = [0] * heap_slots
        self.stack: List[int] = []
        self.pc = 0
        self.halted = False
        self.stats = VmStats()
        self.timer_period_cycles = 0
        self.timer_next_fire: Optional[int] = None
        self.transmitted: List[int] = []
        self._lfsr = adc_seed or 0xACE1

    # -- synthetic sensor (same generator family as the AVR ADC) -----------------

    def _sense(self) -> int:
        lfsr = self._lfsr
        bit = ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1
        self._lfsr = ((lfsr >> 1) | (bit << 15)) & 0xFFFF
        return self._lfsr & 0x3FF

    # -- execution ------------------------------------------------------------------

    def step(self) -> None:
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program):
            raise SimulationError(f"VM pc {self.pc} out of program")
        op, operand = self.program[self.pc]
        self.pc += 1
        self.stats.cycles += DISPATCH_CYCLES + OP_CYCLES[op]
        self.stats.ops_executed += 1
        stack = self.stack

        if op is Op.PUSHC or op is Op.PUSH16:
            stack.append(operand & 0xFFFF)
        elif op is Op.POP:
            stack.pop()
        elif op is Op.ADD:
            b, a = stack.pop(), stack.pop()
            stack.append((a + b) & 0xFFFF)
        elif op is Op.SUB:
            b, a = stack.pop(), stack.pop()
            stack.append((a - b) & 0xFFFF)
        elif op is Op.INC:
            stack.append((stack.pop() + 1) & 0xFFFF)
        elif op is Op.DEC:
            stack.append((stack.pop() - 1) & 0xFFFF)
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.LOAD:
            stack.append(self.heap[operand])
        elif op is Op.STORE:
            self.heap[operand] = stack.pop()
        elif op is Op.JMP:
            self.pc = operand
        elif op is Op.JNZ:
            if stack.pop():
                self.pc = operand
        elif op is Op.SETTIMER:
            self.timer_period_cycles = operand * TICK_CYCLES
            self.timer_next_fire = self.stats.cycles + \
                self.timer_period_cycles
        elif op is Op.SLEEP:
            self._sleep()
        elif op is Op.SENSE:
            stack.append(self._sense())
        elif op is Op.SENDR:
            self.transmitted.append(stack.pop() & 0xFF)
        elif op is Op.HALT:
            self.halted = True
        else:  # pragma: no cover
            raise SimulationError(f"unhandled op {op}")

    def _sleep(self) -> None:
        if self.timer_next_fire is None:
            raise SimulationError("VM SLEEP with no timer armed")
        if self.stats.cycles < self.timer_next_fire:
            self.stats.idle_cycles += \
                self.timer_next_fire - self.stats.cycles
            self.stats.cycles = self.timer_next_fire
        # Catch up if computation overran one or more periods.
        while self.timer_next_fire <= self.stats.cycles:
            self.timer_next_fire += self.timer_period_cycles

    def run(self, max_ops: int = 100_000_000) -> VmStats:
        executed = 0
        while not self.halted and executed < max_ops:
            self.step()
            executed += 1
        return self.stats


def periodic_task_bytecode(compute_instructions: int,
                           activations: int,
                           period_ticks: int = 2048) -> Program:
    """The PeriodicTask equivalent in bytecode (Figure 6c).

    The native computation core retires ~2 instructions per loop
    iteration; the bytecode loop does the same logical work with
    DEC/DUP/JNZ per iteration, paying interpreter dispatch on each.
    """
    iterations = max(compute_instructions // 2, 1)
    listing = [
        (Op.SETTIMER, period_ticks),
        (Op.PUSH16, activations),
        (Op.STORE, 0),                 # heap[0] = remaining activations
        "activation:",
        Op.SLEEP,
        (Op.PUSH16, iterations),
        "work:",
        Op.DEC,
        Op.DUP,
        (Op.JNZ, "work"),
        Op.POP,
        (Op.LOAD, 1),                  # heap[1] = completed count
        Op.INC,
        (Op.STORE, 1),
        (Op.LOAD, 0),
        Op.DEC,
        Op.DUP,
        (Op.STORE, 0),
        (Op.JNZ, "activation"),
        Op.HALT,
    ]
    return assemble_bytecode(listing)
