"""Bytecode definition for the Maté-like VM.

Maté is a stack-based virtual machine whose "capsules" hold up to 24
one-byte instructions; complex programs chain capsules.  We keep the
stack-based, one-byte-opcode character and the interpretation-dominated
cost profile — the property Figure 6(c) measures — without reproducing
the capsule distribution machinery, which the PeriodicTask comparison
does not exercise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union


class Op(enum.Enum):
    """Bytecode operations (operand in parentheses)."""

    PUSHC = "pushc"      # (value) push an 8-bit constant
    PUSH16 = "push16"    # (value) push a 16-bit constant
    POP = "pop"
    ADD = "add"
    SUB = "sub"
    INC = "inc"
    DEC = "dec"
    DUP = "dup"
    LOAD = "load"        # (slot) push heap slot
    STORE = "store"      # (slot) pop into heap slot
    JMP = "jmp"          # (target)
    JNZ = "jnz"          # (target) pop; jump when non-zero
    SETTIMER = "settimer"  # (ticks) arm the periodic clock context
    SLEEP = "sleep"      # wait for the next clock event
    SENSE = "sense"      # push a (synthetic) sensor reading
    SENDR = "sendr"      # pop a byte, transmit it
    HALT = "halt"


#: Interpretation cost in MCU cycles per operation: a fetch-decode
#: dispatch (bounds check, opcode fetch, jump table) plus the handler.
#: Maté's authors report roughly 33:1 interpretation overhead over
#: native arithmetic; these values reproduce that ratio.
DISPATCH_CYCLES = 28
OP_CYCLES = {
    Op.PUSHC: 12, Op.PUSH16: 16, Op.POP: 8,
    Op.ADD: 18, Op.SUB: 18, Op.INC: 10, Op.DEC: 10, Op.DUP: 12,
    Op.LOAD: 22, Op.STORE: 24,
    Op.JMP: 10, Op.JNZ: 16,
    Op.SETTIMER: 40, Op.SLEEP: 46, Op.SENSE: 64, Op.SENDR: 52,
    Op.HALT: 4,
}

Instruction = Tuple[Op, int]


@dataclass
class Program:
    """An assembled bytecode program."""

    instructions: List[Instruction] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """One byte per opcode plus one per operand-carrying op."""
        total = 0
        for op, _ in self.instructions:
            total += 1
            if op in (Op.PUSHC, Op.LOAD, Op.STORE, Op.JMP, Op.JNZ,
                      Op.SETTIMER):
                total += 1
            elif op in (Op.PUSH16,):
                total += 2
        return total


def assemble_bytecode(listing: Sequence[Union[Op, Tuple[Op, int], str]],
                      ) -> Program:
    """Assemble a listing of ops, (op, operand) pairs and ``"label:"``.

    Labels may be used as JMP/JNZ operands.
    """
    labels = {}
    flat: List[Union[Op, Tuple[Op, Union[int, str]]]] = []
    for entry in listing:
        if isinstance(entry, str):
            if not entry.endswith(":"):
                raise ValueError(f"bad label {entry!r}")
            labels[entry[:-1]] = len(flat)
            continue
        flat.append(entry)
    instructions: List[Instruction] = []
    for entry in flat:
        if isinstance(entry, Op):
            instructions.append((entry, 0))
            continue
        op, operand = entry
        if isinstance(operand, str):
            operand = labels[operand]
        instructions.append((op, operand))
    return Program(instructions)
