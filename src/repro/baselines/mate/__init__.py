"""Maté-like bytecode virtual machine (paper Section V-C, Figure 6c)."""

from .bytecode import Op, Program, assemble_bytecode
from .vm import MateVm, periodic_task_bytecode

__all__ = ["Op", "Program", "assemble_bytecode",
           "MateVm", "periodic_task_bytecode"]
