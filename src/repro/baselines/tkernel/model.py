"""t-kernel model: on-node naturalization with asymmetric protection.

The t-kernel (the paper's main comparator) also naturalizes binaries,
but differs from SenSmart in exactly the ways Figures 4-6 measure:

* **where rewriting happens** — on the node, one <=128-instruction page
  at a time.  That costs a warm-up delay of about one second at first
  execution (Figure 6a) and rules out whole-program optimization:
  translated sequences are expanded in line per site instead of being
  shared through merged trampolines, so code inflates much more
  (Figure 4);
* **what is protected** — only the kernel: application memory *writes*
  are checked against the kernel boundary, reads run native, there is
  no per-task logical addressing, no independent memory regions, and
  tasks share a common stack space (Table I);
* **scheduling** — the same 1-in-256 backward-branch software trap, but
  without per-application time slices or multiple concurrent
  applications.

Cost and size parameters are calibrated from the t-kernel paper's
published numbers and from this paper's Figures 4-6 statements; each is
annotated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...avr import ioports
from ...avr.cpu import AvrCpu
from ...avr.devices import Adc, Leds, Radio, Timer0
from ...avr.memory import Flash
from ...errors import SimulationError
from ...rewriter.classify import PatchKind, classify
from ...rewriter.rewriter import Rewriter
from ...toolchain.compile import compile_source
from ...toolchain.image import TargetImage
from ...toolchain.linker import link_image

# -- calibrated model parameters ------------------------------------------------

#: On-node rewriting: one-time cost per 128-instruction page.  The paper
#: reports "an initialization delay of about one second"; a benchmark-
#: sized image (tens of pages including libraries) at this per-page cost
#: lands there.
PAGE_INSTRUCTIONS = 128
PAGE_REWRITE_CYCLES = 160_000
#: Fixed boot-time share (kernel self-setup plus rewriting the runtime
#: pages every application drags in).
WARMUP_BASE_CYCLES = 6_500_000

#: Inline expansion per patched site, in flash words (replaces SenSmart's
#: 2-word JMP + shared trampoline).  Derived from the naturalization
#: sequences in the t-kernel paper, which reports 2-4x code inflation.
INLINE_EXPANSION_WORDS: Dict[PatchKind, int] = {
    PatchKind.MEM_INDIRECT: 9,   # save regs, bound check, write, restore
    PatchKind.MEM_DIRECT: 8,
    PatchKind.STACK_PUSH: 8,
    PatchKind.BRANCH_BACKWARD: 8,  # counter + per-page target adjust
    PatchKind.CALL_DIRECT: 8,
    PatchKind.INDIRECT_JUMP: 16,
    PatchKind.INDIRECT_CALL: 17,
    PatchKind.PROG_MEM: 12,
    PatchKind.SLEEP: 4,
    PatchKind.TASK_EXIT: 2,
    PatchKind.TIMER3_IO: 8,
}

#: Per-page metadata the t-kernel keeps in flash alongside naturalized
#: pages (page table + branch-target map), in words.
PAGE_TABLE_WORDS = 8

#: Runtime charges (cycles) — lighter than SenSmart's Table II because
#: only the kernel bound is checked and nothing is translated.
WRITE_CHECK = 8
BRANCH_INLINE = 4
SCHED_CHECK = 30
CALL_CHECK = 6
INDIRECT_LOOKUP = 376  # same shift-table style lookup as SenSmart
SLEEP_TRAP = 24

#: Top-of-SRAM bytes the t-kernel reserves (it keeps swap frames and
#: kernel state; more data memory than SenSmart per Section V-A).
KERNEL_DATA_BYTES = 640

TIMER3_PRESCALER = 8


def tk_classify(instruction) -> PatchKind:
    """t-kernel patch policy.

    Page-at-a-time naturalization relocates code, so *every* direct
    branch must be rewritten (not only backward ones as in SenSmart,
    whose whole-program view lets forward branches be fixed up in
    place) and LPM must translate.  Memory protection is asymmetric:
    only writes are checked, reads and stack pops run native, and there
    is no stack-pointer virtualization.
    """
    kind = classify(instruction)
    if kind in (PatchKind.MEM_INDIRECT, PatchKind.MEM_DIRECT):
        # Reads run native under asymmetric protection.
        if instruction.mnemonic in ("ST", "STD", "STS"):
            return kind
        return PatchKind.NONE
    if kind in (PatchKind.STACK_POP, PatchKind.SP_READ,
                PatchKind.SP_WRITE):
        return PatchKind.NONE  # no logical addressing to maintain
    if kind is PatchKind.NONE and \
            instruction.mnemonic in ("RJMP", "JMP", "BRBS", "BRBC"):
        return PatchKind.BRANCH_BACKWARD  # forward branches too
    return kind


def tkernel_inflation_bytes(source: str) -> Dict[str, int]:
    """Code-size model for Figure 4: native vs t-kernel naturalized."""
    program = compile_source(source, origin=0)
    native_words = program.size_words
    naturalized_words = 0
    for item in program.items:
        if hasattr(item, "value"):  # data word
            naturalized_words += 1
            continue
        kind = tk_classify(item)
        if kind is PatchKind.NONE:
            naturalized_words += item.words
        else:
            naturalized_words += INLINE_EXPANSION_WORDS[kind]
    pages = -(-native_words // PAGE_INSTRUCTIONS)
    naturalized_words += pages * PAGE_TABLE_WORDS
    return {
        "native_bytes": 2 * native_words,
        "naturalized_bytes": 2 * naturalized_words,
    }


@dataclass
class TkernelResult:
    finished: bool
    warmup_cycles: int
    exec_cycles: int
    instructions: int
    cpu: AvrCpu
    devices: dict

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.exec_cycles

    def heap_byte(self, offset: int) -> int:
        return self.cpu.mem.data[0x100 + offset]


class TkernelRunner:
    """Run one application under the t-kernel model.

    The t-kernel hosts a single application (Table I), so the runner
    takes one source.  It reuses the trampoline trap machinery for
    patched sites, with t-kernel charges and no address translation.
    """

    def __init__(self, source: str, name: str = "app",
                 adc_seed: int = 0xACE1, clock_hz: int = 7_372_800):
        rewriter = Rewriter(enable_grouping=False, classify_fn=tk_classify)
        self.image: TargetImage = link_image([(name, source)],
                                             rewriter=rewriter)
        flash = Flash()
        self.image.burn(flash)
        self.cpu = AvrCpu(flash, clock_hz=clock_hz)
        self.devices = {
            "timer0": Timer0(), "adc": Adc(seed=adc_seed),
            "radio": Radio(), "leds": Leds(),
        }
        for device in self.devices.values():
            self.cpu.attach_device(device)
        self.trampolines = self.image.trampolines_by_address
        lo, hi = self.image.trap_region
        self.cpu.set_trap_region(lo, hi, self._dispatch)
        self.kernel_bound = ioports.RAM_END + 1 - KERNEL_DATA_BYTES
        self.cpu.sp = self.kernel_bound - 1  # stack below kernel memory
        natural = self.image.tasks[0].natural
        self.cpu.pc = natural.entry
        self.shift_table = natural.shift_table
        self.program = natural.program
        self.warmup_cycles = self._warmup()
        self.branch_counter = 256
        self.timer_period = 0
        self.timer_next_fire: Optional[int] = None
        self.timer_latch_high = 0
        self.faulted = ""

    def _warmup(self) -> int:
        pages = -(-self.program.size_words // PAGE_INSTRUCTIONS)
        return WARMUP_BASE_CYCLES + pages * PAGE_REWRITE_CYCLES

    # -- trap dispatch ------------------------------------------------------------

    def _dispatch(self, cpu, site, target, is_call) -> None:
        trampoline = self.trampolines.get(target)
        if trampoline is None or site < 0:
            raise SimulationError("escaped into t-kernel region")
        resume = site + 2
        kind = trampoline.kind
        params = trampoline.params
        if kind in (PatchKind.MEM_INDIRECT, PatchKind.MEM_DIRECT):
            self._checked_write(cpu, kind, params, resume)
        elif kind is PatchKind.STACK_PUSH:
            self._checked_push(cpu, params, resume)
        elif kind is PatchKind.BRANCH_BACKWARD:
            self._branch(cpu, params, resume)
        elif kind is PatchKind.CALL_DIRECT:
            cpu.push_word(resume)
            cpu.pc = params[0]
            cpu.cycles += 4 + CALL_CHECK
        elif kind in (PatchKind.INDIRECT_JUMP, PatchKind.INDIRECT_CALL):
            self._indirect(cpu, kind, resume)
        elif kind is PatchKind.PROG_MEM:
            self._lpm(cpu, params, resume)
        elif kind is PatchKind.SLEEP:
            self._sleep(cpu, resume)
        elif kind is PatchKind.TASK_EXIT:
            cpu.halted = True
        elif kind is PatchKind.TIMER3_IO:
            self._timer3(cpu, params, resume)
        else:  # pragma: no cover
            raise SimulationError(f"t-kernel: unhandled kind {kind}")

    def _check_address(self, cpu, address: int) -> None:
        if address >= self.kernel_bound:
            self.faulted = f"write to kernel memory at {address:#06x}"
            cpu.halted = True

    def _checked_write(self, cpu, kind, params, resume: int) -> None:
        if kind is PatchKind.MEM_DIRECT:
            mnemonic, reg, address = params
        else:
            mnemonic, reg, mode, _grouped = params
            if mnemonic == "ST":
                base = {"X": 26, "X+": 26, "-X": 26, "Y+": 28, "-Y": 28,
                        "Z+": 30, "-Z": 30}[mode]
                address = cpu.r[base] | (cpu.r[base + 1] << 8)
                if mode.startswith("-"):
                    address = (address - 1) & 0xFFFF
            else:  # STD
                ptr, displacement = mode
                base = 28 if ptr == "Y" else 30
                address = ((cpu.r[base] | (cpu.r[base + 1] << 8))
                           + displacement) & 0xFFFF
        self._check_address(cpu, address)
        if cpu.halted:
            return
        cpu.data_write(address, cpu.r[reg])
        if kind is PatchKind.MEM_INDIRECT and mnemonic == "ST":
            if mode.endswith("+"):
                updated = (address + 1) & 0xFFFF
                cpu.r[base] = updated & 0xFF
                cpu.r[base + 1] = updated >> 8
            elif mode.startswith("-"):
                cpu.r[base] = address & 0xFF
                cpu.r[base + 1] = address >> 8
        cpu.cycles += 2 + WRITE_CHECK
        cpu.pc = resume

    def _checked_push(self, cpu, params, resume: int) -> None:
        (reg,) = params
        self._check_address(cpu, cpu.sp)
        if cpu.halted:
            return
        cpu.push_byte(cpu.r[reg])
        cpu.cycles += 2 + WRITE_CHECK
        cpu.pc = resume

    def _branch(self, cpu, params, resume: int) -> None:
        bit, branch_if_set, nat_target = params
        if bit is None:
            taken, native = True, 2
        else:
            taken = bool(cpu.sreg & (1 << bit)) == branch_if_set
            native = 2 if taken else 1
        cpu.pc = nat_target if taken else resume
        cpu.cycles += native + BRANCH_INLINE
        self.branch_counter -= 1
        if self.branch_counter <= 0:
            self.branch_counter = 256
            cpu.cycles += SCHED_CHECK
            self._service_timer(cpu)

    def _indirect(self, cpu, kind, resume: int) -> None:
        original = cpu.r[30] | (cpu.r[31] << 8)
        if not self.program.origin <= original < \
                self.program.origin + self.program.size_words:
            self.faulted = f"indirect branch to {original:#06x}"
            cpu.halted = True
            return
        target = self.shift_table.to_naturalized(original)
        if kind is PatchKind.INDIRECT_CALL:
            cpu.push_word(resume)
        cpu.pc = target
        cpu.cycles += 2 + INDIRECT_LOOKUP

    def _lpm(self, cpu, params, resume: int) -> None:
        reg, mode = params
        z = cpu.r[30] | (cpu.r[31] << 8)
        original_word = z >> 1
        if not self.program.origin <= original_word < \
                self.program.origin + self.program.size_words:
            self.faulted = f"LPM from {z:#06x}"
            cpu.halted = True
            return
        natural_word = self.shift_table.to_naturalized(original_word)
        cpu.r[0 if mode == "LEGACY" else reg] = \
            cpu.flash.byte((natural_word << 1) | (z & 1))
        if mode == "Z+":
            z = (z + 1) & 0xFFFF
            cpu.r[30] = z & 0xFF
            cpu.r[31] = z >> 8
        cpu.cycles += 3 + 32  # lookup through the on-node table
        cpu.pc = resume

    # -- single-task timer + sleep --------------------------------------------------

    def _timer3(self, cpu, params, resume: int) -> None:
        mnemonic, operands = params
        if mnemonic == "STS":
            address, value = operands[1], cpu.r[operands[0]]
            if address == ioports.OCR3AH:
                self.timer_latch_high = value
            elif address == ioports.OCR3AL:
                ticks = (self.timer_latch_high << 8) | value
                self.timer_period = ticks * TIMER3_PRESCALER
                if self.timer_period:
                    self.timer_next_fire = cpu.cycles + self.timer_period
        elif mnemonic == "LDS":
            address = operands[1]
            ticks = cpu.cycles // TIMER3_PRESCALER
            if address == ioports.TCNT3L:
                self.timer_latch_high = (ticks >> 8) & 0xFF
                cpu.r[operands[0]] = ticks & 0xFF
            elif address == ioports.TCNT3H:
                cpu.r[operands[0]] = self.timer_latch_high
            else:
                cpu.r[operands[0]] = 0
        cpu.cycles += 2 + WRITE_CHECK
        cpu.pc = resume

    def _service_timer(self, cpu) -> None:
        if self.timer_next_fire is not None and \
                cpu.cycles >= self.timer_next_fire:
            pass  # fires are consumed by SLEEP below

    def _sleep(self, cpu, resume: int) -> None:
        cpu.cycles += 1 + SLEEP_TRAP
        cpu.pc = resume
        if self.timer_next_fire is None:
            self.faulted = "sleep with no timer armed"
            cpu.halted = True
            return
        if cpu.cycles < self.timer_next_fire:
            cpu.idle_cycles += self.timer_next_fire - cpu.cycles
            cpu.cycles = self.timer_next_fire
        while self.timer_next_fire <= cpu.cycles:
            self.timer_next_fire += self.timer_period

    # -- running -----------------------------------------------------------------------

    def run(self, max_instructions: int = 50_000_000,
            max_cycles: Optional[int] = None) -> TkernelResult:
        start_cycles = self.cpu.cycles
        self.cpu.run(max_instructions=max_instructions,
                     max_cycles=max_cycles)
        return TkernelResult(
            finished=self.cpu.halted and not self.faulted,
            warmup_cycles=self.warmup_cycles,
            exec_cycles=self.cpu.cycles - start_cycles,
            instructions=self.cpu.instret,
            cpu=self.cpu, devices=self.devices)
