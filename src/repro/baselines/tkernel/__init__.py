"""The t-kernel comparator (Gu & Stankovic, SenSys 2006)."""

from .model import (TkernelResult, TkernelRunner, tk_classify,
                    tkernel_inflation_bytes)

__all__ = ["TkernelResult", "TkernelRunner", "tk_classify",
           "tkernel_inflation_bytes"]
