"""Fixed-stack multithreaded OS model (LiteOS / MANTIS style).

Traditional multithreading on motes allocates each thread a
*fixed-size* stack based on worst-case estimation, with no address
translation and no relocation (paper Sections I-II).  This model
reproduces the consequences Figure 8 measures:

* a static kernel data footprint (LiteOS: >2000 bytes);
* per-thread heaps placed at distinct physical addresses (no logical
  addressing) and per-thread fixed stacks;
* a thread whose stack outgrows its allocation is gone — the OS can
  only detect it at a context switch via bounds checks and stack
  canaries (no MMU), by which point the neighbour may be corrupted;
* the maximum number of schedulable threads is fixed by the static
  layout, however dynamic the actual stack usage is.

Scheduling is time-sliced round-robin driven by the hardware clock (we
enforce slices from the runner, standing in for the timer interrupt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..avr import ioports
from ..avr.cpu import AvrCpu
from ..avr.devices import Adc, Leds, Radio, Timer0
from ..avr.memory import Flash
from ..errors import MemoryFault, SimulationError
from ..toolchain.compile import compile_source

CANARY = 0xC5
CANARY_BYTES = 4


@dataclass
class ThreadSpec:
    """One thread: program source plus its fixed stack allocation."""

    name: str
    source: str
    stack_size: int


@dataclass
class ThreadState:
    spec: ThreadSpec
    entry: int = 0
    bss_base: int = 0
    heap_size: int = 0
    stack_lo: int = 0  # lowest legal stack byte
    stack_hi: int = 0  # initial SP (top byte)
    regs: bytearray = field(default_factory=lambda: bytearray(32))
    pc: int = 0
    sreg: int = 0
    sp: int = 0
    done: bool = False
    failed: str = ""
    wake_cycle: Optional[int] = None
    timer_period: int = 0
    timer_latch_high: int = 0
    cycles_used: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def runnable(self) -> bool:
        return not self.done and not self.failed


@dataclass
class FixedStackResult:
    schedulable: bool
    reason: str
    threads: List[ThreadState]
    cycles: int = 0

    @property
    def overflows(self) -> List[str]:
        return [t.name for t in self.threads if t.failed]


class FixedStackOS:
    """Round-robin multithreading with static stacks, no translation."""

    def __init__(self, threads: Sequence[ThreadSpec],
                 static_data_bytes: int = 2000,
                 slice_cycles: int = 73_728,
                 clock_hz: int = 7_372_800,
                 total_stack_budget: Optional[int] = None):
        """*total_stack_budget* optionally caps the combined stack space
        (used by Figure 8 to give SenSmart and LiteOS equal budgets)."""
        self.specs = list(threads)
        self.static_data_bytes = static_data_bytes
        self.slice_cycles = slice_cycles
        self.clock_hz = clock_hz
        self.total_stack_budget = total_stack_budget
        self.threads: List[ThreadState] = []
        self.cpu: Optional[AvrCpu] = None
        self._current: Optional[ThreadState] = None
        self._layout_error = ""

    # -- layout & loading ----------------------------------------------------------

    def load(self) -> bool:
        """Lay out memory and burn programs; False if it does not fit."""
        stack_total = sum(spec.stack_size for spec in self.specs)
        if self.total_stack_budget is not None and \
                stack_total > self.total_stack_budget:
            self._layout_error = (
                f"stack budget exceeded: {stack_total} > "
                f"{self.total_stack_budget}")
            return False
        cursor = ioports.RAM_START + self.static_data_bytes
        flash = Flash()
        code_cursor = 0x40  # leave room for vectors
        states: List[ThreadState] = []
        for spec in self.specs:
            program = compile_source(spec.source, name=spec.name,
                                     origin=code_cursor, bss_base=cursor)
            state = ThreadState(spec=spec, entry=program.entry,
                                bss_base=cursor,
                                heap_size=program.symbols.heap_size)
            cursor += program.symbols.heap_size
            flash.load(code_cursor, program.words)
            code_cursor += program.size_words
            states.append(state)
        for state in states:
            state.stack_lo = cursor
            cursor += state.spec.stack_size
            state.stack_hi = cursor - 1
            state.sp = state.stack_hi
            state.pc = state.entry
        if cursor > ioports.RAM_END + 1:
            self._layout_error = (
                f"layout needs {cursor - ioports.RAM_START} bytes, "
                f"only {ioports.RAM_END + 1 - ioports.RAM_START} available")
            return False
        self.threads = states
        self.cpu = AvrCpu(flash, clock_hz=self.clock_hz)
        for device in (Timer0(), Adc(), Radio(), Leds()):
            self.cpu.attach_device(device)
        self._install_timer_hooks()
        self._plant_canaries()
        return True

    def _plant_canaries(self) -> None:
        for state in self.threads:
            for offset in range(CANARY_BYTES):
                self.cpu.mem.data[state.stack_lo + offset] = CANARY

    def _install_timer_hooks(self) -> None:
        """Per-thread virtual clock, LiteOS-style system calls stand-in."""
        mem = self.cpu.mem
        mem.install_write_hook(ioports.OCR3AH, self._write_ocr_high)
        mem.install_write_hook(ioports.OCR3AL, self._write_ocr_low)
        mem.install_read_hook(
            ioports.TCNT3L, lambda: (self.cpu.cycles // 8) & 0xFF)
        mem.install_read_hook(
            ioports.TCNT3H, lambda: ((self.cpu.cycles // 8) >> 8) & 0xFF)

    def _write_ocr_high(self, value: int) -> None:
        if self._current is not None:
            self._current.timer_latch_high = value

    def _write_ocr_low(self, value: int) -> None:
        thread = self._current
        if thread is None:
            return
        ticks = (thread.timer_latch_high << 8) | value
        thread.timer_period = ticks * 8

    # -- execution ---------------------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000) -> FixedStackResult:
        if self.cpu is None and not self.load():
            return FixedStackResult(schedulable=False,
                                    reason=self._layout_error,
                                    threads=self.threads)
        cpu = self.cpu
        index = 0
        while cpu.cycles < max_cycles:
            runnable = [t for t in self.threads if t.runnable]
            if not runnable:
                break
            ready = [t for t in runnable
                     if t.wake_cycle is None or t.wake_cycle <= cpu.cycles]
            if not ready:
                cpu.cycles = min(t.wake_cycle for t in runnable
                                 if t.wake_cycle is not None)
                continue
            # Round-robin over ready threads.
            index += 1
            thread = ready[index % len(ready)]
            self._run_slice(thread, max_cycles)
            if self._check_corruption():
                break
        overflowed = any(t.failed for t in self.threads)
        reason = "; ".join(f"{t.name}: {t.failed}"
                           for t in self.threads if t.failed)
        return FixedStackResult(schedulable=not overflowed,
                                reason=reason or "ok",
                                threads=self.threads, cycles=cpu.cycles)

    def _run_slice(self, thread: ThreadState, max_cycles: int) -> None:
        cpu = self.cpu
        self._current = thread
        cpu.r[:] = thread.regs
        cpu.pc = thread.pc
        cpu.sreg = thread.sreg
        cpu.sp = thread.sp
        cpu.sleeping = False
        start = cpu.cycles
        deadline = min(start + self.slice_cycles, max_cycles)
        try:
            cpu.run(max_cycles=deadline,
                    until=lambda c: c.sleeping or c.halted)
        except MemoryFault as fault:
            thread.failed = f"memory fault: {fault}"
        except SimulationError as error:
            thread.failed = f"simulation error: {error}"
        thread.regs[:] = cpu.r
        thread.pc = cpu.pc
        thread.sreg = cpu.sreg
        thread.sp = cpu.sp
        thread.cycles_used += cpu.cycles - start
        if cpu.halted:
            thread.done = True
            cpu.halted = False
        elif cpu.sleeping:
            cpu.sleeping = False
            if thread.timer_period <= 0:
                thread.failed = "sleep with no timer armed"
            else:
                thread.wake_cycle = cpu.cycles + thread.timer_period
        # Bounds check at the switch — all a traditional mote OS can do.
        if not thread.failed and not thread.done and \
                not thread.stack_lo <= cpu.sp <= thread.stack_hi:
            thread.failed = (f"stack pointer {cpu.sp:#06x} left "
                             f"[{thread.stack_lo:#06x},"
                             f"{thread.stack_hi:#06x}]")
        self._current = None

    def _check_corruption(self) -> bool:
        """Canary scan: a chewed canary means a neighbour overflowed."""
        for thread in self.threads:
            for offset in range(CANARY_BYTES):
                if self.cpu.mem.data[thread.stack_lo + offset] != CANARY \
                        and not thread.failed and not thread.done:
                    # The thread just below overflowed into this stack,
                    # or this thread's own deep usage reached its floor.
                    thread.failed = "stack canary destroyed"
                    return True
        return False


def max_schedulable_threads(make_spec, static_data_bytes: int = 2000,
                            limit: int = 32,
                            total_stack_budget: Optional[int] = None,
                            max_cycles: int = 200_000_000,
                            extra_threads: Sequence[ThreadSpec] = (),
                            ) -> int:
    """Largest k such that k generated threads all run without failure.

    *make_spec(i)* returns the i-th :class:`ThreadSpec`.  Mirrors the
    paper's Figure 7/8 metric.
    """
    best = 0
    for count in range(1, limit + 1):
        specs = list(extra_threads) + [make_spec(i) for i in range(count)]
        os_model = FixedStackOS(specs,
                                static_data_bytes=static_data_bytes,
                                total_stack_budget=total_stack_budget)
        result = os_model.run(max_cycles=max_cycles)
        if not result.schedulable:
            break
        best = count
    return best
