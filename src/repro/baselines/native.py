"""Native execution: the program runs alone, no OS, no rewriting.

This is the "Native" series of Figures 5 and 6 — the lower bound every
system's overhead is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..avr.cpu import AvrCpu
from ..avr.devices import Adc, Leds, Radio, Timer0, Timer3
from ..avr.memory import Flash
from ..toolchain.compile import compile_source


@dataclass
class NativeResult:
    """Outcome of a native run."""

    cycles: int
    instructions: int
    finished: bool
    cpu: AvrCpu
    devices: Dict[str, object]

    @property
    def seconds(self) -> float:
        return self.cycles / self.cpu.clock_hz

    def heap_byte(self, offset: int) -> int:
        """Read a byte from the program's heap (SRAM base + offset)."""
        return self.cpu.mem.data[0x100 + offset]


def run_native(source: str, max_instructions: int = 50_000_000,
               max_cycles: Optional[int] = None,
               adc_seed: int = 0xACE1,
               clock_hz: int = 7_372_800,
               fuse: bool = True) -> NativeResult:
    """Assemble *source* and run it bare-metal until BREAK."""
    program = compile_source(source, origin=0)
    flash = Flash()
    flash.load(0, program.words)
    cpu = AvrCpu(flash, clock_hz=clock_hz, fuse=fuse)
    devices = {
        "timer0": Timer0(),
        "timer3": Timer3(),
        "adc": Adc(seed=adc_seed),
        "radio": Radio(),
        "leds": Leds(),
    }
    for device in devices.values():
        cpu.attach_device(device)
    cpu.pc = program.entry
    cpu.run(max_instructions=max_instructions, max_cycles=max_cycles)
    return NativeResult(cycles=cpu.cycles, instructions=cpu.instret,
                        finished=cpu.halted, cpu=cpu, devices=devices)
