"""Copy-on-switch multitasking: the strawman the paper dismisses.

    "A simple copy-on-switch scheme appears to solve the problem by
    swapping one task's stack out to the external storage (FLASH on
    motes) and swapping it in when the task is activated again.
    However, writing the external FLASH takes more than 10 milliseconds
    on a MICA2 mote.  Such long context-switch delays, as well as other
    limitations (e.g., the erase cycle of FLASH chips), make the
    copy-on-switch scheme impractical for sensor nodes."  (Section I)

This model makes that argument measurable.  All tasks share a single
RAM stack area; at every context switch the outgoing task's live stack
is programmed to external flash and the incoming task's is read back.
The runtime is otherwise identical to a slice-based round-robin — so
the *only* difference from SenSmart's numbers is the swap cost and the
flash wear, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..avr import ioports
from ..avr.cpu import AvrCpu
from ..avr.devices import Adc, Leds, Radio, Timer0
from ..avr.devices.extflash import ExternalFlash
from ..avr.memory import Flash
from ..errors import SimulationError
from ..toolchain.compile import compile_source

#: Cycles for the register-context part of a switch (same work as any
#: multitasking kernel; SenSmart's Table II numbers).
CONTEXT_CYCLES = 2298


@dataclass
class SwapStats:
    switches: int = 0
    swap_cycles: int = 0
    context_cycles: int = 0
    worn_out: bool = False

    @property
    def total_switch_cycles(self) -> int:
        return self.swap_cycles + self.context_cycles

    def mean_switch_cycles(self) -> float:
        if not self.switches:
            return 0.0
        return self.total_switch_cycles / self.switches


@dataclass
class _SwapThread:
    name: str
    entry: int
    bss_base: int
    flash_pages: Tuple[int, int]  # (first page, page count)
    regs: bytearray = field(default_factory=lambda: bytearray(32))
    pc: int = 0
    sreg: int = 0
    sp: int = 0
    stack_image: bytes = b""
    done: bool = False
    cycles_used: int = 0


class CopyOnSwitchOS:
    """Round-robin multitasking with flash-swapped stacks."""

    def __init__(self, sources: Sequence[Tuple[str, str]],
                 stack_bytes: int = 512,
                 slice_cycles: int = 73_728,
                 clock_hz: int = 7_372_800):
        self.stack_bytes = stack_bytes
        self.slice_cycles = slice_cycles
        self.flash_device = ExternalFlash()
        self.stats = SwapStats()

        flash = Flash()
        code_cursor = 0x40
        data_cursor = ioports.RAM_START
        self.threads: List[_SwapThread] = []
        pages_per_stack = self.flash_device.pages_for(stack_bytes)
        for index, (name, source) in enumerate(sources):
            program = compile_source(source, name=name,
                                     origin=code_cursor,
                                     bss_base=data_cursor)
            flash.load(code_cursor, program.words)
            thread = _SwapThread(
                name=name, entry=program.entry, bss_base=data_cursor,
                flash_pages=(index * pages_per_stack, pages_per_stack))
            thread.pc = program.entry
            code_cursor += program.size_words
            data_cursor += program.symbols.heap_size
            self.threads.append(thread)
        # One shared stack area at the top of SRAM.
        self.stack_top = ioports.RAM_END
        self.stack_floor = self.stack_top - stack_bytes + 1
        if self.stack_floor <= data_cursor:
            raise SimulationError("heaps and the shared stack collide")
        for thread in self.threads:
            thread.sp = self.stack_top
            thread.stack_image = bytes(stack_bytes)

        self.cpu = AvrCpu(flash, clock_hz=clock_hz)
        for device in (Timer0(), Adc(), Radio(), Leds()):
            self.cpu.attach_device(device)

    # -- stack swapping ---------------------------------------------------------

    def _swap_out(self, thread: _SwapThread) -> None:
        """Program the outgoing task's live stack to external flash."""
        live = bytes(self.cpu.mem.data[self.stack_floor:
                                       self.stack_top + 1])
        first, _count = thread.flash_pages
        try:
            cycles = self.flash_device.write_blob(first, live)
        except SimulationError:
            self.stats.worn_out = True
            raise
        thread.stack_image = live
        self.cpu.cycles += cycles
        self.stats.swap_cycles += cycles

    def _swap_in(self, thread: _SwapThread) -> None:
        first, _count = thread.flash_pages
        _data, cycles = self.flash_device.read_blob(first,
                                                    self.stack_bytes)
        # The authoritative image is in the thread record (the flash
        # device stores the same bytes; reading charges the cycles).
        self.cpu.mem.data[self.stack_floor:self.stack_top + 1] = \
            thread.stack_image
        self.cpu.cycles += cycles
        self.stats.swap_cycles += cycles

    # -- execution -----------------------------------------------------------------

    def run(self, max_cycles: int = 2_000_000_000,
            max_switches: Optional[int] = None) -> SwapStats:
        cpu = self.cpu
        current: Optional[_SwapThread] = None
        index = 0
        while cpu.cycles < max_cycles:
            runnable = [t for t in self.threads if not t.done]
            if not runnable:
                break
            nxt = runnable[index % len(runnable)]
            index += 1
            if nxt is not current:
                if current is not None and not current.done:
                    self._save(current)
                    try:
                        self._swap_out(current)
                    except SimulationError:
                        break  # flash wore out: the scheme's end of life
                self._swap_in(nxt)
                self._restore(nxt)
                cpu.cycles += CONTEXT_CYCLES
                self.stats.context_cycles += CONTEXT_CYCLES
                self.stats.switches += 1
                current = nxt
                if max_switches is not None and \
                        self.stats.switches >= max_switches:
                    break
            start = cpu.cycles
            cpu.run(max_cycles=min(cpu.cycles + self.slice_cycles,
                                   max_cycles),
                    until=lambda c: c.halted)
            nxt.cycles_used += cpu.cycles - start
            if cpu.halted:
                self._save(nxt)
                nxt.done = True
                cpu.halted = False
                current = None
        return self.stats

    def _save(self, thread: _SwapThread) -> None:
        cpu = self.cpu
        thread.regs[:] = cpu.r
        thread.pc = cpu.pc
        thread.sreg = cpu.sreg
        thread.sp = cpu.sp

    def _restore(self, thread: _SwapThread) -> None:
        cpu = self.cpu
        cpu.r[:] = thread.regs
        cpu.pc = thread.pc
        cpu.sreg = thread.sreg
        cpu.sp = thread.sp
        cpu.sleeping = False


def switch_cost_cycles(stack_bytes: int = 512) -> int:
    """Modeled cost of one copy-on-switch context switch."""
    from ..avr.devices.extflash import (PAGE_READ_CYCLES,
                                        PAGE_WRITE_CYCLES)
    flash = ExternalFlash()
    pages = flash.pages_for(stack_bytes)
    return pages * (PAGE_WRITE_CYCLES + PAGE_READ_CYCLES) + CONTEXT_CYCLES
