"""Comparator systems: native execution, t-kernel, fixed-stack OS, Maté."""

from .native import NativeResult, run_native

__all__ = ["NativeResult", "run_native"]
