"""SenSmart reproduction: versatile stack management for multitasking
sensor networks (ICDCS 2010), rebuilt as a Python library.

Public API tour:

* :mod:`repro.avr` — the mote substrate: AVR ISA subset, assembler,
  cycle-counting CPU simulator, devices.
* :mod:`repro.toolchain` — compile/link pipeline producing target images.
* :mod:`repro.rewriter` — base-station binary translation (trampolines,
  shift tables, grouped-access optimization).
* :mod:`repro.kernel` — the SenSmart kernel runtime: logical addressing,
  software-trap scheduling, stack relocation.
* :mod:`repro.baselines` — native execution, t-kernel model, fixed-stack
  OS model, Maté-like VM.
* :mod:`repro.workloads` — the paper's benchmark programs.
* :mod:`repro.experiments` — regeneration of every table and figure.
"""

__version__ = "1.0.0"

from . import errors  # noqa: F401  (re-exported for convenience)
