"""Pipeline: content-keyed sequencing of the build stages.

Every stage key is derivable *before any stage runs*: the request key
is the content key of the submitted sources plus options, and each
stage's key chains the previous one with the stage's name and version.
Deterministic stages mean a key identifies its result — so the
pipeline first probes the **final** (verdict) key and, on a hit,
answers without assembling, rewriting, linting, booting or simulating
anything.  That is the "a million identical submissions cost one
rewrite" economics the serve layer builds on.

A miss walks the stages in order; each consults the
:class:`~repro.pipeline.store.ArtifactStore` under its own key first
(memory tier always, disk tier for pure-data stages), so a partial
cache still skips whatever work it can.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..fingerprint import content_key
from .stages import Stage, default_stages
from .store import ArtifactStore

#: Default simulation budget per submission.
DEFAULT_MAX_INSTRUCTIONS = 20_000_000

#: Request schema version: bump when key-relevant semantics change.
REQUEST_VERSION = 1


@dataclass(frozen=True)
class BuildRequest:
    """One submission: programs plus the run budget.

    ``sources`` is a tuple of ``(name, assembly_source)`` pairs —
    exactly what ``link_image`` takes.  Everything that can change the
    verdict is part of the content key; pure performance knobs (trace
    store paths, cache sizes) deliberately are not.
    """

    sources: Tuple[Tuple[str, str], ...]
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    max_cycles: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: dict) -> "BuildRequest":
        """Build a request from the serve protocol's JSON payload::

            {"programs": [{"name": ..., "source": ...}, ...],
             "options": {"max_instructions": ..., "max_cycles": ...}}
        """
        programs = payload.get("programs")
        if not isinstance(programs, list) or not programs:
            raise ValueError("payload needs a non-empty 'programs' list")
        sources = []
        for entry in programs:
            if not isinstance(entry, dict) or "source" not in entry:
                raise ValueError(
                    "each program needs 'name' and 'source' fields")
            sources.append((str(entry.get("name", "task")),
                            str(entry["source"])))
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError("'options' must be an object")
        known = {f.name for f in fields(cls)} - {"sources"}
        unknown = set(options) - known
        if unknown:
            raise ValueError(f"unknown options: {sorted(unknown)}")
        return cls(sources=tuple(sources), **options)

    def options_dict(self) -> dict:
        return {"max_instructions": self.max_instructions,
                "max_cycles": self.max_cycles}

    def content_key(self) -> str:
        return content_key("request", REQUEST_VERSION,
                           list(self.sources), self.max_instructions,
                           self.max_cycles)


class Pipeline:
    """Sequences the stages over one artifact store.

    *config* (a :class:`~repro.kernel.config.KernelConfig` or None for
    defaults) parameterizes the boot/simulate stages; any non-default
    config is folded into every stage key so two pipelines with
    different kernels never share artifacts they shouldn't.
    """

    def __init__(self, store: Optional[ArtifactStore] = None,
                 config=None, stages: Optional[Sequence[Stage]] = None):
        self.store = store if store is not None else ArtifactStore()
        self.config = config
        self.stages: List[Stage] = list(stages) if stages is not None \
            else default_stages()
        #: Per-stage execution counts for *this* pipeline (the global
        #: work odometer lives in ``stages.COUNTERS``).
        self.stage_runs: Dict[str, int] = {}
        self.submissions = 0
        self._lock = threading.Lock()

    # -- keys -------------------------------------------------------------------

    def _config_key(self):
        if self.config is None:
            return None
        from dataclasses import asdict
        parts = asdict(self.config)
        # The trace store is a pure performance knob: artifacts are
        # bit-identical with or without it.
        parts.pop("trace_store", None)
        return parts

    def stage_keys(self, request: BuildRequest) -> Dict[str, str]:
        chained = content_key("pipeline", request.content_key(),
                              self._config_key())
        keys = {}
        for stage in self.stages:
            chained = content_key("stage", stage.name, stage.version,
                                  chained)
            keys[stage.name] = chained
        return keys

    # -- submission -------------------------------------------------------------

    def submit(self, request: BuildRequest) -> dict:
        """Run (or recall) the full pipeline; returns the verdict dict
        with a ``cached`` flag describing whether any stage ran."""
        with self._lock:
            self.submissions += 1
        keys = self.stage_keys(request)
        final = self.stages[-1]
        verdict = self.store.get(keys[final.name],
                                 disk=final.persistent)
        if verdict is not None:
            return {**verdict, "cached": True}
        ctx: Dict[str, object] = {}
        for stage in self.stages:
            key = keys[stage.name]
            value = None
            if stage.cacheable:
                value = self.store.get(key, disk=stage.persistent)
            if value is None:
                value = stage.run(self, request, ctx)
                with self._lock:
                    self.stage_runs[stage.name] = \
                        self.stage_runs.get(stage.name, 0) + 1
                if stage.cacheable and value is not None:
                    self.store.put(
                        key, value,
                        artifact=value if stage.persistent else None)
            ctx[stage.name] = value
        return {**ctx[self.stages[-1].name], "cached": False}

    def adopt(self, request: BuildRequest, verdict: dict) -> None:
        """Seed the store with a verdict computed elsewhere (a serve
        worker process): future identical submissions hit in-memory."""
        body = {key: value for key, value in verdict.items()
                if key != "cached"}
        keys = self.stage_keys(request)
        final = self.stages[-1]
        self.store.put(keys[final.name], body,
                       artifact=body if final.persistent else None)

    def stats_dict(self) -> dict:
        with self._lock:
            runs = dict(self.stage_runs)
            submissions = self.submissions
        return {"submissions": submissions, "stage_runs": runs,
                "store": self.store.stats.as_dict()}


# -- process-default image cache -------------------------------------------------
#
# ``SensorNode.from_sources`` and ``SensorNode.reboot`` funnel their
# link through here: N identical nodes (network simulations) and crash
# reboots (chaos campaigns) re-link each distinct image once per
# process instead of once per node per life.

_IMAGE_STORE = ArtifactStore(max_memory=64)


def build_image(sources, lint: bool = False, rewriter=None,
                cache: bool = True):
    """Link *sources* into a target image through the process-default
    image cache.  A custom *rewriter* bypasses the cache (its behaviour
    is not content-keyable); lint failures raise and are never cached.
    """
    from ..toolchain.linker import link_image
    if rewriter is not None or not cache:
        return link_image(sources, rewriter=rewriter, lint=lint)
    key = content_key("image", REQUEST_VERSION, list(sources),
                      bool(lint))
    image = _IMAGE_STORE.get(key)
    if image is None:
        image = link_image(sources, lint=lint)
        _IMAGE_STORE.put(key, image)
    return image
