"""The staged build path: assemble → rewrite → lint → precompile →
simulate → verdict.

Two layers live here:

* **Work functions** (:func:`measure_programs`, :func:`link_programs`,
  :func:`lint_linked_image`, :func:`naturalize_at`) — the only code in
  the repository that invokes the assembler, the rewriter or the
  soundness linter.  ``toolchain.linker.link_image`` and the kernel's
  :class:`~repro.kernel.loader.DynamicLoader` both call through them,
  so the process-wide :data:`COUNTERS` see *every* unit of build work
  no matter which door it entered by — that is what lets the cache
  tests assert "a warm submission assembled and rewrote nothing".

* **Stage classes** — thin deterministic wrappers the
  :class:`~repro.pipeline.pipeline.Pipeline` sequences and caches by
  content key.  A stage with ``persistent=True`` produces pure JSON
  data and may be served from the on-disk artifact store across
  processes; a stage with ``cacheable=False`` (the node build) is
  never cached because its value is consumed by the stage after it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LinkError
from .report import (VERDICT_SCHEMA, jit_stats_dict, lint_report_dict,
                     rewrite_report_dict, run_report_dict,
                     stack_bounds_dict)


@dataclass
class StageCounters:
    """Process-wide build-work odometer.

    Counts *units of real work* (one program assembled, one program
    rewritten, one image linted, one node booted, one simulation run),
    not cache traffic.  ``snapshot()``/``delta()`` let tests assert
    that a warm path performed zero work of a given kind.
    """

    counts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        self._lock = threading.Lock()

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counts[name] = self.counts.get(name, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counts)

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Work performed since *before* (zero counts omitted)."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {key: now.get(key, 0) - before.get(key, 0)
                for key in sorted(keys)
                if now.get(key, 0) != before.get(key, 0)}


#: The process-wide instance every work function bumps.
COUNTERS = StageCounters()


# -- work functions -------------------------------------------------------------
#
# ``link_image`` is split into its two passes so the pipeline can cache
# them separately: pass 1 (assemble + measure) is placement-independent
# and pure data; pass 2+3 (re-assemble at final bases, rewrite into the
# shared trampoline pool, place and resolve) produces the live image.


def measure_programs(sources: Sequence[Tuple[str, str]], rewriter) \
        -> Tuple[List[int], List[dict]]:
    """Link pass 1: assemble each program at origin 0 and measure its
    naturalized size.  Returns ``(sizes, metadata)`` where metadata is
    the JSON-able per-program summary the verdict reports."""
    from ..toolchain.compile import compile_source
    sizes: List[int] = []
    metas: List[dict] = []
    for name, source in sources:
        COUNTERS.bump("assemble")
        probe = compile_source(source, name=name, origin=0)
        size = rewriter.measure_words(probe)
        sizes.append(size)
        metas.append({
            "name": name,
            "native_bytes": probe.size_bytes,
            "naturalized_words": size,
            "heap_bytes": probe.symbols.heap_size,
            "instructions": len(probe.instructions),
        })
    return sizes, metas


def link_programs(sources: Sequence[Tuple[str, str]],
                  sizes: Sequence[int], rewriter,
                  merge_trampolines: bool = True,
                  code_start: Optional[int] = None):
    """Link passes 2+3: re-assemble at final bases, rewrite into one
    shared trampoline pool, place the pool and resolve every site."""
    from ..rewriter.trampoline import TrampolinePool
    from ..toolchain.compile import compile_source
    from ..toolchain.image import (KERNEL_CODE_WORDS, TargetImage,
                                   TaskImage)
    if code_start is None:
        code_start = KERNEL_CODE_WORDS
    pool = TrampolinePool(merge=merge_trampolines)
    tasks: List[TaskImage] = []
    cursor = code_start
    for (name, source), size in zip(sources, sizes):
        COUNTERS.bump("assemble")
        program = compile_source(source, name=name, origin=cursor)
        COUNTERS.bump("rewrite")
        natural = rewriter.rewrite(program, pool)
        if natural.size_words != size:
            raise LinkError(
                f"{name}: naturalized size changed between passes "
                f"({size} -> {natural.size_words} words)")
        tasks.append(TaskImage(name=name, natural=natural))
        cursor += size
    trap_lo = cursor
    trap_hi = pool.place(trap_lo)
    for task in tasks:
        task.natural.resolve(pool)
    COUNTERS.bump("link")
    return TargetImage(tasks=tasks, pool=pool,
                       trap_region=(trap_lo, trap_hi),
                       code_start=code_start)


def lint_linked_image(image):
    """Run the rewriter-soundness linter over a linked image."""
    from ..analysis.static.lint import lint_image
    COUNTERS.bump("lint")
    return lint_image(image)


def naturalize_at(name: str, source: str, base: int, pool, rewriter):
    """Assemble + rewrite one program at *base* into *pool* — the
    dynamic loader's install path, counted like any other build."""
    from ..toolchain.compile import compile_source
    COUNTERS.bump("assemble")
    program = compile_source(source, name=name, origin=base)
    COUNTERS.bump("rewrite")
    return rewriter.rewrite(program, pool)


# -- pipeline stages ------------------------------------------------------------


class Stage:
    """One deterministic step; the pipeline keys it by content."""

    name = ""
    version = 1
    #: True — the stage's value is pure JSON data: cache it on disk and
    #: serve it across processes.  False — the value is a live object:
    #: cache it in memory only.
    persistent = False
    #: False — never cache (the value is consumed by a later stage).
    cacheable = True

    def run(self, pipeline, request, ctx):
        raise NotImplementedError


class AssembleStage(Stage):
    """Assemble every program and measure naturalized sizes (pass 1)."""

    name = "assemble"
    persistent = True

    def run(self, pipeline, request, ctx):
        from ..rewriter.rewriter import Rewriter
        sizes, metas = measure_programs(request.sources, Rewriter())
        return {"sizes": sizes, "programs": metas}


class RewriteStage(Stage):
    """Rewrite + link at final placement (passes 2+3).  The value holds
    the live image; only its report survives to disk via the verdict."""

    name = "rewrite"

    def run(self, pipeline, request, ctx):
        from ..rewriter.rewriter import Rewriter
        image = link_programs(request.sources, ctx["assemble"]["sizes"],
                              Rewriter())
        return {"image": image, "report": rewrite_report_dict(image)}


class LintStage(Stage):
    """Soundness lint + static stack bounds over the linked image."""

    name = "lint"
    persistent = True

    def run(self, pipeline, request, ctx):
        image = ctx["rewrite"]["image"]
        report = lint_linked_image(image)
        return {"lint": lint_report_dict(report),
                "stack": stack_bounds_dict(image)}


class PrecompileStage(Stage):
    """Boot a node from the linked image, ready to simulate.

    Never cached: the node is consumed (run) by the simulate stage, so
    a reuse would continue a finished run instead of starting one.  The
    node gets a *private* superblock cache — sharing the process-wide
    one would leak cache-warmth into the verdict's jit counters, and a
    content-addressed artifact must not depend on process history.
    """

    name = "precompile"
    cacheable = False

    def run(self, pipeline, request, ctx):
        from ..kernel import SensorNode
        COUNTERS.bump("precompile")
        return SensorNode.from_image(ctx["rewrite"]["image"],
                                     config=pipeline.config,
                                     block_cache=False)


class SimulateStage(Stage):
    """Run the node to completion (or the request's budget) and report
    the outcome, including the bit-exact final-state digest."""

    name = "simulate"
    persistent = True

    def run(self, pipeline, request, ctx):
        node = ctx["precompile"]
        COUNTERS.bump("simulate")
        node.run(max_instructions=request.max_instructions,
                 max_cycles=request.max_cycles)
        return {"run": run_report_dict(node), "jit": jit_stats_dict(node)}


class VerdictStage(Stage):
    """Fold every stage's report into the one JSON verdict."""

    name = "verdict"
    persistent = True

    def run(self, pipeline, request, ctx):
        COUNTERS.bump("verdict")
        return {
            "schema": VERDICT_SCHEMA,
            "key": request.content_key(),
            "programs": [name for name, _ in request.sources],
            "options": request.options_dict(),
            "assemble": ctx["assemble"]["programs"],
            "rewrite": ctx["rewrite"]["report"],
            "lint": ctx["lint"]["lint"],
            "stack": ctx["lint"]["stack"],
            "simulation": ctx["simulate"]["run"],
            "jit": ctx["simulate"]["jit"],
        }


def default_stages() -> List[Stage]:
    return [AssembleStage(), RewriteStage(), LintStage(),
            PrecompileStage(), SimulateStage(), VerdictStage()]
