"""Content-addressed artifact store: in-memory LRU + on-disk JSON.

Every pipeline stage result is addressed by a deterministic content key
(:mod:`repro.fingerprint`): same inputs, same key, same artifact.  The
store has two tiers:

* **memory** — an LRU of live Python values (linked images, booted
  nodes, verdict dicts).  Serves repeat submissions within a process at
  dict-lookup cost.
* **disk** — JSON files for stages whose artifacts are pure data
  (verdicts, lint reports, simulation digests).  Serves repeat
  submissions across processes.  Each file carries a checksum of its
  payload; a corrupt or tampered file is counted, deleted and treated
  as a miss, so the pipeline falls back to a clean recompute.

All operations are thread-safe (the serve executor fans submissions
over worker threads) and best-effort on the disk tier: an unwritable
directory degrades to memory-only, never an error.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from ..fingerprint import blake2b_hex

#: On-disk artifact schema version; mismatching files are corrupt.
DISK_VERSION = 1

_MISSING = object()


@dataclass
class StoreStats:
    """Traffic counters, exported by ``sensmart serve`` stats."""

    hits: int = 0        # memory-tier hits
    misses: int = 0      # lookups satisfied by neither tier
    disk_hits: int = 0   # disk-tier hits (memory cold)
    evictions: int = 0   # memory-tier LRU evictions
    corrupt: int = 0     # disk files rejected (bad JSON/checksum/version)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.hits + self.disk_hits) / lookups

    def as_dict(self) -> dict:
        return {"hits": self.hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "evictions": self.evictions,
                "corrupt": self.corrupt,
                "hit_rate": round(self.hit_rate, 6)}


class ArtifactStore:
    """Two-tier content-addressed store keyed by fingerprint strings."""

    def __init__(self, path: Optional[str] = None,
                 max_memory: int = 1024):
        self.path = path
        self.max_memory = max_memory
        self.stats = StoreStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    # -- lookups ----------------------------------------------------------------

    def get(self, key: str, disk: bool = True):
        """The stored value for *key*, or None.

        Memory is consulted first; with ``disk=True`` a memory miss
        falls through to the disk tier (and a disk hit is promoted into
        memory).  Stored values are never None, so None is an
        unambiguous miss.
        """
        with self._lock:
            value = self._memory.get(key, _MISSING)
            if value is not _MISSING:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return value
        if disk and self.path is not None:
            payload = self._read_disk(key)
            if payload is not _MISSING:
                self.stats.disk_hits += 1
                self._put_memory(key, payload)
                return payload
        self.stats.misses += 1
        return None

    def contains(self, key: str) -> bool:
        """Presence probe that does not touch the traffic counters."""
        with self._lock:
            if key in self._memory:
                return True
        return self.path is not None and os.path.exists(
            self._file_for(key))

    # -- inserts ----------------------------------------------------------------

    def put(self, key: str, value: Any,
            artifact: Optional[dict] = None) -> None:
        """Store *value* in memory; persist *artifact* (when given and a
        disk path is configured) as the cross-process form of the same
        result.  Pass ``artifact=value`` for stages whose value is
        already pure JSON data."""
        if value is None:
            raise ValueError("ArtifactStore cannot hold None values")
        self._put_memory(key, value)
        if artifact is not None and self.path is not None:
            self._write_disk(key, artifact)

    def _put_memory(self, key: str, value: Any) -> None:
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
            self._memory[key] = value
            while len(self._memory) > self.max_memory:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    # -- disk tier --------------------------------------------------------------

    def _file_for(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def _read_disk(self, key: str):
        filename = self._file_for(key)
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                wrapper = json.load(handle)
            body = wrapper["payload"]
            good = (wrapper.get("version") == DISK_VERSION
                    and wrapper.get("key") == key
                    and wrapper.get("checksum") == self._checksum(body))
        except OSError:
            return _MISSING
        except (ValueError, TypeError, KeyError):
            good = False
        if not good:
            self.stats.corrupt += 1
            try:
                os.remove(filename)
            except OSError:
                pass
            return _MISSING
        return body

    def _write_disk(self, key: str, artifact: dict) -> None:
        wrapper = {"version": DISK_VERSION, "key": key,
                   "checksum": self._checksum(artifact),
                   "payload": artifact}
        filename = self._file_for(key)
        try:
            os.makedirs(self.path, exist_ok=True)
            tmp = f"{filename}.{os.getpid()}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(wrapper, handle)
            os.replace(tmp, filename)
        except (OSError, TypeError, ValueError):
            pass  # best-effort: memory tier still serves this process

    @staticmethod
    def _checksum(body) -> str:
        canonical = json.dumps(body, sort_keys=True,
                               separators=(",", ":"))
        return blake2b_hex(canonical.encode("utf-8"), digest_size=8)
