"""One JSON report schema for the pipeline verdict and the CLI.

``sensmart serve`` verdicts, ``sensmart lint --json`` and
``sensmart run --stats --json`` are assembled from the same builder
functions below, so a consumer parses one schema no matter which door
the data came through.  Everything returned is plain JSON data —
stable keys, no live objects.
"""

from __future__ import annotations

from ..fingerprint import content_key

#: Schema tags, versioned independently of the store formats.
VERDICT_SCHEMA = "sensmart-verdict/1"
LINT_SCHEMA = "sensmart-lint/1"
ANALYZE_SCHEMA = "sensmart-analyze/1"
RUN_SCHEMA = "sensmart-run/1"
SERVE_STATS_SCHEMA = "sensmart-serve-stats/1"
FLEET_SCHEMA = "sensmart-fleet/1"
CHAOS_SCHEMA = "sensmart-chaos/1"
ATTACK_SCHEMA = "sensmart-attack/1"


def fleet_report_dict(result, timing: bool = False) -> dict:
    """JSON form of a :class:`~repro.fleet.FleetResult`.

    Everything outside the ``timing`` block is deterministic for a
    given (spec, shards) pair — including ``digest``, which is
    bit-identical across shard counts; timing is host-dependent and
    therefore opt-in.
    """
    report = {
        "label": result.label,
        "nodes": result.nodes,
        "links": result.links,
        "cross_links": result.cross_links,
        "shards": result.shards,
        "rounds": result.rounds,
        "finished_nodes": result.finished_nodes,
        "max_node_cycles": result.max_node_cycles,
        "total_instret": result.total_instret,
        "bytes": {
            "delivered": result.delivered,
            "dropped": result.dropped,
            "corrupted": result.corrupted,
            "duplicated": result.duplicated,
            "cross_shard_ferried": result.cross_bytes,
        },
        "faults": dict(result.fault_counts),
        "primed_images": result.primed_images,
        "compiled_per_shard": list(result.compiled_per_shard),
        "digest": result.digest,
    }
    if timing:
        report["timing"] = {
            "metric": "critical_path_cpu_seconds",
            "wall_s": round(result.wall_s, 6),
            "prime_s": round(result.prime_s, 6),
            "coordinator_cpu_s": round(result.coordinator_cpu_s, 6),
            "shard_cpu_s": [round(b, 6) for b in result.busy_s],
            "critical_path_s": round(result.critical_path_s, 6),
            "nodes_per_sec": round(result.nodes_per_sec, 3),
        }
    return report


def lint_report_dict(report) -> dict:
    """JSON form of an :class:`~repro.analysis.static.lint.LintReport`."""
    return {
        "ok": report.ok,
        "coverage": round(report.coverage, 6),
        "sites_total": report.sites_total,
        "sites_verified": report.sites_verified,
        "shift_entries": report.shift_entries,
        "instructions_scanned": report.instructions_scanned,
        "trampolines": report.trampolines,
        "certificates": report.certificates,
        "certificates_verified": report.certificates_verified,
        "findings": [
            {"check": finding.check, "program": finding.program,
             "address": finding.address,
             "kind": finding.kind.value if finding.kind else None,
             "message": finding.message}
            for finding in report.findings
        ],
    }


def analyze_report_dict(image) -> dict:
    """JSON form of the ``sensmart analyze`` dataflow summary: per-task
    site counts, indirect-control resolution quality, and the
    certificate-carrying (provably in-region) sites by claim."""
    from ..analysis.static import analyze_image
    tasks = analyze_image(image)
    return {
        "tasks": tasks,
        "sites_total": sum(row["sites"] for row in tasks),
        "certificates_total": sum(row["certificates_total"]
                                  for row in tasks),
        "unresolved_indirect": sum(row["unresolved_indirect"]
                                   for row in tasks),
    }


def stack_bounds_dict(image) -> dict:
    """Static worst-case stack bounds per task of a linked image."""
    from ..analysis.static import INFINITE_DEPTH, analyze_program
    bounds = {}
    for task in image.tasks:
        analysis = analyze_program(task.natural.program)
        bounded = analysis.bound != INFINITE_DEPTH
        bounds[task.name] = {
            "bounded": bounded,
            "bound_bytes": int(analysis.bound) if bounded else None,
            "description": analysis.describe_bound(),
        }
    return bounds


def image_fingerprint(image) -> str:
    """Content key of a linked image: every task's placed words plus
    the trampoline region geometry."""
    return content_key(
        [(task.name, task.natural.base, task.natural.words)
         for task in image.tasks],
        list(image.trap_region), image.code_start)


def rewrite_report_dict(image) -> dict:
    """Inflation accounting of a linked image (Figure 4 decomposition)."""
    tasks = []
    for task in image.tasks:
        stats = task.natural.stats
        tasks.append({
            "name": task.name,
            "base": task.natural.base,
            "entry": task.natural.entry,
            "heap_bytes": task.heap_size,
            "native_bytes": stats.native_bytes,
            "rewritten_bytes": stats.rewritten_bytes,
            "shift_table_bytes": stats.shift_table_bytes,
            "trampoline_bytes": stats.trampoline_bytes,
            "patched_sites": stats.patched_sites,
            "grouped_sites": stats.grouped_sites,
            "inflation_ratio": round(stats.inflation_ratio, 6),
        })
    return {
        "tasks": tasks,
        "trap_region": list(image.trap_region),
        "trampolines": image.pool.count,
        "trampoline_requests": image.pool.requests,
        "image_fingerprint": image_fingerprint(image),
    }


def run_report_dict(node) -> dict:
    """Execution outcome of one node run (shared by ``sensmart run
    --json`` and the verdict's ``simulation`` section)."""
    kernel = node.kernel
    stats = kernel.stats
    tasks = {}
    for task in kernel.tasks.values():
        tasks[task.name] = {
            "task_id": task.task_id,
            "state": task.state.value,
            "exit_reason": task.exit_reason or None,
            "cycles_used": task.cycles_used,
            "kernel_cycles": task.kernel_cycles,
            "max_stack_used": task.max_stack_used,
        }
    return {
        "finished": node.finished,
        "cycles": node.cpu.cycles,
        "instructions": node.cpu.instret,
        "tasks": tasks,
        "context_switches": stats.context_switches,
        "relocations": stats.relocations,
        "idle_cycles": stats.idle_cycles,
        "kernel_cycles": stats.kernel_cycles,
        "scheduler_checks": stats.scheduler_checks,
        "radio_tx_bytes": len(node.radio.transmitted),
        "traps": {kind.name: count
                  for kind, count in sorted(
                      stats.trap_counts.items(),
                      key=lambda kv: kv[0].name)},
        "trace_digest": sim_digest(node),
    }


def jit_stats_dict(node) -> dict:
    """Block-cache / specializer / tracer / trace-store counters
    (the JSON twin of the ``sensmart run --stats`` text block)."""
    kernel = node.kernel
    out: dict = {}
    cache = node.cpu._block_cache
    if cache is not None:
        out["block_cache"] = {
            "hits": cache.hits, "misses": cache.misses,
            "distinct_compiles": len(cache.compile_counts),
        }
    specializer = kernel.specializer
    if specializer is not None:
        s = specializer.stats
        out["specializer"] = {"compiled": s.compiled,
                              "deopts": s.deopts,
                              "declined": s.declined}
    tracer = kernel.tracer
    if tracer is not None:
        t = tracer.stats
        out["tracer"] = {"compiled": t.compiled,
                         "declined": t.declined,
                         "cache_hits": t.cache_hits,
                         "store_hits": t.store_hits,
                         "store_misses": t.store_misses}
        if tracer.store is not None:
            st = tracer.store.stats
            out["trace_store"] = {"writes": st.writes,
                                  "evictions": st.evictions,
                                  "corrupt": st.corrupt,
                                  "max_files": tracer.store.max_files}
    return out


def containment_dict(kernel_stats) -> dict:
    """Containment ledger of one :class:`KernelStats`: terminations by
    reason and faults by kind (the counters the adversarial campaign
    cross-checks its survivability table against)."""
    return {
        "terminations_by_reason": dict(
            sorted(kernel_stats.termination_counts.items())),
        "faults_by_kind": dict(sorted(kernel_stats.fault_kinds.items())),
    }


def chaos_report_dict(result) -> dict:
    """JSON form of a :class:`~repro.experiments.extra_faults.ChaosResult`."""
    return {
        "seed": result.seed,
        "rows": [
            {"mix": r.mix, "level": r.level, "tasks": r.tasks,
             "finished": r.finished, "restarted_ok": r.restarted_ok,
             "dead": r.dead, "terminations": r.terminations,
             "restarts": r.restarts, "watchdog": r.watchdog,
             "crashes": r.crashes, "recovered": r.recovered,
             "delivered": r.delivered, "dropped": r.dropped,
             "corrupted": r.corrupted, "duplicated": r.duplicated}
            for r in result.rows
        ],
        "moderate": {
            "terminations": result.moderate_terminations,
            "restarted_ok": result.moderate_restarted_ok,
            "recovered": result.moderate_recovered,
        },
    }


def inject_report_dict(result) -> dict:
    """JSON form of an adversarial injection campaign
    (:class:`~repro.adversary.campaign.InjectResult`)."""
    from ..adversary.campaign import CONTAINED_OUTCOMES, OUTCOMES
    table = {}
    for shape in result.shapes:
        table[shape] = {outcome: result.count(outcome, shape)
                        for outcome in OUTCOMES}
    return {
        "seed": result.seed,
        "quick": result.quick,
        "trials": [
            {"shape": t.shape, "index": t.index, "note": t.note,
             "outcome": t.outcome, "detail": t.detail,
             "canary_ok": t.canary_ok, "tx": list(t.tx)}
            for t in result.trials
        ],
        "table": table,
        "contained_outcomes": list(CONTAINED_OUTCOMES),
        "contained": result.contained,
        "hijacked": result.hijacked,
        "silent": result.count("SILENT_CORRUPTION"),
        "survived": result.count("SURVIVED"),
        "kernel_oob_faults": result.kernel_oob_faults,
        "kernel_cross_check_ok":
            result.kernel_oob_faults == result.count("TRAPPED_OOB"),
        "digest": result.digest,
    }


def patch_report_dict(report) -> dict:
    """JSON form of a hot-patch session
    (:class:`~repro.adversary.patch.PatchReport`)."""
    return {
        "ok": report.ok,
        "failure": report.failure or None,
        "passes": report.passes,
        "frames_unique": report.frames_unique,
        "frames_rejected": report.frames_rejected,
        "frames_duplicate": report.frames_duplicate,
        "link_corrupted": report.link_corrupted,
        "patch_cycle": report.patch_cycle,
        "flash_words": report.flash_words,
        "ram_bytes_moved": report.ram_bytes_moved,
        "beacons_before": report.beacons_before,
        "beacons_after": report.beacons_after,
        "network_alive": report.network_alive,
        "worker_digest": report.worker_digest,
        "cold_digest": report.cold_digest,
        "digest_match": report.worker_digest == report.cold_digest,
        "digest": report.digest,
    }


def attack_report_dict(inject=None, patch=None) -> dict:
    """The ``sensmart attack --json`` body: whichever families ran."""
    families: dict = {}
    if inject is not None:
        families["inject"] = inject_report_dict(inject)
    if patch is not None:
        families["patch"] = patch_report_dict(patch)
    return {"families": families}


def sim_digest(node) -> str:
    """Content key of the node's final architectural state.

    The same tuple the differential tests compare, so two execution
    modes (or a cached and a recomputed verdict) agree exactly when
    their runs were bit-identical.
    """
    kernel = node.kernel
    return content_key(
        node.cpu.instret, node.cpu.cycles, node.cpu.sp,
        bytes(node.cpu.mem.data),
        {kind.name: count
         for kind, count in kernel.stats.trap_counts.items()},
        kernel.stats.kernel_cycles, kernel.stats.scheduler_checks)
