"""Content-addressed build pipeline (assemble → … → verdict).

The base station's deployment path as an explicit staged pipeline:
every stage is deterministic, keyed by the blake2b content key of its
inputs (:mod:`repro.fingerprint`), and cached in a two-tier
:class:`ArtifactStore` — so identical submissions cost one build, and
``sensmart serve`` can answer a million of them from the store.
"""

from .pipeline import (DEFAULT_MAX_INSTRUCTIONS, BuildRequest, Pipeline,
                       build_image)
from .report import (LINT_SCHEMA, RUN_SCHEMA, SERVE_STATS_SCHEMA,
                     VERDICT_SCHEMA, jit_stats_dict, lint_report_dict,
                     rewrite_report_dict, run_report_dict, sim_digest,
                     stack_bounds_dict)
from .stages import COUNTERS, Stage, StageCounters, default_stages
from .store import ArtifactStore, StoreStats

__all__ = [
    "ArtifactStore", "StoreStats",
    "BuildRequest", "Pipeline", "build_image",
    "DEFAULT_MAX_INSTRUCTIONS",
    "COUNTERS", "Stage", "StageCounters", "default_stages",
    "VERDICT_SCHEMA", "LINT_SCHEMA", "RUN_SCHEMA",
    "SERVE_STATS_SCHEMA",
    "jit_stats_dict", "lint_report_dict", "rewrite_report_dict",
    "run_report_dict", "sim_digest", "stack_bounds_dict",
]
