"""Exception hierarchy for the SenSmart reproduction.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class AssemblerError(ReproError):
    """Assembly source is malformed.

    Carries optional source location information for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, source: str = ""):
        location = f" (line {line}: {source.strip()!r})" if line else ""
        super().__init__(message + location)
        self.line = line
        self.source = source


class LinkError(ReproError):
    """Programs could not be linked into a target image."""


class SimulationError(ReproError):
    """The MCU simulator reached an invalid state."""


class InvalidInstruction(SimulationError):
    """The CPU fetched a word that does not decode to a valid instruction."""

    def __init__(self, address: int, word: int):
        super().__init__(
            f"invalid instruction word 0x{word:04x} at word address 0x{address:04x}"
        )
        self.address = address
        self.word = word


class MemoryFault(SimulationError):
    """A data-memory access fell outside the addressable space."""

    def __init__(self, address: int, kind: str = "access"):
        super().__init__(f"memory fault: {kind} at data address 0x{address:04x}")
        self.address = address
        self.kind = kind


class RewriteError(ReproError):
    """The binary rewriter could not naturalize a program."""


class KernelError(ReproError):
    """The SenSmart kernel reached an inconsistent state."""


class TaskFault(KernelError):
    """A task performed an operation the kernel treats as invalid.

    The kernel converts these into task terminations rather than letting
    them crash the node, mirroring SenSmart's treatment of out-of-region
    accesses as invalid instructions.
    """

    def __init__(self, task_id: int, reason: str):
        super().__init__(f"task {task_id} fault: {reason}")
        self.task_id = task_id
        self.reason = reason


class OutOfMemory(KernelError):
    """The kernel could not allocate or grow a memory region."""


class LoadError(KernelError):
    """The dynamic loader rejected an image before installing anything.

    Raised for malformed or truncated sources (and anything else the
    compile/naturalize stages refuse); mirrors the
    :class:`~repro.kernel.termination.TerminationReason` style with a
    stable ``reason`` string.  The loader guarantees the node is
    untouched when this escapes: no flash burned, no trampolines
    registered, no region moved — running tasks stay bit-identical.
    """

    def __init__(self, name: str, reason: str):
        super().__init__(f"load of {name!r} rejected: {reason}")
        self.name = name
        self.reason = reason
