"""``sensmart serve`` — the base station as a multi-tenant service.

In a deployment, one base station reprograms a whole field of nodes,
and most submissions are *identical*: the same application mix, the
same kernel, resubmitted per node or per retry.  This module puts the
content-addressed pipeline behind a long-lived socket so that economics
becomes explicit: the first submission of an assembly bundle pays for
assemble → rewrite → lint → link → simulate once, and every identical
submission after it — concurrent or later — is answered from the
artifact store without touching the rewriter at all.

Protocol: newline-delimited JSON over TCP.  Each request line is one
object; each response line answers it in order on that connection::

    {"id": 1, "programs": [{"name": "blink", "source": "..."}],
     "options": {"max_instructions": 2000000}}
    -> {"id": 1, "ok": true, "verdict": {...sensmart-verdict/1...}}

    {"op": "stats"}     -> {"ok": true, "stats": {...}}
    {"op": "shutdown"}  -> {"ok": true, "stopping": true}

Concurrency: submissions with the same content key are **single-flight**
— the second arrival awaits the first's in-flight future instead of
booting a second simulator (``coalesced`` counts these).  Distinct
submissions fan out over a thread pool; with ``jobs > 1`` on a platform
with ``fork``, heavy builds go to a process pool (the experiment
runner's pattern) and the parent adopts each verdict into its store.

Everything here is stdlib: asyncio, sockets, threads.  No new deps.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from .pipeline.pipeline import BuildRequest, Pipeline
from .pipeline.report import SERVE_STATS_SCHEMA
from .pipeline.store import ArtifactStore

#: Protocol tag reported in stats.
PROTOCOL = "sensmart-serve/1"

#: Per-line size cap — assembly sources are small; 4 MiB is generous.
MAX_LINE_BYTES = 4 * 1024 * 1024

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7737


# -- worker-process entry (jobs > 1) ---------------------------------------------

_WORKER_PIPELINE: Optional[Pipeline] = None
_WORKER_STORE_PATH = None


def _worker_submit(payload: dict, store_path) -> dict:
    """Run one submission inside a forked pool worker.

    Each worker keeps its own pipeline over the shared on-disk store
    (writes are atomic rename, so concurrent workers are safe); the
    parent adopts the returned verdict into its in-memory tier.
    """
    global _WORKER_PIPELINE, _WORKER_STORE_PATH
    if _WORKER_PIPELINE is None or _WORKER_STORE_PATH != store_path:
        _WORKER_PIPELINE = Pipeline(store=ArtifactStore(path=store_path))
        _WORKER_STORE_PATH = store_path
    return _WORKER_PIPELINE.submit(BuildRequest.from_payload(payload))


class ServeServer:
    """The asyncio job server.  One instance per listening socket."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = 0,
                 store_path=None, jobs: int = 1, config=None):
        self.host = host
        self.port = port
        self.store_path = store_path
        self.jobs = max(1, int(jobs))
        self.pipeline = Pipeline(store=ArtifactStore(path=store_path),
                                 config=config)
        #: Request accounting (submissions, protocol errors, and
        #: arrivals that coalesced onto an in-flight identical build).
        self.requests = 0
        self.errors = 0
        self.coalesced = 0
        self._inflight: dict = {}
        self._client_tasks: set = set()
        self._client_writers: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="sensmart-serve")
        self._pool = None
        self._server = None
        self._stopping = asyncio.Event()
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> "ServeServer":
        self.loop = asyncio.get_running_loop()
        if self.jobs > 1:
            self._ensure_pool()
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def _ensure_pool(self):
        """Fork a worker pool for jobs > 1; threads remain the fallback
        where ``fork`` is unavailable."""
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(processes=self.jobs)
        return self._pool

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (also reachable via the
        ``shutdown`` op on the wire)."""
        if self.loop is None or self.loop.is_closed():
            return
        with contextlib.suppress(RuntimeError):
            # the loop may close between the check and the call
            self.loop.call_soon_threadsafe(self._stopping.set)

    async def run_until_shutdown(self) -> None:
        """Serve until the shutdown op (or :meth:`request_shutdown`),
        then drain in-flight builds and close."""
        try:
            await self._stopping.wait()
            await self._drain()
        finally:
            await self.close()

    async def _drain(self) -> None:
        tasks = list(self._inflight.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Nudge lingering connections to EOF so their handler tasks
        # finish on their own (cancelling them mid-readline is noisy).
        for writer in list(self._client_writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._client_tasks:
            await asyncio.gather(*list(self._client_tasks),
                                 return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # -- connection handling ----------------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        self._client_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.errors += 1
                    writer.write(_encode({"ok": False,
                                          "error": "request line too "
                                                   "long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch_line(line)
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            self._client_writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            self.errors += 1
            return {"ok": False, "error": f"bad JSON: {exc}"}
        ident = payload.get("id") if isinstance(payload, dict) else None
        try:
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
            op = payload.get("op", "submit")
            if op == "stats":
                return {"id": ident, "ok": True,
                        "stats": self.stats_dict()}
            if op == "shutdown":
                self._stopping.set()
                return {"id": ident, "ok": True, "stopping": True}
            if op != "submit":
                raise ValueError(f"unknown op {op!r}")
            self.requests += 1
            verdict = await self._submit(payload)
            return {"id": ident, "ok": True, "verdict": verdict}
        except Exception as exc:
            self.errors += 1
            return {"id": ident, "ok": False, "error": str(exc)}

    # -- submission path --------------------------------------------------------

    async def _submit(self, payload: dict) -> dict:
        """Single-flight dispatch: identical concurrent submissions
        share one build task keyed by the request content key."""
        request = BuildRequest.from_payload(payload)
        key = request.content_key()
        task = self._inflight.get(key)
        if task is None:
            task = asyncio.get_running_loop().create_task(
                self._execute(payload, request))
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _k=key: self._inflight.pop(_k, None))
        else:
            self.coalesced += 1
        # Shield: one client hanging up must not cancel the build the
        # other coalesced waiters share.
        verdict = await asyncio.shield(task)
        return dict(verdict)

    async def _execute(self, payload: dict,
                       request: BuildRequest) -> dict:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._run_request, payload, request)

    def _run_request(self, payload: dict,
                     request: BuildRequest) -> dict:
        if self._pool is not None:
            # Probe the parent store first — a warm verdict must not
            # cost a round-trip through a worker process.
            keys = self.pipeline.stage_keys(request)
            final = self.pipeline.stages[-1]
            cached = self.pipeline.store.get(keys[final.name],
                                             disk=final.persistent)
            if cached is not None:
                return {**cached, "cached": True}
            verdict = self._pool.apply_async(
                _worker_submit, (payload, self.store_path)).get()
            self.pipeline.adopt(request, verdict)
            return verdict
        return self.pipeline.submit(request)

    # -- stats ------------------------------------------------------------------

    def stats_dict(self) -> dict:
        return {
            "schema": SERVE_STATS_SCHEMA,
            "protocol": PROTOCOL,
            "requests": self.requests,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "jobs": self.jobs,
            "workers": "processes" if self._pool is not None
            else "threads",
            "pipeline": self.pipeline.stats_dict(),
        }


def _encode(response: dict) -> bytes:
    return (json.dumps(response, sort_keys=True) + "\n").encode()


# -- blocking entry points -------------------------------------------------------

def run_server(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
               store_path=None, jobs: int = 1, config=None,
               announce=None) -> ServeServer:
    """Run a server until its shutdown op; returns the (closed) server
    so callers can inspect final counters."""
    server = ServeServer(host=host, port=port, store_path=store_path,
                         jobs=jobs, config=config)

    async def _main():
        await server.start()
        if announce is not None:
            announce(server)
        await server.run_until_shutdown()

    asyncio.run(_main())
    return server


@contextlib.contextmanager
def serve_in_thread(host: str = DEFAULT_HOST, port: int = 0,
                    store_path=None, jobs: int = 1, config=None):
    """Context manager: a live server on a background thread (tests,
    benchmarks).  Yields the :class:`ServeServer` with ``.port`` bound."""
    ready = threading.Event()
    server = ServeServer(host=host, port=port, store_path=store_path,
                         jobs=jobs, config=config)

    def _thread():
        async def _main():
            await server.start()
            ready.set()
            await server.run_until_shutdown()
        try:
            asyncio.run(_main())
        finally:
            ready.set()  # unblock the spawner even on startup failure

    thread = threading.Thread(target=_thread, daemon=True,
                              name="sensmart-serve-loop")
    thread.start()
    if not ready.wait(timeout=30) or server.loop is None:
        raise RuntimeError("serve thread failed to start")
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=30)


class ServeClient:
    """Minimal blocking NDJSON client (CLI, tests, load generator)."""

    def __init__(self, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def submit(self, programs, options: Optional[dict] = None,
               ident=None) -> dict:
        payload: dict = {"programs": programs}
        if options:
            payload["options"] = options
        if ident is not None:
            payload["id"] = ident
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        with contextlib.suppress(Exception):
            self._file.close()
        with contextlib.suppress(Exception):
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
