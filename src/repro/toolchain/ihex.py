"""Intel HEX encoding of target images.

Real mote toolchains ship firmware as Intel HEX (avr-gcc's
``objcopy -O ihex`` output, consumed by uisp/avrdude).  This module
writes and reads the format so naturalized images can round-trip
through the same artifact a real base station would transmit.

Supported record types: 00 (data), 01 (EOF), 02 (extended segment
address) — enough for the ATmega128's 128 KB program space.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ReproError


class IhexError(ReproError):
    """Malformed Intel HEX input."""


def _checksum(record_bytes: bytes) -> int:
    return (-sum(record_bytes)) & 0xFF


def _record(record_type: int, address: int, payload: bytes) -> str:
    body = bytes([len(payload), (address >> 8) & 0xFF, address & 0xFF,
                  record_type]) + payload
    return ":" + body.hex().upper() + f"{_checksum(body):02X}"


def words_to_ihex(words: Sequence[int], byte_origin: int = 0,
                  bytes_per_record: int = 16) -> str:
    """Encode 16-bit flash *words* (little-endian) as Intel HEX text."""
    payload = bytearray()
    for word in words:
        payload.append(word & 0xFF)
        payload.append((word >> 8) & 0xFF)
    lines: List[str] = []
    segment = -1
    for offset in range(0, len(payload), bytes_per_record):
        address = byte_origin + offset
        if address >> 16 != segment:
            segment = address >> 16
            # Extended segment address: paragraph (x16) granularity.
            paragraph = (segment << 16) >> 4
            lines.append(_record(
                0x02, 0,
                bytes([(paragraph >> 8) & 0xFF, paragraph & 0xFF])))
        chunk = payload[offset:offset + bytes_per_record]
        lines.append(_record(0x00, address & 0xFFFF, bytes(chunk)))
    lines.append(_record(0x01, 0, b""))
    return "\n".join(lines) + "\n"


def ihex_to_bytes(text: str) -> Dict[int, int]:
    """Parse Intel HEX text into a byte-address -> value map."""
    data: Dict[int, int] = {}
    base = 0
    saw_eof = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if not line.startswith(":"):
            raise IhexError(f"line {line_number}: missing ':'")
        try:
            body = bytes.fromhex(line[1:])
        except ValueError:
            raise IhexError(f"line {line_number}: bad hex") from None
        if len(body) < 5:
            raise IhexError(f"line {line_number}: record too short")
        if sum(body) & 0xFF:
            raise IhexError(f"line {line_number}: checksum mismatch")
        length, high, low, record_type = body[0], body[1], body[2], body[3]
        payload = body[4:-1]
        if len(payload) != length:
            raise IhexError(f"line {line_number}: length mismatch")
        if saw_eof:
            raise IhexError(f"line {line_number}: data after EOF")
        if record_type == 0x00:
            address = base + (high << 8 | low)
            for index, value in enumerate(payload):
                data[address + index] = value
        elif record_type == 0x01:
            saw_eof = True
        elif record_type == 0x02:
            if length != 2:
                raise IhexError(
                    f"line {line_number}: bad segment record")
            base = ((payload[0] << 8) | payload[1]) << 4
        else:
            raise IhexError(
                f"line {line_number}: unsupported record type "
                f"{record_type:#04x}")
    if not saw_eof:
        raise IhexError("missing EOF record")
    return data


def ihex_to_words(text: str) -> List[Tuple[int, List[int]]]:
    """Parse HEX into ``(word_address, words)`` runs (little-endian)."""
    data = ihex_to_bytes(text)
    if not data:
        return []
    runs: List[Tuple[int, List[int]]] = []
    addresses = sorted(data)
    lo, hi = addresses[0] & ~1, addresses[-1] | 1
    current_start = None
    current_words: List[int] = []
    for byte_address in range(lo, hi + 1, 2):
        if byte_address in data or byte_address + 1 in data:
            word = data.get(byte_address, 0xFF) | \
                (data.get(byte_address + 1, 0xFF) << 8)
            if current_start is None:
                current_start = byte_address >> 1
            current_words.append(word)
        elif current_start is not None:
            runs.append((current_start, current_words))
            current_start, current_words = None, []
    if current_start is not None:
        runs.append((current_start, current_words))
    return runs


def image_to_ihex(image) -> str:
    """Serialize a :class:`TargetImage`'s flash contents as Intel HEX."""
    from ..avr.memory import Flash
    flash = Flash()
    image.burn(flash)
    start = min(task.base for task in image.tasks)
    end = image.trap_region[1]
    return words_to_ihex(flash.as_words(start, end - start),
                         byte_origin=start * 2)


def load_ihex_into_flash(text: str, flash) -> None:
    """Burn parsed HEX runs into a :class:`Flash`."""
    for word_address, words in ihex_to_words(text):
        flash.load(word_address, words)
