"""Target image: kernel + naturalized programs + trampoline region."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..avr.memory import Flash
from ..rewriter.naturalized import NaturalizedProgram
from ..rewriter.trampoline import Trampoline, TrampolinePool

#: Flash word reserved for interrupt vectors and the kernel's own code.
#: The paper reports the kernel occupying <6% of the 128 KB program
#: memory; we reserve a matching region so application bases are
#: realistic.  (Kernel semantics execute in the host runtime — see
#: DESIGN.md — so the region's content is never fetched.)
KERNEL_CODE_WORDS = 0x0C00  # 6 KB


@dataclass
class TaskImage:
    """Per-task metadata the loader hands to the kernel."""

    name: str
    natural: NaturalizedProgram

    @property
    def base(self) -> int:
        return self.natural.base

    @property
    def entry(self) -> int:
        return self.natural.entry

    @property
    def heap_size(self) -> int:
        return self.natural.heap_size


@dataclass
class TargetImage:
    """Everything the loader burns into a node's flash."""

    tasks: List[TaskImage]
    pool: TrampolinePool
    trap_region: Tuple[int, int]  # [lo, hi) word addresses
    code_start: int = KERNEL_CODE_WORDS

    @property
    def trampolines_by_address(self) -> Dict[int, Trampoline]:
        return self.pool.by_address()

    @property
    def size_words(self) -> int:
        return self.trap_region[1]

    def burn(self, flash: Flash) -> None:
        """Write the image into *flash*.

        The trampoline region is filled with ``BREAK`` words so that a
        stray fetch outside kernel control is caught immediately.
        """
        for task in self.tasks:
            flash.load(task.natural.base, task.natural.words)
        lo, hi = self.trap_region
        flash.load(lo, [0x9598] * (hi - lo))

    def task_for_address(self, address: int) -> TaskImage:
        for task in self.tasks:
            if task.natural.contains(address):
                return task
        raise KeyError(f"no task owns flash address {address:#06x}")
