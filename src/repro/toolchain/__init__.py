"""Base-station toolchain: compile, link, and image handling.

Mirrors the paper's Figure 1 pipeline::

    source --compiler--> binary + symbol list
           --rewriter--> naturalized code
           --linker----> target image (kernel + naturalized programs)
           --loader----> sensor node
"""

from .compile import compile_source
from .image import TargetImage, TaskImage
from .linker import link_image
from .program import Program
from .symbols import SymbolList

__all__ = [
    "compile_source", "link_image",
    "Program", "SymbolList", "TargetImage", "TaskImage",
]
