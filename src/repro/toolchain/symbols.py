"""The compiler-emitted symbol list.

SenSmart's rewriter consumes not only the binary but also the memory-
usage information the compiler produces (paper Section IV-A: "the base
station can collect the whole-program characteristics such as the heap
usage information from the symbol list generated in compiling").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class SymbolList:
    """Whole-program memory-usage facts extracted at compile time."""

    #: flash word address of each label.
    labels: Dict[str, int] = field(default_factory=dict)
    #: data address of each ``.bss`` reservation.
    data_symbols: Dict[str, int] = field(default_factory=dict)
    #: total bytes of statically allocated data (the task's heap area).
    heap_size: int = 0
    #: flash word address execution starts at.
    entry: int = 0

    def label(self, name: str) -> int:
        return self.labels[name]

    def data_address(self, name: str) -> int:
        return self.data_symbols[name]
