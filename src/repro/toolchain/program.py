"""A compiled (but not yet naturalized) application program."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from ..avr.assembler import AsmProgram
from ..avr.instruction import DataWord, Instruction
from .symbols import SymbolList


@dataclass(frozen=True)
class Program:
    """Compiler output: binary image plus symbol list.

    ``origin`` is the flash word address the program was compiled for;
    all absolute references inside ``words`` assume that placement.
    """

    name: str
    source: str
    origin: int
    words: List[int]
    items: List[Union[Instruction, DataWord]]
    symbols: SymbolList

    @property
    def size_words(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return 2 * len(self.words)

    @property
    def entry(self) -> int:
        return self.symbols.entry

    @property
    def instructions(self) -> List[Instruction]:
        return [item for item in self.items if isinstance(item, Instruction)]


def from_asm(name: str, source: str, assembled: AsmProgram) -> Program:
    """Wrap an :class:`AsmProgram` into a :class:`Program`."""
    symbols = SymbolList(
        labels=dict(assembled.labels),
        data_symbols=dict(assembled.bss_symbols),
        heap_size=assembled.heap_size,
        entry=assembled.entry,
    )
    return Program(name=name, source=source, origin=assembled.origin,
                   words=list(assembled.words), items=list(assembled.items),
                   symbols=symbols)
