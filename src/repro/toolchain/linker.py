"""The kernel linker (paper Figure 1).

Links multiple application programs with the pre-compiled kernel into a
single target image:

1. compile each program once to learn its naturalized size;
2. assign consecutive flash bases after the kernel code region;
3. re-compile each program *at its base* (absolute references must
   assume final placement) and rewrite it into a shared trampoline pool,
   so that similar trampolines merge across programs;
4. place the trampoline region after the last program and resolve every
   patched site's ``JMP`` target.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import LinkError
from ..rewriter.rewriter import Rewriter
from .image import KERNEL_CODE_WORDS, TargetImage


def link_image(sources: Sequence[Tuple[str, str]],
               rewriter: Optional[Rewriter] = None,
               merge_trampolines: bool = True,
               code_start: int = KERNEL_CODE_WORDS,
               lint: bool = False) -> TargetImage:
    """Build a target image from ``(name, assembly_source)`` pairs.

    The actual passes live in :mod:`repro.pipeline.stages` — pass 1
    (assemble + measure) and passes 2+3 (rewrite at final placement,
    place trampolines, resolve sites) are the pipeline's assemble and
    rewrite stages, and routing through them keeps the process-wide
    build-work counters exact no matter who links.

    With ``lint=True`` the rewriter-soundness linter runs over the
    finished image and a finding aborts the link with a
    :class:`LinkError` — no unsound image reaches a node.
    """
    from ..pipeline import stages
    if not sources:
        raise LinkError("no programs to link")
    rewriter = rewriter if rewriter is not None else Rewriter()
    sizes, _metas = stages.measure_programs(sources, rewriter)
    image = stages.link_programs(sources, sizes, rewriter,
                                 merge_trampolines=merge_trampolines,
                                 code_start=code_start)
    if lint:
        report = stages.lint_linked_image(image)
        if not report.ok:
            raise LinkError(
                "image failed soundness lint:\n" + report.render())
    return image
