"""The kernel linker (paper Figure 1).

Links multiple application programs with the pre-compiled kernel into a
single target image:

1. compile each program once to learn its naturalized size;
2. assign consecutive flash bases after the kernel code region;
3. re-compile each program *at its base* (absolute references must
   assume final placement) and rewrite it into a shared trampoline pool,
   so that similar trampolines merge across programs;
4. place the trampoline region after the last program and resolve every
   patched site's ``JMP`` target.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import LinkError
from ..rewriter.rewriter import Rewriter
from ..rewriter.trampoline import TrampolinePool
from .compile import compile_source
from .image import KERNEL_CODE_WORDS, TargetImage, TaskImage


def link_image(sources: Sequence[Tuple[str, str]],
               rewriter: Optional[Rewriter] = None,
               merge_trampolines: bool = True,
               code_start: int = KERNEL_CODE_WORDS,
               lint: bool = False) -> TargetImage:
    """Build a target image from ``(name, assembly_source)`` pairs.

    With ``lint=True`` the rewriter-soundness linter runs over the
    finished image and a finding aborts the link with a
    :class:`LinkError` — no unsound image reaches a node.
    """
    if not sources:
        raise LinkError("no programs to link")
    rewriter = rewriter if rewriter is not None else Rewriter()

    # Pass 1: sizes (placement-independent).
    sizes = []
    for name, source in sources:
        probe = compile_source(source, name=name, origin=0)
        sizes.append(rewriter.measure_words(probe))

    # Pass 2: assign bases and rewrite at final placement.
    pool = TrampolinePool(merge=merge_trampolines)
    tasks: List[TaskImage] = []
    cursor = code_start
    for (name, source), size in zip(sources, sizes):
        program = compile_source(source, name=name, origin=cursor)
        natural = rewriter.rewrite(program, pool)
        if natural.size_words != size:
            raise LinkError(
                f"{name}: naturalized size changed between passes "
                f"({size} -> {natural.size_words} words)")
        tasks.append(TaskImage(name=name, natural=natural))
        cursor += size

    # Pass 3: place trampolines and resolve JMP targets.
    trap_lo = cursor
    trap_hi = pool.place(trap_lo)
    for task in tasks:
        task.natural.resolve(pool)
    image = TargetImage(tasks=tasks, pool=pool,
                        trap_region=(trap_lo, trap_hi),
                        code_start=code_start)
    if lint:
        from ..analysis.static.lint import lint_image
        report = lint_image(image)
        if not report.ok:
            raise LinkError(
                "image failed soundness lint:\n" + report.render())
    return image
