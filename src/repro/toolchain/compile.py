"""The "compiler" front of the toolchain.

Applications are written in AVR assembly (see :mod:`repro.avr.assembler`)
— the rewriter operates strictly on the binary plus the symbol list, so
any front end emitting AVR code would do.  ``compile_source`` is also
where a program gets re-targeted to its final flash placement: absolute
references (``JMP``/``CALL`` targets, ``lo8/hi8`` of labels, jump tables)
must assume the load address, so the linker re-invokes the compiler once
bases are assigned.
"""

from __future__ import annotations

from ..avr.assembler import Assembler
from .program import Program, from_asm


def compile_source(source: str, name: str = "app", origin: int = 0,
                   bss_base: int = None) -> Program:
    """Compile assembly *source* for flash word address *origin*.

    *bss_base* overrides where ``.bss`` reservations start (default:
    SRAM base).  SenSmart programs always compile at the default — each
    task owns the whole logical space — while OS models without address
    translation (LiteOS/MANTIS) place each thread's data at distinct
    physical addresses.
    """
    assembler = Assembler() if bss_base is None else Assembler(bss_base)
    assembled = assembler.assemble(source, name=name, origin=origin)
    return from_asm(name, source, assembled)
