"""Cycle-cost model for kernel operations, calibrated from Table II.

The paper measures the overhead of each key operation in CPU cycles on
an ATmega simulator (Table II).  Our kernel executes its internals in
the host runtime and *charges* these costs at the same trigger points,
so scheduling behaviour, CPU utilization and the overhead table itself
reproduce (see DESIGN.md, substitution table).

Where Table II rows are unambiguous we use the paper's number verbatim;
the indirect-translation sub-rows are partially garbled in the available
text, so values marked "est." are set between the documented bounds
(direct-other = 28 and indirect-I/O = 54 cycles).
"""

from __future__ import annotations

# -- system ---------------------------------------------------------------------
SYSTEM_INIT = 5738          # Table II: "System initialization"

# -- memory address translation and checking -------------------------------------
MEM_DIRECT_IO = 2           # Table II: Direct / I/O area
MEM_DIRECT_OTHER = 28       # Table II: Direct / Others
MEM_INDIRECT_IO = 54        # Table II: Indirect / I/O area
MEM_INDIRECT_HEAP = 30      # est.: between direct-other and indirect-I/O
MEM_INDIRECT_STACK_FRAME = 44  # est.: bounds check against two pointers
MEM_GROUPED_FOLLOWER = 8    # est.: reuse of a translated address (IV-C2)
STACK_OP = 30               # est.: PUSH/POP with stack check

# -- stack pointer access ----------------------------------------------------------
GET_SP = 45                 # Table II: "Get stack pointer"
SET_SP = 94                 # Table II: "Set stack pointer"

# -- program memory ------------------------------------------------------------------
PROG_MEM_TRANSLATION = 376  # Table II: "Program memory" (indirect branch
                            # destination lookup through the shift table)
LPM_TRANSLATION = 40        # est.: shift-table lookup for data reads

# -- control flow -----------------------------------------------------------------------
BRANCH_COUNTER_INLINE = 4   # est.: in-line backward-branch counter code
SCHED_CHECK = 60            # est.: kernel entry at 1/256 branches, no switch
CALL_TRAMPOLINE = 34        # est.: stack check + push + jump

# -- stack relocation / context switch -----------------------------------------------------
STACK_RELOCATION = 2326     # Table II: "Stack relocation" (base cost)
RELOCATION_PER_BYTE = 2     # est.: LD+ST per byte moved (paper reports
                            # 300-1000 us total at 7.37 MHz)
CONTEXT_SAVE = 932          # Table II: "Context saving"
CONTEXT_RESTORE = 976       # Table II: "Context restoring"
FULL_SWITCH = 2298          # Table II: "Full switching"

# -- miscellaneous traps ------------------------------------------------------------------
TIMER3_VIRTUAL = 20         # est.: virtualized Timer3 register access
SLEEP_TRAP = 30             # est.: block task, enter scheduler
TASK_EXIT = 120             # est.: reclaim region, schedule next

# -- recovery -------------------------------------------------------------------------------
TASK_RESTART = 1450         # est.: region wipe + context reset on a
                            # restart-policy revival (~ half a full
                            # context switch plus the zero-fill loop)

# -- dynamic loading ------------------------------------------------------------------------
LOAD_VALIDATE_BASE = 800    # est.: reprogramming-service header walk
LOAD_VALIDATE_PER_BYTE = 1  # est.: checksum/decode pass over the image;
                            # charged even when validation rejects it
